// dudect-style statistical timing smoke test for the sign path.
//
// Two measurement classes — a FIXED private key vs RANDOM private keys —
// sign the same message; samples are interleaved pseudo-randomly and
// compared with Welch's t-statistic.  For a constant-time sign, the key
// bits must not shift the timing distribution, so |t| stays small; the
// pre-hardening wNAF chain, whose addition count follows the scalar's
// digit pattern, separates the classes within a few hundred samples.
//
// ADVISORY by default (noisy CI machines produce false positives from
// frequency scaling, preemption, and cache pollution): the verdict is
// printed and recorded as a test property, but only enforced when
// IDENTXX_CT_TIMING_ENFORCE=1 is set in the environment (the CI ct-check
// job runs it advisory; run it enforced locally on a quiet machine).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/ec.hpp"
#include "crypto/schnorr.hpp"

namespace identxx::crypto {
namespace {

constexpr int kSamplesPerClass = 150;
// Generous bound: dudect's conventional "leak" threshold is |t| > 4.5;
// we allow noise headroom since sign() is ~100us (coarse-grained
// scheduling noise dominates short-lived effects).
constexpr double kTThreshold = 10.0;

struct Welch {
  double mean_a, mean_b, t;
};

Welch welch_t(const std::vector<double>& a, const std::vector<double>& b) {
  auto stats = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size() - 1);
    return std::pair<double, double>(mean, var);
  };
  const auto [ma, va] = stats(a);
  const auto [mb, vb] = stats(b);
  const double denom = std::sqrt(va / static_cast<double>(a.size()) +
                                 vb / static_cast<double>(b.size()));
  return Welch{ma, mb, denom > 0 ? (ma - mb) / denom : 0.0};
}

TEST(CtTiming, FixedVsRandomKeyClassesAdvisory) {
  const std::string message = "attest:app=browser;exe-hash=deadbeef";
  const auto msg = std::span(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size());

  // Pre-build every key outside the timed region (keygen is not sign).
  const PrivateKey fixed = PrivateKey::from_seed("timing-fixed-key");
  std::vector<PrivateKey> random_keys;
  random_keys.reserve(kSamplesPerClass);
  for (int i = 0; i < kSamplesPerClass; ++i) {
    random_keys.push_back(
        PrivateKey::from_seed("timing-random-" + std::to_string(i)));
  }

  // Interleave the classes in a fixed pseudo-random order so slow drift
  // (thermal, frequency) hits both classes equally.
  std::vector<int> order;  // 0 = fixed class, 1 = random class
  std::uint64_t rng = 0x2545f4914f6cdd1dULL;
  int remaining[2] = {kSamplesPerClass, kSamplesPerClass};
  while (remaining[0] + remaining[1] > 0) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    int cls = static_cast<int>(rng & 1);
    if (remaining[cls] == 0) cls ^= 1;
    order.push_back(cls);
    --remaining[cls];
  }

  // Warm up tables, caches, and branch predictors.
  for (int i = 0; i < 10; ++i) {
    (void)fixed.sign(msg);
    (void)random_keys[static_cast<std::size_t>(i)].sign(msg);
  }

  std::vector<double> fixed_ns, random_ns;
  fixed_ns.reserve(kSamplesPerClass);
  random_ns.reserve(kSamplesPerClass);
  std::size_t next_random = 0;
  for (const int cls : order) {
    const PrivateKey& key =
        (cls == 0) ? fixed : random_keys[next_random];
    const auto start = std::chrono::steady_clock::now();
    const Signature sig = key.sign(msg);
    const auto stop = std::chrono::steady_clock::now();
    ASSERT_FALSE(sig.s.is_zero());
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    if (cls == 0) {
      fixed_ns.push_back(ns);
    } else {
      random_ns.push_back(ns);
      ++next_random;
    }
  }

  const Welch w = welch_t(fixed_ns, random_ns);
  const bool leak_suspected = std::abs(w.t) > kTThreshold;
  RecordProperty("welch_t", std::to_string(w.t));
  RecordProperty("fixed_mean_ns", std::to_string(w.mean_a));
  RecordProperty("random_mean_ns", std::to_string(w.mean_b));
  std::printf("[ct-timing] welch t=%.2f (fixed %.0fns vs random %.0fns, "
              "%d samples/class) -> %s\n",
              w.t, w.mean_a, w.mean_b, kSamplesPerClass,
              leak_suspected ? "SUSPECT" : "ok");

  const char* enforce = std::getenv("IDENTXX_CT_TIMING_ENFORCE");
  if (enforce != nullptr && std::string_view(enforce) == "1") {
    EXPECT_FALSE(leak_suspected)
        << "timing distributions separated by key class: |t|=" << w.t;
  } else if (leak_suspected) {
    GTEST_SKIP() << "advisory: |t|=" << w.t
                 << " exceeds threshold on a noisy host; "
                    "set IDENTXX_CT_TIMING_ENFORCE=1 to fail on this";
  }
}

}  // namespace
}  // namespace identxx::crypto
