// Unit and property tests for src/crypto: SHA-256 (FIPS vectors), HMAC,
// U256 arithmetic, secp256k1 group law, Schnorr signatures, and the fast
// paths (wNAF / fixed-base / Shamir / sn_reduce) differentially checked
// against the retained naive oracles.

#include <gtest/gtest.h>

#include "crypto/ec.hpp"
#include "crypto/hmac.hpp"
#include "crypto/key_tier.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "crypto/u256.hpp"
#include "crypto/verifier.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace identxx::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    h.update(std::string_view(msg).substr(i, 7));
  }
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding at block boundaries: 55, 56, 63, 64, 65 bytes.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'a');
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash("abc"), Sha256::hash("abd"));
}

// ---------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Case1) {
  // Key = 20 bytes of 0x0b, data = "Hi There".
  std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("Hi There"), 8));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac = hmac_sha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  // Keys longer than the block size must be hashed first; just check
  // determinism and sensitivity.
  const std::string long_key(200, 'k');
  const auto mac1 = hmac_sha256(long_key, "msg");
  const auto mac2 = hmac_sha256(long_key, "msg");
  const auto mac3 = hmac_sha256(long_key, "msh");
  EXPECT_EQ(mac1, mac2);
  EXPECT_NE(mac1, mac3);
}

// ---------------------------------------------------------------- U256

TEST(U256Arith, HexRoundTrip) {
  const auto v = U256::from_hex(
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_hex(),
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
}

TEST(U256Arith, FromHexShortInputIsPadded) {
  const auto v = U256::from_hex("ff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, U256{0xff});
}

TEST(U256Arith, FromHexRejectsBadInput) {
  EXPECT_FALSE(U256::from_hex("").has_value());
  EXPECT_FALSE(U256::from_hex("xyz").has_value());
  EXPECT_FALSE(U256::from_hex(std::string(65, 'f')).has_value());
}

TEST(U256Arith, BytesRoundTrip) {
  const U256 v{0x0123456789abcdefULL, 0xfedcba9876543210ULL, 1, 2};
  const auto bytes = v.to_bytes();
  EXPECT_EQ(U256::from_bytes(std::span<const std::uint8_t, 32>(bytes)), v);
}

TEST(U256Arith, AddCarryPropagates) {
  const U256 max{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  const auto [sum, carry] = U256::add(max, U256{1});
  EXPECT_TRUE(carry);
  EXPECT_TRUE(sum.is_zero());
}

TEST(U256Arith, SubBorrow) {
  const auto [diff, borrow] = U256::sub(U256{0}, U256{1});
  EXPECT_TRUE(borrow);
  EXPECT_EQ(diff, (U256{~0ULL, ~0ULL, ~0ULL, ~0ULL}));
}

TEST(U256Arith, AddSubInverse) {
  util::SplitMix64 rng(11);
  for (int i = 0; i < 200; ++i) {
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 b{rng.next(), rng.next(), rng.next(), rng.next()};
    const auto [sum, carry] = U256::add(a, b);
    const auto [back, borrow] = U256::sub(sum, b);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256Arith, MulWideSmall) {
  const U512 prod = U256::mul_wide(U256{3}, U256{5});
  EXPECT_EQ(prod.low(), U256{15});
  EXPECT_TRUE(prod.high().is_zero());
}

TEST(U256Arith, MulWideCrossLimb) {
  // (2^64)(2^64) = 2^128.
  const U256 a{0, 1, 0, 0};
  const U512 prod = U256::mul_wide(a, a);
  EXPECT_EQ(prod.low(), (U256{0, 0, 1, 0}));
  EXPECT_TRUE(prod.high().is_zero());
}

TEST(U256Arith, ModSmallCases) {
  U512 x{};
  x.w[0] = 17;
  EXPECT_EQ(mod(x, U256{5}), U256{2});
  x.w[0] = 4;
  EXPECT_EQ(mod(x, U256{5}), U256{4});
}

TEST(U256Arith, ModMatchesMulIdentity) {
  // (a * m + r) mod m == r for random a, r < m.
  util::SplitMix64 rng(13);
  const U256 m = Secp256k1::n();
  for (int i = 0; i < 50; ++i) {
    const U256 a{rng.next(), rng.next(), 0, 0};
    const U256 r{rng.next() % 1000, 0, 0, 0};
    U512 prod = U256::mul_wide(a, m);
    // prod += r (no overflow: a < 2^128 so prod < 2^384).
    unsigned carry = 0;
    std::uint64_t add = r.w[0];
    for (std::size_t j = 0; j < 8; ++j) {
      const std::uint64_t before = prod.w[j];
      prod.w[j] += add + carry;
      carry = (prod.w[j] < before || (carry && prod.w[j] == before)) ? 1 : 0;
      add = 0;
    }
    EXPECT_EQ(mod(prod, m), r);
  }
}

TEST(U256Arith, ModularOpsStayBelowModulus) {
  util::SplitMix64 rng(17);
  const U256 m = Secp256k1::p();
  for (int i = 0; i < 100; ++i) {
    U512 wide{};
    for (auto& w : wide.w) w = rng.next();
    const U256 a = mod(wide, m);
    for (auto& w : wide.w) w = rng.next();
    const U256 b = mod(wide, m);
    EXPECT_LT(U256::cmp(add_mod(a, b, m), m), 0);
    EXPECT_LT(U256::cmp(sub_mod(a, b, m), m), 0);
    EXPECT_LT(U256::cmp(mul_mod(a, b, m), m), 0);
  }
}

TEST(U256Arith, InvModFermat) {
  const U256 m = Secp256k1::n();
  util::SplitMix64 rng(19);
  for (int i = 0; i < 10; ++i) {
    const U256 a{rng.next() | 1, rng.next(), rng.next(), 0};
    const U256 inv = inv_mod(a, m);
    EXPECT_EQ(mul_mod(a, inv, m), U256{1});
  }
}

TEST(U256Arith, PowModBasics) {
  const U256 m{1000003};
  EXPECT_EQ(pow_mod(U256{2}, U256{10}, m), U256{1024});
  EXPECT_EQ(pow_mod(U256{7}, U256{0}, m), U256{1});
}

TEST(U256Arith, ShiftInverses) {
  util::SplitMix64 rng(23);
  for (int i = 0; i < 100; ++i) {
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next() >> 1};
    EXPECT_EQ(a.shl1().first.shr1(), a);
  }
}

TEST(U256Arith, BitLength) {
  EXPECT_EQ(U256{}.bit_length(), 0u);
  EXPECT_EQ(U256{1}.bit_length(), 1u);
  EXPECT_EQ(U256{0xff}.bit_length(), 8u);
  EXPECT_EQ((U256{0, 0, 0, 1ULL << 63}).bit_length(), 256u);
}

// ---------------------------------------------------------------- EC group

TEST(Ec, GeneratorIsOnCurve) {
  EXPECT_TRUE(AffinePoint::generator().on_curve());
}

TEST(Ec, CurveConstantsSane) {
  // p and n are odd 256-bit numbers with high bit set.
  EXPECT_TRUE(Secp256k1::p().bit(0));
  EXPECT_TRUE(Secp256k1::n().bit(0));
  EXPECT_EQ(Secp256k1::p().bit_length(), 256u);
  EXPECT_EQ(Secp256k1::n().bit_length(), 256u);
}

TEST(Ec, OneTimesGIsG) {
  const AffinePoint g = AffinePoint::generator();
  EXPECT_EQ(ec_mul_base(U256{1}).to_affine(), g);
}

TEST(Ec, OrderTimesGIsIdentity) {
  // n*G == O validates the full constant set and the group law together.
  const JacobianPoint ng = ec_mul_base(Secp256k1::n());
  EXPECT_TRUE(ng.is_identity());
}

TEST(Ec, OrderMinusOneTimesGIsNegG) {
  const U256 n_minus_1 = U256::sub(Secp256k1::n(), U256{1}).first;
  const AffinePoint p = ec_mul_base(n_minus_1).to_affine();
  EXPECT_EQ(p, ec_negate(AffinePoint::generator()));
}

TEST(Ec, TwoGKnownAnswer) {
  // 2*G for secp256k1, a published test vector.
  const AffinePoint two_g = ec_mul_base(U256{2}).to_affine();
  EXPECT_EQ(two_g.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Ec, DoubleMatchesAddSelf) {
  const JacobianPoint g = JacobianPoint::from_affine(AffinePoint::generator());
  const AffinePoint doubled = ec_double(g).to_affine();
  const AffinePoint two_g = ec_mul_base(U256{2}).to_affine();
  EXPECT_EQ(doubled, two_g);
  EXPECT_TRUE(doubled.on_curve());
}

TEST(Ec, ScalarDistributivity) {
  // (a + b)G == aG + bG for random a, b.
  util::SplitMix64 rng(31);
  for (int i = 0; i < 5; ++i) {
    const U256 a{rng.next(), rng.next(), 0, 0};
    const U256 b{rng.next(), rng.next(), 0, 0};
    const U256 a_plus_b = add_mod(a, b, Secp256k1::n());
    const AffinePoint lhs = ec_mul_base(a_plus_b).to_affine();
    const AffinePoint rhs =
        ec_add(ec_mul_base(a), ec_mul_base(b)).to_affine();
    EXPECT_EQ(lhs, rhs);
    EXPECT_TRUE(lhs.on_curve());
  }
}

TEST(Ec, AddIdentityIsNoop) {
  const JacobianPoint g = JacobianPoint::from_affine(AffinePoint::generator());
  EXPECT_EQ(ec_add(g, JacobianPoint::identity()).to_affine(),
            AffinePoint::generator());
  EXPECT_EQ(ec_add(JacobianPoint::identity(), g).to_affine(),
            AffinePoint::generator());
}

TEST(Ec, AddInverseGivesIdentity) {
  const AffinePoint g = AffinePoint::generator();
  const JacobianPoint sum =
      ec_add(JacobianPoint::from_affine(g),
             JacobianPoint::from_affine(ec_negate(g)));
  EXPECT_TRUE(sum.is_identity());
}

TEST(Ec, MulByZeroIsIdentity) {
  EXPECT_TRUE(ec_mul_base(U256{}).is_identity());
}

// ------------------------------------------------- known-answer vectors

/// Published secp256k1 k*G test vectors (and one large-scalar vector);
/// every multiplication flavour must reproduce them exactly.
struct MulBaseVector {
  const char* k;
  const char* x;
  const char* y;
};
constexpr MulBaseVector kMulBaseVectors[] = {
    {"3", "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
     "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"},
    {"4", "e493dbf1c10d80f3581e4904930b1404cc6c13900ee0758474fa94abe8c4cd13",
     "51ed993ea0d455b75642e2098ea51448d967ae33bfbdfe40cfe97bdc47739922"},
    {"5", "2f8bde4d1a07209355b4a7250a5c5128e88b84bddc619ab7cba8d569b240efe4",
     "d8ac222636e5e3d6d4dba9dda6c9c426f788271bab0d6840dca87d3aa6ac62d6"},
    {"14", "4ce119c96e2fa357200b559b2f7dd5a5f02d5290aff74b03f3e471b273211c97",
     "12ba26dcb10ec1625da61fa10a844c676162948271d96967450288ee9233dc3a"},
    {"aa5e28d6a97a2479a65527f7290311a3624d4cc0fa1578598ee3c2613bf99522",
     "34f9460f0e4f08393d192b3c5133a6ba099aa0ad9fd54ebccfacdfa239ff49c6",
     "0b71ea9bd730fd8923f6d25a7a91e7dd7728a960686cb5a901bb419e0f2ca232"},
};

TEST(EcKat, MulBaseKnownAnswers) {
  for (const MulBaseVector& vec : kMulBaseVectors) {
    const U256 k = *U256::from_hex(vec.k);
    const AffinePoint expected{*U256::from_hex(vec.x), *U256::from_hex(vec.y),
                               false};
    EXPECT_EQ(ec_mul_base(k).to_affine(), expected) << "k=" << vec.k;
    EXPECT_EQ(ec_mul(k, AffinePoint::generator()).to_affine(), expected);
    EXPECT_EQ(ec_mul_naive(k, AffinePoint::generator()).to_affine(), expected);
  }
}

TEST(EcKat, SchnorrDeterministicVectors) {
  // Locked outputs of the deterministic scheme (recorded from the seed
  // implementation): any change to hashing, nonce derivation or group
  // arithmetic shows up here.
  const PrivateKey alice = PrivateKey::from_seed("alice");
  EXPECT_EQ(alice.public_key().to_hex(),
            "29e8898c82e3e7166576b6e920c479093424ab38196d508f10fb0996ed28daca"
            "0751eeb4a59a192f37c13cf048059c5e9ae6f523635eb723f302cdf7b9a6c231");
  EXPECT_EQ(alice.sign("hello world").to_hex(),
            "7e7f12aa3df2542156a68156c1243750425c1f9292c3020ece697847a6f78d6d"
            "adbc82baf665beb5adac7bd09217f4ca205038e937dd38bc671c39b8fdb223e6"
            "84d4744e4d8031ad96c422f09e4475ca1c11a03d440cb04c36ccda4e4149e451");
  const PrivateKey research = PrivateKey::from_seed("research");
  EXPECT_EQ(research.sign("msg").to_hex(),
            "042ac894518d27ddc874ead1c12626da719f0bb4da56232ef379b3a8719a0c0c"
            "a197448569c3f4a104bef7b5e64e686c97f47139ebdaae144c7efe711e8d6ab4"
            "5156895f1b1d996947ad6faaf3913ac674e3f63838a9dc1362db80fb33c482d1");
}

// ------------------------------------------------- differential sweeps

/// A random point for differential tests: hash-derived scalar times G.
AffinePoint random_point(util::SplitMix64& rng) {
  const U256 k{rng.next() | 1, rng.next(), rng.next(), rng.next() >> 2};
  return ec_mul_naive(k, AffinePoint::generator()).to_affine();
}

TEST(EcDifferential, WnafMatchesNaiveOnRandomScalars) {
  // Acceptance sweep: the optimized variable-base path agrees with the
  // retained double-and-add oracle on >= 1000 random inputs, plus edges.
  util::SplitMix64 rng(101);
  const AffinePoint p = random_point(rng);
  std::vector<U256> scalars = {
      U256{},                                   // 0
      U256{1},
      U256{2},
      U256::sub(Secp256k1::n(), U256{1}).first,  // n-1
      Secp256k1::n(),                            // n (reduces to identity)
      U256::add(Secp256k1::n(), U256{5}).first,  // n+5
      U256{~0ULL, ~0ULL, ~0ULL, ~0ULL},          // 2^256 - 1
  };
  for (int i = 0; i < 1000; ++i) {
    scalars.push_back(U256{rng.next(), rng.next(), rng.next(), rng.next()});
  }
  for (const U256& k : scalars) {
    EXPECT_EQ(ec_mul(k, p).to_affine(), ec_mul_naive(k, p).to_affine())
        << "k=" << k.to_hex();
  }
}

TEST(EcDifferential, FixedBaseTableMatchesNaive) {
  util::SplitMix64 rng(103);
  const AffinePoint p = random_point(rng);
  const FixedBaseTable table(p);
  for (int i = 0; i < 200; ++i) {
    const U256 k{rng.next(), rng.next(), rng.next(), rng.next()};
    EXPECT_EQ(table.mul(k).to_affine(), ec_mul_naive(k, p).to_affine());
  }
  // The shared generator table too.
  for (int i = 0; i < 100; ++i) {
    const U256 k{rng.next(), rng.next(), rng.next(), rng.next()};
    EXPECT_EQ(ec_mul_base(k).to_affine(),
              ec_mul_naive(k, AffinePoint::generator()).to_affine());
  }
}

TEST(EcDifferential, MulAddMatchesNaiveComposition) {
  // a*G + b*P via the fused Shamir pass and via the precomputed-table
  // overload, against naive(a)*G + naive(b)*P.
  util::SplitMix64 rng(107);
  const AffinePoint p = random_point(rng);
  const FixedBaseTable table(p);
  for (int i = 0; i < 1000; ++i) {
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 b{rng.next(), rng.next(), rng.next(), rng.next()};
    const AffinePoint expected =
        ec_add(ec_mul_naive(a, AffinePoint::generator()), ec_mul_naive(b, p))
            .to_affine();
    EXPECT_EQ(ec_mul_add(a, b, p).to_affine(), expected);
    EXPECT_EQ(ec_mul_add(a, b, table).to_affine(), expected);
  }
  // Degenerate operands.
  EXPECT_EQ(ec_mul_add(U256{}, U256{7}, p).to_affine(),
            ec_mul_naive(U256{7}, p).to_affine());
  EXPECT_EQ(ec_mul_add(U256{7}, U256{}, p).to_affine(),
            ec_mul_naive(U256{7}, AffinePoint::generator()).to_affine());
  EXPECT_TRUE(ec_mul_add(U256{}, U256{}, p).is_identity());
}

TEST(EcDifferential, EqualsAffineAgreesWithNormalization) {
  util::SplitMix64 rng(109);
  const AffinePoint p = random_point(rng);
  for (int i = 0; i < 50; ++i) {
    const U256 k{rng.next() | 1, rng.next(), 0, 0};
    const JacobianPoint jac = ec_mul(k, p);
    EXPECT_TRUE(ec_equals_affine(jac, jac.to_affine()));
    EXPECT_FALSE(ec_equals_affine(jac, ec_negate(jac.to_affine())));
    EXPECT_FALSE(ec_equals_affine(jac, AffinePoint::identity()));
  }
  EXPECT_TRUE(
      ec_equals_affine(JacobianPoint::identity(), AffinePoint::identity()));
  EXPECT_FALSE(ec_equals_affine(JacobianPoint::identity(), p));
}

TEST(ScalarDifferential, SnReduceMatchesGenericMod) {
  util::SplitMix64 rng(113);
  for (int i = 0; i < 1000; ++i) {
    U512 wide{};
    for (auto& w : wide.w) w = rng.next();
    EXPECT_EQ(sn_reduce(wide), mod(wide, Secp256k1::n()));
  }
  // Edges: zero, n, n-1, 2^512 - 1 and pure-high-half values.
  U512 edge{};
  EXPECT_TRUE(sn_reduce(edge).is_zero());
  for (std::size_t i = 0; i < 4; ++i) edge.w[i] = Secp256k1::n().w[i];
  EXPECT_TRUE(sn_reduce(edge).is_zero());
  for (auto& w : edge.w) w = ~0ULL;
  EXPECT_EQ(sn_reduce(edge), mod(edge, Secp256k1::n()));
  U512 high_only{};
  for (std::size_t i = 4; i < 8; ++i) high_only.w[i] = ~0ULL;
  EXPECT_EQ(sn_reduce(high_only), mod(high_only, Secp256k1::n()));
}

TEST(ScalarDifferential, SnMulAddSubMatchGeneric) {
  util::SplitMix64 rng(127);
  const U256 n = Secp256k1::n();
  for (int i = 0; i < 500; ++i) {
    U512 wide{};
    for (auto& w : wide.w) w = rng.next();
    const U256 a = mod(wide, n);
    for (auto& w : wide.w) w = rng.next();
    const U256 b = mod(wide, n);
    EXPECT_EQ(sn_mul(a, b), mul_mod(a, b, n));
    EXPECT_EQ(sn_add(a, b), add_mod(a, b, n));
    EXPECT_EQ(sn_sub(a, b), sub_mod(a, b, n));
  }
}

TEST(Ec, FieldInverse) {
  util::SplitMix64 rng(37);
  for (int i = 0; i < 10; ++i) {
    const U256 a{rng.next() | 1, rng.next(), rng.next(), 0};
    EXPECT_EQ(fp_mul(a, fp_inv(a)), U256{1});
  }
}

// ---------------------------------------------------------------- Schnorr

TEST(Schnorr, SignVerifyRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed("alice");
  const Signature sig = key.sign("hello world");
  EXPECT_TRUE(verify(key.public_key(), "hello world", sig));
}

TEST(Schnorr, TamperedMessageRejected) {
  const PrivateKey key = PrivateKey::from_seed("alice");
  const Signature sig = key.sign("hello world");
  EXPECT_FALSE(verify(key.public_key(), "hello worle", sig));
  EXPECT_FALSE(verify(key.public_key(), "", sig));
}

TEST(Schnorr, WrongKeyRejected) {
  const PrivateKey alice = PrivateKey::from_seed("alice");
  const PrivateKey mallory = PrivateKey::from_seed("mallory");
  const Signature sig = alice.sign("msg");
  EXPECT_FALSE(verify(mallory.public_key(), "msg", sig));
}

TEST(Schnorr, TamperedSignatureRejected) {
  const PrivateKey key = PrivateKey::from_seed("alice");
  Signature sig = key.sign("msg");
  sig.s = add_mod(sig.s, U256{1}, Secp256k1::n());
  EXPECT_FALSE(verify(key.public_key(), "msg", sig));
}

TEST(Schnorr, DeterministicSignatures) {
  const PrivateKey key = PrivateKey::from_seed("bob");
  EXPECT_EQ(key.sign("m").to_hex(), key.sign("m").to_hex());
  EXPECT_NE(key.sign("m1").to_hex(), key.sign("m2").to_hex());
}

TEST(Schnorr, DistinctSeedsDistinctKeys) {
  EXPECT_NE(PrivateKey::from_seed("a").public_key().to_hex(),
            PrivateKey::from_seed("b").public_key().to_hex());
}

TEST(Schnorr, PublicKeyHexRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed("carol");
  const std::string hex = key.public_key().to_hex();
  EXPECT_EQ(hex.size(), 128u);
  const auto parsed = PublicKey::from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key.public_key());
}

TEST(Schnorr, PublicKeyFromHexRejectsOffCurve) {
  // A syntactically valid but off-curve point must be rejected.
  std::string bogus(128, '1');
  EXPECT_FALSE(PublicKey::from_hex(bogus).has_value());
  EXPECT_FALSE(PublicKey::from_hex("abcd").has_value());
}

TEST(Schnorr, SignatureHexRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed("dave");
  const Signature sig = key.sign("payload");
  const auto parsed = Signature::from_hex(sig.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sig);
  EXPECT_FALSE(Signature::from_hex("deadbeef").has_value());
}

TEST(Schnorr, RejectsOutOfRangeS) {
  const PrivateKey key = PrivateKey::from_seed("erin");
  Signature sig = key.sign("msg");
  sig.s = Secp256k1::n();  // s must be < n
  EXPECT_FALSE(verify(key.public_key(), "msg", sig));
  sig.s = U256{};  // s must be nonzero
  EXPECT_FALSE(verify(key.public_key(), "msg", sig));
}

TEST(Schnorr, FromScalarValidatesRange) {
  EXPECT_THROW((void)PrivateKey::from_scalar(U256{}), CryptoError);
  EXPECT_THROW((void)PrivateKey::from_scalar(Secp256k1::n()), CryptoError);
  EXPECT_NO_THROW((void)PrivateKey::from_scalar(U256{12345}));
}

TEST(Schnorr, HashToScalarBelowOrder) {
  for (const char* m : {"a", "b", "c", "longer message here"}) {
    const auto bytes = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(m), strlen(m));
    EXPECT_LT(U256::cmp(hash_to_scalar(bytes), Secp256k1::n()), 0);
  }
}

TEST(Schnorr, PrecomputedKeyAgreesWithPlainVerify) {
  const PrivateKey key = PrivateKey::from_seed("precomp");
  const PrecomputedPublicKey pre(key.public_key());
  const Signature sig = key.sign("msg");
  EXPECT_TRUE(verify(pre, "msg", sig));
  EXPECT_FALSE(verify(pre, "msh", sig));
  Signature bad = sig;
  bad.s = add_mod(bad.s, U256{1}, Secp256k1::n());
  EXPECT_FALSE(verify(pre, "msg", bad));
  // Sweep: precomputed and plain verify agree on valid and invalid sigs.
  for (int i = 0; i < 8; ++i) {
    const std::string msg = "m" + std::to_string(i);
    const Signature s = key.sign(msg);
    EXPECT_TRUE(verify(pre, msg, s));
    EXPECT_EQ(verify(pre, msg + "x", s), verify(key.public_key(), msg + "x", s));
  }
}

// ------------------------------------------------- SchnorrVerifier

TEST(SchnorrVerifier, MemoizesRepeatVerifications) {
  SchnorrVerifier verifier;
  const PrivateKey key = PrivateKey::from_seed("daemon-1");
  verifier.register_key(key.public_key());
  EXPECT_EQ(verifier.registered_key_count(), 1u);

  const Signature sig = key.sign("attestation");
  EXPECT_TRUE(verifier.verify(key.public_key(), "attestation", sig));
  EXPECT_EQ(verifier.stats().memo_misses, 1u);
  EXPECT_EQ(verifier.stats().table_verifications, 1u);
  // Retransmitted / duplicated attestation: served from the memo.
  EXPECT_TRUE(verifier.verify(key.public_key(), "attestation", sig));
  EXPECT_TRUE(verifier.verify(key.public_key(), "attestation", sig));
  EXPECT_EQ(verifier.stats().memo_hits, 2u);
  EXPECT_EQ(verifier.stats().table_verifications, 1u);
  // Negative results memoize too.
  EXPECT_FALSE(verifier.verify(key.public_key(), "tampered", sig));
  EXPECT_FALSE(verifier.verify(key.public_key(), "tampered", sig));
  EXPECT_EQ(verifier.stats().memo_hits, 3u);
}

TEST(SchnorrVerifier, MemoIsBoundedLru) {
  SchnorrVerifier verifier(/*memo_capacity=*/2);
  const PrivateKey key = PrivateKey::from_seed("daemon-2");
  for (int i = 0; i < 5; ++i) {
    const std::string msg = "m" + std::to_string(i);
    EXPECT_TRUE(verifier.verify(key.public_key(), msg, key.sign(msg)));
    EXPECT_LE(verifier.memo_size(), 2u);
  }
  EXPECT_EQ(verifier.stats().memo_evictions, 3u);
  // The newest entry is still memoized...
  EXPECT_TRUE(verifier.verify(key.public_key(), "m4", key.sign("m4")));
  EXPECT_EQ(verifier.stats().memo_hits, 1u);
  // ...while the oldest was evicted and re-verifies.
  EXPECT_TRUE(verifier.verify(key.public_key(), "m0", key.sign("m0")));
  EXPECT_EQ(verifier.stats().memo_hits, 1u);
}

TEST(SchnorrVerifier, KeyChangeInvalidatesMemoizedVerdicts) {
  // The memo binds the key's value AND generation: rotating a daemon key
  // can never serve a verdict computed under the old key, and even
  // re-registering the same key value starts a fresh generation.
  SchnorrVerifier verifier;
  const PrivateKey old_key = PrivateKey::from_seed("rotate-old");
  const PrivateKey new_key = PrivateKey::from_seed("rotate-new");
  verifier.register_key(old_key.public_key());
  const Signature sig = old_key.sign("claim");
  EXPECT_TRUE(verifier.verify(old_key.public_key(), "claim", sig));

  // Same message+signature under the NEW key value: distinct memo entry,
  // correctly false.
  verifier.invalidate_key(old_key.public_key());
  verifier.register_key(new_key.public_key());
  EXPECT_FALSE(verifier.verify(new_key.public_key(), "claim", sig));

  // The old key's generation was bumped, so its memoized verdict is
  // unreachable: a fresh verification runs (and still succeeds, honestly).
  const std::uint64_t misses_before = verifier.stats().memo_misses;
  EXPECT_TRUE(verifier.verify(old_key.public_key(), "claim", sig));
  EXPECT_EQ(verifier.stats().memo_misses, misses_before + 1);
}

// ------------------------------------------------- batch verification

/// A small pool of signing principals (a decide_many burst is typically a
/// handful of daemons attesting many flows).
std::vector<PrivateKey> key_pool(std::size_t count, const std::string& tag) {
  std::vector<PrivateKey> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(PrivateKey::from_seed(tag + std::to_string(i)));
  }
  return keys;
}

TEST(SchnorrVerifier, BatchAcceptsAllValidWithOneMsm) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{64}}) {
    SchnorrVerifier verifier;
    const auto keys = key_pool(4, "batch-pool-");
    for (const auto& k : keys) verifier.register_key(k.public_key());

    std::vector<std::string> msgs;
    std::vector<SchnorrVerifier::BatchItem> items;
    msgs.reserve(n);
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const PrivateKey& k = keys[i % keys.size()];
      msgs.push_back("flow-attestation-" + std::to_string(i));
      items.push_back({k.public_key(), msgs.back(), k.sign(msgs.back())});
    }

    const auto verdicts = verifier.verify_batch(items);
    ASSERT_EQ(verdicts.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(verdicts[i]) << "n=" << n << " item " << i;
    }
    EXPECT_EQ(verifier.stats().batch_calls, 1u);
    EXPECT_EQ(verifier.stats().batch_msms, 1u) << "n=" << n;
    EXPECT_EQ(verifier.stats().batch_rejects, 0u);
    EXPECT_EQ(verifier.stats().batch_items, n);
    EXPECT_EQ(verifier.stats().memo_misses, n);
    EXPECT_EQ(verifier.memo_size(), n);

    // The whole batch was memoized: a second pass is pure memo hits and
    // spends no additional group arithmetic.
    const auto again = verifier.verify_batch(items);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(again[i]);
    EXPECT_EQ(verifier.stats().memo_hits, n);
    EXPECT_EQ(verifier.stats().batch_msms, 1u);
  }
}

TEST(SchnorrVerifier, BatchRejectsForgeriesAtRandomPositions) {
  // A batch containing >= 1 forged signature must never be accepted, and
  // bisection must converge on exactly the forged indices.
  util::SplitMix64 rng(173);
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{64}}) {
    for (int trial = 0; trial < 5; ++trial) {
      SchnorrVerifier verifier;
      const auto keys = key_pool(4, "batch-forge-");
      for (const auto& k : keys) verifier.register_key(k.public_key());

      std::vector<std::string> msgs;
      std::vector<SchnorrVerifier::BatchItem> items;
      msgs.reserve(n);
      items.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const PrivateKey& k = keys[i % keys.size()];
        msgs.push_back("storm-" + std::to_string(trial) + "-" +
                       std::to_string(i));
        items.push_back({k.public_key(), msgs.back(), k.sign(msgs.back())});
      }
      std::vector<bool> forged(n, false);
      forged[rng.next() % n] = true;  // always at least one culprit
      for (std::size_t i = 0; i < n; ++i) {
        if (!forged[i] && rng.next() % 4 == 0) forged[i] = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (forged[i]) {
          items[i].sig.s =
              add_mod(items[i].sig.s, U256{1}, Secp256k1::n());
        }
      }

      const auto verdicts = verifier.verify_batch(items);
      ASSERT_EQ(verdicts.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(verdicts[i], !forged[i])
            << "n=" << n << " trial=" << trial << " item " << i;
      }
      EXPECT_EQ(verifier.stats().batch_rejects, 1u);
      EXPECT_GT(verifier.stats().batch_msms, 1u);  // bisection ran
    }
  }
}

TEST(SchnorrVerifier, BatchEdgeCasesEmptySingleDuplicate) {
  SchnorrVerifier verifier;
  const PrivateKey key = PrivateKey::from_seed("batch-edge");
  verifier.register_key(key.public_key());

  // Empty batch: empty verdicts, no MSM, not even a batch call recorded
  // beyond the invocation counter.
  EXPECT_TRUE(verifier.verify_batch({}).empty());
  EXPECT_EQ(verifier.stats().batch_msms, 0u);

  // Single item: no aggregation to be had — the plain tiered path runs.
  const std::string msg = "solo-attestation";
  const SchnorrVerifier::BatchItem solo{key.public_key(), msg, key.sign(msg)};
  const auto one = verifier.verify_batch({&solo, 1});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0]);
  EXPECT_EQ(verifier.stats().batch_msms, 0u);
  EXPECT_EQ(verifier.stats().table_verifications, 1u);

  // Duplicate items inside one batch settle to one memo entry, both true.
  const std::string dup_msg = "duplicated-attestation";
  const SchnorrVerifier::BatchItem dup{key.public_key(), dup_msg,
                                       key.sign(dup_msg)};
  const std::vector<SchnorrVerifier::BatchItem> dups{dup, dup};
  const std::size_t memo_before = verifier.memo_size();
  const auto two = verifier.verify_batch(dups);
  EXPECT_TRUE(two[0]);
  EXPECT_TRUE(two[1]);
  EXPECT_EQ(verifier.memo_size(), memo_before + 1);

  // Structurally broken signatures fail closed without reaching the MSM.
  SchnorrVerifier fresh;
  fresh.register_key(key.public_key());
  Signature broken = key.sign(msg);
  broken.s = Secp256k1::n();  // out of range
  const std::vector<SchnorrVerifier::BatchItem> mixed{
      {key.public_key(), msg, key.sign(msg)},
      {key.public_key(), msg, broken},
  };
  const auto verdicts = fresh.verify_batch(mixed);
  EXPECT_TRUE(verdicts[0]);
  EXPECT_FALSE(verdicts[1]);
}

TEST(SchnorrVerifier, BatchHandlesUnregisteredKeys) {
  // Unregistered principals ride the same RLC check through the tableless
  // GLV term; forgeries among them are still pinned exactly.
  SchnorrVerifier verifier;
  const PrivateKey registered = PrivateKey::from_seed("batch-reg");
  const PrivateKey drifter = PrivateKey::from_seed("batch-unreg");
  verifier.register_key(registered.public_key());

  std::vector<std::string> msgs;
  std::vector<SchnorrVerifier::BatchItem> items;
  msgs.reserve(6);
  for (std::size_t i = 0; i < 6; ++i) {
    const PrivateKey& k = (i % 2 == 0) ? registered : drifter;
    msgs.push_back("mixed-origin-" + std::to_string(i));
    items.push_back({k.public_key(), msgs.back(), k.sign(msgs.back())});
  }
  items[3].sig.s = add_mod(items[3].sig.s, U256{1}, Secp256k1::n());

  const auto verdicts = verifier.verify_batch(items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 3) << "item " << i;
  }
}

TEST(SchnorrVerifier, BatchHonorsGenerationAfterRotation) {
  // Key rotation makes every verdict memoized under the old generation
  // unreachable for batches exactly as for single verifies.
  SchnorrVerifier verifier;
  const PrivateKey key = PrivateKey::from_seed("batch-rotate");
  verifier.register_key(key.public_key());

  std::vector<std::string> msgs;
  std::vector<SchnorrVerifier::BatchItem> items;
  msgs.reserve(4);
  for (std::size_t i = 0; i < 4; ++i) {
    msgs.push_back("rotate-claim-" + std::to_string(i));
    items.push_back({key.public_key(), msgs.back(), key.sign(msgs.back())});
  }
  const auto first = verifier.verify_batch(items);
  for (const bool v : first) EXPECT_TRUE(v);
  EXPECT_EQ(verifier.stats().memo_misses, 4u);

  verifier.invalidate_key(key.public_key());
  verifier.register_key(key.public_key());

  // Same items, new generation: all recomputed (no stale hits), still true.
  const auto second = verifier.verify_batch(items);
  for (const bool v : second) EXPECT_TRUE(v);
  EXPECT_EQ(verifier.stats().memo_hits, 0u);
  EXPECT_EQ(verifier.stats().memo_misses, 8u);
  EXPECT_EQ(verifier.stats().batch_msms, 2u);
}

// ------------------------------------------------- key tier store

TEST(KeyTierStore, EagerHotOnlyWithinFreeBudget) {
  util::SplitMix64 rng(179);
  KeyTierConfig config;
  config.table_budget_bytes = 2 * KeyTierStore::hot_table_bytes();
  KeyTierStore store(config);
  const AffinePoint a = random_point(rng);
  const AffinePoint b = random_point(rng);
  const AffinePoint c = random_point(rng);
  store.add(a);
  store.add(b);
  store.add(c);  // no free budget left: starts cold, nothing is evicted
  EXPECT_EQ(store.key_count(), 3u);
  EXPECT_EQ(store.hot_count(), 2u);
  EXPECT_EQ(store.peek(a).tier, KeyTier::kHot);
  EXPECT_EQ(store.peek(b).tier, KeyTier::kHot);
  EXPECT_EQ(store.peek(c).tier, KeyTier::kCold);
  EXPECT_LE(store.table_bytes(), config.table_budget_bytes);
  EXPECT_EQ(store.stats().demotions, 0u);
  // add() is idempotent; remove() frees the table and forgets the key.
  store.add(a);
  EXPECT_EQ(store.key_count(), 3u);
  store.remove(a);
  EXPECT_EQ(store.key_count(), 2u);
  EXPECT_EQ(store.hot_count(), 1u);
  EXPECT_EQ(store.table_bytes(), KeyTierStore::hot_table_bytes());
  EXPECT_FALSE(store.contains(a));
}

TEST(KeyTierStore, UseDrivenPromotionEvictsLeastRecentlyUsed) {
  util::SplitMix64 rng(181);
  KeyTierConfig config;
  config.table_budget_bytes = KeyTierStore::hot_table_bytes();  // one hot slot
  config.warm_after = 2;
  config.hot_after = 4;
  KeyTierStore store(config);
  const AffinePoint a = random_point(rng);
  const AffinePoint b = random_point(rng);
  store.add(a);  // eager hot fills the budget
  store.add(b);  // cold
  EXPECT_EQ(store.peek(a).tier, KeyTier::kHot);
  EXPECT_EQ(store.peek(b).tier, KeyTier::kCold);

  // First use leaves b cold (below warm_after); crossing the threshold
  // builds a warm table by evicting a's LRU hot table.
  EXPECT_EQ(store.use(b).tier, KeyTier::kCold);
  EXPECT_EQ(store.use(b).tier, KeyTier::kWarm);
  EXPECT_EQ(store.peek(a).tier, KeyTier::kCold);
  EXPECT_EQ(store.stats().demotions, 1u);
  EXPECT_LE(store.table_bytes(), config.table_budget_bytes);

  // Crossing hot_after upgrades in place (warm table freed for the delta).
  EXPECT_EQ(store.use(b).tier, KeyTier::kWarm);
  const KeyTierStore::Tables hot_b = store.use(b);
  EXPECT_EQ(hot_b.tier, KeyTier::kHot);
  EXPECT_NE(hot_b.hot, nullptr);
  EXPECT_EQ(store.warm_count(), 0u);
  EXPECT_EQ(store.table_bytes(), KeyTierStore::hot_table_bytes());

  // The demoted key restarts cold and must re-earn its table; when it
  // does, it evicts b in turn.  A use() snapshot taken before the eviction
  // keeps the evicted table alive (batch verification relies on this).
  store.use(a, config.hot_after);
  EXPECT_EQ(store.peek(a).tier, KeyTier::kHot);
  EXPECT_EQ(store.peek(b).tier, KeyTier::kCold);
  EXPECT_EQ(store.stats().demotions, 2u);
  EXPECT_NE(hot_b.hot, nullptr);  // snapshot still owns the dropped table
  EXPECT_LE(store.table_bytes(), config.table_budget_bytes);

  // Unknown points are cold and never tracked.
  EXPECT_EQ(store.use(random_point(rng)).tier, KeyTier::kCold);
  EXPECT_EQ(store.key_count(), 2u);
}

TEST(KeyTierStore, DeniedBuildsWhenBudgetBelowAnyTable) {
  util::SplitMix64 rng(191);
  KeyTierConfig config;
  config.table_budget_bytes = 16;  // smaller than even a warm table
  KeyTierStore store(config);
  const AffinePoint a = random_point(rng);
  store.add(a);
  EXPECT_EQ(store.peek(a).tier, KeyTier::kCold);
  store.use(a, 100);
  EXPECT_EQ(store.peek(a).tier, KeyTier::kCold);
  EXPECT_GE(store.stats().denied_builds, 1u);
  EXPECT_EQ(store.table_bytes(), 0u);
}

TEST(KeyTierStore, MillionKeysStayWithinByteBudget) {
  // Fleet scale: 10^6 tracked principals under a two-hot-table budget.
  // Registration is metadata-only past the budget, so the byte accounting
  // must hold exactly while the key set grows unbounded.
  KeyTierConfig config;
  config.table_budget_bytes = 2 * KeyTierStore::hot_table_bytes();
  KeyTierStore store(config);
  constexpr std::size_t kKeys = 1'000'000;
  for (std::size_t i = 0; i < kKeys; ++i) {
    // Synthetic coordinates: the store never does curve arithmetic for
    // cold keys, so tracking needs no valid points.
    store.add(AffinePoint{U256{i + 1}, U256{1}, false});
  }
  EXPECT_EQ(store.key_count(), kKeys);
  EXPECT_EQ(store.hot_count(), 2u);
  EXPECT_LE(store.table_bytes(), config.table_budget_bytes);

  // A late key that starts signing every flow earns its table by evicting
  // an idle one — the budget never grows with the key count.
  const AffinePoint busy{U256{kKeys}, U256{1}, false};
  store.use(busy, config.hot_after);
  EXPECT_EQ(store.peek(busy).tier, KeyTier::kHot);
  EXPECT_EQ(store.hot_count(), 2u);
  EXPECT_GE(store.stats().demotions, 1u);
  EXPECT_LE(store.table_bytes(), config.table_budget_bytes);
}

TEST(SchnorrVerifier, ColdAndWarmTiersVerifyCorrectly) {
  // Zero table budget: every registered key stays cold and verifies
  // through the per-call GLV path, bit-identical to crypto::verify.
  KeyTierConfig cold_config;
  cold_config.table_budget_bytes = 0;
  SchnorrVerifier cold(SchnorrVerifier::kDefaultMemoCapacity, cold_config);
  const PrivateKey key = PrivateKey::from_seed("tier-cold");
  cold.register_key(key.public_key());
  const Signature sig = key.sign("cold-claim");
  EXPECT_TRUE(cold.verify(key.public_key(), "cold-claim", sig));
  EXPECT_FALSE(cold.verify(key.public_key(), "cold-claim!", sig));
  EXPECT_EQ(cold.stats().cold_verifications, 2u);
  EXPECT_EQ(cold.stats().table_verifications, 0u);
  EXPECT_EQ(cold.tiers().table_bytes(), 0u);

  // Warm-only budget: the key earns a GLV table and verifies through it.
  KeyTierConfig warm_config;
  warm_config.table_budget_bytes = KeyTierStore::warm_table_bytes();
  warm_config.warm_after = 1;
  SchnorrVerifier warm(SchnorrVerifier::kDefaultMemoCapacity, warm_config);
  warm.register_key(key.public_key());
  EXPECT_TRUE(warm.verify(key.public_key(), "warm-claim", key.sign("warm-claim")));
  EXPECT_FALSE(warm.verify(key.public_key(), "warm-claim", sig));
  EXPECT_EQ(warm.stats().warm_verifications, 2u);
  EXPECT_EQ(warm.stats().table_verifications, 0u);
}

TEST(SchnorrVerifier, SetTierConfigKeepsKeysAndMemo) {
  // Applying a new budget rebuilds the tier store but preserves key
  // registration and memo generations: memoized verdicts stay reachable.
  SchnorrVerifier verifier;
  const PrivateKey key = PrivateKey::from_seed("tier-reconfig");
  verifier.register_key(key.public_key());
  const Signature sig = key.sign("claim");
  EXPECT_TRUE(verifier.verify(key.public_key(), "claim", sig));
  EXPECT_EQ(verifier.stats().table_verifications, 1u);  // default eager hot

  KeyTierConfig config;
  config.table_budget_bytes = 0;
  verifier.set_tier_config(config);
  EXPECT_EQ(verifier.registered_key_count(), 1u);
  EXPECT_EQ(verifier.tiers().table_bytes(), 0u);

  EXPECT_TRUE(verifier.verify(key.public_key(), "claim", sig));
  EXPECT_EQ(verifier.stats().memo_hits, 1u);  // survived the reconfigure
  EXPECT_TRUE(verifier.verify(key.public_key(), "claim2", key.sign("claim2")));
  EXPECT_EQ(verifier.stats().cold_verifications, 1u);
}

TEST(SchnorrVerifier, MemoAndGenerationsSurviveTierChurn) {
  // Satellite regression: promotion/demotion churn in the tier store must
  // never disturb memo identity, and rotation must invalidate across it.
  KeyTierConfig config;
  config.table_budget_bytes = KeyTierStore::hot_table_bytes();
  config.warm_after = 2;
  config.hot_after = 4;
  SchnorrVerifier verifier(128, config);
  const PrivateKey a = PrivateKey::from_seed("churn-a");
  const PrivateKey b = PrivateKey::from_seed("churn-b");
  verifier.register_key(a.public_key());  // eager hot
  verifier.register_key(b.public_key());  // cold

  const Signature sig_a = a.sign("alpha");
  EXPECT_TRUE(verifier.verify(a.public_key(), "alpha", sig_a));
  EXPECT_EQ(verifier.stats().table_verifications, 1u);

  // b climbs cold -> warm -> hot, evicting a's table along the way.
  for (int i = 0; i < 6; ++i) {
    const std::string msg = "beta-" + std::to_string(i);
    EXPECT_TRUE(verifier.verify(b.public_key(), msg, b.sign(msg)));
  }
  EXPECT_EQ(verifier.tiers().peek(b.public_key().point).tier, KeyTier::kHot);
  EXPECT_EQ(verifier.tiers().peek(a.public_key().point).tier, KeyTier::kCold);
  EXPECT_GE(verifier.tiers().stats().demotions, 1u);
  EXPECT_GE(verifier.stats().warm_verifications, 1u);
  EXPECT_GE(verifier.stats().cold_verifications, 1u);

  // a's demotion did not touch its memo entry...
  EXPECT_TRUE(verifier.verify(a.public_key(), "alpha", sig_a));
  EXPECT_EQ(verifier.stats().memo_hits, 1u);
  // ...and a fresh claim verifies correctly through the cold path.
  EXPECT_TRUE(verifier.verify(a.public_key(), "alpha-2", a.sign("alpha-2")));

  // Rotating b makes every verdict memoized under the old generation
  // unreachable, across the promotion churn above.
  verifier.invalidate_key(b.public_key());
  verifier.register_key(b.public_key());
  const std::uint64_t misses_before = verifier.stats().memo_misses;
  EXPECT_TRUE(verifier.verify(b.public_key(), "beta-0", b.sign("beta-0")));
  EXPECT_EQ(verifier.stats().memo_misses, misses_before + 1);
}

// ------------------------------------------------- GLV endomorphism

TEST(Glv, ConstantsAreNontrivialCubeRootsOfUnity) {
  EXPECT_EQ(pow_mod(Glv::beta(), U256{3}, Secp256k1::p()), U256{1});
  EXPECT_NE(Glv::beta(), U256{1});
  EXPECT_EQ(pow_mod(Glv::lambda(), U256{3}, Secp256k1::n()), U256{1});
  EXPECT_NE(Glv::lambda(), U256{1});
}

TEST(Glv, EndomorphismEqualsLambdaMultiplication) {
  util::SplitMix64 rng(131);
  EXPECT_EQ(ec_endomorphism(AffinePoint::generator()),
            ec_mul_naive(Glv::lambda(), AffinePoint::generator()).to_affine());
  for (int i = 0; i < 25; ++i) {
    const AffinePoint p = random_point(rng);
    EXPECT_EQ(ec_endomorphism(p), ec_mul_naive(Glv::lambda(), p).to_affine());
  }
}

TEST(Glv, SplitRecombinesWithShortHalves) {
  // k == (+-k1) + (+-k2)*lambda (mod n), both halves ~sqrt(n)-sized.
  util::SplitMix64 rng(137);
  const U256& n = Secp256k1::n();
  std::vector<U256> scalars = {U256{}, U256{1}, Glv::lambda(),
                               U256::sub(n, U256{1}).first};
  for (int i = 0; i < 1000; ++i) {
    scalars.push_back(
        sn_reduce(U256{rng.next(), rng.next(), rng.next(), rng.next()}));
  }
  for (const U256& k : scalars) {
    const GlvSplit split = glv_split(k);
    const U256 t1 = split.neg1 ? sub_mod(U256{}, split.k1, n) : split.k1;
    const U256 t2 = split.neg2 ? sub_mod(U256{}, split.k2, n) : split.k2;
    EXPECT_EQ(sn_add(t1, sn_mul(t2, Glv::lambda())), k) << "k=" << k.to_hex();
    EXPECT_LE(split.k1.bit_length(), 130u);
    EXPECT_LE(split.k2.bit_length(), 130u);
  }
}

TEST(EcDifferential, GlvMulMatchesNaive) {
  // The GLV split path agrees with the double-and-add oracle on >= 1000
  // random scalars plus edges (out-of-range scalars reduce internally).
  util::SplitMix64 rng(139);
  const AffinePoint p = random_point(rng);
  std::vector<U256> scalars = {
      U256{},
      U256{1},
      U256{2},
      Glv::lambda(),
      U256::sub(Secp256k1::n(), U256{1}).first,
      Secp256k1::n(),
      U256::add(Secp256k1::n(), U256{5}).first,
      U256{~0ULL, ~0ULL, ~0ULL, ~0ULL},
  };
  for (int i = 0; i < 1000; ++i) {
    scalars.push_back(U256{rng.next(), rng.next(), rng.next(), rng.next()});
  }
  for (const U256& k : scalars) {
    EXPECT_EQ(ec_mul_glv(k, p).to_affine(), ec_mul_naive(k, p).to_affine())
        << "k=" << k.to_hex();
  }
}

TEST(EcDifferential, GlvMulAddMatchesNaiveComposition) {
  // The cold-key verification core a*G + b*P against the naive sum.
  util::SplitMix64 rng(141);
  const AffinePoint p = random_point(rng);
  for (int i = 0; i < 1000; ++i) {
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 b{rng.next(), rng.next(), rng.next(), rng.next()};
    const AffinePoint expected =
        ec_add(ec_mul_naive(a, AffinePoint::generator()), ec_mul_naive(b, p))
            .to_affine();
    EXPECT_EQ(ec_mul_add_glv(a, b, p).to_affine(), expected);
  }
  EXPECT_EQ(ec_mul_add_glv(U256{}, U256{7}, p).to_affine(),
            ec_mul_naive(U256{7}, p).to_affine());
  EXPECT_EQ(ec_mul_add_glv(U256{7}, U256{}, p).to_affine(),
            ec_mul_naive(U256{7}, AffinePoint::generator()).to_affine());
  EXPECT_TRUE(ec_mul_add_glv(U256{}, U256{}, p).is_identity());
}

TEST(EcDifferential, GlvTableMatchesNaive) {
  util::SplitMix64 rng(143);
  const AffinePoint p = random_point(rng);
  const GlvTable table(p);
  for (int i = 0; i < 300; ++i) {
    const U256 k{rng.next(), rng.next(), rng.next(), rng.next()};
    EXPECT_EQ(table.mul(k).to_affine(), ec_mul_naive(k, p).to_affine());
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next()};
    EXPECT_EQ(
        table.mul_add_base(a, k).to_affine(),
        ec_add(ec_mul_naive(a, AffinePoint::generator()), ec_mul_naive(k, p))
            .to_affine());
  }
  EXPECT_TRUE(table.mul(U256{}).is_identity());
  EXPECT_TRUE(table.mul_add_base(U256{}, U256{}).is_identity());
}

TEST(EcDifferential, MsmMatchesNaiveSum) {
  // Every EcMsm term flavour staged together against the naive point sum.
  util::SplitMix64 rng(149);
  for (int iter = 0; iter < 40; ++iter) {
    const AffinePoint p1 = random_point(rng);
    const AffinePoint p2 = random_point(rng);
    const AffinePoint p3 = random_point(rng);
    const AffinePoint p4 = random_point(rng);
    const FixedBaseTable comb(p1);
    const GlvTable glv(p2);
    const U256 k0{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 k1{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 k2{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 k3{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 k4{rng.next()};  // short scalar, the add_naf regime
    EcMsm msm;
    msm.add_base(k0);
    msm.add_comb(comb, k1);
    msm.add_glv(glv, k2);
    msm.add_glv(p3, k3);
    msm.add_naf(p4, k4);
    JacobianPoint expected = ec_mul_naive(k0, AffinePoint::generator());
    expected = ec_add(expected, ec_mul_naive(k1, p1));
    expected = ec_add(expected, ec_mul_naive(k2, p2));
    expected = ec_add(expected, ec_mul_naive(k3, p3));
    expected = ec_add(expected, ec_mul_naive(k4, p4));
    EXPECT_EQ(msm.result().to_affine(), expected.to_affine());
  }
  // The Bos-Coster regime: enough 64-bit naf terms to trigger the heap
  // reduction (>= 16), including duplicate points, equal scalars, and a
  // skewed spread that exercises the peel guard.
  util::SplitMix64 rng_bc(153);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<AffinePoint> pts;
    std::vector<U256> ks;
    JacobianPoint expected = JacobianPoint::identity();
    EcMsm msm;
    for (int i = 0; i < 24; ++i) {
      const AffinePoint pt = (i % 5 == 0 && i > 0) ? pts[0] : random_point(rng_bc);
      U256 k{rng_bc.next()};
      if (i == 7) k = ks[3];                  // equal scalars collide in the heap
      if (i == 11) k = U256{3};               // skewed spread -> peel guard
      if (i == 12) k = U256{rng_bc.next() | (1ULL << 63)};
      pts.push_back(pt);
      ks.push_back(k);
      msm.add_naf(pt, k);
      expected = ec_add(expected, ec_mul_naive(k, pt));
    }
    // A wide scalar rides the stream fallback alongside the short terms.
    const AffinePoint wide_pt = random_point(rng_bc);
    const U256 wide_k{rng_bc.next(), rng_bc.next(), rng_bc.next(),
                      rng_bc.next() >> 1};
    msm.add_naf(wide_pt, wide_k);
    expected = ec_add(expected, ec_mul_naive(wide_k, wide_pt));
    EXPECT_EQ(msm.result().to_affine(), expected.to_affine());
  }
  // Empty accumulator and exact cancellation both land on the identity --
  // the condition batch verification tests for.
  EXPECT_TRUE(EcMsm{}.result().is_identity());
  util::SplitMix64 rng2(151);
  const AffinePoint p = random_point(rng2);
  const U256 k{rng2.next(), rng2.next(), rng2.next(), rng2.next() >> 1};
  const FixedBaseTable gen_table(AffinePoint::generator());
  EcMsm cancel;
  cancel.add_naf(p, U256{5});
  cancel.add_glv(p, U256::sub(Secp256k1::n(), U256{5}).first);
  cancel.add_base(k);
  cancel.add_comb(gen_table, U256::sub(Secp256k1::n(), sn_reduce(k)).first);
  EXPECT_TRUE(cancel.result().is_identity());
}

// ------------------------------------------------- unrolled field layer

TEST(FpDifferential, UnrolledOpsMatchGenericModOracles) {
  // The fixed-prime field layer against the generic U256/U512 modular
  // routines it replaced, on >= 1000 random residues plus boundary values.
  util::SplitMix64 rng(157);
  const U256& p = Secp256k1::p();
  const auto residue = [&rng, &p]() {
    U512 x{};
    for (std::size_t i = 0; i < 4; ++i) x.w[i] = rng.next();
    return mod(x, p);
  };
  std::vector<std::pair<U256, U256>> cases = {
      {U256{}, U256{}},
      {U256{}, U256{1}},
      {U256::sub(p, U256{1}).first, U256::sub(p, U256{1}).first},
      {U256::sub(p, U256{1}).first, U256{1}},
      {U256::sub(p, U256{2}).first, U256{2}},
  };
  for (int i = 0; i < 1000; ++i) cases.emplace_back(residue(), residue());
  for (const auto& [a, b] : cases) {
    EXPECT_EQ(fp_add(a, b), add_mod(a, b, p));
    EXPECT_EQ(fp_sub(a, b), sub_mod(a, b, p));
    EXPECT_EQ(fp_mul(a, b), mul_mod(a, b, p));
    EXPECT_EQ(fp_sqr(a), mul_mod(a, a, p));
    if (!a.is_zero()) {
      EXPECT_EQ(fp_inv(a), inv_mod(a, p));
      EXPECT_EQ(fp_mul(a, fp_inv(a)), U256{1});
    }
  }
}

TEST(U256Arith, SqrWideMatchesMulWide) {
  util::SplitMix64 rng(163);
  const auto check = [](const U256& a) {
    const U512 expected = U256::mul_wide(a, a);
    const U512 got = U256::sqr_wide(a);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(got.w[i], expected.w[i]);
    }
  };
  check(U256{});
  check(U256{1});
  check(U256{~0ULL, ~0ULL, ~0ULL, ~0ULL});
  for (int i = 0; i < 1000; ++i) {
    check(U256{rng.next(), rng.next(), rng.next(), rng.next()});
  }
}

TEST(U256Arith, DivRoundRoundsToNearestMultiple) {
  // div_round feeds the GLV decomposition constants: exact multiples must
  // return the exact quotient, one below rounds up, one above rounds down.
  util::SplitMix64 rng(167);
  const U256& m = Secp256k1::n();
  for (int i = 0; i < 200; ++i) {
    const U256 q =
        sn_reduce(U256{rng.next(), rng.next(), rng.next(), rng.next()});
    if (q.is_zero()) continue;
    const U512 exact = U256::mul_wide(q, m);
    EXPECT_EQ(div_round(exact, m), q);
    U512 above = exact;  // q*m + 1: remainder 1 < m/2, still q
    for (auto& w : above.w) {
      if (++w != 0) break;
    }
    EXPECT_EQ(div_round(above, m), q);
    U512 below = exact;  // q*m - 1: remainder m-1 > m/2, rounds back up to q
    for (auto& w : below.w) {
      if (w-- != 0) break;
    }
    EXPECT_EQ(div_round(below, m), q);
  }
}

// Property sweep: sign/verify holds across many seeds and messages.
class SchnorrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrPropertyTest, RoundTripAndCrossRejection) {
  const int i = GetParam();
  const PrivateKey key =
      PrivateKey::from_seed("seed-" + std::to_string(i));
  const std::string msg = "message-" + std::to_string(i * 7);
  const Signature sig = key.sign(msg);
  EXPECT_TRUE(verify(key.public_key(), msg, sig));
  // A signature never verifies under a different message.
  EXPECT_FALSE(verify(key.public_key(), msg + "!", sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace identxx::crypto
