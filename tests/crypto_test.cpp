// Unit and property tests for src/crypto: SHA-256 (FIPS vectors), HMAC,
// U256 arithmetic, secp256k1 group law, and Schnorr signatures.

#include <gtest/gtest.h>

#include "crypto/ec.hpp"
#include "crypto/hmac.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "crypto/u256.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace identxx::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    h.update(std::string_view(msg).substr(i, 7));
  }
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding at block boundaries: 55, 56, 63, 64, 65 bytes.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'a');
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash("abc"), Sha256::hash("abd"));
}

// ---------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Case1) {
  // Key = 20 bytes of 0x0b, data = "Hi There".
  std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>("Hi There"), 8));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac = hmac_sha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  // Keys longer than the block size must be hashed first; just check
  // determinism and sensitivity.
  const std::string long_key(200, 'k');
  const auto mac1 = hmac_sha256(long_key, "msg");
  const auto mac2 = hmac_sha256(long_key, "msg");
  const auto mac3 = hmac_sha256(long_key, "msh");
  EXPECT_EQ(mac1, mac2);
  EXPECT_NE(mac1, mac3);
}

// ---------------------------------------------------------------- U256

TEST(U256Arith, HexRoundTrip) {
  const auto v = U256::from_hex(
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_hex(),
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
}

TEST(U256Arith, FromHexShortInputIsPadded) {
  const auto v = U256::from_hex("ff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, U256{0xff});
}

TEST(U256Arith, FromHexRejectsBadInput) {
  EXPECT_FALSE(U256::from_hex("").has_value());
  EXPECT_FALSE(U256::from_hex("xyz").has_value());
  EXPECT_FALSE(U256::from_hex(std::string(65, 'f')).has_value());
}

TEST(U256Arith, BytesRoundTrip) {
  const U256 v{0x0123456789abcdefULL, 0xfedcba9876543210ULL, 1, 2};
  const auto bytes = v.to_bytes();
  EXPECT_EQ(U256::from_bytes(std::span<const std::uint8_t, 32>(bytes)), v);
}

TEST(U256Arith, AddCarryPropagates) {
  const U256 max{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  const auto [sum, carry] = U256::add(max, U256{1});
  EXPECT_TRUE(carry);
  EXPECT_TRUE(sum.is_zero());
}

TEST(U256Arith, SubBorrow) {
  const auto [diff, borrow] = U256::sub(U256{0}, U256{1});
  EXPECT_TRUE(borrow);
  EXPECT_EQ(diff, (U256{~0ULL, ~0ULL, ~0ULL, ~0ULL}));
}

TEST(U256Arith, AddSubInverse) {
  util::SplitMix64 rng(11);
  for (int i = 0; i < 200; ++i) {
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next()};
    const U256 b{rng.next(), rng.next(), rng.next(), rng.next()};
    const auto [sum, carry] = U256::add(a, b);
    const auto [back, borrow] = U256::sub(sum, b);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256Arith, MulWideSmall) {
  const U512 prod = U256::mul_wide(U256{3}, U256{5});
  EXPECT_EQ(prod.low(), U256{15});
  EXPECT_TRUE(prod.high().is_zero());
}

TEST(U256Arith, MulWideCrossLimb) {
  // (2^64)(2^64) = 2^128.
  const U256 a{0, 1, 0, 0};
  const U512 prod = U256::mul_wide(a, a);
  EXPECT_EQ(prod.low(), (U256{0, 0, 1, 0}));
  EXPECT_TRUE(prod.high().is_zero());
}

TEST(U256Arith, ModSmallCases) {
  U512 x{};
  x.w[0] = 17;
  EXPECT_EQ(mod(x, U256{5}), U256{2});
  x.w[0] = 4;
  EXPECT_EQ(mod(x, U256{5}), U256{4});
}

TEST(U256Arith, ModMatchesMulIdentity) {
  // (a * m + r) mod m == r for random a, r < m.
  util::SplitMix64 rng(13);
  const U256 m = Secp256k1::n();
  for (int i = 0; i < 50; ++i) {
    const U256 a{rng.next(), rng.next(), 0, 0};
    const U256 r{rng.next() % 1000, 0, 0, 0};
    U512 prod = U256::mul_wide(a, m);
    // prod += r (no overflow: a < 2^128 so prod < 2^384).
    unsigned carry = 0;
    std::uint64_t add = r.w[0];
    for (std::size_t j = 0; j < 8; ++j) {
      const std::uint64_t before = prod.w[j];
      prod.w[j] += add + carry;
      carry = (prod.w[j] < before || (carry && prod.w[j] == before)) ? 1 : 0;
      add = 0;
    }
    EXPECT_EQ(mod(prod, m), r);
  }
}

TEST(U256Arith, ModularOpsStayBelowModulus) {
  util::SplitMix64 rng(17);
  const U256 m = Secp256k1::p();
  for (int i = 0; i < 100; ++i) {
    U512 wide{};
    for (auto& w : wide.w) w = rng.next();
    const U256 a = mod(wide, m);
    for (auto& w : wide.w) w = rng.next();
    const U256 b = mod(wide, m);
    EXPECT_LT(U256::cmp(add_mod(a, b, m), m), 0);
    EXPECT_LT(U256::cmp(sub_mod(a, b, m), m), 0);
    EXPECT_LT(U256::cmp(mul_mod(a, b, m), m), 0);
  }
}

TEST(U256Arith, InvModFermat) {
  const U256 m = Secp256k1::n();
  util::SplitMix64 rng(19);
  for (int i = 0; i < 10; ++i) {
    const U256 a{rng.next() | 1, rng.next(), rng.next(), 0};
    const U256 inv = inv_mod(a, m);
    EXPECT_EQ(mul_mod(a, inv, m), U256{1});
  }
}

TEST(U256Arith, PowModBasics) {
  const U256 m{1000003};
  EXPECT_EQ(pow_mod(U256{2}, U256{10}, m), U256{1024});
  EXPECT_EQ(pow_mod(U256{7}, U256{0}, m), U256{1});
}

TEST(U256Arith, ShiftInverses) {
  util::SplitMix64 rng(23);
  for (int i = 0; i < 100; ++i) {
    const U256 a{rng.next(), rng.next(), rng.next(), rng.next() >> 1};
    EXPECT_EQ(a.shl1().first.shr1(), a);
  }
}

TEST(U256Arith, BitLength) {
  EXPECT_EQ(U256{}.bit_length(), 0u);
  EXPECT_EQ(U256{1}.bit_length(), 1u);
  EXPECT_EQ(U256{0xff}.bit_length(), 8u);
  EXPECT_EQ((U256{0, 0, 0, 1ULL << 63}).bit_length(), 256u);
}

// ---------------------------------------------------------------- EC group

TEST(Ec, GeneratorIsOnCurve) {
  EXPECT_TRUE(AffinePoint::generator().on_curve());
}

TEST(Ec, CurveConstantsSane) {
  // p and n are odd 256-bit numbers with high bit set.
  EXPECT_TRUE(Secp256k1::p().bit(0));
  EXPECT_TRUE(Secp256k1::n().bit(0));
  EXPECT_EQ(Secp256k1::p().bit_length(), 256u);
  EXPECT_EQ(Secp256k1::n().bit_length(), 256u);
}

TEST(Ec, OneTimesGIsG) {
  const AffinePoint g = AffinePoint::generator();
  EXPECT_EQ(ec_mul_base(U256{1}).to_affine(), g);
}

TEST(Ec, OrderTimesGIsIdentity) {
  // n*G == O validates the full constant set and the group law together.
  const JacobianPoint ng = ec_mul_base(Secp256k1::n());
  EXPECT_TRUE(ng.is_identity());
}

TEST(Ec, OrderMinusOneTimesGIsNegG) {
  const U256 n_minus_1 = U256::sub(Secp256k1::n(), U256{1}).first;
  const AffinePoint p = ec_mul_base(n_minus_1).to_affine();
  EXPECT_EQ(p, ec_negate(AffinePoint::generator()));
}

TEST(Ec, TwoGKnownAnswer) {
  // 2*G for secp256k1, a published test vector.
  const AffinePoint two_g = ec_mul_base(U256{2}).to_affine();
  EXPECT_EQ(two_g.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Ec, DoubleMatchesAddSelf) {
  const JacobianPoint g = JacobianPoint::from_affine(AffinePoint::generator());
  const AffinePoint doubled = ec_double(g).to_affine();
  const AffinePoint two_g = ec_mul_base(U256{2}).to_affine();
  EXPECT_EQ(doubled, two_g);
  EXPECT_TRUE(doubled.on_curve());
}

TEST(Ec, ScalarDistributivity) {
  // (a + b)G == aG + bG for random a, b.
  util::SplitMix64 rng(31);
  for (int i = 0; i < 5; ++i) {
    const U256 a{rng.next(), rng.next(), 0, 0};
    const U256 b{rng.next(), rng.next(), 0, 0};
    const U256 a_plus_b = add_mod(a, b, Secp256k1::n());
    const AffinePoint lhs = ec_mul_base(a_plus_b).to_affine();
    const AffinePoint rhs =
        ec_add(ec_mul_base(a), ec_mul_base(b)).to_affine();
    EXPECT_EQ(lhs, rhs);
    EXPECT_TRUE(lhs.on_curve());
  }
}

TEST(Ec, AddIdentityIsNoop) {
  const JacobianPoint g = JacobianPoint::from_affine(AffinePoint::generator());
  EXPECT_EQ(ec_add(g, JacobianPoint::identity()).to_affine(),
            AffinePoint::generator());
  EXPECT_EQ(ec_add(JacobianPoint::identity(), g).to_affine(),
            AffinePoint::generator());
}

TEST(Ec, AddInverseGivesIdentity) {
  const AffinePoint g = AffinePoint::generator();
  const JacobianPoint sum =
      ec_add(JacobianPoint::from_affine(g),
             JacobianPoint::from_affine(ec_negate(g)));
  EXPECT_TRUE(sum.is_identity());
}

TEST(Ec, MulByZeroIsIdentity) {
  EXPECT_TRUE(ec_mul_base(U256{}).is_identity());
}

TEST(Ec, FieldInverse) {
  util::SplitMix64 rng(37);
  for (int i = 0; i < 10; ++i) {
    const U256 a{rng.next() | 1, rng.next(), rng.next(), 0};
    EXPECT_EQ(fp_mul(a, fp_inv(a)), U256{1});
  }
}

// ---------------------------------------------------------------- Schnorr

TEST(Schnorr, SignVerifyRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed("alice");
  const Signature sig = key.sign("hello world");
  EXPECT_TRUE(verify(key.public_key(), "hello world", sig));
}

TEST(Schnorr, TamperedMessageRejected) {
  const PrivateKey key = PrivateKey::from_seed("alice");
  const Signature sig = key.sign("hello world");
  EXPECT_FALSE(verify(key.public_key(), "hello worle", sig));
  EXPECT_FALSE(verify(key.public_key(), "", sig));
}

TEST(Schnorr, WrongKeyRejected) {
  const PrivateKey alice = PrivateKey::from_seed("alice");
  const PrivateKey mallory = PrivateKey::from_seed("mallory");
  const Signature sig = alice.sign("msg");
  EXPECT_FALSE(verify(mallory.public_key(), "msg", sig));
}

TEST(Schnorr, TamperedSignatureRejected) {
  const PrivateKey key = PrivateKey::from_seed("alice");
  Signature sig = key.sign("msg");
  sig.s = add_mod(sig.s, U256{1}, Secp256k1::n());
  EXPECT_FALSE(verify(key.public_key(), "msg", sig));
}

TEST(Schnorr, DeterministicSignatures) {
  const PrivateKey key = PrivateKey::from_seed("bob");
  EXPECT_EQ(key.sign("m").to_hex(), key.sign("m").to_hex());
  EXPECT_NE(key.sign("m1").to_hex(), key.sign("m2").to_hex());
}

TEST(Schnorr, DistinctSeedsDistinctKeys) {
  EXPECT_NE(PrivateKey::from_seed("a").public_key().to_hex(),
            PrivateKey::from_seed("b").public_key().to_hex());
}

TEST(Schnorr, PublicKeyHexRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed("carol");
  const std::string hex = key.public_key().to_hex();
  EXPECT_EQ(hex.size(), 128u);
  const auto parsed = PublicKey::from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key.public_key());
}

TEST(Schnorr, PublicKeyFromHexRejectsOffCurve) {
  // A syntactically valid but off-curve point must be rejected.
  std::string bogus(128, '1');
  EXPECT_FALSE(PublicKey::from_hex(bogus).has_value());
  EXPECT_FALSE(PublicKey::from_hex("abcd").has_value());
}

TEST(Schnorr, SignatureHexRoundTrip) {
  const PrivateKey key = PrivateKey::from_seed("dave");
  const Signature sig = key.sign("payload");
  const auto parsed = Signature::from_hex(sig.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sig);
  EXPECT_FALSE(Signature::from_hex("deadbeef").has_value());
}

TEST(Schnorr, RejectsOutOfRangeS) {
  const PrivateKey key = PrivateKey::from_seed("erin");
  Signature sig = key.sign("msg");
  sig.s = Secp256k1::n();  // s must be < n
  EXPECT_FALSE(verify(key.public_key(), "msg", sig));
  sig.s = U256{};  // s must be nonzero
  EXPECT_FALSE(verify(key.public_key(), "msg", sig));
}

TEST(Schnorr, FromScalarValidatesRange) {
  EXPECT_THROW((void)PrivateKey::from_scalar(U256{}), CryptoError);
  EXPECT_THROW((void)PrivateKey::from_scalar(Secp256k1::n()), CryptoError);
  EXPECT_NO_THROW((void)PrivateKey::from_scalar(U256{12345}));
}

TEST(Schnorr, HashToScalarBelowOrder) {
  for (const char* m : {"a", "b", "c", "longer message here"}) {
    const auto bytes = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(m), strlen(m));
    EXPECT_LT(U256::cmp(hash_to_scalar(bytes), Secp256k1::n()), 0);
  }
}

// Property sweep: sign/verify holds across many seeds and messages.
class SchnorrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrPropertyTest, RoundTripAndCrossRejection) {
  const int i = GetParam();
  const PrivateKey key =
      PrivateKey::from_seed("seed-" + std::to_string(i));
  const std::string msg = "message-" + std::to_string(i * 7);
  const Signature sig = key.sign(msg);
  EXPECT_TRUE(verify(key.public_key(), msg, sig));
  // A signature never verifies under a different message.
  EXPECT_FALSE(verify(key.public_key(), msg + "!", sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace identxx::crypto
