// Sharded admission domains (DESIGN.md §10): ShardMap consistency, the
// multi-lane simulator's worker-count-invariant determinism, ScenarioResult
// equality across shard/worker counts, cross-shard revocation ordering
// (a revoke_all / set_policy racing in-flight admissions must never leave
// a stale cover or decision-cache entry in any domain), and per-shard
// cookie namespacing.

#include <gtest/gtest.h>

#include <functional>

#include "controller/shard_map.hpp"
#include "controller/sharded_controller.hpp"
#include "core/network.hpp"
#include "core/scenario.hpp"
#include "sim/worker_pool.hpp"

namespace identxx {
namespace {

using core::Network;
using core::Scenario;
using core::ScenarioOptions;

[[nodiscard]] net::FiveTuple make_flow(std::uint32_t src, std::uint32_t dst,
                                       std::uint16_t src_port,
                                       std::uint16_t dst_port) {
  net::FiveTuple flow;
  flow.src_ip = net::Ipv4Address{src};
  flow.dst_ip = net::Ipv4Address{dst};
  flow.proto = net::IpProto::kTcp;
  flow.src_port = src_port;
  flow.dst_port = dst_port;
  return flow;
}

/// Entries a controller installed (cookie != 0) on `sw`.
[[nodiscard]] std::size_t installed_entries(Network& net, sim::NodeId sw) {
  std::size_t count = 0;
  for (const auto& entry : net.switch_at(sw).table().entries()) {
    if (entry.cookie != 0) ++count;
  }
  return count;
}

// ---------------------------------------------------------------- ShardMap

TEST(ShardMapTest, BothDirectionsHashToTheSameShard) {
  ctrl::ShardMap map(4);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto flow = make_flow(0x0a000001u + i, 0x0a010001u + (i * 7),
                                static_cast<std::uint16_t>(30000 + i), 80);
    EXPECT_EQ(map.shard_of(flow), map.shard_of(flow.reversed()))
        << "flow " << flow.to_string();
    EXPECT_LT(map.shard_of(flow), 4u);
  }
}

TEST(ShardMapTest, SpreadsFlowsAcrossShards) {
  ctrl::ShardMap map(4);
  std::vector<std::size_t> buckets(4, 0);
  for (std::uint32_t i = 0; i < 400; ++i) {
    ++buckets[map.shard_of(make_flow(0x0a000001u + i, 0x0a010001u,
                                     static_cast<std::uint16_t>(20000 + i),
                                     80))];
  }
  for (const std::size_t count : buckets) {
    EXPECT_GT(count, 40u);  // roughly uniform; far from degenerate
  }
}

TEST(ShardMapTest, EndpointPinOverridesHashBothDirections) {
  ctrl::ShardMap map(4);
  const auto server = *net::Ipv4Address::parse("10.0.1.1");
  map.pin_endpoint(server, 2);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto flow = make_flow(0x0a000001u + i, server.value(),
                                static_cast<std::uint16_t>(20000 + i), 80);
    EXPECT_EQ(map.shard_of(flow), 2u);
    EXPECT_EQ(map.shard_of(flow.reversed()), 2u);
  }
}

TEST(ShardMapTest, CookieTagRoundTrips) {
  const std::uint64_t cookie = (std::uint64_t{3} << 48) | 12345;
  EXPECT_EQ(ctrl::ShardMap::cookie_shard_tag(cookie), 3u);
  EXPECT_EQ(ctrl::ShardMap::cookie_shard_tag(12345), 0u);
}

// ----------------------------------------------------------- simulator lanes

/// Shard-lane events schedule their "commits" back onto the global lane;
/// the committed order must be canonical (lane-major, FIFO within a lane)
/// and identical at any worker count.
std::vector<int> run_lane_commits(std::uint32_t workers) {
  sim::Simulator sim;
  sim.configure_shard_lanes(4);
  sim.set_workers(workers);
  std::vector<int> commits;
  for (int lane = 1; lane <= 4; ++lane) {
    for (int k = 0; k < 3; ++k) {
      sim.schedule_on(static_cast<sim::LaneId>(lane), 10,
                      [&sim, &commits, lane, k] {
                        sim.schedule_on(sim::kGlobalLane, sim.now(),
                                        [&commits, lane, k] {
                                          commits.push_back(lane * 10 + k);
                                        });
                      });
    }
  }
  sim.run();
  return commits;
}

TEST(SimulatorLanes, CommitOrderIsWorkerCountInvariant) {
  const std::vector<int> expected{10, 11, 12, 20, 21, 22,
                                  30, 31, 32, 40, 41, 42};
  EXPECT_EQ(run_lane_commits(1), expected);
  EXPECT_EQ(run_lane_commits(4), expected);
  EXPECT_EQ(run_lane_commits(sim::WorkerPool::hardware_workers()), expected);
}

TEST(SimulatorLanes, ShardEventsInheritTheirLane) {
  sim::Simulator sim;
  sim.configure_shard_lanes(2);
  sim.set_workers(2);
  std::vector<int> order;
  // A shard event's plain schedule_after stays on its lane; the follow-up
  // can still message the global lane.  Lane 2's first-wave event fires
  // with lane 1's, then the inherited second-wave events, all at t=5.
  sim.schedule_on(1, 5, [&] {
    sim.schedule_after(0, [&] {
      sim.schedule_on(sim::kGlobalLane, sim.now(), [&] { order.push_back(11); });
    });
  });
  sim.schedule_on(2, 5, [&] {
    sim.schedule_on(sim::kGlobalLane, sim.now(), [&] { order.push_back(20); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{20, 11}));
  EXPECT_EQ(sim.now(), 5);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorLanes, WavesCountAllEvents) {
  sim::Simulator sim;
  sim.configure_shard_lanes(2);
  int fired = 0;
  sim.schedule_on(0, 1, [&] { ++fired; });
  sim.schedule_on(1, 1, [&] { ++fired; });
  sim.schedule_on(2, 1, [&] { ++fired; });
  sim.schedule_on(1, 2, [&] { ++fired; });
  EXPECT_EQ(sim.run(), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.stats().events_executed, 4u);
}

// ------------------------------------------------------ scenario invariance

constexpr const char* kScenario = R"(
seed 7
switch s1
switch s2
link s1 s2
host c1 10.0.0.1 s1
host c2 10.0.0.2 s1
host c3 10.0.0.3 s2
host c4 10.0.0.4 s2
host srv 10.0.1.1 s2
user c1 alice staff
user c2 bob staff
user c3 alice staff
user c4 mallory users
user srv www daemons
launch l1 c1 alice /usr/bin/curl
launch l2 c2 bob /usr/bin/curl
launch l3 c3 alice /usr/bin/curl
launch l4 c4 mallory /usr/bin/nc
launch ls srv www /usr/sbin/httpd
listen ls 80
policy begin
block all
pass from any to any port 80 with eq(@src[userID], alice)
policy end
flow f1 l1 10.0.1.1 80
flow f2 l2 10.0.1.1 80
flow f3 l3 10.0.1.1 80
flow f4 l4 10.0.1.1 80
expect f1 delivered
expect f2 blocked
expect f3 delivered
expect f4 blocked
)";

TEST(ShardedScenario, ResultInvariantAcrossShardAndWorkerCounts) {
  const Scenario scenario = Scenario::parse(kScenario);

  ScenarioOptions classic;  // shards = 0: single controller
  const auto base = scenario.run(classic);
  EXPECT_TRUE(base.ok());
  ASSERT_EQ(base.flows.size(), 4u);

  for (const std::uint32_t shards : {1u, 4u}) {
    for (const std::uint32_t workers :
         {1u, sim::WorkerPool::hardware_workers()}) {
      ScenarioOptions options;
      options.shards = shards;
      options.workers = workers;
      const auto result = scenario.run(options);
      EXPECT_TRUE(result.equivalent_to(base))
          << "shards=" << shards << " workers=" << workers;
      ASSERT_EQ(result.domain_stats.size(), std::max(shards, 1u));
      // The per-domain breakdown re-aggregates to the single-controller
      // totals.
      ctrl::ControllerStats sum;
      for (const auto& stats : result.domain_stats) sum.accumulate(stats);
      EXPECT_EQ(sum, base.controller_stats);
    }
  }
}

TEST(ShardedScenario, ResultInvariantWithBatchedEvalOnAndOff) {
  // Batched PF evaluation (DESIGN.md §11) is a pure optimization: a run
  // with evaluate_batch routed through decide_many must be equivalent_to a
  // run with the serial per-flow oracle, at any shard count.
  const Scenario scenario = Scenario::parse(kScenario);
  ScenarioOptions batched;  // config.batch_policy_eval defaults to true
  const auto base = scenario.run(batched);
  EXPECT_TRUE(base.ok());

  for (const std::uint32_t shards : {0u, 1u, 4u}) {
    ScenarioOptions serial;
    serial.shards = shards;
    serial.config.batch_policy_eval = false;
    const auto result = scenario.run(serial);
    EXPECT_TRUE(result.ok()) << "shards=" << shards;
    EXPECT_TRUE(result.equivalent_to(base)) << "serial eval, shards=" << shards;

    ScenarioOptions rebatched;
    rebatched.shards = shards;
    rebatched.config.batch_policy_eval = true;
    EXPECT_TRUE(scenario.run(rebatched).equivalent_to(base))
        << "batched eval, shards=" << shards;
  }
}

TEST(ShardedScenario, IdenticalSeedsReplayIdentically) {
  const Scenario scenario = Scenario::parse(kScenario);
  ScenarioOptions a;
  a.shards = 4;
  a.workers = 2;
  a.seed = 99;  // overrides the file's `seed 7`
  const auto first = scenario.run(a);
  const auto second = scenario.run(a);
  EXPECT_TRUE(first.equivalent_to(second));

  ScenarioOptions b = a;
  b.shards = 1;
  EXPECT_TRUE(scenario.run(b).equivalent_to(first));
}

// --------------------------------------------------------------- partition

TEST(ShardedNetwork, FlowsPartitionAcrossDomainsAndAggregate) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& server = net.add_host("server", "10.0.1.1");
  net.link(server, s1);
  auto& sharded = net.install_sharded_controller(
      "block all\npass from any to any port 80\n", 4, 2);
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/usr/sbin/httpd");
  server.listen(srv, 80);

  constexpr int kClients = 12;
  std::vector<core::FlowHandle> handles;
  std::vector<std::uint32_t> expected_shard;
  for (int i = 0; i < kClients; ++i) {
    auto& c = net.add_host("c" + std::to_string(i),
                           "10.0.0." + std::to_string(i + 1));
    net.link(c, s1);
    c.add_user("u", "users");
    const int pid = c.launch("u", "/bin/x");
    handles.push_back(net.start_flow(c, pid, "10.0.1.1", 80));
    expected_shard.push_back(sharded.shard_map().shard_of(handles.back().flow));
  }
  net.run();

  std::vector<std::uint64_t> per_domain(4, 0);
  for (const std::uint32_t shard : expected_shard) ++per_domain[shard];
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(sharded.domain(d).stats().flows_seen, per_domain[d])
        << "domain " << d;
    total += sharded.domain(d).stats().flows_seen;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(sharded.aggregated_stats().flows_seen,
            static_cast<std::uint64_t>(kClients));
  for (const auto& handle : handles) {
    EXPECT_TRUE(net.flow_delivered(handle));
  }
}

// ------------------------------------------------- revocation vs in-flight

/// Observer hook: runs a callback on the first daemon response, i.e. in
/// the same global-lane event that dispatches the decision to the shard
/// lane — the window where control operations race in-flight admissions.
class OnResponseHook : public ctrl::AdmissionObserver {
 public:
  explicit OnResponseHook(std::function<void()> fn) : fn_(std::move(fn)) {}
  void on_response_received(net::Ipv4Address) override {
    if (fn_) {
      auto fn = std::move(fn_);
      fn_ = nullptr;
      fn();
    }
  }

 private:
  std::function<void()> fn_;
};

struct RaceRig {
  explicit RaceRig(const char* policy, bool aggregate = true) {
    s1 = net.add_switch("s1");
    client = &net.add_host("client", "10.0.0.1");
    server = &net.add_host("server", "10.0.1.1");
    net.link(*client, s1);
    net.link(*server, s1);
    ctrl::ControllerConfig config;
    config.aggregate_installs = aggregate;
    config.query_both_ends = false;  // decide on the single src response
    config.decision_cache_ttl = 60 * sim::kSecond;
    sharded = &net.install_sharded_controller(policy, 2, 2, config);
    client->add_user("alice", "staff");
    pid = client->launch("alice", "/usr/bin/curl");
    server->add_user("www", "daemons");
    const int srv = server->launch("www", "/usr/sbin/httpd");
    server->listen(srv, 80);
  }

  Network net;
  sim::NodeId s1 = sim::kInvalidNode;
  host::Host* client = nullptr;
  host::Host* server = nullptr;
  ctrl::ShardedAdmissionController* sharded = nullptr;
  int pid = 0;
};

TEST(ShardedRevocation, RevokeAllRacingInFlightAdmissionLeavesNoStaleState) {
  RaceRig rig("block all\npass from any to any port 80\n");
  const auto handle = rig.net.start_flow(*rig.client, rig.pid, "10.0.1.1", 80);
  const std::uint32_t shard = rig.sharded->shard_map().shard_of(handle.flow);
  auto& domain = rig.sharded->domain(shard);
  sim::Simulator& sim = rig.net.simulator();

  // Fire revoke_all between the decision dispatch and its commit: the
  // response event (wave 1) schedules L1 (wave 2), which schedules the
  // revoke (wave 3, ahead of the commit staged from wave 2's shard phase).
  std::size_t removed_during_race = 1;  // sentinel: revoke observed nothing
  domain.add_observer(std::make_unique<OnResponseHook>([&] {
    sim.schedule_at(sim.now(), [&] {
      sim.schedule_at(sim.now(), [&] {
        removed_during_race = rig.sharded->revoke_all();
      });
    });
  }));
  rig.net.run();

  // The revocation saw no installed entries (the decision had not
  // committed yet) — and the re-decided commit still admits the flow
  // under the unchanged policy, with fresh (post-revocation) state only.
  EXPECT_EQ(removed_during_race, 0u);
  EXPECT_TRUE(rig.net.flow_delivered(handle));
  EXPECT_GT(installed_entries(rig.net, rig.s1), 0u);
  EXPECT_GT(domain.stats().flows_allowed, 0u);
}

TEST(ShardedRevocation, PolicySwapRacingInFlightAdmissionBlocksAndLeavesNoCover) {
  RaceRig rig("block all\npass from any to any port 80\n");
  const auto handle = rig.net.start_flow(*rig.client, rig.pid, "10.0.1.1", 80);
  const std::uint32_t shard = rig.sharded->shard_map().shard_of(handle.flow);
  auto& domain = rig.sharded->domain(shard);
  sim::Simulator& sim = rig.net.simulator();

  // Swap to block-all between dispatch and commit.  The in-flight verdict
  // (pass, with a rule cover) was computed under the old policy; the
  // commit must discard it, re-decide, and neither install the stale
  // cover nor cache the stale allow.
  domain.add_observer(std::make_unique<OnResponseHook>([&] {
    sim.schedule_at(sim.now(), [&] {
      sim.schedule_at(sim.now(), [&] {
        rig.sharded->set_policy(pf::parse("block all\n", "swap"));
      });
    });
  }));
  rig.net.run();

  EXPECT_FALSE(rig.net.flow_delivered(handle));
  // No allow entry (aggregate or exact) anywhere; at most the re-decided
  // drop entry remains.
  for (const auto& entry : rig.net.switch_at(rig.s1).table().entries()) {
    if (entry.cookie == 0) continue;  // intercept boot rules
    EXPECT_TRUE(std::holds_alternative<openflow::DropAction>(entry.action))
        << "stale allow entry survived the policy swap";
  }
  // The decision cache must not re-admit the flow either: a repeat packet
  // re-decides (or hits a cached *block*), and is never delivered.
  rig.client->send_flow_packet(handle.flow, "retry");
  rig.net.run();
  EXPECT_FALSE(rig.net.flow_delivered(handle));
}

TEST(ShardedRevocation, CompromisedFrontEndFloodsLikeAStandaloneController) {
  // §5.1 parity: a compromised sharded controller must disable all
  // protection exactly like a compromised standalone controller —
  // everything floods, and daemon responses are never consumed into
  // decisions.
  RaceRig rig("block all\n");  // policy would block everything when honest
  rig.sharded->set_compromised(true);
  const auto handle = rig.net.start_flow(*rig.client, rig.pid, "10.0.1.1", 80);
  rig.net.run();
  EXPECT_TRUE(rig.net.flow_delivered(handle));  // protection is gone
  for (std::uint32_t d = 0; d < rig.sharded->shard_count(); ++d) {
    EXPECT_EQ(rig.sharded->domain(d).stats().responses_received, 0u);
    EXPECT_EQ(rig.sharded->domain(d).stats().flows_blocked, 0u);
  }
}

// --------------------------------------------------------- cookie namespace

TEST(CookieNamespace, DomainsRevokeOnlyTheirOwnEntries) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& server = net.add_host("server", "10.0.1.1");
  net.link(server, s1);
  auto& sharded = net.install_sharded_controller(
      "block all\npass from any to any port 80\n", 2, 1);
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/usr/sbin/httpd");
  server.listen(srv, 80);

  // Start flows until both domains own at least one admitted flow.
  std::vector<core::FlowHandle> handles;
  std::vector<std::uint32_t> shards;
  for (int i = 0; i < 8; ++i) {
    auto& c = net.add_host("c" + std::to_string(i),
                           "10.0.0." + std::to_string(i + 1));
    net.link(c, s1);
    c.add_user("u", "users");
    const int pid = c.launch("u", "/bin/x");
    handles.push_back(net.start_flow(c, pid, "10.0.1.1", 80));
    shards.push_back(sharded.shard_map().shard_of(handles.back().flow));
  }
  net.run();
  ASSERT_TRUE(std::find(shards.begin(), shards.end(), 0u) != shards.end());
  ASSERT_TRUE(std::find(shards.begin(), shards.end(), 1u) != shards.end());

  const auto entries_with_tag = [&](std::uint32_t tag) {
    std::size_t count = 0;
    for (const auto& entry : net.switch_at(s1).table().entries()) {
      if (ctrl::ShardMap::cookie_shard_tag(entry.cookie) == tag) ++count;
    }
    return count;
  };
  const std::size_t d0_before = entries_with_tag(1);  // domain 0 => tag 1
  const std::size_t d1_before = entries_with_tag(2);  // domain 1 => tag 2
  ASSERT_GT(d0_before, 0u);
  ASSERT_GT(d1_before, 0u);

  const std::size_t removed = sharded.domain(0).revoke_all();
  EXPECT_EQ(removed, d0_before);
  EXPECT_EQ(entries_with_tag(1), 0u);
  EXPECT_EQ(entries_with_tag(2), d1_before);  // sibling untouched

  // Front-end revoke_all clears the rest.
  EXPECT_EQ(sharded.revoke_all(), d1_before);
  EXPECT_EQ(entries_with_tag(2), 0u);
  EXPECT_EQ(sharded.installed_flow_count(), 0u);
}

}  // namespace
}  // namespace identxx
