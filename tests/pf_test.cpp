// Tests for PF+=2 (§3.3): lexer, parser, evaluation semantics
// (last-match-wins, quick, tables, dicts, macros), the predefined function
// library, and the paper's own policy listings parsed verbatim.

#include <gtest/gtest.h>

#include "crypto/schnorr.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/eval.hpp"
#include "pf/lexer.hpp"
#include "pf/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace identxx::pf {
namespace {

// ---------------------------------------------------------------- helpers

net::FiveTuple flow(const char* src, const char* dst, std::uint16_t dport = 80,
                    std::uint16_t sport = 40000,
                    net::IpProto proto = net::IpProto::kTcp) {
  return net::FiveTuple{*net::Ipv4Address::parse(src),
                        *net::Ipv4Address::parse(dst), proto, sport, dport};
}

proto::ResponseDict dict_of(
    std::initializer_list<std::pair<const char*, const char*>> pairs) {
  proto::Response r;
  proto::Section s;
  for (const auto& [k, v] : pairs) s.add(k, v);
  r.append_section(s);
  return proto::ResponseDict(r);
}

Verdict run_policy(std::string_view policy, const FlowContext& ctx) {
  const PolicyEngine engine(parse(policy, "test"));
  return engine.evaluate(ctx);
}

// ---------------------------------------------------------------- lexer

TEST(Lexer, TokenKinds) {
  const auto tokens =
      lex("pass from <lan> with eq(@src[userID], $user) !{ } \"str\" : = *@dst[k]");
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kWord, TokenKind::kWord, TokenKind::kTableRef,
                       TokenKind::kWord, TokenKind::kWord, TokenKind::kLParen,
                       TokenKind::kDictIndex, TokenKind::kComma,
                       TokenKind::kMacroRef, TokenKind::kRParen,
                       TokenKind::kBang, TokenKind::kLBrace, TokenKind::kRBrace,
                       TokenKind::kString, TokenKind::kColon, TokenKind::kEquals,
                       TokenKind::kDictIndex, TokenKind::kEnd}));
}

TEST(Lexer, DictIndexFields) {
  const auto tokens = lex("*@src[os-patch]");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "src");
  EXPECT_EQ(tokens[0].key, "os-patch");
  EXPECT_TRUE(tokens[0].star);
}

TEST(Lexer, CommentsAndContinuationsAreWhitespace) {
  const auto tokens = lex("pass \\\n  all # trailing comment\nblock");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].is_word("pass"));
  EXPECT_TRUE(tokens[1].is_word("all"));
  EXPECT_TRUE(tokens[2].is_word("block"));
}

TEST(Lexer, LineNumbersTracked) {
  const auto tokens = lex("pass\nblock\npass");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[2].line, 3u);
}

TEST(Lexer, Errors) {
  EXPECT_THROW((void)lex("\"unterminated"), ParseError);
  EXPECT_THROW((void)lex("<unterminated"), ParseError);
  EXPECT_THROW((void)lex("@nobracket "), ParseError);
  EXPECT_THROW((void)lex("@dict[unclosed"), ParseError);
  EXPECT_THROW((void)lex("* alone"), ParseError);
  EXPECT_THROW((void)lex("$"), ParseError);
  EXPECT_THROW((void)lex("^"), ParseError);
}

// ---------------------------------------------------------------- parser

TEST(Parser, MinimalRules) {
  const Ruleset rs = parse("block all\npass all\n");
  ASSERT_EQ(rs.rules.size(), 2u);
  EXPECT_EQ(rs.rules[0].action, RuleAction::kBlock);
  EXPECT_EQ(rs.rules[1].action, RuleAction::kPass);
}

TEST(Parser, TableDefinitionAndComposition) {
  // Fig 2: table <int_hosts> { <lan> <server> }.
  const Ruleset rs = parse(
      "table <server> { 192.168.1.1 }\n"
      "table <lan> { 192.168.0.0/24 }\n"
      "table <int_hosts> { <lan> <server> }\n");
  ASSERT_TRUE(rs.tables.contains("int_hosts"));
  const auto& t = rs.tables.at("int_hosts");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_TRUE(t[0].contains(*net::Ipv4Address::parse("192.168.0.55")));
  EXPECT_TRUE(t[1].contains(*net::Ipv4Address::parse("192.168.1.1")));
}

TEST(Parser, TableForwardReferenceFails) {
  EXPECT_THROW((void)parse("table <a> { <b> }\ntable <b> { 1.1.1.1 }\n"),
               ParseError);
}

TEST(Parser, DictDefinition) {
  const Ruleset rs = parse(
      "dict <pubkeys> { \\\n research : abc123 \\\n admin : def456 \\\n }\n");
  ASSERT_TRUE(rs.dicts.contains("pubkeys"));
  EXPECT_EQ(rs.dicts.at("pubkeys").at("research"), "abc123");
  EXPECT_EQ(rs.dicts.at("pubkeys").at("admin"), "def456");
}

TEST(Parser, MacroDefinitionAndListLookup) {
  // Fig 2: allowed = "{ http ssh }".
  const Ruleset rs = parse("allowed = \"{ http ssh }\"\n");
  const auto list = rs.named_list("allowed");
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(*list, (std::vector<std::string>{"http", "ssh"}));
  EXPECT_FALSE(rs.named_list("nope").has_value());
}

TEST(Parser, MacroExpansionInRule) {
  const Ruleset rs = parse(
      "srv = 192.168.1.1\n"
      "pass from any to $srv\n");
  ASSERT_EQ(rs.rules.size(), 1u);
  const auto* host = std::get_if<CidrHost>(&rs.rules[0].to.host);
  ASSERT_NE(host, nullptr);
  EXPECT_TRUE(host->cidr.contains(*net::Ipv4Address::parse("192.168.1.1")));
}

TEST(Parser, UndefinedMacroFails) {
  EXPECT_THROW((void)parse("pass from any to $nope\n"), ParseError);
}

TEST(Parser, EndpointVariants) {
  const Ruleset rs = parse(
      "table <lan> { 10.0.0.0/8 }\n"
      "pass from <lan> to !<lan>\n"
      "pass from 1.2.3.4 to { 5.6.7.8 10.0.0.0/24 <lan> }\n"
      "pass from any port 1000:2000 to any port http\n");
  ASSERT_EQ(rs.rules.size(), 3u);
  EXPECT_TRUE(rs.rules[0].to.negated);
  const auto* list = std::get_if<ListHost>(&rs.rules[1].to.host);
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->items.size(), 3u);
  ASSERT_TRUE(rs.rules[2].from.port.has_value());
  EXPECT_EQ(rs.rules[2].from.port->low, 1000);
  EXPECT_EQ(rs.rules[2].from.port->high, 2000);
  EXPECT_EQ(rs.rules[2].to.port->low, 80);
}

TEST(Parser, QuickAndKeepState) {
  const Ruleset rs = parse("block quick from any to any\npass all keep state\n");
  EXPECT_TRUE(rs.rules[0].quick);
  EXPECT_FALSE(rs.rules[0].keep_state);
  EXPECT_TRUE(rs.rules[1].keep_state);
}

TEST(Parser, WithFunctionCalls) {
  const Ruleset rs = parse(
      "pass all with eq(@src[name], skype) with member(@src[groupID], users)\n");
  ASSERT_EQ(rs.rules[0].withs.size(), 2u);
  EXPECT_EQ(rs.rules[0].withs[0].name, "eq");
  ASSERT_EQ(rs.rules[0].withs[0].args.size(), 2u);
  const auto* idx = std::get_if<DictIndexExpr>(&rs.rules[0].withs[0].args[0]);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->dict, "src");
  EXPECT_EQ(idx->key, "name");
}

TEST(Parser, NamedPorts) {
  EXPECT_EQ(named_port("http"), 80);
  EXPECT_EQ(named_port("HTTPS"), 443);
  EXPECT_EQ(named_port("identxx"), 783);
  EXPECT_EQ(named_port("unknown-service"), 0);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW((void)parse("pass from"), ParseError);
  EXPECT_THROW((void)parse("pass from 300.1.1.1"), ParseError);
  EXPECT_THROW((void)parse("pass all with eq(@src[a]"), ParseError);
  EXPECT_THROW((void)parse("pass all keep"), ParseError);
  EXPECT_THROW((void)parse("table <t> 1.1.1.1 }"), ParseError);
  EXPECT_THROW((void)parse("pass from any port bogusport"), ParseError);
  EXPECT_THROW((void)parse("frobnicate all"), ParseError);
}

TEST(Parser, RulesRecordSourceLabel) {
  const Ruleset rs = parse("pass all\n", "50-skype.control");
  EXPECT_EQ(rs.rules[0].source_label, "50-skype.control");
}

// ---------------------------------------------------------------- eval core

TEST(Eval, DefaultIsPassLikePf) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "10.0.0.2");
  const Verdict v = run_policy("", ctx);
  EXPECT_TRUE(v.allowed());
  EXPECT_EQ(v.rule, nullptr);
}

TEST(Eval, LastMatchWins) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "10.0.0.2");
  EXPECT_FALSE(run_policy("pass all\nblock all\n", ctx).allowed());
  EXPECT_TRUE(run_policy("block all\npass all\n", ctx).allowed());
}

TEST(Eval, QuickShortCircuits) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "10.0.0.2");
  // quick pass wins although a block follows.
  EXPECT_TRUE(run_policy("pass quick all\nblock all\n", ctx).allowed());
}

TEST(Eval, EndpointDirectionality) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "192.168.1.1", 22);
  EXPECT_TRUE(
      run_policy("block all\npass from 10.0.0.0/24 to 192.168.1.1\n", ctx)
          .allowed());
  // Reversed direction does not match.
  ctx.flow = flow("192.168.1.1", "10.0.0.1", 22);
  EXPECT_FALSE(
      run_policy("block all\npass from 10.0.0.0/24 to 192.168.1.1\n", ctx)
          .allowed());
}

TEST(Eval, PortPredicates) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2", 443);
  EXPECT_TRUE(
      run_policy("block all\npass from any to any port https\n", ctx).allowed());
  EXPECT_FALSE(
      run_policy("block all\npass from any to any port http\n", ctx).allowed());
  EXPECT_TRUE(
      run_policy("block all\npass from any to any port 400:500\n", ctx)
          .allowed());
}

TEST(Eval, NegatedEndpoint) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "8.8.8.8");
  // Outbound to non-LAN passes.
  const char* policy =
      "table <lan> { 10.0.0.0/8 }\nblock all\npass from <lan> to !<lan>\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
  ctx.flow = flow("10.0.0.1", "10.0.0.2");
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

TEST(Eval, UnknownTableThrowsPolicyError) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_THROW((void)run_policy("pass from <nope> to any\n", ctx), PolicyError);
}

TEST(Eval, UnknownFunctionThrowsPolicyError) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_THROW((void)run_policy("pass all with frob(@src[a], b)\n", ctx),
               PolicyError);
}

TEST(Eval, VerdictIdentifiesMatchedRule) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  const PolicyEngine engine(parse("block all\npass all\n", "t"));
  const Verdict v = engine.evaluate(ctx);
  ASSERT_NE(v.rule, nullptr);
  EXPECT_EQ(v.rule->action, RuleAction::kPass);
  EXPECT_EQ(engine.stats().evaluations, 1u);
  EXPECT_EQ(engine.stats().rules_scanned, 2u);
}

// ---------------------------------------------------------------- with/dicts

TEST(Eval, WithOverSrcDict) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"name", "skype"}});
  EXPECT_TRUE(
      run_policy("block all\npass all with eq(@src[name], skype)\n", ctx)
          .allowed());
  EXPECT_FALSE(
      run_policy("block all\npass all with eq(@src[name], firefox)\n", ctx)
          .allowed());
}

TEST(Eval, MissingKeyNeverMatches) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  // No @src info at all: with-predicates are false, so the pass rule does
  // not match and the block-all stands.
  EXPECT_FALSE(
      run_policy("block all\npass all with eq(@src[name], skype)\n", ctx)
          .allowed());
}

TEST(Eval, MultipleWithsAreConjunction) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"name", "skype"}, {"version", "210"}});
  const char* policy =
      "block all\n"
      "pass all with eq(@src[name], skype) with gte(@src[version], 200)\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
  ctx.src = dict_of({{"name", "skype"}, {"version", "190"}});
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

TEST(Eval, LatestSectionWinsInPolicy) {
  proto::Response r;
  proto::Section s1, s2;
  s1.add("name", "skype");
  s2.add("name", "not-skype");
  r.append_section(s1);
  r.append_section(s2);
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = proto::ResponseDict(r);
  EXPECT_FALSE(
      run_policy("block all\npass all with eq(@src[name], skype)\n", ctx)
          .allowed());
}

TEST(Eval, StarConcatenationAcrossSections) {
  proto::Response r;
  proto::Section s1, s2;
  s1.add("network", "branchA");
  s2.add("network", "branchB");
  r.append_section(s1);
  r.append_section(s2);
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = proto::ResponseDict(r);
  // The endorsement chain must be exactly branchA,branchB (§3.3).
  EXPECT_TRUE(run_policy(
                  "block all\n"
                  "pass all with eq(*@src[network], \"branchA,branchB\")\n",
                  ctx)
                  .allowed());
  EXPECT_FALSE(run_policy("block all\n"
                          "pass all with eq(*@src[network], \"branchA\")\n",
                          ctx)
                   .allowed());
}

TEST(Eval, UserDictLookup) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"rule-maker", "Secur"}});
  const char* policy =
      "dict <companies> { Secur : trusted }\n"
      "block all\n"
      "pass all with eq(@companies[Secur], trusted)\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(Eval, UnknownUserDictThrows) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_THROW(
      (void)run_policy("pass all with eq(@nosuch[k], v)\n", ctx), PolicyError);
}

TEST(Eval, FlowDictExtension) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2", 80, 40000);
  net::TenTuple of;
  of.in_port = 3;
  ctx.openflow = of;
  EXPECT_TRUE(run_policy("block all\npass all with eq(@flow[in_port], 3)\n", ctx)
                  .allowed());
  EXPECT_TRUE(
      run_policy("block all\npass all with eq(@flow[dst_port], 80)\n", ctx)
          .allowed());
  EXPECT_TRUE(
      run_policy("block all\npass all with eq(@flow[src_ip], 1.1.1.1)\n", ctx)
          .allowed());
}

TEST(Eval, UnknownFlowKeyRejectedAtParseTime) {
  // @flow has a closed key set; a typo used to return Undefined and make
  // the rule silently unmatchable.  Now it is a load-time error carrying
  // the offending line.
  try {
    (void)parse("block all\npass all with eq(@flow[srcport], 1)\n", "test");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("srcport"), std::string::npos);
  }
}

TEST(Eval, OpenFlowOnlyFlowKeysUndefinedWithoutTenTuple) {
  // Valid OpenFlow-only keys still parse, and evaluate to Undefined (rule
  // does not match) when the decision context carries no TenTuple.
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_FALSE(
      run_policy("block all\npass all with eq(@flow[in_port], 3)\n", ctx)
          .allowed());
  EXPECT_FALSE(
      run_policy("block all\npass all with eq(@flow[vlan], 0)\n", ctx)
          .allowed());
}

TEST(Eval, DelegatedRulesWithBadFlowKeyFailClosed) {
  // Delegated rules are untrusted input: a bad @flow key inside an
  // allowed() payload must make the predicate false, not throw.
  proto::Response r;
  proto::Section s;
  s.add("requirements", "pass all with eq(@flow[srcport], 1)");
  r.append_section(s);
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = proto::ResponseDict(r);
  EXPECT_FALSE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
}

// ---------------------------------------------------------------- functions

struct ComparisonCase {
  const char* fn;
  const char* lhs;
  const char* rhs;
  bool expected;
};

class ComparisonTest : public ::testing::TestWithParam<ComparisonCase> {};

TEST_P(ComparisonTest, NumericAndStringSemantics) {
  const auto& [fn, lhs, rhs, expected] = GetParam();
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"v", lhs}});
  const std::string policy = std::string("block all\npass all with ") + fn +
                             "(@src[v], " + rhs + ")\n";
  EXPECT_EQ(run_policy(policy, ctx).allowed(), expected)
      << fn << "(" << lhs << ", " << rhs << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Comparisons, ComparisonTest,
    ::testing::Values(
        ComparisonCase{"eq", "skype", "skype", true},
        ComparisonCase{"eq", "skype", "Skype", false},
        ComparisonCase{"eq", "200", "200", true},
        ComparisonCase{"lt", "190", "200", true},
        ComparisonCase{"lt", "200", "200", false},
        // Numeric compare, not lexicographic: 9 < 10.
        ComparisonCase{"lt", "9", "10", true},
        ComparisonCase{"gt", "210", "200", true},
        ComparisonCase{"gt", "200", "210", false},
        ComparisonCase{"gte", "200", "200", true},
        ComparisonCase{"gte", "199", "200", false},
        ComparisonCase{"lte", "200", "200", true},
        ComparisonCase{"lte", "201", "200", false},
        // String ordering when not numeric.
        ComparisonCase{"lt", "alpha", "beta", true},
        ComparisonCase{"gt", "beta", "alpha", true},
        // Mixed numeric/non-numeric operands have no coherent order: the
        // old lexicographic fallback made gt("10", "9 ") false but
        // lt("10", "9 ") true (both order-dependent and wrong).  Mixed
        // comparisons now fail the predicate in every direction.
        ComparisonCase{"gt", "10", "\"9 \"", false},
        ComparisonCase{"lt", "10", "\"9 \"", false},
        ComparisonCase{"gte", "10", "\"9 \"", false},
        ComparisonCase{"lte", "10", "\"9 \"", false},
        ComparisonCase{"eq", "10", "\"9 \"", false},
        ComparisonCase{"gt", "9 ", "10", false},
        ComparisonCase{"lt", "9 ", "10", false},
        ComparisonCase{"gt", "alpha", "1", false},
        ComparisonCase{"lt", "alpha", "1", false},
        ComparisonCase{"eq", "alpha", "1", false}));

TEST(Functions, MemberWithBraceList) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"name", "ssh"}});
  EXPECT_TRUE(run_policy(
                  "block all\npass all with member(@src[name], { http ssh })\n",
                  ctx)
                  .allowed());
  ctx.src = dict_of({{"name", "telnet"}});
  EXPECT_FALSE(run_policy(
                   "block all\npass all with member(@src[name], { http ssh })\n",
                   ctx)
                   .allowed());
}

TEST(Functions, MemberWithMacroList) {
  // Fig 2: member(@src[name], $allowed) where allowed = "{ http ssh }".
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"name", "http"}});
  const char* policy =
      "allowed = \"{ http ssh }\"\n"
      "block all\n"
      "pass all with member(@src[name], $allowed)\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(Functions, MemberWithNamedList) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"groupID", "users"}});
  // Bare word list name resolved via macros.
  const char* policy =
      "groups = \"{ users admins }\"\n"
      "block all\n"
      "pass all with member(@src[groupID], groups)\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(Functions, MemberBareWordIsSingletonList) {
  // Fig 5: member(@src[groupID], research) with no `research` list defined.
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"groupID", "research"}});
  EXPECT_TRUE(
      run_policy("block all\npass all with member(@src[groupID], research)\n",
                 ctx)
          .allowed());
}

TEST(Functions, IncludesSplitsValueList) {
  // Fig 8: includes(@dst[os-patch], MS08-067).
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.dst = dict_of({{"os-patch", "MS07-067 MS08-067,MS09-001"}});
  EXPECT_TRUE(run_policy(
                  "block all\npass all with includes(@dst[os-patch], MS08-067)\n",
                  ctx)
                  .allowed());
  EXPECT_FALSE(
      run_policy("block all\npass all with includes(@dst[os-patch], MS10-000)\n",
                 ctx)
          .allowed());
}

TEST(Functions, ArityErrors) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"a", "1"}});
  EXPECT_THROW((void)run_policy("pass all with eq(@src[a])\n", ctx),
               PolicyError);
  EXPECT_THROW((void)run_policy("pass all with verify(@src[a], b)\n", ctx),
               PolicyError);
}

// ---------------------------------------------------------------- allowed()

TEST(Functions, AllowedEvaluatesDelegatedRules) {
  // Fig 4 semantics: requirements from the response gate the flow.
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of(
      {{"name", "research-app"},
       {"requirements",
        "block all pass all with eq(@src[name], research-app)"}});
  EXPECT_TRUE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
  // An app whose own requirements do not admit this flow is blocked.
  ctx.src = dict_of({{"name", "other-app"},
                     {"requirements",
                      "block all pass all with eq(@src[name], research-app)"}});
  EXPECT_FALSE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
}

TEST(Functions, AllowedFalseOnMissingOrEmpty) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_FALSE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
}

TEST(Functions, AllowedFalseOnUnparseableRules) {
  // Delegated garbage must not crash the admin policy (untrusted input).
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"requirements", "pass from ((((("}});
  EXPECT_FALSE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
}

TEST(Functions, AllowedSeesAdminTables) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "8.8.8.8");
  ctx.src = dict_of({{"requirements", "block all pass from <lan> to any"}});
  const char* policy =
      "table <lan> { 10.0.0.0/8 }\n"
      "block all\n"
      "pass all with allowed(@src[requirements])\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(Functions, AllowedDelegatedLastMatchSemantics) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2", 443);
  ctx.src = dict_of({{"requirements",
                      "pass all block from any to any port https"}});
  EXPECT_FALSE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
}

TEST(Functions, AllowedRecursionDepthBounded) {
  // requirements that call allowed() on themselves terminate (depth limit).
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of(
      {{"requirements", "pass all with allowed(@src[requirements])"}});
  EXPECT_FALSE(
      run_policy("block all\npass all with allowed(@src[requirements])\n", ctx)
          .allowed());
}

// ---------------------------------------------------------------- verify()

TEST(Functions, VerifyAcceptsValidSignature) {
  const crypto::PrivateKey researcher = crypto::PrivateKey::from_seed("res");
  const std::string exe_hash = "abcdef0123456789";
  const std::string app_name = "research-app";
  const std::string requirements =
      "block all pass all with eq(@src[name], research-app)";
  const crypto::Signature sig = researcher.sign(
      proto::signed_message({exe_hash, app_name, requirements}));

  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.dst = dict_of({{"exe-hash", exe_hash.c_str()},
                     {"app-name", app_name.c_str()},
                     {"requirements", requirements.c_str()},
                     {"req-sig", sig.to_hex().c_str()}});
  const std::string policy =
      "dict <pubkeys> { research : " + researcher.public_key().to_hex() +
      " }\n"
      "block all\n"
      "pass all with verify(@dst[req-sig], @pubkeys[research], "
      "@dst[exe-hash], @dst[app-name], @dst[requirements])\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(Functions, VerifyRejectsTamperedRequirements) {
  const crypto::PrivateKey researcher = crypto::PrivateKey::from_seed("res");
  const crypto::Signature sig = researcher.sign(
      proto::signed_message({"hash", "app", "original rules"}));

  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.dst = dict_of({{"exe-hash", "hash"},
                     {"app-name", "app"},
                     {"requirements", "tampered rules"},
                     {"req-sig", sig.to_hex().c_str()}});
  const std::string policy =
      "dict <pubkeys> { research : " + researcher.public_key().to_hex() +
      " }\n"
      "block all\n"
      "pass all with verify(@dst[req-sig], @pubkeys[research], "
      "@dst[exe-hash], @dst[app-name], @dst[requirements])\n";
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

TEST(Functions, VerifyRejectsWrongKey) {
  const crypto::PrivateKey alice = crypto::PrivateKey::from_seed("alice");
  const crypto::PrivateKey mallory = crypto::PrivateKey::from_seed("mallory");
  const crypto::Signature sig =
      mallory.sign(proto::signed_message({"h", "a", "r"}));
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.dst = dict_of({{"exe-hash", "h"},
                     {"app-name", "a"},
                     {"requirements", "r"},
                     {"req-sig", sig.to_hex().c_str()}});
  const std::string policy = "dict <pubkeys> { research : " +
                             alice.public_key().to_hex() +
                             " }\n"
                             "block all\n"
                             "pass all with verify(@dst[req-sig], "
                             "@pubkeys[research], @dst[exe-hash], "
                             "@dst[app-name], @dst[requirements])\n";
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

TEST(Functions, VerifyFalseOnGarbageSignature) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.dst = dict_of({{"req-sig", "nothex!"}, {"data", "x"}});
  const std::string policy =
      "dict <pubkeys> { k : deadbeef }\n"
      "block all\n"
      "pass all with verify(@dst[req-sig], @pubkeys[k], @dst[data])\n";
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

// ---------------------------------------------------------------- registry

TEST(Registry, UserDefinedFunction) {
  // §3.3: "Functions are user-definable and new functions can be added."
  Ruleset rs = parse("block all\npass all with always_yes()\n");
  FunctionRegistry registry = FunctionRegistry::with_builtins();
  registry.register_function(
      "always_yes",
      [](const EvalContext&, const FuncCall&, const std::vector<Value>&) {
        return true;
      });
  const PolicyEngine engine(std::move(rs), std::move(registry));
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_TRUE(engine.evaluate(ctx).allowed());
}

TEST(Registry, BuiltinsPresent) {
  const FunctionRegistry registry = FunctionRegistry::with_builtins();
  for (const char* name :
       {"eq", "gt", "lt", "gte", "lte", "member", "includes", "allowed",
        "verify"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("nope"), nullptr);
}

// ---------------------------------------------------------------- figures

/// Figure 2, all three .control files concatenated in alphabetical order
/// (00-local-header, 50-skype, 99-local-footer) exactly as printed.
constexpr char kFig2Policy[] = R"(
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }" # a macro of apps

# default deny
block all

# allow connections outbound
pass from <int_hosts> \
  to !<int_hosts> \
  keep state

# allow all traffic from approved apps
pass from <int_hosts> \
  to <int_hosts> \
  with member(@src[name], $allowed) \
  keep state

table <skype_update> { 123.123.123.0/24 }

# skype to skype allowed
pass all \
  with eq(@src[name], skype) \
  with eq(@dst[name], skype)

# skype update feature
pass from any \
  to <skype_update> port 80 \
  with eq(@src[name], skype) \
  keep state

# no really old versions of skype
block all \
  with eq(@src[name], skype) \
  with lt(@src[version], 200)

# no skype to server
block from any \
  to <server> \
  with eq(@src[name], skype)
)";

struct Fig2Case {
  const char* description;
  const char* src_ip;
  const char* dst_ip;
  std::uint16_t dst_port;
  const char* src_app;
  const char* src_version;
  const char* dst_app;
  bool expected;
};

class Fig2Policy : public ::testing::TestWithParam<Fig2Case> {};

TEST_P(Fig2Policy, Matrix) {
  const auto& c = GetParam();
  FlowContext ctx;
  ctx.flow = flow(c.src_ip, c.dst_ip, c.dst_port);
  if (c.src_app != nullptr) {
    ctx.src = dict_of({{"name", c.src_app}, {"version", c.src_version}});
  }
  if (c.dst_app != nullptr) {
    ctx.dst = dict_of({{"name", c.dst_app}});
  }
  EXPECT_EQ(run_policy(kFig2Policy, ctx).allowed(), c.expected)
      << c.description;
}

INSTANTIATE_TEST_SUITE_P(
    PaperSkypeScenario, Fig2Policy,
    ::testing::Values(
        Fig2Case{"outbound web allowed", "192.168.0.10", "8.8.8.8", 80,
                 "firefox", "3", nullptr, true},
        Fig2Case{"internal http app allowed", "192.168.0.10", "192.168.0.11",
                 8080, "http", "1", nullptr, true},
        Fig2Case{"internal unapproved app blocked", "192.168.0.10",
                 "192.168.0.11", 8080, "dropbox", "1", nullptr, false},
        Fig2Case{"skype-to-skype allowed", "192.168.0.10", "192.168.0.11",
                 5555, "skype", "210", "skype", true},
        Fig2Case{"skype to non-skype blocked", "192.168.0.10", "192.168.0.11",
                 5555, "skype", "210", "web", false},
        Fig2Case{"skype update allowed", "192.168.0.10", "123.123.123.5", 80,
                 "skype", "210", nullptr, true},
        Fig2Case{"old skype blocked even to update", "192.168.0.10",
                 "123.123.123.5", 80, "skype", "190", nullptr, false},
        Fig2Case{"old skype-to-skype blocked", "192.168.0.10", "192.168.0.11",
                 5555, "skype", "190", "skype", false},
        Fig2Case{"skype to server blocked", "192.168.0.10", "192.168.1.1",
                 5555, "skype", "210", "skype", false},
        Fig2Case{"no info internal blocked", "192.168.0.10", "192.168.0.11",
                 8080, nullptr, nullptr, nullptr, false},
        Fig2Case{"inbound from internet blocked", "8.8.8.8", "192.168.0.10",
                 80, "anything", "1", nullptr, false}));

/// Figure 8: user- and application-specific rule (Conficker mitigation).
constexpr char kFig8Policy[] = R"(
table <lan> { 192.168.0.0/24 }
# default block everything
block all
# only allow ``system'' users in the LAN
pass from <lan> \
  with eq(@src[userID], system) \
  to <lan> \
  with eq(@dst[userID], system) \
  with eq(@dst[name], Server) \
  with includes(@dst[os-patch], MS08-067)
)";

TEST(Fig8Policy, PatchedServerReachableBySystemUser) {
  FlowContext ctx;
  ctx.flow = flow("192.168.0.10", "192.168.0.20", 445);
  ctx.src = dict_of({{"userID", "system"}});
  ctx.dst = dict_of({{"userID", "system"},
                     {"name", "Server"},
                     {"os-patch", "MS08-067"}});
  EXPECT_TRUE(run_policy(kFig8Policy, ctx).allowed());
}

TEST(Fig8Policy, UnpatchedServerBlocked) {
  FlowContext ctx;
  ctx.flow = flow("192.168.0.10", "192.168.0.20", 445);
  ctx.src = dict_of({{"userID", "system"}});
  ctx.dst = dict_of(
      {{"userID", "system"}, {"name", "Server"}, {"os-patch", "MS07-001"}});
  EXPECT_FALSE(run_policy(kFig8Policy, ctx).allowed());
}

TEST(Fig8Policy, NonSystemUserBlocked) {
  FlowContext ctx;
  ctx.flow = flow("192.168.0.10", "192.168.0.20", 445);
  ctx.src = dict_of({{"userID", "conficker"}});
  ctx.dst = dict_of(
      {{"userID", "system"}, {"name", "Server"}, {"os-patch", "MS08-067"}});
  EXPECT_FALSE(run_policy(kFig8Policy, ctx).allowed());
}

TEST(Fig8Policy, InternetAtLargeBlocked) {
  FlowContext ctx;
  ctx.flow = flow("8.8.8.8", "192.168.0.20", 445);
  ctx.src = dict_of({{"userID", "system"}});
  ctx.dst = dict_of(
      {{"userID", "system"}, {"name", "Server"}, {"os-patch", "MS08-067"}});
  EXPECT_FALSE(run_policy(kFig8Policy, ctx).allowed());
}

// ---------------------------------------------------------------- log/proto

TEST(LogModifier, ParsedAndPropagatedToVerdict) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  const PolicyEngine engine(parse("block log all\npass log quick all\n"));
  const Verdict v = engine.evaluate(ctx);
  EXPECT_TRUE(v.allowed());
  EXPECT_TRUE(v.log);
  EXPECT_TRUE(v.quick);
  // Order of modifiers does not matter.
  const Ruleset rs = parse("pass quick log all\n");
  EXPECT_TRUE(rs.rules[0].log);
  EXPECT_TRUE(rs.rules[0].quick);
}

TEST(LogModifier, NonLogRuleLeavesFlagClear) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_FALSE(run_policy("pass all\n", ctx).log);
}

TEST(ProtoClause, FiltersByProtocol) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2", 53, 40000, net::IpProto::kUdp);
  EXPECT_TRUE(
      run_policy("block all\npass proto udp from any to any\n", ctx).allowed());
  EXPECT_FALSE(
      run_policy("block all\npass proto tcp from any to any\n", ctx).allowed());
  ctx.flow.proto = net::IpProto::kTcp;
  EXPECT_TRUE(
      run_policy("block all\npass proto tcp from any to any\n", ctx).allowed());
}

TEST(ProtoClause, RejectsUnknownProtocol) {
  EXPECT_THROW((void)parse("pass proto sctp all\n"), ParseError);
}

TEST(Eval, InlineHostListWithTableRefs) {
  // Figure-2-style inline lists mixing addresses and table references,
  // resolved at evaluation time.
  FlowContext ctx;
  ctx.flow = flow("192.168.0.5", "10.9.9.9");
  const char* policy =
      "table <lan> { 192.168.0.0/24 }\n"
      "block all\n"
      "pass from { 172.16.0.1 <lan> } to any\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
  ctx.flow = flow("172.16.0.1", "10.9.9.9");
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
  ctx.flow = flow("8.8.8.8", "10.9.9.9");
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

TEST(Eval, InlineListUnknownTableThrows) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  EXPECT_THROW((void)run_policy("pass from { <ghost> } to any\n", ctx),
               PolicyError);
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  // The parser must reject arbitrary token sequences with ParseError (or
  // accept them), never crash or hang — it consumes delegated rules from
  // untrusted ident++ responses.
  util::SplitMix64 rng(424242);
  const char* vocab[] = {"pass",  "block", "from",  "to",    "with", "quick",
                         "log",   "all",   "any",   "port",  "keep", "state",
                         "table", "dict",  "{",     "}",     "(",    ")",
                         ",",     ":",     "=",     "!",     "80",   "http",
                         "10.0.0.1", "<t>", "@src[k]", "$m",  "\"s\"", "proto"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string source;
    const std::size_t len = 1 + rng.next_below(25);
    for (std::size_t i = 0; i < len; ++i) {
      source += vocab[rng.next_below(std::size(vocab))];
      source += ' ';
    }
    try {
      (void)parse(source, "fuzz");
    } catch (const ParseError&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

TEST(ProtoClause, CombinesWithOtherClauses) {
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "10.0.0.2", 53, 40000, net::IpProto::kUdp);
  ctx.src = dict_of({{"name", "resolver"}});
  const char* policy =
      "block all\n"
      "pass proto udp from 10.0.0.0/8 to any port dns \\\n"
      "  with eq(@src[name], resolver)\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
  ctx.flow.proto = net::IpProto::kTcp;
  EXPECT_FALSE(run_policy(policy, ctx).allowed());
}

// ---------------------------------------------------------------- edges

TEST(ParserEdge, HostlessPortEndpoint) {
  // PF allows `from port 80` with no host term.
  const Ruleset rs = parse("pass from port 80 to any\n");
  ASSERT_EQ(rs.rules.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<AnyHost>(rs.rules[0].from.host));
  ASSERT_TRUE(rs.rules[0].from.port.has_value());
  EXPECT_EQ(rs.rules[0].from.port->low, 80);

  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2", 443, 80);
  EXPECT_TRUE(run_policy("block all\npass from port 80 to any\n", ctx).allowed());
  ctx.flow.src_port = 81;
  EXPECT_FALSE(run_policy("block all\npass from port 80 to any\n", ctx).allowed());
}

TEST(ParserEdge, MacroInExpressionPosition) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"name", "skype"}});
  const char* policy =
      "target = skype\n"
      "block all\n"
      "pass all with eq(@src[name], $target)\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(ParserEdge, MacroInPortPosition) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2", 8443);
  const char* policy =
      "svcport = 8443\n"
      "block all\n"
      "pass from any to any port $svcport\n";
  EXPECT_TRUE(run_policy(policy, ctx).allowed());
}

TEST(ParserEdge, EqOnListsComparesJoinedForm) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"tags", "a,b"}});
  EXPECT_TRUE(
      run_policy("block all\npass all with eq(@src[tags], { a b })\n", ctx)
          .allowed());
}

TEST(ParserEdge, RuleToStringMentionsSourceAndLine) {
  const Ruleset rs = parse("block all\n", "99-footer.control");
  const std::string text = to_string(rs.rules[0]);
  EXPECT_NE(text.find("block"), std::string::npos);
  EXPECT_NE(text.find("99-footer.control"), std::string::npos);
}

TEST(EvalEdge, EmptyDelegationDepthZeroStillEvaluatesTopLevel) {
  // An engine whose ruleset contains delegated-looking rules evaluates them
  // the same as any rules at depth 0; stats separate the two.
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"requirements", "block all pass all"}});
  const PolicyEngine engine(
      parse("block all\npass all with allowed(@src[requirements])\n"));
  EXPECT_TRUE(engine.evaluate(ctx).allowed());
  EXPECT_GT(engine.stats().delegated_rule_evals, 0u);
  EXPECT_GT(engine.stats().rules_scanned, 0u);
}

TEST(EvalEdge, StatsAccumulateAcrossEvaluations) {
  FlowContext ctx;
  ctx.flow = flow("1.1.1.1", "2.2.2.2");
  ctx.src = dict_of({{"name", "x"}});
  const PolicyEngine engine(
      parse("block all\npass all with eq(@src[name], x)\n"));
  for (int i = 0; i < 5; ++i) (void)engine.evaluate(ctx);
  EXPECT_EQ(engine.stats().evaluations, 5u);
  EXPECT_EQ(engine.stats().functions_called, 5u);
}

}  // namespace
}  // namespace identxx::pf
