// Unit tests for the discrete-event simulator: ordering, determinism,
// links, latency, error handling.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace identxx::sim {
namespace {

/// Test node that records arrivals.
class RecorderNode : public Node {
 public:
  explicit RecorderNode(std::string name) : name_(std::move(name)) {}

  void on_packet(const net::Packet& packet, PortId in_port) override {
    arrivals.push_back({simulator()->now(), in_port, packet});
  }
  [[nodiscard]] std::string name() const override { return name_; }

  struct Arrival {
    SimTime time;
    PortId port;
    net::Packet packet;
  };
  std::vector<Arrival> arrivals;

 private:
  std::string name_;
};

net::Packet test_packet(std::size_t payload_bytes = 0) {
  return net::make_tcp_packet(
      net::MacAddress::for_node(1), net::MacAddress::for_node(2),
      *net::Ipv4Address::parse("10.0.0.1"), *net::Ipv4Address::parse("10.0.0.2"),
      1000, 80, std::string(payload_bytes, 'p'));
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(100, [&] {
    EXPECT_THROW(sim.schedule_at(50, [] {}), SimError);
  });
  sim.run();
}

TEST(Simulator, RunWithDeadlineStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(200, [&] { ++fired; });
  sim.run(150);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunEventsBounded) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i + 1, [&] { ++fired; });
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, DeliversPacketOverLink) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
  sim.connect(a, 1, b, 1, /*latency=*/1000, /*bandwidth=*/0);
  sim.send(a, 1, test_packet());
  sim.run();
  auto& node_b = dynamic_cast<RecorderNode&>(sim.node(b));
  ASSERT_EQ(node_b.arrivals.size(), 1u);
  EXPECT_EQ(node_b.arrivals[0].time, 1000);
  EXPECT_EQ(node_b.arrivals[0].port, 1);
  EXPECT_EQ(sim.stats().packets_delivered, 1u);
}

TEST(Simulator, SerializationDelayScalesWithSize) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
  // 1 Gbps, zero propagation latency.
  sim.connect(a, 1, b, 1, 0, 1'000'000'000ULL);
  sim.send(a, 1, test_packet(0));
  sim.send(a, 1, test_packet(1000));
  sim.run();
  auto& node_b = dynamic_cast<RecorderNode&>(sim.node(b));
  ASSERT_EQ(node_b.arrivals.size(), 2u);
  // The 1000-byte-payload packet takes ~8us longer at 1 Gbps.
  EXPECT_GT(node_b.arrivals[1].time, node_b.arrivals[0].time + 7000);
}

TEST(Simulator, LinksAreBidirectional) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
  sim.connect(a, 1, b, 2, 10, 0);
  sim.send(b, 2, test_packet());
  sim.run();
  auto& node_a = dynamic_cast<RecorderNode&>(sim.node(a));
  ASSERT_EQ(node_a.arrivals.size(), 1u);
  EXPECT_EQ(node_a.arrivals[0].port, 1);
}

TEST(Simulator, SendOnUnwiredPortIsCountedDrop) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  sim.send(a, 1, test_packet());
  sim.run();
  EXPECT_EQ(sim.stats().packets_dropped_no_link, 1u);
  EXPECT_EQ(sim.stats().packets_delivered, 0u);
}

TEST(Simulator, ConnectValidation) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
  EXPECT_THROW(sim.connect(a, 0, b, 1), SimError);       // port 0 reserved
  EXPECT_THROW(sim.connect(a, 1, 99, 1), SimError);      // unknown node
  EXPECT_THROW(sim.connect(a, 1, b, 1, -5), SimError);   // negative latency
  sim.connect(a, 1, b, 1);
  EXPECT_THROW(sim.connect(a, 1, b, 2), SimError);       // port already wired
}

TEST(Simulator, LinkAtReportsWiring) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
  sim.connect(a, 3, b, 4, 42, 0);
  const LinkEnd* link = sim.link_at(a, 3);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->peer, b);
  EXPECT_EQ(link->peer_port, 4);
  EXPECT_EQ(link->latency, 42);
  EXPECT_EQ(sim.link_at(a, 9), nullptr);
}

TEST(Simulator, DeliveryTracerObservesEveryDelivery) {
  Simulator sim;
  const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
  const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
  sim.connect(a, 1, b, 2, 100, 0);
  struct Trace {
    SimTime when;
    NodeId from, to;
    PortId from_port, to_port;
  };
  std::vector<Trace> traces;
  sim.set_delivery_tracer([&](SimTime when, NodeId from, PortId from_port,
                              NodeId to, PortId to_port, const net::Packet&) {
    traces.push_back({when, from, to, from_port, to_port});
  });
  sim.send(a, 1, test_packet());
  sim.send(b, 2, test_packet());
  sim.run();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].from, a);
  EXPECT_EQ(traces[0].to, b);
  EXPECT_EQ(traces[0].from_port, 1);
  EXPECT_EQ(traces[0].to_port, 2);
  EXPECT_EQ(traces[0].when, 100);
  EXPECT_EQ(traces[1].from, b);
  EXPECT_EQ(traces[1].to, a);
}

TEST(Simulator, DeterministicReplay) {
  // Two identical runs produce identical arrival sequences.
  const auto run_once = [] {
    Simulator sim;
    const NodeId a = sim.add_node(std::make_unique<RecorderNode>("a"));
    const NodeId b = sim.add_node(std::make_unique<RecorderNode>("b"));
    sim.connect(a, 1, b, 1, 100, 1'000'000'000ULL);
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(i * 7, [&sim, a, i] {
        sim.send(a, 1, test_packet(static_cast<std::size_t>(i % 13) * 10));
      });
    }
    sim.run();
    std::vector<SimTime> times;
    for (const auto& arrival :
         dynamic_cast<RecorderNode&>(sim.node(b)).arrivals) {
      times.push_back(arrival.time);
    }
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace identxx::sim
