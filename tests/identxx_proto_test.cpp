// Unit tests for the ident++ protocol: wire format (§3.2), response
// dictionaries (§3.3 latest-wins / *-concatenation), daemon configuration
// files (Fig 3/4/6) and the daemon's answer assembly (§3.5).

#include <gtest/gtest.h>

#include "identxx/daemon.hpp"
#include "identxx/daemon_config.hpp"
#include "identxx/dict.hpp"
#include "identxx/keys.hpp"
#include "identxx/wire.hpp"
#include "util/error.hpp"

namespace identxx::proto {
namespace {

// ---------------------------------------------------------------- Query

TEST(Query, SerializeMatchesPaperFormat) {
  Query q;
  q.proto = net::IpProto::kTcp;
  q.src_port = 40000;
  q.dst_port = 80;
  q.keys = {"userID", "name"};
  EXPECT_EQ(q.serialize(), "tcp 40000 80\nuserID\nname\n");
}

TEST(Query, ParseRoundTrip) {
  Query q;
  q.proto = net::IpProto::kUdp;
  q.src_port = 1;
  q.dst_port = 65535;
  q.keys = {"exe-hash", "requirements", "req-sig"};
  EXPECT_EQ(Query::parse(q.serialize()), q);
}

TEST(Query, ParseAcceptsNumericProto) {
  const Query q = Query::parse("6 1000 80\nuserID\n");
  EXPECT_EQ(q.proto, net::IpProto::kTcp);
}

TEST(Query, ParseSkipsBlankLines) {
  const Query q = Query::parse("tcp 1 2\n\nuserID\n\n");
  ASSERT_EQ(q.keys.size(), 1u);
  EXPECT_EQ(q.keys[0], "userID");
}

TEST(Query, ParseRejectsMalformed) {
  EXPECT_THROW((void)Query::parse(""), ParseError);
  EXPECT_THROW((void)Query::parse("tcp 1\n"), ParseError);          // 2 fields
  EXPECT_THROW((void)Query::parse("tcp 1 2 3\n"), ParseError);      // 4 fields
  EXPECT_THROW((void)Query::parse("bogus 1 2\n"), ParseError);      // bad proto
  EXPECT_THROW((void)Query::parse("tcp 99999 2\n"), ParseError);    // port
  EXPECT_THROW((void)Query::parse("tcp 1 2\nkey: val\n"), ParseError);  // ':'
}

// ---------------------------------------------------------------- Response

TEST(Response, SerializeSectionsWithEmptyLines) {
  Response r;
  r.proto = net::IpProto::kTcp;
  r.src_port = 5;
  r.dst_port = 6;
  Section s1;
  s1.add("userID", "alice");
  s1.add("name", "skype");
  Section s2;
  s2.add("network", "branchB");
  r.append_section(s1);
  r.append_section(s2);
  EXPECT_EQ(r.serialize(),
            "tcp 5 6\nuserID: alice\nname: skype\n\nnetwork: branchB\n");
}

TEST(Response, ParseRoundTrip) {
  Response r;
  r.proto = net::IpProto::kTcp;
  r.src_port = 1000;
  r.dst_port = 80;
  Section s1;
  s1.add("userID", "bob");
  s1.add("version", "210");
  Section s2;
  s2.add("userID", "overridden");
  r.append_section(s1);
  r.append_section(s2);
  EXPECT_EQ(Response::parse(r.serialize()), r);
}

TEST(Response, ParseToleratesMultipleBlankLines) {
  const Response r = Response::parse("tcp 1 2\na: 1\n\n\n\nb: 2\n");
  ASSERT_EQ(r.sections.size(), 2u);
  EXPECT_EQ(*r.sections[1].find("b"), "2");
}

TEST(Response, ValuesMayContainColons) {
  const Response r = Response::parse("tcp 1 2\nnote: a:b:c\n");
  EXPECT_EQ(*r.sections[0].find("note"), "a:b:c");
}

TEST(Response, EmptySectionsAreDropped) {
  Response r;
  r.append_section(Section{});
  EXPECT_TRUE(r.sections.empty());
}

TEST(Response, ParseRejectsMalformed) {
  EXPECT_THROW((void)Response::parse(""), ParseError);
  EXPECT_THROW((void)Response::parse("tcp 1 2\nno-colon-line\n"), ParseError);
  EXPECT_THROW((void)Response::parse("tcp 1 2\n: empty-key\n"), ParseError);
}

TEST(Response, SectionFindReturnsLastInSection) {
  Section s;
  s.add("k", "first");
  s.add("k", "second");
  EXPECT_EQ(*s.find("k"), "second");
  EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(Wire, IdentTrafficDetection) {
  net::FiveTuple to_daemon;
  to_daemon.proto = net::IpProto::kTcp;
  to_daemon.dst_port = kIdentPort;
  EXPECT_TRUE(is_ident_traffic(to_daemon));
  net::FiveTuple from_daemon;
  from_daemon.proto = net::IpProto::kTcp;
  from_daemon.src_port = kIdentPort;
  EXPECT_TRUE(is_ident_traffic(from_daemon));
  net::FiveTuple web;
  web.proto = net::IpProto::kTcp;
  web.dst_port = 80;
  EXPECT_FALSE(is_ident_traffic(web));
  net::FiveTuple udp783;
  udp783.proto = net::IpProto::kUdp;
  udp783.dst_port = kIdentPort;
  EXPECT_FALSE(is_ident_traffic(udp783));
}

// ---------------------------------------------------------------- dict

TEST(ResponseDict, LatestWinsAcrossSections) {
  // §3.3: "indexing the dictionaries will give the latest value added".
  Response r;
  Section s1;
  s1.add("userID", "alice");
  Section s2;
  s2.add("userID", "mallory-says-bob");
  r.append_section(s1);
  r.append_section(s2);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest("userID"), "mallory-says-bob");
}

TEST(ResponseDict, StarConcatenatesAllSections) {
  // §3.3: *@src[key] returns the concatenation of values in all sections.
  Response r;
  Section s1, s2, s3;
  s1.add("network", "branchA");
  s2.add("network", "backbone");
  s3.add("network", "branchB");
  r.append_section(s1);
  r.append_section(s2);
  r.append_section(s3);
  const ResponseDict dict(r);
  EXPECT_EQ(dict.concatenated("network"), "branchA,backbone,branchB");
  EXPECT_EQ(dict.all("network").size(), 3u);
}

TEST(ResponseDict, MissingKey) {
  const ResponseDict dict{Response{}};
  EXPECT_FALSE(dict.latest("nope").has_value());
  EXPECT_FALSE(dict.contains("nope"));
  EXPECT_EQ(dict.concatenated("nope"), "");
}

TEST(ResponseDict, WithinSectionLastPairWins) {
  Response r;
  Section s;
  s.add("k", "v1");
  s.add("k", "v2");
  r.append_section(s);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest("k"), "v2");
}

// ---------------------------------------------------------------- config

constexpr char kSkypeConfig[] = R"(# Fig 3: skype daemon configuration
@app /usr/bin/skype {
name : skype
version : 210
vendor : skype.com
type : voip
requirements : \
pass from any port http \
with eq(@src[name], skype) \
pass from any port https \
with eq(@src[name], skype)
req-sig : 21oirw3eda
}
)";

TEST(DaemonConfig, ParsesFig3Shape) {
  const DaemonConfig config = DaemonConfig::parse(kSkypeConfig);
  ASSERT_EQ(config.apps.size(), 1u);
  const AppConfig& app = config.apps[0];
  EXPECT_EQ(app.exe_path, "/usr/bin/skype");
  EXPECT_EQ(*app.find("name"), "skype");
  EXPECT_EQ(*app.find("version"), "210");
  EXPECT_EQ(*app.find("req-sig"), "21oirw3eda");
  // Continuations collapse into one logical line.
  EXPECT_EQ(*app.find("requirements"),
            "pass from any port http with eq(@src[name], skype) "
            "pass from any port https with eq(@src[name], skype)");
}

TEST(DaemonConfig, GlobalBlock) {
  const DaemonConfig config = DaemonConfig::parse(
      "@global {\nos-patch : MS08-067 MS09-001\n}\n");
  ASSERT_EQ(config.global_pairs.size(), 1u);
  EXPECT_EQ(config.global_pairs[0].first, "os-patch");
  EXPECT_EQ(config.global_pairs[0].second, "MS08-067 MS09-001");
}

TEST(DaemonConfig, MultipleAppBlocks) {
  const DaemonConfig config = DaemonConfig::parse(
      "@app /usr/bin/a {\nname : a\n}\n@app /usr/bin/b {\nname : b\n}\n");
  EXPECT_EQ(config.apps.size(), 2u);
  EXPECT_NE(config.find_app("/usr/bin/a"), nullptr);
  EXPECT_NE(config.find_app("/usr/bin/b"), nullptr);
  EXPECT_EQ(config.find_app("/usr/bin/c"), nullptr);
}

TEST(DaemonConfig, CommentsIgnoredEverywhere) {
  const DaemonConfig config = DaemonConfig::parse(
      "# header comment\n@app /bin/x { # trailing\n# inner comment\n"
      "name : x\n}\n");
  ASSERT_EQ(config.apps.size(), 1u);
  EXPECT_EQ(*config.apps[0].find("name"), "x");
}

TEST(DaemonConfig, MergeAppendsBoth) {
  DaemonConfig a = DaemonConfig::parse("@app /bin/x {\nname : x\n}\n");
  DaemonConfig b = DaemonConfig::parse(
      "@app /bin/x {\nextra : 1\n}\n@global {\ng : 2\n}\n");
  a.merge(std::move(b));
  EXPECT_EQ(a.find_apps("/bin/x").size(), 2u);
  EXPECT_EQ(a.global_pairs.size(), 1u);
}

TEST(DaemonConfig, ParseErrors) {
  EXPECT_THROW((void)DaemonConfig::parse("name : x\n"), ParseError);
  EXPECT_THROW((void)DaemonConfig::parse("@app {\n}\n"), ParseError);
  EXPECT_THROW((void)DaemonConfig::parse("@app /bin/x {\nno-colon\n}\n"),
               ParseError);
  EXPECT_THROW((void)DaemonConfig::parse("@app /bin/x {\nname : x\n"),
               ParseError);  // unterminated
  EXPECT_THROW((void)DaemonConfig::parse("}\n"), ParseError);
  EXPECT_THROW((void)DaemonConfig::parse("@global x {\n}\n"), ParseError);
}

TEST(DaemonConfig, SignedMessageJoinsWithNewlines) {
  EXPECT_EQ(signed_message({"hash", "name", "rules"}), "hash\nname\nrules");
  EXPECT_EQ(signed_message({}), "");
}

// ---------------------------------------------------------------- daemon

/// Scripted resolver for daemon unit tests.
class FakeResolver : public FlowResolver {
 public:
  std::optional<FlowOwner> resolve(const net::FiveTuple& flow,
                                   bool as_destination) const override {
    if (as_destination && dst_owner) {
      (void)flow;
      return dst_owner;
    }
    if (!as_destination && src_owner) return src_owner;
    return std::nullopt;
  }
  std::optional<FlowOwner> src_owner;
  std::optional<FlowOwner> dst_owner;
};

Query make_query(std::uint16_t sport = 40000, std::uint16_t dport = 80) {
  Query q;
  q.proto = net::IpProto::kTcp;
  q.src_port = sport;
  q.dst_port = dport;
  q.keys = {"userID", "name"};
  return q;
}

const net::Ipv4Address kHostIp = *net::Ipv4Address::parse("10.0.0.1");
const net::Ipv4Address kPeerIp = *net::Ipv4Address::parse("10.0.0.2");

TEST(Daemon, AnswersWithSystemFacts) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "alice";
  owner.group_id = "users";
  owner.pid = 1234;
  owner.exe_path = "/usr/bin/skype";
  owner.exe_hash = "deadbeef";
  resolver.src_owner = owner;

  Daemon daemon(&resolver);
  const Response r = daemon.answer(make_query(), kPeerIp, kHostIp);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest(keys::kUserId), "alice");
  EXPECT_EQ(*dict.latest(keys::kGroupId), "users");
  EXPECT_EQ(*dict.latest(keys::kPid), "1234");
  EXPECT_EQ(*dict.latest(keys::kExeHash), "deadbeef");
  EXPECT_EQ(daemon.stats().queries_answered, 1u);
}

TEST(Daemon, IncludesAppConfigPairs) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "alice";
  owner.exe_path = "/usr/bin/skype";
  resolver.src_owner = owner;

  Daemon daemon(&resolver);
  daemon.add_config(ConfigTrust::kSystem, DaemonConfig::parse(kSkypeConfig));
  const Response r = daemon.answer(make_query(), kPeerIp, kHostIp);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest(keys::kName), "skype");
  EXPECT_EQ(*dict.latest(keys::kAppName), "skype");  // alias
  EXPECT_EQ(*dict.latest(keys::kVersion), "210");
  EXPECT_TRUE(dict.contains(keys::kRequirements));
}

TEST(Daemon, UserConfigLandsInLaterSection) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "alice";
  owner.exe_path = "/usr/bin/research-app";
  resolver.src_owner = owner;

  Daemon daemon(&resolver);
  daemon.add_config(ConfigTrust::kSystem,
                    DaemonConfig::parse("@app /usr/bin/research-app {\n"
                                        "name : research-app\n}\n"));
  daemon.add_config(ConfigTrust::kUser,
                    DaemonConfig::parse("@app /usr/bin/research-app {\n"
                                        "requirements : block all\n}\n"));
  const Response r = daemon.answer(make_query(), kPeerIp, kHostIp);
  ASSERT_GE(r.sections.size(), 2u);
  // System facts first, user config in a later section.
  EXPECT_NE(r.sections[0].find(keys::kName), nullptr);
  EXPECT_EQ(r.sections[0].find(keys::kRequirements), nullptr);
  EXPECT_NE(r.sections[1].find(keys::kRequirements), nullptr);
}

TEST(Daemon, DynamicPairsInFinalSection) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "alice";
  owner.exe_path = "/usr/bin/browser";
  owner.dynamic_pairs = {{"user-click", "true"}};
  resolver.src_owner = owner;

  Daemon daemon(&resolver);
  const Response r = daemon.answer(make_query(), kPeerIp, kHostIp);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest("user-click"), "true");
  EXPECT_NE(r.sections.back().find("user-click"), nullptr);
}

TEST(Daemon, HostFactsIncluded) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "system";
  owner.exe_path = "/windows/system32/services.exe";
  resolver.dst_owner = owner;

  Daemon daemon(&resolver);
  daemon.add_host_fact(keys::kOsPatch, "MS08-067");
  const Response r = daemon.answer(make_query(40000, 445), kPeerIp, kHostIp);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest(keys::kOsPatch), "MS08-067");
}

TEST(Daemon, UnknownFlowAnswersNoUser) {
  FakeResolver resolver;  // resolves nothing
  Daemon daemon(&resolver);
  const Response r = daemon.answer(make_query(), kPeerIp, kHostIp);
  const ResponseDict dict(r);
  EXPECT_EQ(*dict.latest("error"), "NO-USER");
  EXPECT_EQ(daemon.stats().queries_unresolved, 1u);
}

// ------------------------------------------------- RFC-1413 compatibility

TEST(DaemonClassic, AnswersClassicIdentQuery) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "jnaous";
  owner.exe_path = "/usr/bin/ssh";
  resolver.src_owner = owner;
  Daemon daemon(&resolver);
  // RFC 1413: "<port-on-answering-host> , <port-on-asking-host>".
  const auto reply = daemon.answer_classic("6193, 23", kPeerIp, kHostIp);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "6193, 23 : USERID : UNIX : jnaous");
  EXPECT_EQ(daemon.stats().classic_queries, 1u);
}

TEST(DaemonClassic, NoUserError) {
  FakeResolver resolver;  // resolves nothing
  Daemon daemon(&resolver);
  const auto reply = daemon.answer_classic("6193 , 23", kPeerIp, kHostIp);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "6193, 23 : ERROR : NO-USER");
}

TEST(DaemonClassic, IdentxxQueriesAreNotClassic) {
  FakeResolver resolver;
  Daemon daemon(&resolver);
  EXPECT_FALSE(daemon.answer_classic("tcp 40000 80\nuserID\n", kPeerIp, kHostIp)
                   .has_value());
  EXPECT_FALSE(daemon.answer_classic("", kPeerIp, kHostIp).has_value());
  EXPECT_FALSE(daemon.answer_classic("abc, def", kPeerIp, kHostIp).has_value());
  EXPECT_FALSE(daemon.answer_classic("0, 80", kPeerIp, kHostIp).has_value());
  EXPECT_FALSE(
      daemon.answer_classic("99999, 80", kPeerIp, kHostIp).has_value());
}

TEST(Daemon, EchoesFlowPortsInResponse) {
  FakeResolver resolver;
  FlowOwner owner;
  owner.user_id = "alice";
  owner.exe_path = "/bin/x";
  resolver.src_owner = owner;
  Daemon daemon(&resolver);
  const Response r = daemon.answer(make_query(1234, 5678), kPeerIp, kHostIp);
  EXPECT_EQ(r.src_port, 1234);
  EXPECT_EQ(r.dst_port, 5678);
  EXPECT_EQ(r.proto, net::IpProto::kTcp);
}

}  // namespace
}  // namespace identxx::proto
