// Unit tests for src/util: strings, hex, rng, logging.

#include <gtest/gtest.h>

#include "util/hex.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace identxx::util {
namespace {

// ---------------------------------------------------------------- trim

TEST(Strings, TrimRemovesBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\n x \n"), "x");
}

TEST(Strings, TrimEmptyAndAllSpace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t  "), "");
}

TEST(Strings, TrimLeftRightIndependent) {
  EXPECT_EQ(trim_left("  a  "), "a  ");
  EXPECT_EQ(trim_right("  a  "), "  a");
}

// ---------------------------------------------------------------- split

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a\t b \n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitOnceFindsFirst) {
  const auto [head, tail] = split_once("key: value: extra", ':');
  EXPECT_EQ(head, "key");
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, " value: extra");
}

TEST(Strings, SplitOnceMissingSeparator) {
  const auto [head, tail] = split_once("no-colon", ':');
  EXPECT_EQ(head, "no-colon");
  EXPECT_FALSE(tail.has_value());
}

TEST(Strings, SplitLinesHandlesCrLfAndNoTerminator) {
  const auto lines = split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, SplitLinesEmptyLines) {
  const auto lines = split_lines("a\n\nb\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

// ---------------------------------------------------------------- join

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
}

// ---------------------------------------------------------------- case

TEST(Strings, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Skype", "skype"));
  EXPECT_FALSE(iequals("skype", "skyped"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("00-local-header.control", "00-"));
  EXPECT_TRUE(ends_with("00-local-header.control", ".control"));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_FALSE(ends_with("ab", "abc"));
}

// ---------------------------------------------------------------- numbers

TEST(Strings, ParseU64Valid) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("65535"), 65535u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
}

TEST(Strings, ParseU64Invalid) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
}

TEST(Strings, ParseI64SignedRange) {
  EXPECT_EQ(parse_i64("-1"), -1);
  EXPECT_EQ(parse_i64("+5"), 5);
  EXPECT_EQ(parse_i64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_i64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(parse_i64("9223372036854775808").has_value());
  EXPECT_FALSE(parse_i64("-9223372036854775809").has_value());
}

TEST(Strings, AllDigits) {
  EXPECT_TRUE(all_digits("0123"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("$x + $x", "$x", "y"), "y + y");
  EXPECT_EQ(replace_all("abc", "z", "y"), "abc");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

// ---------------------------------------------------------------- hex

TEST(Hex, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xff, 0x12, 0xab};
  const std::string encoded = hex_encode(bytes);
  EXPECT_EQ(encoded, "00ff12ab");
  const auto decoded = hex_decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bytes);
}

TEST(Hex, DecodeAcceptsUppercase) {
  const auto decoded = hex_decode("ABCDEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ((*decoded)[0], 0xab);
}

TEST(Hex, DecodeRejectsBadInput) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // non-hex
}

TEST(Hex, EmptyIsValid) {
  EXPECT_EQ(hex_encode({}), "");
  const auto decoded = hex_decode("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughUniformity) {
  SplitMix64 rng(1234);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    buckets[rng.next_below(10)]++;
  }
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 10 - kDraws / 50);
    EXPECT_LT(count, kDraws / 10 + kDraws / 50);
  }
}

// ---------------------------------------------------------------- logging

TEST(Logging, LevelGating) {
  auto& logger = Logger::instance();
  const auto old_level = logger.level();
  logger.set_level(LogLevel::kOff);
  const auto before = logger.lines_written();
  IDXX_LOG(kError, "test") << "should be suppressed";
  EXPECT_EQ(logger.lines_written(), before);
  logger.set_level(old_level);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace identxx::util
