// Unit tests for the controller layer: .control file assembly (§3.4),
// baseline controllers (vanilla ACL semantics, Ethane), revocation,
// flow-usage accounting, query interception, and flow-entry expiry
// behaviour.

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "identxx/keys.hpp"
#include "pf/control_files.hpp"
#include "util/error.hpp"

namespace identxx {
namespace {

using core::FlowHandle;
using core::Network;

// ---------------------------------------------------------------- files

TEST(ControlFiles, SortedAndConcatenated) {
  // Out-of-order input; 99- must end up last so its block wins.
  pf::Ruleset rs = pf::load_control_files({
      {"99-footer.control", "block all\n"},
      {"00-header.control", "table <lan> { 10.0.0.0/8 }\npass all\n"},
  });
  ASSERT_EQ(rs.rules.size(), 2u);
  EXPECT_EQ(rs.rules[0].action, pf::RuleAction::kPass);
  EXPECT_EQ(rs.rules[0].source_label, "00-header.control");
  EXPECT_EQ(rs.rules[1].action, pf::RuleAction::kBlock);
  EXPECT_EQ(rs.rules[1].source_label, "99-footer.control");
  EXPECT_TRUE(rs.tables.contains("lan"));
}

TEST(ControlFiles, LaterFilesSeeEarlierDefinitions) {
  // 50-skype.control uses tables/macros defined in 00-local-header.
  pf::Ruleset rs = pf::load_control_files({
      {"50-app.control", "pass from <lan> to any with member(@src[name], $apps)\n"},
      {"00-defs.control", "table <lan> { 10.0.0.0/8 }\napps = \"{ a b }\"\n"},
  });
  ASSERT_EQ(rs.rules.size(), 1u);
}

TEST(ControlFiles, NonControlExtensionIgnored) {
  pf::Ruleset rs = pf::load_control_files({
      {"readme.txt", "this is not policy at all ((("},
      {"10-rules.control", "block all\n"},
  });
  EXPECT_EQ(rs.rules.size(), 1u);
}

TEST(ControlFiles, ErrorNamesTheFile) {
  try {
    (void)pf::load_control_files({{"30-bad.control", "pass from ((("}});
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("30-bad.control"), std::string::npos);
  }
}

TEST(ControlFiles, InstallControllerFromFiles) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& controller = net.install_controller_files({
      {"99-deny.control", "block from any to any port 23\n"},
      {"00-allow.control", "pass all\n"},
  });
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle ok = net.start_flow(client, pid, "10.0.0.2", 80);
  const FlowHandle telnet = net.start_flow(client, pid, "10.0.0.2", 23);
  net.run();
  EXPECT_TRUE(net.flow_delivered(ok));
  EXPECT_FALSE(net.flow_delivered(telnet));
  EXPECT_EQ(controller.stats().flows_blocked, 1u);
}

// ---------------------------------------------------------------- vanilla

struct VanillaFixture : ::testing::Test {
  VanillaFixture() {
    s1 = net.add_switch("s1");
    client = &net.add_host("client", "10.0.0.1");
    server = &net.add_host("server", "192.168.1.1");
    net.link(*client, s1);
    net.link(*server, s1);
    fw = &net.install_vanilla_firewall(false);
    client->add_user("u", "users");
    pid = client->launch("u", "/bin/x");
  }

  Network net;
  sim::NodeId s1{};
  host::Host* client = nullptr;
  host::Host* server = nullptr;
  ctrl::VanillaFirewall* fw = nullptr;
  int pid = 0;
};

TEST_F(VanillaFixture, DefaultDenyBlocks) {
  const FlowHandle h = net.start_flow(*client, pid, "192.168.1.1", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
  EXPECT_EQ(fw->stats().flows_blocked, 1u);
}

TEST_F(VanillaFixture, FirstMatchWins) {
  ctrl::VanillaFirewall::AclRule deny;
  deny.dst = *net::Cidr::parse("192.168.1.1/32");
  deny.allow = false;
  fw->add_rule(deny);
  ctrl::VanillaFirewall::AclRule allow;  // broader allow AFTER the deny
  allow.allow = true;
  fw->add_rule(allow);
  const FlowHandle h = net.start_flow(*client, pid, "192.168.1.1", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));  // first match (deny) won
}

TEST_F(VanillaFixture, PortRangeRule) {
  ctrl::VanillaFirewall::AclRule allow;
  allow.dst_port_low = 8000;
  allow.dst_port_high = 8100;
  allow.allow = true;
  fw->add_rule(allow);
  const FlowHandle in_range = net.start_flow(*client, pid, "192.168.1.1", 8050);
  const FlowHandle out_of_range =
      net.start_flow(*client, pid, "192.168.1.1", 8200);
  net.run();
  EXPECT_TRUE(net.flow_delivered(in_range));
  EXPECT_FALSE(net.flow_delivered(out_of_range));
}

TEST_F(VanillaFixture, ProtocolSelector) {
  ctrl::VanillaFirewall::AclRule allow_udp;
  allow_udp.proto = net::IpProto::kUdp;
  allow_udp.allow = true;
  fw->add_rule(allow_udp);
  const FlowHandle udp =
      net.start_flow(*client, pid, "192.168.1.1", 53, net::IpProto::kUdp);
  const FlowHandle tcp =
      net.start_flow(*client, pid, "192.168.1.1", 53, net::IpProto::kTcp);
  net.run();
  EXPECT_TRUE(net.flow_delivered(udp));
  EXPECT_FALSE(net.flow_delivered(tcp));
}

TEST_F(VanillaFixture, StatefulReverseAllowed) {
  ctrl::VanillaFirewall::AclRule allow;
  allow.src = *net::Cidr::parse("10.0.0.0/8");
  allow.allow = true;
  fw->add_rule(allow);
  const FlowHandle h = net.start_flow(*client, pid, "192.168.1.1", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  // Reverse direction matches no ACL rule but is allowed by the state
  // table: the server's reply reaches the client.
  server->send_flow_packet(h.flow.reversed(), "SYN-ACK",
                           net::TcpFlags::kSyn | net::TcpFlags::kAck);
  net.run();
  EXPECT_EQ(client->stats().flow_payloads_received, 1u);
  // An unrelated reverse-direction flow (no prior state) stays blocked.
  net::FiveTuple fresh = h.flow.reversed();
  fresh.src_port = 9999;
  server->send_flow_packet(fresh, "unsolicited");
  net.run();
  EXPECT_EQ(client->stats().flow_payloads_received, 1u);
}

// ---------------------------------------------------------------- learning

TEST(LearningSwitch, LearnsFloodsAndInstalls) {
  openflow::Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<openflow::Switch>("s1"));
  auto h1_ptr = std::make_unique<host::Host>(
      "h1", *net::Ipv4Address::parse("10.0.0.1"), net::MacAddress::for_node(1));
  auto h2_ptr = std::make_unique<host::Host>(
      "h2", *net::Ipv4Address::parse("10.0.0.2"), net::MacAddress::for_node(2));
  host::Host* h1 = h1_ptr.get();
  host::Host* h2 = h2_ptr.get();
  const auto h1_id = topo.add_host(std::move(h1_ptr));
  const auto h2_id = topo.add_host(std::move(h2_ptr));
  topo.link(h1_id, s1);
  topo.link(h2_id, s1);
  ctrl::LearningSwitchController controller(&topo);
  controller.adopt_switch(s1);

  const auto send = [&](host::Host* from, host::Host* to, std::uint16_t sport) {
    topo.simulator().send(
        from->id(), 1,
        net::make_tcp_packet(from->mac(), to->mac(), from->ip(), to->ip(),
                             sport, 9999, "payload", net::TcpFlags::kPsh));
    topo.simulator().run();
  };

  // 1: h1 -> h2: dst unknown, flooded; h1's MAC learned.
  send(h1, h2, 1000);
  EXPECT_EQ(controller.stats().floods, 1u);
  EXPECT_EQ(controller.stats().macs_learned, 1u);
  EXPECT_EQ(h2->stats().flow_payloads_received, 1u);

  // 2: h2 -> h1: h1 known, entry installed and packet forwarded.
  send(h2, h1, 2000);
  EXPECT_EQ(controller.stats().entries_installed, 1u);
  EXPECT_EQ(h1->stats().flow_payloads_received, 1u);

  // 3: h1 -> h2 again: h2 now known too.
  send(h1, h2, 1001);
  EXPECT_EQ(controller.stats().entries_installed, 2u);

  // 4: traffic in both directions now rides installed entries.
  const auto packet_ins = controller.stats().packet_ins;
  send(h1, h2, 1002);
  send(h2, h1, 2001);
  EXPECT_EQ(controller.stats().packet_ins, packet_ins);
  EXPECT_EQ(h2->stats().flow_payloads_received, 3u);
  EXPECT_EQ(h1->stats().flow_payloads_received, 2u);
}

// ---------------------------------------------------------------- usage

TEST(FlowUsageAccounting, CountersAggregateAcrossPath) {
  Network net;
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(s1, s2);
  net.link(server, s2);
  auto& controller = net.install_controller("pass all\n");
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80, net::IpProto::kTcp, "one");
  net.run();
  client.send_flow_packet(h.flow, "two", net::TcpFlags::kPsh);
  client.send_flow_packet(h.flow, "three", net::TcpFlags::kPsh);
  net.run();

  const auto usage = controller.flow_usage();
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage[0].flow, h.flow);
  // The first packet was released via packet-out at s1 (bypassing its
  // table) but matched s2's freshly installed entry; the two follow-ups
  // matched on both switches.  The per-flow maximum across switches — the
  // true packet count — is therefore 3.
  EXPECT_EQ(usage[0].packets, 3u);
  EXPECT_GT(usage[0].bytes, 0u);
}

TEST(Revocation, RevokeIfTargetsOnlyMatchingFlows) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "10.0.0.1");
  auto& b = net.add_host("b", "10.0.0.2");
  auto& server = net.add_host("server", "10.0.0.3");
  net.link(a, s1);
  net.link(b, s1);
  net.link(server, s1);
  auto& controller = net.install_controller("pass all\n");
  a.add_user("u", "users");
  b.add_user("u", "users");
  const int pa = a.launch("u", "/bin/x");
  const int pb = b.launch("u", "/bin/x");
  const FlowHandle fa = net.start_flow(a, pa, "10.0.0.3", 80);
  const FlowHandle fb = net.start_flow(b, pb, "10.0.0.3", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(fa));
  ASSERT_TRUE(net.flow_delivered(fb));

  // Revoke only host a's flows.
  const std::size_t removed = controller.revoke_if(
      [&a](const net::FiveTuple& flow) { return flow.src_ip == a.ip(); });
  EXPECT_GE(removed, 1u);

  const auto packet_ins = controller.stats().packet_ins;
  // b's next packet rides its surviving entry; a's packet re-decides.
  b.send_flow_packet(fb.flow, "still cached", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller.stats().packet_ins, packet_ins);
  a.send_flow_packet(fa.flow, "re-decide", net::TcpFlags::kPsh);
  net.run();
  EXPECT_GT(controller.stats().packet_ins, packet_ins);
}

// ---------------------------------------------------------------- expiry

TEST(FlowExpiry, IdleEntryExpiresAndFlowRedecides) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.flow_idle_timeout = 10 * sim::kMillisecond;
  auto& controller = net.install_controller("pass all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  const auto flows_before = controller.stats().flows_seen;

  // Let the entry idle out, then send another packet: it must re-trigger
  // the full decision (packet-in, queries).
  net.simulator().schedule_after(
      100 * sim::kMillisecond, [&client, flow = h.flow] {
        client.send_flow_packet(flow, "later", net::TcpFlags::kPsh);
      });
  net.run();
  EXPECT_EQ(controller.stats().flows_seen, flows_before + 1);
  EXPECT_GE(controller.stats().flows_expired, 1u);
  EXPECT_EQ(net.host("server").stats().flow_payloads_received, 2u);
}

// ---------------------------------------------------------------- intercept

TEST(QueryInterception, ControllerAnswersOnBehalfOfHost) {
  // §3.4: "To respond to an intercepted query on behalf of an end-host,
  // the controller spoofs the IP address of the end-host, sends a response
  // itself, but does not forward the query."
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& asker = net.add_host("asker", "10.0.0.1");
  auto& target = net.add_host("target", "10.0.0.2");
  net.link(asker, s1);
  net.link(target, s1);
  auto& controller = net.install_controller("pass all\n");
  controller.set_query_interceptor(
      [&target](const proto::Query& query, net::Ipv4Address target_ip)
          -> std::optional<proto::Response> {
        if (target_ip != target.ip()) return std::nullopt;
        proto::Response response;
        response.proto = query.proto;
        response.src_port = query.src_port;
        response.dst_port = query.dst_port;
        proto::Section section;
        section.add(proto::keys::kUserId, "proxied-identity");
        response.append_section(section);
        return response;
      });

  asker.add_user("u", "users");
  const int pid = asker.launch("u", "/bin/x");
  const auto ident_flow = asker.connect_flow(pid, target.ip(), proto::kIdentPort);
  proto::Query query;
  query.proto = net::IpProto::kTcp;
  query.src_port = 1111;
  query.dst_port = 2222;
  asker.send_flow_packet(ident_flow, query.serialize(),
                         net::TcpFlags::kPsh | net::TcpFlags::kAck);
  net.run();

  // The target's daemon never saw the query...
  EXPECT_EQ(target.stats().ident_queries_received, 0u);
  // ...but the asker got an answer "from" the target's address.
  bool answered = false;
  for (const auto& packet : asker.delivered()) {
    if (packet.tcp && packet.tcp->src_port == proto::kIdentPort) {
      EXPECT_EQ(packet.ip.src, target.ip());  // spoofed
      const proto::ResponseDict dict(
          proto::Response::parse(packet.payload_text()));
      EXPECT_EQ(*dict.latest(proto::keys::kUserId), "proxied-identity");
      answered = true;
    }
  }
  EXPECT_TRUE(answered);
  EXPECT_GE(controller.stats().queries_proxied, 1u);
}

// ---------------------------------------------------------------- misc

TEST(NetworkFacade, HostLookupAndValidation) {
  Network net;
  EXPECT_THROW((void)net.add_host("h", "not-an-ip"), Error);
  const auto s1 = net.add_switch("s1");
  auto& h = net.add_host("h", "10.0.0.1");
  net.link(h, s1);
  EXPECT_EQ(&net.host("h"), &h);
  EXPECT_THROW((void)net.host("nope"), Error);
  EXPECT_THROW((void)net.add_host("h", "10.0.0.2"), Error);  // dup name
  EXPECT_THROW((void)net.host(s1), Error);                   // not a host
}

TEST(NetworkFacade, StartFlowValidatesIp) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& h = net.add_host("h", "10.0.0.1");
  net.link(h, s1);
  h.add_user("u", "users");
  const int pid = h.launch("u", "/bin/x");
  EXPECT_THROW((void)net.start_flow(h, pid, "bogus", 80), Error);
}

}  // namespace
}  // namespace identxx
