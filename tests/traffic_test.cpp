// Tests for the traffic-model library (src/net/traffic) and the congestion
// knobs it plugs into (DESIGN.md §12): spec parsing, generator packet
// accounting, incast tail drops, AIMD backoff, and the bit-identical
// shard/worker invariant under congestion.

#include <gtest/gtest.h>

#include <string>

#include "core/scenario.hpp"
#include "net/traffic/traffic.hpp"
#include "sim/worker_pool.hpp"
#include "util/error.hpp"

namespace identxx {
namespace {

using core::Scenario;
using core::ScenarioOptions;
using core::ScenarioResult;
using net::traffic::Model;
using net::traffic::TrafficSpec;

// ----------------------------------------------------------- spec parsing

TEST(TrafficSpecTest, ParsesModelsAndKeys) {
  const TrafficSpec cbr = TrafficSpec::parse("cbr,packets=64,rate=20000");
  EXPECT_EQ(cbr.model, Model::kCbr);
  EXPECT_EQ(cbr.packets, 64u);
  EXPECT_EQ(cbr.rate_pps, 20000u);

  const TrafficSpec onoff =
      TrafficSpec::parse("onoff, on_us=100, off_us=300, payload=256");
  EXPECT_EQ(onoff.model, Model::kOnOff);
  EXPECT_EQ(onoff.on_time, 100 * sim::kMicrosecond);
  EXPECT_EQ(onoff.off_time, 300 * sim::kMicrosecond);
  EXPECT_EQ(onoff.payload_bytes, 256u);

  const TrafficSpec pareto = TrafficSpec::parse("pareto,shape=1.3,mean=48.5");
  EXPECT_EQ(pareto.model, Model::kPareto);
  EXPECT_DOUBLE_EQ(pareto.pareto_shape, 1.3);
  EXPECT_DOUBLE_EQ(pareto.pareto_mean, 48.5);

  const TrafficSpec aimd =
      TrafficSpec::parse("aimd,window=4,rtt_us=2000,start_us=500");
  EXPECT_EQ(aimd.model, Model::kAimd);
  EXPECT_DOUBLE_EQ(aimd.aimd_window, 4.0);
  EXPECT_EQ(aimd.aimd_rtt, 2000 * sim::kMicrosecond);
  EXPECT_EQ(aimd.start_delay, 500 * sim::kMicrosecond);

  EXPECT_EQ(TrafficSpec::parse("single").model, Model::kSingle);
  EXPECT_EQ(TrafficSpec::parse("on-off").model, Model::kOnOff);
}

TEST(TrafficSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW((void)TrafficSpec::parse(""), Error);
  EXPECT_THROW((void)TrafficSpec::parse("warp-speed"), Error);
  EXPECT_THROW((void)TrafficSpec::parse("cbr,packets"), Error);
  EXPECT_THROW((void)TrafficSpec::parse("cbr,rate=0"), Error);
  EXPECT_THROW((void)TrafficSpec::parse("cbr,bogus=1"), Error);
  EXPECT_THROW((void)TrafficSpec::parse("pareto,shape=-2"), Error);
  EXPECT_THROW((void)TrafficSpec::parse("aimd,rtt_us=oops"), Error);
}

TEST(TrafficSpecTest, ScenarioDirectiveValidatesEagerly) {
  // Bad model / unknown flow fail at parse time with a line number, not
  // at run time.
  EXPECT_THROW((void)Scenario::parse("switch s1\n"
                                     "host h 10.0.0.1 s1\n"
                                     "user h u g\n"
                                     "launch c h u /bin/x\n"
                                     "flow f1 c 10.0.0.2 80\n"
                                     "traffic f1 warp-speed\n"),
               ParseError);
  EXPECT_THROW((void)Scenario::parse("switch s1\n"
                                     "traffic ghost cbr packets=4\n"),
               ParseError);
}

// --------------------------------------------------------- flow accounting

constexpr char kTwoHostScenario[] = R"(
seed 42
switch s1
host client 10.0.0.1 s1
host server 10.0.0.2 s1
user client alice staff
user server www daemons
launch c1 client alice /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
pass all
policy end
flow f1 c1 10.0.0.2 80
expect f1 delivered
)";

TEST(TrafficRunTest, CbrSendsExactPacketCount) {
  const Scenario scenario = Scenario::parse(kTwoHostScenario);
  ScenarioOptions options;
  options.traffic = "cbr,packets=16,rate=100000,start_us=1000";
  const ScenarioResult result = scenario.run(options);
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_TRUE(result.flows[0].delivered);
  // SYN + 15 paced payload packets; uncongested, so all arrive.
  EXPECT_EQ(result.flows[0].packets_sent, 16u);
  EXPECT_EQ(result.flows[0].packets_delivered, 16u);
}

TEST(TrafficRunTest, DefaultSingleFlowSendsOnePacket) {
  const ScenarioResult result = Scenario::parse(kTwoHostScenario).run();
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].packets_sent, 1u);
  EXPECT_EQ(result.flows[0].packets_delivered, 1u);
  EXPECT_EQ(result.queue_tail_drops, 0u);
}

TEST(TrafficRunTest, ParetoSizeIsSeedDeterministic) {
  std::string text = kTwoHostScenario;
  text += "traffic f1 pareto mean=32 shape=1.5 rate=100000\n";
  const Scenario scenario = Scenario::parse(text);
  const ScenarioResult a = scenario.run(ScenarioOptions{});
  const ScenarioResult b = scenario.run(ScenarioOptions{});
  ASSERT_EQ(a.flows.size(), 1u);
  EXPECT_GE(a.flows[0].packets_sent, 1u);
  EXPECT_EQ(a.flows[0].packets_sent, b.flows[0].packets_sent);
  EXPECT_EQ(a.flows[0].packets_delivered, b.flows[0].packets_delivered);

  ScenarioOptions reseeded;
  reseeded.seed = 1234;
  const ScenarioResult c = scenario.run(reseeded);
  const ScenarioResult d = scenario.run(reseeded);
  EXPECT_EQ(c.flows[0].packets_sent, d.flows[0].packets_sent);
}

TEST(TrafficRunTest, OnOffRespectsDutyCycleTiming) {
  const Scenario scenario = Scenario::parse(kTwoHostScenario);
  ScenarioOptions options;
  options.traffic = "onoff,packets=12,rate=20000,on_us=100,off_us=400";
  const ScenarioResult result = scenario.run(options);
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].packets_sent, 12u);
  EXPECT_EQ(result.flows[0].packets_delivered, 12u);
}

// ------------------------------------------------------ incast congestion

// `clients` senders fan in to one server across a single bottleneck link
// declared at 10 Mbps (host attachments stay at the 10G default, so only
// s1—s2 congests).
std::string incast_scenario(int clients) {
  std::string text =
      "seed 42\n"
      "switch s1\n"
      "switch s2\n"
      "link s1 s2 10 10\n"
      "host server 10.0.1.1 s2\n"
      "user server www daemons\n"
      "launch srv server www /usr/sbin/httpd\n"
      "listen srv 80\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "host c" + n + " 10.0.0." + std::to_string(10 + i) + " s1\n";
    text += "user c" + n + " u" + n + " staff\n";
    text += "launch l" + n + " c" + n + " u" + n + " /usr/bin/load\n";
  }
  text += "policy begin\npass all\npolicy end\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "flow f" + n + " l" + n + " 10.0.1.1 80\n";
    text += "expect f" + n + " delivered\n";
  }
  return text;
}

TEST(CongestionTest, IncastOverflowsBoundedQueues) {
  const Scenario scenario = Scenario::parse(incast_scenario(8));
  ScenarioOptions options;
  options.queue_depth = 8;
  // 8 x 4k pps of 512B packets ≈ 145 Mbps offered into a 10 Mbps wire.
  options.traffic = "cbr,packets=64,rate=4000,payload=512,start_us=5000";
  const ScenarioResult result = scenario.run(options);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.queue_tail_drops, 0u);
  ASSERT_EQ(result.switch_queue_drops.size(), 2u);
  // All congestion is on s1's egress toward s2.
  EXPECT_EQ(result.switch_queue_drops[0], result.queue_tail_drops);
  EXPECT_EQ(result.switch_queue_drops[1], 0u);
  // Every flow still got its SYN through (admission precedes the flood).
  for (const auto& flow : result.flows) {
    EXPECT_TRUE(flow.delivered);
    EXPECT_LT(flow.packets_delivered, flow.packets_sent);
  }
}

TEST(CongestionTest, AimdBacksOffAndReducesDrops) {
  const Scenario scenario = Scenario::parse(incast_scenario(8));
  ScenarioOptions cbr;
  cbr.queue_depth = 8;
  cbr.traffic = "cbr,packets=64,rate=4000,payload=512,start_us=5000";
  const ScenarioResult open_loop = scenario.run(cbr);
  ASSERT_GT(open_loop.queue_tail_drops, 0u);

  ScenarioOptions aimd = cbr;
  aimd.traffic = "aimd,packets=64,payload=512,start_us=5000,rtt_us=4000,window=2";
  const ScenarioResult closed_loop = scenario.run(aimd);
  EXPECT_TRUE(closed_loop.ok());
  // The closed loop sees its own drops and halves; the open loop keeps
  // blasting.  Same offered load, measurably less loss.
  EXPECT_LT(closed_loop.queue_tail_drops, open_loop.queue_tail_drops);
  std::uint64_t delivered_cbr = 0, delivered_aimd = 0;
  for (const auto& flow : open_loop.flows) delivered_cbr += flow.packets_delivered;
  for (const auto& flow : closed_loop.flows) {
    delivered_aimd += flow.packets_delivered;
  }
  EXPECT_GT(delivered_aimd, 0u);
  (void)delivered_cbr;
}

// --------------------------------------------- shard/worker bit-identity

constexpr char kDiamondMix[] = R"(
seed 7
switch s1
switch s2
switch s3
switch s4
link s1 s2 10 100
link s1 s3 10 100
link s2 s4 10 100
link s3 s4 10 100
host a1 10.0.0.1 s1
host a2 10.0.0.2 s1
host a3 10.0.0.3 s1
host b 10.0.1.1 s4
user a1 u1 staff
user a2 u2 staff
user a3 u3 staff
user b www daemons
launch l1 a1 u1 /usr/bin/elephant
launch l2 a2 u2 /usr/bin/mouse
launch l3 a3 u3 /usr/bin/mouse
launch srv b www /usr/sbin/httpd
listen srv 80
policy begin
pass all
policy end
flow f1 l1 10.0.1.1 80
traffic f1 pareto mean=48 shape=1.2 rate=50000 payload=512 start_us=5000
flow f2 l2 10.0.1.1 80
traffic f2 pareto mean=8 shape=2.5 rate=50000 payload=512 start_us=5000
flow f3 l3 10.0.1.1 80
traffic f3 cbr packets=40 rate=50000 payload=512 start_us=5000
expect f1 delivered
expect f2 delivered
expect f3 delivered
)";

ScenarioResult run_sharded(const Scenario& scenario, std::uint32_t shards,
                           std::uint32_t workers, std::uint32_t k_paths,
                           std::uint32_t queue_depth,
                           const std::string& traffic = "") {
  ScenarioOptions options;
  options.shards = shards;
  options.workers = workers;
  options.k_paths = k_paths;
  options.queue_depth = queue_depth;
  options.traffic = traffic;
  return scenario.run(options);
}

TEST(CongestionTest, ElephantMiceBitIdenticalAcrossShardsAndWorkers) {
  const Scenario scenario = Scenario::parse(kDiamondMix);
  const ScenarioResult base = run_sharded(scenario, 1, 1, 2, 4);
  // Replay determinism first: the same configuration twice.
  EXPECT_TRUE(base.equivalent_to(run_sharded(scenario, 1, 1, 2, 4)));
  // Then across shard counts and real thread counts.
  EXPECT_TRUE(base.equivalent_to(run_sharded(scenario, 4, 1, 2, 4)));
  EXPECT_TRUE(base.equivalent_to(run_sharded(
      scenario, 4, sim::WorkerPool::hardware_workers(), 2, 4)));
}

TEST(CongestionTest, IncastBitIdenticalAcrossShardsAndWorkers) {
  const Scenario scenario = Scenario::parse(incast_scenario(8));
  const std::string traffic =
      "cbr,packets=64,rate=4000,payload=512,start_us=5000";
  const ScenarioResult base = run_sharded(scenario, 1, 1, 2, 8, traffic);
  EXPECT_GT(base.queue_tail_drops, 0u);  // the comparison is non-vacuous
  EXPECT_TRUE(base.equivalent_to(run_sharded(scenario, 4, 1, 2, 8, traffic)));
  EXPECT_TRUE(base.equivalent_to(run_sharded(
      scenario, 4, sim::WorkerPool::hardware_workers(), 2, 8, traffic)));
}

// ------------------------------------------------- back-compat defaults

TEST(CongestionTest, IdealizedKnobsReproduceDefaultBehaviour) {
  const Scenario scenario = Scenario::parse(kTwoHostScenario);
  const ScenarioResult implicit = scenario.run(ScenarioOptions{});
  ScenarioOptions explicit_idealized;
  explicit_idealized.k_paths = 1;
  explicit_idealized.link_bandwidth_bps = 0;
  explicit_idealized.queue_depth = 0;
  const ScenarioResult spelled_out = scenario.run(explicit_idealized);
  EXPECT_TRUE(implicit.equivalent_to(spelled_out));
  EXPECT_EQ(implicit.queue_tail_drops, 0u);
}

TEST(CongestionTest, MultipathDeliversUnderEcmp) {
  // Sanity: k_paths > 1 on the diamond still delivers every flow and the
  // selection histogram surfaces in the result.
  const Scenario scenario = Scenario::parse(kDiamondMix);
  const ScenarioResult result = run_sharded(scenario, 0, 1, 2, 0);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.path_cache_stats.misses, 1u);
}

}  // namespace
}  // namespace identxx
