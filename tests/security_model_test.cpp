// §5 security analysis as executable experiments: what an attacker gains by
// compromising each component (controller, switch, end-host, user
// application), under ident++ and under the baselines.  Also the §1/§6
// comparisons: vanilla firewalls cannot separate applications sharing a
// port, and distributed firewalls absorb DoS traffic at the victim.

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "identxx/keys.hpp"

namespace identxx {
namespace {

using core::FlowHandle;
using core::Network;

int launch_app(host::Host& h, const std::string& user, const std::string& group,
               const std::string& exe, const proto::KeyValueList& pairs = {},
               std::string_view image_seed = "") {
  h.add_user(user, group);
  const int pid = h.launch(user, exe, image_seed);
  if (!pairs.empty()) {
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = pairs;
    config.apps.push_back(app);
    h.daemon().add_config(proto::ConfigTrust::kSystem, config);
  }
  return pid;
}

struct SecurityFixture : ::testing::Test {
  // attacker -- s1 -- s2 -- victim, default deny, only alice may reach the
  // victim.
  SecurityFixture() {
    s1 = net.add_switch("s1");
    s2 = net.add_switch("s2");
    attacker = &net.add_host("attacker", "10.0.0.66");
    victim = &net.add_host("victim", "10.0.0.2");
    net.link(*attacker, s1);
    net.link(s1, s2);
    net.link(*victim, s2);
    controller = &net.install_controller(
        "block all\npass from any to any with eq(@src[userID], alice)\n");
    attacker_pid = launch_app(*attacker, "eve", "users", "/bin/exploit");
    const int victim_pid = launch_app(*victim, "www", "daemons", "/bin/srv");
    victim->listen(victim_pid, 80);
  }

  Network net;
  sim::NodeId s1{}, s2{};
  host::Host* attacker = nullptr;
  host::Host* victim = nullptr;
  ctrl::IdentxxController* controller = nullptr;
  int attacker_pid = 0;
};

// ---------------------------------------------------------------- baseline

TEST_F(SecurityFixture, IntactNetworkBlocksAttacker) {
  const FlowHandle h = net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

// ---------------------------------------------------------------- §5.1

TEST_F(SecurityFixture, CompromisedControllerDisablesAllProtection) {
  controller->set_compromised(true);
  const FlowHandle h = net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  // "If the controller is compromised, an attacker can disable all
  // protection in the network."
  EXPECT_TRUE(net.flow_delivered(h));
}

// ---------------------------------------------------------------- §5.2

TEST_F(SecurityFixture, CompromisedSwitchPassesLocalTrafficOnly) {
  // "compromising a single ident++-enabled switch can disable the
  // protection it affords.  Any traffic would be able to pass through the
  // switch without regulation."
  net.switch_at(s1).set_compromised(true);
  const FlowHandle h = net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  // s1 floods the packet onward, but s2 is intact: the flow still faces
  // the controller's policy there and is blocked.
  EXPECT_FALSE(net.flow_delivered(h));
  EXPECT_GE(net.switch_at(s2).stats().packets_to_controller, 1u);

  // If every switch on the path is compromised, traffic flows unregulated.
  net.switch_at(s2).set_compromised(true);
  const FlowHandle h2 = net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h2));
  // But compromising switches "does not necessarily enable the compromise
  // of the controller": the controller still stands for other paths.
  EXPECT_FALSE(controller->stats().flows_allowed > 0);
}

// ---------------------------------------------------------------- §5.3

TEST_F(SecurityFixture, CompromisedHostCanForgeIdentity) {
  // A compromised end-host controls its daemon and "can send false ident++
  // responses": claiming to be alice defeats identity-only policies.
  attacker->set_compromised(
      [](const proto::Query& query, net::Ipv4Address) {
        proto::Response response;
        response.proto = query.proto;
        response.src_port = query.src_port;
        response.dst_port = query.dst_port;
        proto::Section lie;
        lie.add(proto::keys::kUserId, "alice");
        response.append_section(lie);
        return response;
      });
  const FlowHandle h = net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
}

TEST_F(SecurityFixture, ForgedResponsesCannotMintSignatures) {
  // ...but delegated privileges guarded by verify() survive host
  // compromise: the attacker cannot produce a valid signature, because
  // "a request would require the approval of the user in whose name the
  // request is made" (§5.3).
  const crypto::PrivateKey user_key = crypto::PrivateKey::from_seed("alice");
  controller->set_policy(pf::parse(
      "dict <pubkeys> { alice : " + user_key.public_key().to_hex() + " }\n"
      "block all\n"
      "pass from any to any \\\n"
      "  with allowed(@src[requirements]) \\\n"
      "  with verify(@src[req-sig], @pubkeys[alice], \\\n"
      "    @src[exe-hash], @src[app-name], @src[requirements])\n",
      "signed-only"));
  attacker->set_compromised(
      [](const proto::Query& query, net::Ipv4Address) {
        proto::Response response;
        response.proto = query.proto;
        response.src_port = query.src_port;
        response.dst_port = query.dst_port;
        proto::Section lie;
        lie.add(proto::keys::kExeHash, "h");
        lie.add(proto::keys::kAppName, "app");
        lie.add(proto::keys::kRequirements, "pass all");
        lie.add(proto::keys::kReqSig, std::string(192, '1'));  // garbage
        response.append_section(lie);
        return response;
      });
  const FlowHandle h = net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

// ---------------------------------------------------------------- §5.4

TEST_F(SecurityFixture, CompromisedAppInheritsOnlyItsUsersPrivileges) {
  // "compromising one user account does not allow the attacker to abuse
  // another user's privileges" — the daemon reports the real uid of the
  // process, so eve's exploit cannot claim alice's clearance...
  const FlowHandle as_eve =
      net.start_flow(*attacker, attacker_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(as_eve));

  // ...whereas a process genuinely running as alice (e.g. alice's own
  // compromised application) does get alice's network privileges.
  attacker->add_user("alice", "users");
  const int alice_pid = attacker->launch("alice", "/bin/exploit");
  const FlowHandle as_alice =
      net.start_flow(*attacker, alice_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(as_alice));
}

TEST_F(SecurityFixture, TrojanedBinaryFailsHashCheck) {
  // An app-identity policy pinned to the executable hash defeats binary
  // replacement: the trojaned image hashes differently.
  const std::string good_hash = host::Host::image_hash("/usr/bin/tool", "");
  controller->set_policy(pf::parse(
      "block all\npass from any to any with eq(@src[exe-hash], " + good_hash +
          ")\n",
      "hash-pinned"));
  attacker->add_user("alice", "users");
  const int genuine = attacker->launch("alice", "/usr/bin/tool");
  const FlowHandle ok = net.start_flow(*attacker, genuine, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(ok));

  const int trojaned = attacker->launch("alice", "/usr/bin/tool", "trojan-v1");
  const FlowHandle bad = net.start_flow(*attacker, trojaned, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(bad));
}

// ---------------------------------------------------------------- §1 / §6

TEST(BaselineComparison, VanillaFirewallCannotSeparateAppsOnSamePort) {
  // §1: "the administrator may wish to deny Skype access to an important
  // webserver but is unable to because Skype and Web traffic both use
  // destination port 80."
  const auto build = [](bool use_identxx, const char* app_name,
                        FlowHandle& handle) {
    auto net = std::make_unique<Network>();
    const auto s1 = net->add_switch("s1");
    auto& client = net->add_host("client", "10.0.0.1");
    auto& web = net->add_host("web", "10.0.0.2");
    net->link(client, s1);
    net->link(web, s1);
    if (use_identxx) {
      net->install_controller(
          "block all\n"
          "pass from any to any port 80\n"
          "block from any to any with eq(@src[name], skype)\n");
    } else {
      auto& fw = net->install_vanilla_firewall(false);
      ctrl::VanillaFirewall::AclRule allow_web;
      allow_web.dst_port_low = 80;
      allow_web.dst_port_high = 80;
      allow_web.allow = true;
      fw.add_rule(allow_web);  // the best a 5-tuple firewall can say
    }
    client.add_user("u", "users");
    const int pid = client.launch("u", std::string("/usr/bin/") + app_name);
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = std::string("/usr/bin/") + app_name;
    app.pairs = {{"name", app_name}};
    config.apps.push_back(app);
    client.daemon().add_config(proto::ConfigTrust::kSystem, config);
    const int srv = [&] {
      web.add_user("www", "daemons");
      return web.launch("www", "/usr/sbin/httpd");
    }();
    web.listen(srv, 80);
    handle = net->start_flow(client, pid, "10.0.0.2", 80);
    net->run();
    return net;
  };

  FlowHandle h;
  // Vanilla firewall: both firefox and skype reach port 80.
  auto net1 = build(false, "firefox", h);
  EXPECT_TRUE(net1->flow_delivered(h));
  auto net2 = build(false, "skype", h);
  EXPECT_TRUE(net2->flow_delivered(h));  // cannot be stopped
  // ident++: firefox passes, skype on port 80 is blocked.
  auto net3 = build(true, "firefox", h);
  EXPECT_TRUE(net3->flow_delivered(h));
  auto net4 = build(true, "skype", h);
  EXPECT_FALSE(net4->flow_delivered(h));
}

TEST(BaselineComparison, EthaneSeesNoEndHostInformation) {
  // The same PF+=2 policy under an Ethane-style controller (no ident++
  // queries): application predicates never match, so the app-gated pass
  // rule is dead and everything is blocked.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.install_ethane_controller(
      "block all\npass from any to any with eq(@src[name], approved-app)\n");
  client.add_user("u", "users");
  const int pid = client.launch("u", "/usr/bin/approved-app");
  proto::DaemonConfig config;
  proto::AppConfig app;
  app.exe_path = "/usr/bin/approved-app";
  app.pairs = {{"name", "approved-app"}};
  config.apps.push_back(app);
  client.daemon().add_config(proto::ConfigTrust::kSystem, config);
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/bin/srv");
  server.listen(srv, 80);
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));

  // Ethane can still enforce network-primitive policy (@flow works).
  Network net2;
  const auto sw = net2.add_switch("s1");
  auto& c2 = net2.add_host("client", "10.0.0.1");
  auto& s2 = net2.add_host("server", "10.0.0.2");
  net2.link(c2, sw);
  net2.link(s2, sw);
  net2.install_ethane_controller(
      "block all\npass from 10.0.0.1 to any port 80\n");
  c2.add_user("u", "users");
  const int pid2 = c2.launch("u", "/bin/x");
  const FlowHandle h2 = net2.start_flow(c2, pid2, "10.0.0.2", 80);
  net2.run();
  EXPECT_TRUE(net2.flow_delivered(h2));
}

TEST(BaselineComparison, DistributedFirewallAbsorbsDoSAtVictim) {
  // §6: with enforcement only at the receiving end-host, unwanted packets
  // still cross the network and consume victim resources; ident++ keeps
  // enforcement "in the network ... closer to the source".
  const auto attack = [](bool distributed) {
    auto net = std::make_unique<Network>();
    const auto s1 = net->add_switch("s1");
    auto& attacker = net->add_host("attacker", "10.0.0.66");
    auto& victim = net->add_host("victim", "10.0.0.2");
    net->link(attacker, s1);
    net->link(victim, s1);
    if (distributed) {
      net->install_distributed_firewall();
      victim.set_ingress_filter([](const net::Packet&) { return false; });
    } else {
      net->install_controller("block all\n");
    }
    attacker.add_user("eve", "users");
    const int pid = attacker.launch("eve", "/bin/flood");
    for (int i = 0; i < 20; ++i) {
      const auto flow = attacker.connect_flow(pid, victim.ip(), 80);
      attacker.send_flow_packet(flow, "junk");
    }
    net->run();
    // Junk that reached the victim: delivered to the application layer or
    // burned host CPU in the local ingress filter.  (ident++ daemon queries
    // are excluded: they are control-plane traffic, not attack traffic.)
    return victim.stats().flow_payloads_received +
           victim.stats().packets_filtered_ingress;
  };
  const auto received_distributed = attack(true);
  const auto received_identxx = attack(false);
  // Under the distributed firewall every junk packet hits the victim's NIC;
  // under ident++ none do (blocked at the switch).
  EXPECT_GE(received_distributed, 20u);
  EXPECT_EQ(received_identxx, 0u);
}

TEST(BaselineComparison, DistributedFirewallCanStillUseLocalIdentity) {
  // §6 credits distributed firewalls with access to end-host information;
  // our host ingress filter can implement Fig 8-style checks locally.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.install_distributed_firewall();
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  // Server only accepts traffic to port 443.
  server.set_ingress_filter([](const net::Packet& packet) {
    return packet.dst_port() == 443;
  });
  const FlowHandle blocked = net.start_flow(client, pid, "10.0.0.2", 80);
  const FlowHandle passed = net.start_flow(client, pid, "10.0.0.2", 443);
  net.run();
  EXPECT_FALSE(net.flow_delivered(blocked));
  EXPECT_TRUE(net.flow_delivered(passed));
  EXPECT_EQ(net.host("server").stats().packets_filtered_ingress, 1u);
}

}  // namespace
}  // namespace identxx
