// Batched PF evaluation (DESIGN.md §11): evaluate_batch must be
// observationally identical to serial evaluate() — same verdicts, same
// matched-rule pointers, PolicyError at the same places — while sharing
// prefilter probes and hoisted `with` predicates across the batch.  The
// centerpiece is a randomized differential sweep against the serial
// oracle; targeted tests pin down the edges (quick, negation, unknown
// tables/functions, memo scoping, OpenFlow-only keys).

#include <gtest/gtest.h>

#include <random>
#include <span>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/eval.hpp"
#include "pf/parser.hpp"
#include "util/error.hpp"

namespace identxx::pf {
namespace {

net::FiveTuple flow(const char* src, const char* dst, std::uint16_t dport = 80,
                    std::uint16_t sport = 40000,
                    net::IpProto proto = net::IpProto::kTcp) {
  return net::FiveTuple{*net::Ipv4Address::parse(src),
                        *net::Ipv4Address::parse(dst), proto, sport, dport};
}

struct StatsDelta {
  std::uint64_t evaluations = 0;
  std::uint64_t rules_scanned = 0;
  std::uint64_t functions_called = 0;
  std::uint64_t prefilter_skips = 0;
  std::uint64_t hoist_memo_hits = 0;
};

StatsDelta delta(const EngineStats& after, const EngineStats& before) {
  return StatsDelta{after.evaluations - before.evaluations,
                    after.rules_scanned - before.rules_scanned,
                    after.functions_called - before.functions_called,
                    after.prefilter_skips - before.prefilter_skips,
                    after.hoist_memo_hits - before.hoist_memo_hits};
}

/// Serial oracle, then batch, on the SAME engine (so matched-rule pointers
/// are comparable), asserting verdict identity and the cross-mode stats
/// invariants.
void expect_batch_matches_serial(const PolicyEngine& engine,
                                 const std::vector<FlowContext>& batch,
                                 const char* label) {
  const EngineStats s0 = engine.stats();
  std::vector<Verdict> serial;
  serial.reserve(batch.size());
  for (const FlowContext& ctx : batch) serial.push_back(engine.evaluate(ctx));
  const EngineStats s1 = engine.stats();
  const std::vector<Verdict> batched =
      engine.evaluate_batch(std::span<const FlowContext>(batch));
  const EngineStats s2 = engine.stats();

  ASSERT_EQ(serial.size(), batched.size()) << label;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].action, batched[i].action) << label << " flow " << i;
    EXPECT_EQ(serial[i].keep_state, batched[i].keep_state)
        << label << " flow " << i;
    EXPECT_EQ(serial[i].quick, batched[i].quick) << label << " flow " << i;
    EXPECT_EQ(serial[i].log, batched[i].log) << label << " flow " << i;
    EXPECT_EQ(serial[i].rule, batched[i].rule)
        << label << " flow " << i << ": matched-rule pointer diverged";
  }

  const StatsDelta ds = delta(s1, s0);
  const StatsDelta db = delta(s2, s1);
  EXPECT_EQ(ds.evaluations, batch.size()) << label;
  EXPECT_EQ(db.evaluations, batch.size()) << label;
  // Every rule visit serial makes is either made by the batch path or
  // provably elided by a static prefilter; every function call is either
  // made or answered from the hoist memo.
  EXPECT_EQ(ds.rules_scanned, db.rules_scanned + db.prefilter_skips) << label;
  EXPECT_EQ(ds.functions_called, db.functions_called + db.hoist_memo_hits)
      << label;
  EXPECT_EQ(ds.prefilter_skips, 0u) << label;
  EXPECT_EQ(ds.hoist_memo_hits, 0u) << label;
}

// ------------------------------------------------------------ differential

/// Randomized policy over a fixed vocabulary of tables, dicts, ports and
/// predicates — quick/negation/tables/lists/withs all in play.
std::string random_policy(std::mt19937_64& rng, const std::string& key_hex) {
  auto pick = [&rng](std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng() % options.size()));
    return std::string(*it);
  };
  auto chance = [&rng](int percent) {
    return static_cast<int>(rng() % 100) < percent;
  };

  std::string policy =
      "table <lan> { 10.0.0.0/8 192.168.1.0/24 }\n"
      "table <dmz> { 172.16.0.0/12 }\n"
      "dict <pubkeys> { vendor : " + key_hex + " }\n"
      "dict <limits> { maxver : 300 }\n"
      "apps = \"{ curl ssh skype }\"\n"
      "block all\n";
  const std::size_t rules = 4 + rng() % 16;
  for (std::size_t i = 0; i < rules; ++i) {
    std::string rule = chance(50) ? "pass" : "block";
    if (chance(15)) rule += " quick";
    if (chance(10)) rule += " log";
    const std::string host = pick({"any", "10.0.0.0/8", "192.168.1.0/24",
                                   "<lan>", "<dmz>", "{ 10.0.1.0/24 <dmz> }"});
    rule += " from ";
    if (chance(15) && host != "any") rule += "!";
    rule += host;
    if (chance(40)) rule += " port " + pick({"80", "443", "1024:2047", "8000:8007"});
    rule += " to " + pick({"any", "10.0.2.0/24", "<lan>"});
    if (chance(40)) rule += " port " + pick({"80", "22", "8080"});
    if (chance(30)) rule += " proto " + pick({"tcp", "udp"});
    const std::size_t withs = rng() % 3;
    for (std::size_t w = 0; w < withs; ++w) {
      switch (rng() % 6) {
        case 0:
          rule += " with " + pick({"eq", "gt", "lt", "gte", "lte"}) +
                  "(@src[version], " + std::to_string(100 + rng() % 300) + ")";
          break;
        case 1:
          rule += " with member(@src[name], $apps)";
          break;
        case 2:
          rule += " with includes(*@src[tags], " + pick({"trusted", "lab"}) + ")";
          break;
        case 3:
          rule += " with lte(@src[version], @limits[maxver])";
          break;
        case 4:
          rule += " with verify(@src[sig], @pubkeys[vendor], @src[name], "
                  "@src[version])";
          break;
        default:
          rule += " with allowed(@src[requirements])";
          break;
      }
    }
    if (chance(10)) rule += " keep state";
    policy += rule + "\n";
  }
  return policy;
}

proto::Response make_response(const crypto::PrivateKey& key,
                              const std::string& name,
                              const std::string& version,
                              const std::string& tags) {
  proto::Response r;
  proto::Section s;
  s.add("name", name);
  s.add("version", version);
  s.add("tags", tags);
  s.add("sig", key.sign(proto::signed_message({name, version})).to_hex());
  s.add("requirements", "block all pass from 10.0.0.0/8 to any");
  r.append_section(s);
  return r;
}

TEST(BatchDifferential, RandomRulesetsAndBatchesMatchSerialOracle) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("batch-test");
  const std::string key_hex = key.public_key().to_hex();
  // A small pool of shared attestations (the hoisting target) plus
  // per-flow variants.
  const std::vector<proto::Response> shared = {
      make_response(key, "curl", "210", "trusted,prod"),
      make_response(key, "skype", "150", "lab"),
  };
  const char* ips[] = {"10.0.0.5",    "10.0.1.9",   "10.0.2.7",
                       "192.168.1.4", "172.16.3.2", "8.8.8.8"};
  const std::uint16_t ports[] = {80, 443, 22, 8080, 1025, 8004, 40000};

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
    const std::string policy = random_policy(rng, key_hex);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + policy);
    const PolicyEngine engine(parse(policy, "diff"));

    std::vector<FlowContext> batch;
    const std::size_t flows = 8 + rng() % 48;
    for (std::size_t i = 0; i < flows; ++i) {
      FlowContext ctx;
      ctx.flow = flow(ips[rng() % 6], ips[rng() % 6], ports[rng() % 7],
                      ports[rng() % 7],
                      (rng() % 3) ? net::IpProto::kTcp : net::IpProto::kUdp);
      const std::size_t r = rng() % 4;
      if (r < 2) {
        ctx.src = proto::ResponseDict(shared[r]);  // shared attestation
      } else if (r == 2) {
        ctx.src = proto::ResponseDict(
            make_response(key, "nc", std::to_string(100 + i), ""));
      }  // r == 3: no response at all
      if (rng() % 2) ctx.dst = proto::ResponseDict(shared[0]);
      if (rng() % 4 == 0) {
        net::TenTuple of;
        of.in_port = static_cast<std::uint16_t>(1 + rng() % 4);
        ctx.openflow = of;
      }
      // Duplicate some contexts outright: a deadline batch routinely
      // carries repeat packet-ins of the same flow.
      batch.push_back(ctx);
      if (rng() % 5 == 0) batch.push_back(ctx);
    }
    expect_batch_matches_serial(engine, batch, "differential");
  }
}

// ---------------------------------------------------------------- targeted

TEST(BatchEval, QuickAndLastMatchParity) {
  const PolicyEngine engine(parse(
      "block all\n"
      "pass from 10.0.0.0/8 to any port 80\n"
      "block quick from 10.0.0.0/16 to any\n"
      "pass from 10.0.0.0/8 to any\n",
      "test"));
  std::vector<FlowContext> batch;
  for (const char* src : {"10.0.0.1", "10.1.0.1", "9.9.9.9", "10.0.0.1"}) {
    FlowContext ctx;
    ctx.flow = flow(src, "10.0.2.2");
    batch.push_back(ctx);
  }
  expect_batch_matches_serial(engine, batch, "quick");
}

TEST(BatchEval, NegatedAndListEndpointsParity) {
  const PolicyEngine engine(parse(
      "table <lan> { 10.0.0.0/8 }\n"
      "block all\n"
      "pass from !<lan> to any port 80\n"
      "block from { 10.0.1.0/24 <lan> } to any port 22\n"
      "pass from !8.8.8.0/24 to any port 22\n",
      "test"));
  std::vector<FlowContext> batch;
  for (const char* src : {"10.0.0.1", "8.8.8.8", "1.2.3.4"}) {
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{22}}) {
      FlowContext ctx;
      ctx.flow = flow(src, "10.0.2.2", port);
      batch.push_back(ctx);
    }
  }
  expect_batch_matches_serial(engine, batch, "negation");
}

TEST(BatchEval, SharedAttestationVerifiesOncePerBatch) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("hoist");
  const PolicyEngine engine(parse(
      "dict <pubkeys> { vendor : " + key.public_key().to_hex() + " }\n"
      "block all\n"
      "pass all with verify(@src[sig], @pubkeys[vendor], @src[name], "
      "@src[version])\n",
      "test"));
  const proto::Response attestation = make_response(key, "curl", "210", "");
  std::vector<FlowContext> batch;
  for (int i = 0; i < 16; ++i) {
    FlowContext ctx;
    ctx.flow = flow("10.0.0.1", "10.0.2.2", static_cast<std::uint16_t>(80 + i));
    ctx.src = proto::ResponseDict(attestation);
    batch.push_back(ctx);
  }
  const EngineStats before = engine.stats();
  const auto verdicts = engine.evaluate_batch(std::span<const FlowContext>(batch));
  const EngineStats after = engine.stats();
  for (const Verdict& v : verdicts) EXPECT_TRUE(v.allowed());
  // 16 distinct 5-tuples, one attestation: verify() runs once, 15 memo hits.
  EXPECT_EQ(after.functions_called - before.functions_called, 1u);
  EXPECT_EQ(after.hoist_memo_hits - before.hoist_memo_hits, 15u);
  EXPECT_EQ(after.batches - before.batches, 1u);
  EXPECT_EQ(after.batch_flows - before.batch_flows, 16u);
}

TEST(BatchEval, AllowedIsNeverHoisted) {
  // allowed() evaluates delegated rules against the current flow, so two
  // flows sharing the delegated text must still run it twice.
  const PolicyEngine engine(parse(
      "block all\npass all with allowed(@src[requirements])\n", "test"));
  proto::Response r;
  proto::Section s;
  s.add("requirements", "block all pass from 10.0.0.0/8 to any");
  r.append_section(s);
  std::vector<FlowContext> batch;
  for (const char* src : {"10.0.0.1", "9.9.9.9"}) {
    FlowContext ctx;
    ctx.flow = flow(src, "10.0.2.2");
    ctx.src = proto::ResponseDict(r);
    batch.push_back(ctx);
  }
  const EngineStats before = engine.stats();
  const auto verdicts = engine.evaluate_batch(std::span<const FlowContext>(batch));
  const EngineStats after = engine.stats();
  EXPECT_TRUE(verdicts[0].allowed());   // 10.0.0.1 passes the delegated rule
  EXPECT_FALSE(verdicts[1].allowed());  // 9.9.9.9 does not
  EXPECT_EQ(after.functions_called - before.functions_called, 2u);
  EXPECT_EQ(after.hoist_memo_hits - before.hoist_memo_hits, 0u);
}

TEST(BatchEval, OptInFlowInvariantUserFunctionIsHoisted) {
  FunctionRegistry registry = FunctionRegistry::with_builtins();
  int calls = 0;
  registry.register_function(
      "expensive",
      [&calls](const EvalContext&, const FuncCall&,
               const std::vector<Value>&) {
        ++calls;
        return true;
      },
      /*flow_invariant=*/true);
  const PolicyEngine engine(parse("block all\npass all with expensive(x)\n",
                                  "test"),
                            std::move(registry));
  std::vector<FlowContext> batch;
  for (const char* src : {"10.0.0.1", "10.0.0.2", "10.0.0.3"}) {
    FlowContext ctx;
    ctx.flow = flow(src, "10.0.2.2");
    batch.push_back(ctx);
  }
  const auto verdicts = engine.evaluate_batch(std::span<const FlowContext>(batch));
  for (const Verdict& v : verdicts) EXPECT_TRUE(v.allowed());
  EXPECT_EQ(calls, 1);  // literal args: one call, two memo hits

  // Without the opt-in the same function runs per flow.
  FunctionRegistry fresh = FunctionRegistry::with_builtins();
  int uncached = 0;
  fresh.register_function("expensive",
                          [&uncached](const EvalContext&, const FuncCall&,
                                      const std::vector<Value>&) {
                            ++uncached;
                            return true;
                          });
  const PolicyEngine engine2(parse("block all\npass all with expensive(x)\n",
                                   "test"),
                             std::move(fresh));
  (void)engine2.evaluate_batch(std::span<const FlowContext>(batch));
  EXPECT_EQ(uncached, 3);
}

TEST(BatchEval, UnknownTableThrowsExactlyLikeSerial) {
  // <nosuch> parses fine; serial evaluation throws PolicyError only when a
  // flow's scan actually visits the endpoint.  The batch path must not
  // throw at compile time and must throw at evaluation time.
  const PolicyEngine engine(parse(
      "block all\npass from <nosuch> to any\n", "test"));
  FlowContext ctx;
  ctx.flow = flow("10.0.0.1", "10.0.2.2");
  EXPECT_THROW((void)engine.evaluate(ctx), PolicyError);
  const std::vector<FlowContext> batch{ctx};
  EXPECT_THROW((void)engine.evaluate_batch(std::span<const FlowContext>(batch)),
               PolicyError);
}

TEST(BatchEval, UnknownFunctionThrowsOnlyWhenReached) {
  const PolicyEngine engine(parse(
      "block all\npass from 10.0.0.0/8 to any with nosuch(x)\n", "test"));
  // A flow the prefilter excludes never reaches the call — no throw,
  // matching serial (endpoint mismatch short-circuits before the withs).
  FlowContext miss;
  miss.flow = flow("9.9.9.9", "10.0.2.2");
  const std::vector<FlowContext> misses{miss};
  EXPECT_NO_THROW({ EXPECT_FALSE(engine.evaluate(miss).allowed()); });
  EXPECT_NO_THROW((void)engine.evaluate_batch(
      std::span<const FlowContext>(misses)));
  // A flow that matches the endpoints reaches the call and throws, in
  // both modes.
  FlowContext hit;
  hit.flow = flow("10.0.0.1", "10.0.2.2");
  EXPECT_THROW((void)engine.evaluate(hit), PolicyError);
  const std::vector<FlowContext> hits{hit};
  EXPECT_THROW((void)engine.evaluate_batch(std::span<const FlowContext>(hits)),
               PolicyError);
}

TEST(BatchEval, OpenFlowOnlyKeysStayUndefinedWithoutTenTuple) {
  const PolicyEngine engine(parse(
      "block all\npass all with eq(@flow[in_port], 3)\n", "test"));
  FlowContext without;
  without.flow = flow("10.0.0.1", "10.0.2.2");
  FlowContext with = without;
  net::TenTuple of;
  of.in_port = 3;
  with.openflow = of;
  const std::vector<FlowContext> batch{without, with};
  const auto verdicts = engine.evaluate_batch(std::span<const FlowContext>(batch));
  EXPECT_FALSE(verdicts[0].allowed());  // Undefined -> predicate false
  EXPECT_TRUE(verdicts[1].allowed());
  expect_batch_matches_serial(engine, batch, "openflow-only keys");
}

TEST(BatchEval, EmptyBatch) {
  const PolicyEngine engine(parse("block all\n", "test"));
  const std::vector<FlowContext> batch;
  EXPECT_TRUE(
      engine.evaluate_batch(std::span<const FlowContext>(batch)).empty());
}

}  // namespace
}  // namespace identxx::pf
