// Unit tests for src/net: addresses, CIDR, MAC, flow tuples, packet
// serialization and checksums.

#include <gtest/gtest.h>

#include "net/flow.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace identxx::net {
namespace {

// ---------------------------------------------------------------- Ipv4

TEST(Ipv4, ParseValid) {
  const auto addr = Ipv4Address::parse("192.168.0.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xc0a80001u);
  EXPECT_EQ(addr->to_string(), "192.168.0.1");
}

TEST(Ipv4, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4, ParseInvalid) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4, OctetConstructor) {
  EXPECT_EQ((Ipv4Address{10, 0, 0, 7}).to_string(), "10.0.0.7");
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(*Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"));
}

// ---------------------------------------------------------------- Cidr

TEST(Cidr, ContainsPrefix) {
  const auto lan = Cidr::parse("192.168.0.0/24");
  ASSERT_TRUE(lan.has_value());
  EXPECT_TRUE(lan->contains(*Ipv4Address::parse("192.168.0.1")));
  EXPECT_TRUE(lan->contains(*Ipv4Address::parse("192.168.0.255")));
  EXPECT_FALSE(lan->contains(*Ipv4Address::parse("192.168.1.1")));
}

TEST(Cidr, BareAddressIsSlash32) {
  const auto host = Cidr::parse("10.1.2.3");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->prefix_length(), 32u);
  EXPECT_TRUE(host->contains(*Ipv4Address::parse("10.1.2.3")));
  EXPECT_FALSE(host->contains(*Ipv4Address::parse("10.1.2.4")));
}

TEST(Cidr, SlashZeroMatchesEverything) {
  const auto any = Cidr::parse("0.0.0.0/0");
  ASSERT_TRUE(any.has_value());
  EXPECT_TRUE(any->contains(*Ipv4Address::parse("1.2.3.4")));
  EXPECT_TRUE(any->contains(*Ipv4Address::parse("255.255.255.255")));
}

TEST(Cidr, NetworkAddressMaskedDown) {
  const auto c = Cidr::parse("10.0.0.77/8");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->network().to_string(), "10.0.0.0");
  EXPECT_EQ(c->to_string(), "10.0.0.0/8");
}

TEST(Cidr, ParseInvalid) {
  EXPECT_FALSE(Cidr::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Cidr::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Cidr::parse("10.0.0/24").has_value());
}

// ---------------------------------------------------------------- Mac

TEST(Mac, ParseAndFormat) {
  const auto mac = MacAddress::parse("02:00:00:00:00:2a");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->value(), 0x02000000002aULL);
  EXPECT_EQ(mac->to_string(), "02:00:00:00:00:2a");
}

TEST(Mac, ParseInvalid) {
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00:zz").has_value());
  EXPECT_FALSE(MacAddress::parse("0200:00:00:00:2a").has_value());
}

TEST(Mac, ForNodeIsLocallyAdministered) {
  const auto mac = MacAddress::for_node(7);
  EXPECT_EQ(mac.value() >> 40, 0x02u);
  EXPECT_EQ(mac.value() & 0xffffffffULL, 7u);
}

// ---------------------------------------------------------------- tuples

TEST(FiveTuple, ReversedSwapsEnds) {
  const FiveTuple flow{*Ipv4Address::parse("10.0.0.1"),
                       *Ipv4Address::parse("10.0.0.2"), IpProto::kTcp, 1234, 80};
  const FiveTuple rev = flow.reversed();
  EXPECT_EQ(rev.src_ip, flow.dst_ip);
  EXPECT_EQ(rev.dst_ip, flow.src_ip);
  EXPECT_EQ(rev.src_port, flow.dst_port);
  EXPECT_EQ(rev.dst_port, flow.src_port);
  EXPECT_EQ(rev.reversed(), flow);
}

TEST(FiveTuple, HashDistinguishesFields) {
  const std::hash<FiveTuple> h;
  FiveTuple a{*Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"),
              IpProto::kTcp, 1234, 80};
  FiveTuple b = a;
  b.dst_port = 81;
  EXPECT_NE(h(a), h(b));
  b = a;
  b.proto = IpProto::kUdp;
  EXPECT_NE(h(a), h(b));
}

TEST(TenTuple, ProjectsToFiveTuple) {
  TenTuple t;
  t.src_ip = *Ipv4Address::parse("1.1.1.1");
  t.dst_ip = *Ipv4Address::parse("2.2.2.2");
  t.proto = IpProto::kUdp;
  t.src_port = 5;
  t.dst_port = 6;
  const FiveTuple f = t.five_tuple();
  EXPECT_EQ(f.src_ip.to_string(), "1.1.1.1");
  EXPECT_EQ(f.proto, IpProto::kUdp);
  EXPECT_EQ(f.dst_port, 6);
}

// ---------------------------------------------------------------- packets

class PacketRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketRoundTrip, TcpSerializeParse) {
  const std::string payload(GetParam(), 'x');
  const Packet pkt = make_tcp_packet(
      MacAddress::for_node(1), MacAddress::for_node(2),
      *Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"), 40000,
      80, payload, TcpFlags::kSyn | TcpFlags::kPsh);
  const auto bytes = pkt.to_bytes();
  const auto parsed = Packet::from_bytes(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

TEST_P(PacketRoundTrip, UdpSerializeParse) {
  const std::string payload(GetParam(), 'u');
  const Packet pkt = make_udp_packet(
      MacAddress::for_node(3), MacAddress::for_node(4),
      *Ipv4Address::parse("172.16.0.1"), *Ipv4Address::parse("172.16.0.2"),
      5353, 53, payload);
  const auto bytes = pkt.to_bytes();
  const auto parsed = Packet::from_bytes(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, pkt);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, PacketRoundTrip,
                         ::testing::Values(0, 1, 2, 63, 64, 512, 1400));

TEST(Packet, ParseRejectsTruncation) {
  const Packet pkt = make_tcp_packet(
      MacAddress::for_node(1), MacAddress::for_node(2),
      *Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"), 1, 2,
      "hello");
  auto bytes = pkt.to_bytes();
  for (const std::size_t keep : {0u, 10u, 14u, 20u, 33u, 40u}) {
    EXPECT_FALSE(Packet::from_bytes(
                     std::span(bytes.data(), std::min(keep, bytes.size())))
                     .has_value())
        << "kept " << keep;
  }
}

TEST(Packet, ParseRejectsCorruptedIpChecksum) {
  const Packet pkt = make_tcp_packet(
      MacAddress::for_node(1), MacAddress::for_node(2),
      *Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"), 1, 2);
  auto bytes = pkt.to_bytes();
  bytes[EthernetHeader::kSize + 12] ^= 0xff;  // flip a source IP byte
  EXPECT_FALSE(Packet::from_bytes(bytes).has_value());
}

TEST(Packet, ParseRejectsNonIpv4EtherType) {
  const Packet pkt = make_tcp_packet(
      MacAddress::for_node(1), MacAddress::for_node(2),
      *Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"), 1, 2);
  auto bytes = pkt.to_bytes();
  bytes[12] = 0x86;  // 0x86dd = IPv6
  bytes[13] = 0xdd;
  EXPECT_FALSE(Packet::from_bytes(bytes).has_value());
}

TEST(Packet, InternetChecksumKnownValue) {
  // RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Packet, ChecksumOfBufferWithItsChecksumIsZero) {
  const Packet pkt = make_tcp_packet(
      MacAddress::for_node(1), MacAddress::for_node(2),
      *Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"), 9, 10,
      "abc");
  const auto bytes = pkt.to_bytes();
  // IPv4 header with embedded checksum sums to zero.
  EXPECT_EQ(internet_checksum(
                std::span(bytes.data() + EthernetHeader::kSize, Ipv4Header::kSize)),
            0);
}

TEST(Packet, PayloadTextRoundTrip) {
  Packet pkt;
  pkt.set_payload_text("ident++ query\nline two\n");
  EXPECT_EQ(pkt.payload_text(), "ident++ query\nline two\n");
}

TEST(Packet, TenTupleUsesInPort) {
  const Packet pkt = make_tcp_packet(
      MacAddress::for_node(1), MacAddress::for_node(2),
      *Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"), 7, 8);
  EXPECT_EQ(pkt.ten_tuple(3).in_port, 3);
  EXPECT_EQ(pkt.ten_tuple(3).src_mac, MacAddress::for_node(1));
}

}  // namespace
}  // namespace identxx::net
