// Bit-identity tests for the constant-time Schnorr sign path
// (src/crypto/ct_sign.hpp).
//
// The constant-time kernel must be a pure re-implementation of the
// signing math: same deterministic nonce, same canonical R, same s —
// only the *how* changes (masked reductions, complete additions, comb
// instead of wNAF).  Three layers of evidence:
//
//   1. pinned KATs generated with the pre-hardening variable-time sign
//      (any drift here is a consensus break with already-issued
//      attestations);
//   2. a 1000+-message differential sweep against a reference signer
//      reconstructed from the public variable-time primitives;
//   3. edge scalars at the ends of [1, n-1], where masked conditional
//      subtractions and the comb's zero-digit handling earn their keep.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/ct_sign.hpp"
#include "crypto/ec.hpp"
#include "crypto/hmac.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace identxx::crypto {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// The pre-hardening signing algorithm, reassembled from the public
/// variable-time primitives (HMAC nonce, wNAF scalar multiply, branchy
/// scalar reduction).  This is what sign() computed before the
/// constant-time kernel replaced its internals.
Signature reference_sign(const U256& d, const PublicKey& pub,
                         std::span<const std::uint8_t> message) {
  const auto d_bytes = d.to_bytes();
  for (std::uint8_t counter = 0;; ++counter) {
    Sha256 h;
    h.update(message);
    h.update(std::span(&counter, 1));
    const Digest msg_digest = h.finish();
    const Digest k_digest = hmac_sha256(
        std::span<const std::uint8_t>(d_bytes.data(), d_bytes.size()),
        std::span<const std::uint8_t>(msg_digest.data(), msg_digest.size()));
    const U256 k = sn_reduce(
        U256::from_bytes(std::span<const std::uint8_t, 32>(k_digest)));
    if (k.is_zero()) continue;
    const AffinePoint r = ec_mul_base(k).to_affine();
    const U256 e = schnorr_challenge(r, pub.point, message);
    const U256 s = sn_add(k, sn_mul(e, d));
    return Signature{r, s};
  }
}

/// Edge scalars by label: the KAT generator pinned d in {1, 2, n-2, n-1}.
U256 edge_scalar(int i) {
  const U256 n = Secp256k1::n();
  switch (i) {
    case 0: return U256{1};
    case 1: return U256{2};
    case 2: return U256::sub(n, U256{2}).first;
    default: return U256::sub(n, U256{1}).first;
  }
}

struct Kat {
  const char* seed;  // "scalar-N" selects edge_scalar(N) via from_scalar
  const char* message;
  const char* sig_hex;
};

// Generated with the pre-hardening sign() (wNAF nonce chain), commit
// 723af91.  MUST NOT change: these signatures are what deployed
// verifiers have already accepted.
constexpr Kat kKats[] = {
    {"daemon-key-a", "",
     "8277806a9e65720d5fb0d41d0334d7612e9d79e5d3413d702e18b420aa73460e4742955d49bf86458a8dacaf332aca3b1123dc9de8a91af6b522dc065881ec7f12a9d2c6de7e021c5304153770416658fced3b4515a7a3dd622bc31e8141029f"},
    {"daemon-key-a", "m",
     "e3801a8e9dfc6d6eab91ead503075f5d81536e0bf494229a6089ffa252e6b864372e5f02f455d67c4634892b5332af6a687706e239eaf245a6f423c884343b10e88e216757f0213a14e1e6d6a04db8a8e0bc390e6784c8f8f3d3ce842403f48f"},
    {"daemon-key-a", "the quick brown fox jumps over the lazy dog",
     "f99057dc92e898d4f9d56994e300e30cbdc2d78007d5612468d28c9bf5c91a4aad4770d680f2a71a617fc9f491a7731e0b3c243a291bc102b1852b8872e8ddade6bde8ccb139d3360477e023fb80272d7ed8ca8d3ce707e111b1da7a7e47f5ba"},
    {"daemon-key-a", "attest:app=browser;exe-hash=deadbeef",
     "d8db8abb1920b8db213474f851491f2200cbf58a1e73a1f2c62468ddd26ced248ce07cf350e64cd1bc49ed1d6785c81c98924e0ddc2c7755862dd0b05c5894a715976525bdb078a93027adca026134558843375517f4863809a50a2616d8ba24"},
    {"secur-vendor", "",
     "b43d4d6c69bc27bc81e3d9311aae2374cbf1680fc826ff26badadf53861ea91af77230f49db32bbc7982a4a8e2805491c619976981bc066577246a5328946a9b3d742cf73a5abbb5e73befdf1ad1948dc8a160497bdadf70c5b77cbfcdf31967"},
    {"secur-vendor", "m",
     "1a670e3e9b48c24a564217cc256f549131f6d85671e2d0f5bfa85e039b3d14ea5f0297a1b4a1c865c0c759725c56270a95a4be11d1ccf794b5c73f0411a8067ad87e91e2b16006aeb7a9504b2301146b71c16bae7c28951c5cd60adc79aa20ea"},
    {"secur-vendor", "the quick brown fox jumps over the lazy dog",
     "b931d59f46adc001a445a1286bbe2ad83a21f5b3401d6896633aad737f6ec8213f2082257a74932ac757c6df0718acc16886fdb59cdc41df1e34c93aa651a3de2bb5c336d5f432ded06702abc82f03202abd9706fc1e420eef5c21ccc8c3b3d9"},
    {"secur-vendor", "attest:app=browser;exe-hash=deadbeef",
     "a6af46588ee6110a3da501de88ae88d67154ee9800d89bccdc2ce99986b5229863949c202268fe4f08c93bc97a6883d257334c18cda2caf882d06983f4576c9e772c52fd64f898de2c60bccfbaebe6f2984fb2dbb08d9e90359c075c249e8a18"},
    {"edge", "",
     "656df9aac50bda5d9755f78e8e829136e110a5cc785d38f9397666ed6927b97610ebc65652cd8797572919c62ebd9fa5f5e08257f05b5cef93a94cf7bd82a96e251e2505bd0d969d0ada851a9d121dca41a6d4c49073b07f634a0fb8b33159e5"},
    {"edge", "m",
     "3a4928f1f8389d79f28586c4a57815ed762606491a4952c5ef3a75c32baf4cea2c6b18924e4c270636b4afabcd4209114f685d970e1c873b63b8045f5e904c53be8a4c3aeb6235cfc8196b1d079f67a6da746e0017655a5edeab5d7071240b9a"},
    {"edge", "the quick brown fox jumps over the lazy dog",
     "aaa774e8a912c1103a247a9ecb961730509932fa30a98783ad33bcaee78bb54c40044bfdbc91f28f27bd1bf61765fbaf6fef9df0363b1d8115c4cbd89bff5d9c74867b043f2014f9327e36e03b1b065ca35b0a14a8dabeb03b47f67edb50a30a"},
    {"edge", "attest:app=browser;exe-hash=deadbeef",
     "af9e1a85482059f42390189f9d2e410be03154d9dba346112b90e9136f5480c31d17fefc2def69285c9e6b6c7437fac576ac4f4fc4683af2e6e47fe10faed2f4958601bc96982be21dcdb78c2c53db92eb5ed1f10ed97038b0e832ab3d9493f0"},
    {"x", "",
     "2ef166865a8eae7fd23e549a4badcb1dcc0ced25d04c3a645813137f37f39be4ee82f679af7981b665f58672e92bd019425efa54315d0a6167f1b56d11ba8592ad90dfd3503dd56b580ad58bc348bc5173ca8c562fede1f56050347d94ca2ce4"},
    {"x", "m",
     "715f169a28f209d263b39577b0a62e8138b481fa4d4bab4c5f8e9eed97c8a4e2df1f64e7e56b935d1583f9200f63d1f675e95b30c69d86e813453b89f3cd0ce0a1eb081fa9f5b2987f794d9e553ab0d0b1e3faed9c97d343b41016ffea81edc3"},
    {"x", "the quick brown fox jumps over the lazy dog",
     "96c5e2c22951bd586f52501f1cd678c4c0551e20e02e232eedc70fb7236533eaf5333c60573dfa822c3981955eeeae83c21892c886ba4d32bc6a9887f5efed92c72103dee2db38aaed8b7df01f6d5152db1917225abe8fc619bc80b61bcf0710"},
    {"x", "attest:app=browser;exe-hash=deadbeef",
     "84557b4e879a974f8718a1fd5f560711dfa7839581adb1e0e6a945a6fa2703c0e0e725671992da38722b145bde31d63befec907e6a4b0f70929e3a5394f8995ff4570dcc1ac1287b04aaa27b1c3ef727dbe347d25e8285e5e213362c74e89d4f"},
    {"scalar-0", "edge",
     "976373e703393ccbff4766e339be9dd58a815469b3c443aa40c1b167c95b9df60a5eee5579cfea350563b1c19a33030f741c67b3185ac4416e0d3c3930d2c692822d7f026ce113fcd0385ccc7d77059e8e723d9eeb30d0101c90779d9d7e2222"},
    {"scalar-1", "edge",
     "fcb4346f8b212063b7e4f1f384f95fe804a5b6d8d4bbd9e1981a03daef03bb00076292bf827fc02b10d5c10eaecc7b2b3c9e65889b826e66260f97cd9784af31ef97df51075296318a824607c46831682a300d4ba9a07723e5da4edbac85fb98"},
    {"scalar-2", "edge",
     "960b390ed7cbe734f5cbd0eff7d9c311ee3342c0c6e1280215e59faeee6afcd8f6c225267d570268b915791bdeb23eef996e4856376c67dc2138886b77110c23e9583541167ae36cfc0bb0a0a81b6fb5eb0cfc37565c534a872b6ee49a4bde99"},
    {"scalar-3", "edge",
     "ea45cf94fee95347f9e49319cdd3b1bb290178853dc5603256362420f0b2fe2187bd41697af0951c3c875850e9e35d640f34e95d1480d4e5931c414501c2c51f28ecd2ca15978a383f3df100af07807be8c2e3af8771353aaa614894fdce1de4"},
};

PrivateKey key_for(const std::string& seed) {
  if (seed.rfind("scalar-", 0) == 0) {
    return PrivateKey::from_scalar(edge_scalar(seed.back() - '0'));
  }
  return PrivateKey::from_seed(seed);
}

TEST(CtSign, MatchesPinnedPreHardeningKats) {
  for (const Kat& kat : kKats) {
    const PrivateKey key = key_for(kat.seed);
    const Signature sig = key.sign(std::string_view(kat.message));
    EXPECT_EQ(sig.to_hex(), kat.sig_hex)
        << "seed=" << kat.seed << " msg=\"" << kat.message << '"';
    EXPECT_TRUE(verify(key.public_key(), std::string_view(kat.message), sig));
  }
}

TEST(CtSign, DifferentialSweepMatchesReference) {
  // 4 keys x 260 messages = 1040 signatures, each checked bit-for-bit
  // against the reconstructed variable-time reference and verified.
  const char* seeds[] = {"daemon-key-a", "secur-vendor", "edge", "x"};
  std::uint64_t rng = 0x243f6a8885a308d3ULL;  // deterministic xorshift
  int checked = 0;
  for (const char* seed : seeds) {
    const PrivateKey key = key_for(seed);
    for (int i = 0; i < 260; ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      std::string msg = "sweep:" + std::string(seed) + ":" +
                        std::to_string(i) + ":";
      // Vary length (0..127 extra bytes) and include raw binary content.
      const std::size_t extra = rng % 128;
      for (std::size_t b = 0; b < extra; ++b) {
        msg.push_back(static_cast<char>((rng >> (b % 56)) & 0xff));
      }
      const Signature got = key.sign(as_bytes(msg));
      const Signature want =
          reference_sign(key.scalar(), key.public_key(), as_bytes(msg));
      ASSERT_EQ(got, want) << "seed=" << seed << " i=" << i;
      ASSERT_TRUE(verify(key.public_key(), as_bytes(msg), got));
      ++checked;
    }
  }
  EXPECT_GE(checked, 1000);
}

TEST(CtSign, EdgeScalarsNearZeroAndN) {
  // Scalars at both ends of [1, n-1] stress the masked conditional
  // subtractions (values straddling n) and zero comb digits (d=1, 2).
  const U256 n = Secp256k1::n();
  const U256 scalars[] = {
      U256{1}, U256{2}, U256{3},
      U256::sub(n, U256{3}).first,
      U256::sub(n, U256{2}).first,
      U256::sub(n, U256{1}).first,
  };
  for (const U256& d : scalars) {
    const PrivateKey key = PrivateKey::from_scalar(d);
    // The comb-derived public key must match the wNAF-derived one.
    EXPECT_EQ(key.public_key().point, ec_mul_base(d).to_affine());
    for (int i = 0; i < 25; ++i) {
      const std::string msg = "edge-scalar:" + std::to_string(i);
      const Signature got = key.sign(as_bytes(msg));
      const Signature want =
          reference_sign(d, key.public_key(), as_bytes(msg));
      ASSERT_EQ(got, want) << d.to_hex() << " i=" << i;
      ASSERT_TRUE(verify(key.public_key(), as_bytes(msg), got));
    }
  }
}

TEST(CtSign, CombMatchesWnafScalarMultiply) {
  // ec_mul_base_ct (fixed-window comb + complete additions + ct Fermat
  // inversion) against the wNAF chain, over structured and random
  // scalars.  Covers every fp_* and comb path without going through
  // sign().
  std::vector<U256> scalars;
  const U256 n = Secp256k1::n();
  for (std::uint64_t v : {1ULL, 2ULL, 15ULL, 16ULL, 17ULL, 0xffffULL}) {
    scalars.push_back(U256{v});
  }
  scalars.push_back(U256::sub(n, U256{1}).first);
  scalars.push_back(U256::sub(n, U256{16}).first);
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 40; ++i) {
    U256 k{};
    for (auto& w : k.w) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      w = rng;
    }
    scalars.push_back(sn_reduce(k));
  }
  for (const U256& k : scalars) {
    if (k.is_zero()) continue;
    EXPECT_EQ(ct::ec_mul_base_ct<std::uint64_t>(k),
              ec_mul_base(k).to_affine())
        << k.to_hex();
  }
}

TEST(CtSign, ScalarArithmeticMatchesVartime) {
  // sn_mul_ct's fixed 4-fold reduction vs the branchy sn_reduce chain.
  std::uint64_t rng = 0xdeadbeefcafef00dULL;
  for (int i = 0; i < 500; ++i) {
    U256 a{}, b{};
    for (auto& w : a.w) {
      rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
      w = rng;
    }
    for (auto& w : b.w) {
      rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17;
      w = rng;
    }
    const U256 ar = sn_reduce(a);
    const U256 br = sn_reduce(b);
    const auto at = ct::lift_secret<std::uint64_t>(ar);
    const auto bt = ct::lift_secret<std::uint64_t>(br);
    EXPECT_EQ(ct::declassify_u256(ct::sn_mul_ct(at, bt)), sn_mul(ar, br));
    EXPECT_EQ(ct::declassify_u256(ct::sn_add_ct(at, bt)), sn_add(ar, br));
  }
  // Boundary: operands at n-1 drive the folds to their worst case.
  const U256 top = U256::sub(Secp256k1::n(), U256{1}).first;
  const auto tt = ct::lift_secret<std::uint64_t>(top);
  EXPECT_EQ(ct::declassify_u256(ct::sn_mul_ct(tt, tt)), sn_mul(top, top));
  EXPECT_EQ(ct::declassify_u256(ct::sn_add_ct(tt, tt)), sn_add(top, top));
}

}  // namespace
}  // namespace identxx::crypto
