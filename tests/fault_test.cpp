// Control-plane fault injection and admission robustness (DESIGN.md §14):
// seeded channel loss/duplication/delay, daemon crash/restart, the
// timeout/retry/backoff ladder, degraded fail-closed covers and
// re-admission probes — all of it deterministic: a faulted run at a fixed
// seed is bit-identical at any shard count, worker count, and (via
// mc::Explorer) any shard-lane schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "mc/explorer.hpp"
#include "sim/fault.hpp"
#include "sim/worker_pool.hpp"
#include "util/error.hpp"

namespace identxx {
namespace {

using core::Scenario;
using core::ScenarioOptions;
using core::ScenarioResult;

/// Run `scenario` classic and at every shard/worker combination, assert
/// equivalence, and hand back the classic result.
ScenarioResult assert_invariant_across_configs(const Scenario& scenario,
                                               ScenarioOptions base = {}) {
  ScenarioOptions classic = base;
  classic.shards = 0;
  const ScenarioResult reference = scenario.run(classic);
  const std::uint32_t hw = sim::WorkerPool::hardware_workers();
  for (const std::uint32_t shards : {1u, 4u}) {
    for (const std::uint32_t workers : {1u, hw}) {
      ScenarioOptions opts = base;
      opts.shards = shards;
      opts.workers = workers;
      const ScenarioResult result = scenario.run(opts);
      EXPECT_TRUE(result.equivalent_to(reference))
          << shards << " shard(s) x " << workers
          << " worker(s) diverges from the classic run";
    }
  }
  return reference;
}

// ---------------------------------------------------------------- fault model

TEST(FaultModel, StreamSeedsAreStablePerChannel) {
  // Per-channel streams derive from (scenario seed, switch name) via
  // FNV-1a — stable across stdlib implementations, distinct per switch.
  const std::uint64_t a = sim::fault_stream_seed(42, "s0");
  EXPECT_EQ(a, sim::fault_stream_seed(42, "s0"));
  EXPECT_NE(a, sim::fault_stream_seed(42, "s1"));
  EXPECT_NE(a, sim::fault_stream_seed(43, "s0"));
}

TEST(FaultModel, DrawsAreOutcomeIndependent) {
  // Both Bernoullis are drawn for every message, so the stream position
  // depends only on the message count — never on earlier outcomes.  Two
  // channels with different specs but the same seed therefore agree on
  // every pure-loss decision.
  sim::FaultChannel loss_only({0.3, 0.0, 0}, 7);
  sim::FaultChannel loss_and_dup({0.3, 0.9, 0}, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(loss_only.draw().dropped, loss_and_dup.draw().dropped)
        << "message " << i;
  }
}

TEST(FaultParse, RejectsMalformedDirectives) {
  EXPECT_THROW((void)Scenario::parse("fault chan s1 loss=1.5\n"),
               ParseError);
  EXPECT_THROW((void)Scenario::parse("fault chan s1 loss=abc\n"),
               ParseError);
  EXPECT_THROW((void)Scenario::parse("fault host h1 up_at=10\n"),
               ParseError);  // down_at required
  EXPECT_THROW((void)Scenario::parse("fault retry max\n"), ParseError);
  EXPECT_THROW((void)Scenario::parse("fault bogus x\n"), ParseError);
}

// ----------------------------------------------------- determinism invariants

constexpr const char* kFaultyMeshScenario = R"SCN(
seed 97
switch s0
switch s1
switch s2
link s0 s1 12
link s1 s2 18
host h0 10.0.0.1 s0
host h1 10.0.0.2 s1
host h2 10.0.0.3 s2
user h0 alice staff
user h1 bobby staff
user h2 carol admin
launch c0 h0 alice /usr/bin/curl
launch c2 h2 carol /usr/bin/curl
launch d1 h1 bobby /usr/sbin/httpd
listen d1 80
listen d1 443
policy begin
block all
pass from any to any port 80
pass from any to any port 443 with eq(@src[userID], carol)
policy end
fault chan all loss=0.2 dup=0.2 delay_us=500
fault retry max=2 jitter_us=300 degraded_ttl_us=20000
flow f0 c0 10.0.0.2 80
traffic f0 cbr packets=24 rate=4000
flow f1 c2 10.0.0.2 443
traffic f1 cbr packets=24 rate=4000
flow f2 c0 10.0.0.2 443
traffic f2 cbr packets=16 rate=2000
)SCN";

TEST(FaultDeterminism, ChannelFaultsAreShardAndWorkerInvariant) {
  // Heavy loss/dup/delay on every control channel: injections draw on the
  // global lane from per-switch streams, so the classic run and every
  // shard/worker combination must agree bit for bit — faults included.
  const Scenario scenario = Scenario::parse(kFaultyMeshScenario);
  const ScenarioResult reference = assert_invariant_across_configs(scenario);
  // The faults actually fired (otherwise this test is vacuous).
  EXPECT_GT(reference.fault_stats.chan_dropped, 0u);
  EXPECT_GT(reference.fault_stats.chan_duplicated, 0u);
  EXPECT_GT(reference.fault_stats.chan_delayed, 0u);
}

TEST(FaultDeterminism, RepeatRunsAreBitIdentical) {
  const Scenario scenario = Scenario::parse(kFaultyMeshScenario);
  const ScenarioResult first = scenario.run(ScenarioOptions{});
  const ScenarioResult second = scenario.run(ScenarioOptions{});
  EXPECT_TRUE(first.equivalent_to(second));
  EXPECT_EQ(first.fault_stats, second.fault_stats);
}

TEST(FaultDeterminism, DuplicatedChannelIsDeduped) {
  // dup=1.0 doubles every control message.  The duplicate responses are
  // counted and dropped (first answer wins; consumed packets memoized), and
  // the run stays shard/worker invariant.
  const Scenario scenario = Scenario::parse(R"SCN(
seed 5
switch s0
host h0 10.0.0.1 s0
host h1 10.0.0.2 s0
user h0 alice staff
user h1 bobby staff
launch c0 h0 alice /usr/bin/curl
launch d1 h1 bobby /usr/sbin/httpd
listen d1 80
policy begin
block all
pass from any to any port 80
policy end
fault chan all dup=1.0
flow f0 c0 10.0.0.2 80
expect f0 delivered
)SCN");
  const ScenarioResult reference = assert_invariant_across_configs(scenario);
  EXPECT_TRUE(reference.ok());
  EXPECT_GT(reference.fault_stats.chan_duplicated, 0u);
  EXPECT_GT(reference.controller_stats.duplicate_responses, 0u);
}

// ------------------------------------------------------------ retry / backoff

constexpr const char* kDaemonDownScenario = R"SCN(
seed 23
switch s1
switch s2
link s1 s2 20
host client 10.0.0.1 s1
host server 10.0.0.2 s2
user client alice users
user server www daemons
launch c1 client alice /usr/bin/curl
launch srv server www /bin/www
listen srv 80
policy begin
block all
pass from any to any port 80 with eq(@dst[userID], www)
policy end
fault host server down_at=0
flow f1 c1 10.0.0.2 80
expect f1 blocked
)SCN";

TEST(RetryBackoff, RetriesExhaustToTheLegacyTimeoutDecision) {
  // Daemon down forever, no degraded cover configured: after the retry
  // budget is spent the controller falls back to the partial-information
  // timeout decision — the same verdict a retry-free run reaches, just
  // later and with the retries counted.
  const Scenario scenario = Scenario::parse(kDaemonDownScenario);

  ScenarioOptions no_retry;
  const ScenarioResult legacy = scenario.run(no_retry);

  ScenarioOptions with_retry;
  with_retry.config.max_query_retries = 2;
  const ScenarioResult retried = scenario.run(with_retry);

  ASSERT_EQ(legacy.flows.size(), 1u);
  ASSERT_EQ(retried.flows.size(), 1u);
  EXPECT_FALSE(legacy.flows[0].delivered);
  EXPECT_FALSE(retried.flows[0].delivered);
  EXPECT_EQ(legacy.controller_stats.query_retries, 0u);
  EXPECT_EQ(retried.controller_stats.query_retries, 2u);
  EXPECT_EQ(retried.controller_stats.query_timeouts,
            legacy.controller_stats.query_timeouts);
  EXPECT_EQ(retried.controller_stats.degraded_verdicts, 0u);
  // The ignored-query count reflects the retries: 1 original + 2 re-sends.
  EXPECT_EQ(legacy.fault_stats.daemon_queries_ignored, 1u);
  EXPECT_EQ(retried.fault_stats.daemon_queries_ignored, 3u);
}

TEST(RetryBackoff, RetryConfigIsShardAndWorkerInvariant) {
  // Retry deadlines carry seeded jitter; the jitter is a pure hash of
  // (flow, attempt, seed), so it cannot depend on shard or worker count.
  const Scenario scenario = Scenario::parse(kDaemonDownScenario);
  ScenarioOptions base;
  base.config.max_query_retries = 3;
  base.config.retry_jitter = 2 * sim::kMillisecond;
  const ScenarioResult reference =
      assert_invariant_across_configs(scenario, base);
  EXPECT_EQ(reference.controller_stats.query_retries, 3u);
}

TEST(RetryBackoff, ResponseArrivingNearTheDeadlineStaysDeterministic) {
  // Edge case: shrink query_timeout to straddle the actual response RTT,
  // including the exact virtual instant where the response and the
  // deadline sweep coincide.  Whatever the verdict at each timeout value,
  // it must be identical run-to-run and across shard/worker configs.
  const Scenario scenario = Scenario::parse(R"SCN(
seed 31
switch s1
switch s2
link s1 s2 20
host client 10.0.0.1 s1
host server 10.0.0.2 s2
user client alice users
user server www daemons
launch c1 client alice /usr/bin/curl
launch srv server www /bin/www
listen srv 80
policy begin
block all
pass from any to any port 80 with eq(@dst[userID], www)
policy end
flow f1 c1 10.0.0.2 80
)SCN");

  // Binary-search the smallest timeout that still admits the flow: the
  // boundary is the exact arrival instant of the last response.
  const auto runs_clean = [&](sim::SimTime timeout) {
    ScenarioOptions opts;
    opts.config.query_timeout = timeout;
    const ScenarioResult r = scenario.run(opts);
    return r.controller_stats.query_timeouts == 0;
  };
  sim::SimTime lo = 1 * sim::kMicrosecond;       // times out
  sim::SimTime hi = 50 * sim::kMillisecond;      // comfortably clean
  ASSERT_FALSE(runs_clean(lo));
  ASSERT_TRUE(runs_clean(hi));
  while (lo + 1 < hi) {
    const sim::SimTime mid = lo + (hi - lo) / 2;
    (runs_clean(mid) ? hi : lo) = mid;
  }

  // hi = minimal clean timeout; hi-1 fires the sweep one tick before the
  // response, hi lands the response at-or-before the very deadline.
  for (const sim::SimTime timeout : {hi - 1, hi, hi + 1}) {
    SCOPED_TRACE("timeout " + std::to_string(timeout));
    ScenarioOptions base;
    base.config.query_timeout = timeout;
    base.config.max_query_retries = 1;
    const ScenarioResult reference =
        assert_invariant_across_configs(scenario, base);
    const ScenarioResult again = scenario.run(base);
    EXPECT_TRUE(reference.equivalent_to(again));
  }
}

// --------------------------------------------- degradation arc and recovery

constexpr const char* kRecoveryScenario = R"SCN(
seed 11
switch s1
switch s2
link s1 s2 20
host client 10.0.0.1 s1
host server 10.0.0.2 s2
user client alice users
user server www daemons
launch c1 client alice /usr/bin/curl
launch srv server www /bin/www
listen srv 80
policy begin
block all
pass from any to any port 80 with eq(@dst[userID], www)
policy end
fault host server down_at=0 up_at=200000
fault retry max=1 degraded_ttl_us=20000 probe_delay_us=100000
flow f1 c1 10.0.0.2 80
expect f1 delivered
)SCN";

TEST(Degradation, FullArcFromDegradedCoverToReadmission) {
  // The scenarios/fault_recovery.scn arc: daemon down -> deadline ->
  // retry -> budget spent -> degraded fail-closed cover + probe ->
  // daemon restarts -> probe re-admits on full information.
  const Scenario scenario = Scenario::parse(kRecoveryScenario);
  const ScenarioResult result = assert_invariant_across_configs(scenario);

  EXPECT_TRUE(result.ok()) << "flow not delivered after recovery";
  EXPECT_EQ(result.controller_stats.query_retries, 1u);
  EXPECT_EQ(result.controller_stats.degraded_verdicts, 1u);
  EXPECT_EQ(result.controller_stats.flows_blocked, 1u);
  EXPECT_EQ(result.controller_stats.flows_allowed, 1u);
  EXPECT_EQ(result.fault_stats.daemon_queries_ignored, 2u);

  // Audit: a degraded fail-closed block first, then the recovery pass.
  ASSERT_EQ(result.audit_log.size(), 2u);
  EXPECT_FALSE(result.audit_log[0].allowed);
  EXPECT_TRUE(result.audit_log[0].degraded);
  EXPECT_TRUE(result.audit_log[0].timed_out);
  EXPECT_TRUE(result.audit_log[1].allowed);
  EXPECT_FALSE(result.audit_log[1].degraded);
  EXPECT_LT(result.audit_log[0].time, result.audit_log[1].time);
}

TEST(Degradation, DegradedVerdictsAreNeverCached) {
  // A probe that fires while the daemon is still down must re-enter full
  // admission and degrade AGAIN — if degraded verdicts were cached (or the
  // probe's replayed packet-in hit the cache), the flow could never
  // re-decide on full information afterwards.  Timeline: degrade at 50ms,
  // probe 1 at 110ms (daemon still down, degrade again at 160ms), daemon
  // up at 180ms, probe 2 at 220ms re-admits.
  const Scenario scenario = Scenario::parse(R"SCN(
seed 13
switch s1
host client 10.0.0.1 s1
host server 10.0.0.2 s1
user client alice users
user server www daemons
launch c1 client alice /usr/bin/curl
launch srv server www /bin/www
listen srv 80
policy begin
block all
pass from any to any port 80 with eq(@dst[userID], www)
policy end
fault host server down_at=0 up_at=180000
fault retry max=0 degraded_ttl_us=10000 probe_delay_us=60000
flow f1 c1 10.0.0.2 80
expect f1 delivered
)SCN");
  const ScenarioResult result = scenario.run(ScenarioOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.controller_stats.degraded_verdicts, 2u);
  EXPECT_EQ(result.controller_stats.decision_cache_hits, 0u);
}

// -------------------------------------------- races and schedule exploration

TEST(FaultRaces, TimeoutCoincidingWithControlEpochBumpIsWorkerInvariant) {
  // A revoke_all lands at the same virtual instant as the timeout sweep:
  // in sharded runs the timeout verdict is dispatched to a shard lane and
  // must be re-decided at commit under the bumped control epoch.  Classic
  // and sharded runs may legitimately order these differently, but a fixed
  // shard count must be invariant across worker counts and repeat runs.
  const Scenario scenario = Scenario::parse(R"SCN(
seed 37
switch s1
switch s2
link s1 s2 20
host client 10.0.0.1 s1
host server 10.0.0.2 s2
user client alice users
user server www daemons
launch c1 client alice /usr/bin/curl
launch srv server www /bin/www
listen srv 80
policy begin
block all
pass from any to any port 80 with eq(@dst[userID], www)
policy end
fault host server down_at=0 up_at=300000
fault retry max=1 degraded_ttl_us=20000 probe_delay_us=100000
control 150000 revoke_all
flow f1 c1 10.0.0.2 80
)SCN");
  const std::uint32_t hw = sim::WorkerPool::hardware_workers();
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ScenarioOptions serial;
    serial.shards = shards;
    const ScenarioResult reference = scenario.run(serial);
    ScenarioOptions parallel = serial;
    parallel.workers = hw;
    EXPECT_TRUE(scenario.run(parallel).equivalent_to(reference));
    EXPECT_TRUE(scenario.run(serial).equivalent_to(reference));
  }
}

TEST(FaultRaces, ExplorerFindsNoDivergenceUnderFaults) {
  // DPOR over the shard-lane schedules of a faulted run: loss/dup/delay
  // draws happen on the global lane, so no lane reordering may change the
  // injected faults or anything downstream of them.
  const Scenario scenario = Scenario::parse(kRecoveryScenario);
  mc::ExplorerOptions options;
  options.scenario.shards = 2;
  options.mode = mc::Mode::kDpor;
  options.max_schedules = 2000;
  mc::Explorer explorer(scenario, options);
  const mc::Report report = explorer.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.schedules_explored, 0u);
}

// ------------------------------------------------------- zero-fault regression

TEST(ZeroFault, RobustnessConfigIsInertWithoutFaults) {
  // With no faults injected, enabling the whole robustness ladder (retries,
  // jitter, degraded covers) must reproduce the legacy result bit for bit:
  // every response arrives before its deadline, so no new code path fires.
  const Scenario scenario = Scenario::parse(R"SCN(
seed 61
switch s0
switch s1
link s0 s1 10
host h0 10.0.0.1 s0
host h1 10.0.0.2 s1
user h0 alice staff
user h1 bobby staff
launch c0 h0 alice /usr/bin/curl
launch d1 h1 bobby /usr/sbin/httpd
listen d1 80
policy begin
block all
pass from any to any port 80
policy end
flow f0 c0 10.0.0.2 80
traffic f0 cbr packets=8 rate=10000
flow f1 c0 10.0.0.2 8080
expect f0 delivered
expect f1 blocked
)SCN");
  const ScenarioResult legacy = scenario.run(ScenarioOptions{});

  ScenarioOptions armed;
  armed.config.max_query_retries = 3;
  armed.config.retry_jitter = 1 * sim::kMillisecond;
  armed.config.degraded_cover_ttl = 20 * sim::kMillisecond;
  const ScenarioResult robust = scenario.run(armed);

  EXPECT_TRUE(robust.equivalent_to(legacy));
  EXPECT_EQ(robust.fault_stats, core::ScenarioFaultStats{});
  EXPECT_EQ(robust.controller_stats.query_retries, 0u);
  EXPECT_EQ(robust.controller_stats.degraded_verdicts, 0u);
  EXPECT_EQ(robust.controller_stats.duplicate_responses, 0u);
  (void)assert_invariant_across_configs(scenario, armed);
}

}  // namespace
}  // namespace identxx
