// Unit tests for the AdmissionPipeline API seams: stage composition with
// fake engines/strategies, decision-cache TTL/LRU behaviour and hit
// accounting, batched decide_many(), the revocation/decision-cache
// interaction, and a regression net that baseline controllers on the
// shared pipeline produce the same verdicts and stats as the pre-pipeline
// (seed) behaviour.

#include <gtest/gtest.h>

#include "controller/admission.hpp"
#include "controller/admission_controller.hpp"
#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/verifier.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/parser.hpp"

namespace identxx {
namespace {

using core::FlowHandle;
using core::Network;

[[nodiscard]] net::FiveTuple make_flow(std::uint32_t src, std::uint32_t dst,
                                       std::uint16_t dst_port) {
  net::FiveTuple flow;
  flow.src_ip = net::Ipv4Address{src};
  flow.dst_ip = net::Ipv4Address{dst};
  flow.proto = net::IpProto::kTcp;
  flow.src_port = 40000;
  flow.dst_port = dst_port;
  return flow;
}

// ---------------------------------------------------------------- fakes

/// Scripted engine: allows everything except a configured blocked port;
/// counts decide()/decide_many() calls.
class FakeDecisionEngine : public ctrl::DecisionEngine {
 public:
  explicit FakeDecisionEngine(std::uint16_t blocked_port)
      : blocked_port_(blocked_port) {}

  ctrl::AdmissionDecision decide(const ctrl::AdmissionContext& ctx) override {
    ++decide_calls;
    ctrl::AdmissionDecision decision;
    decision.allowed = ctx.flow.dst_port != blocked_port_;
    decision.rule = decision.allowed ? "fake pass" : "fake block";
    return decision;
  }

  std::vector<ctrl::AdmissionDecision> decide_many(
      const std::vector<const ctrl::AdmissionContext*>& batch) override {
    batch_sizes.push_back(batch.size());
    return DecisionEngine::decide_many(batch);
  }

  std::size_t decide_calls = 0;
  std::vector<std::size_t> batch_sizes;

 private:
  std::uint16_t blocked_port_;
};

/// Counts installs, delegating placement to the real path strategy.
class CountingInstallStrategy : public ctrl::PathInstallStrategy {
 public:
  std::size_t install_allow(ctrl::AdmissionEnv& env,
                            const ctrl::AdmissionContext& ctx,
                            const ctrl::AdmissionDecision& decision) override {
    ++allow_calls;
    return PathInstallStrategy::install_allow(env, ctx, decision);
  }
  std::size_t install_drop(ctrl::AdmissionEnv& env,
                           const ctrl::AdmissionContext& ctx,
                           const ctrl::AdmissionDecision& decision) override {
    ++drop_calls;
    return PathInstallStrategy::install_drop(env, ctx, decision);
  }

  std::size_t allow_calls = 0;
  std::size_t drop_calls = 0;
};

/// Records decision events — exercises the AdmissionObserver seam.
class RecordingObserver : public ctrl::AdmissionObserver {
 public:
  void on_decision(const ctrl::DecisionRecord& record,
                   const ctrl::AdmissionDecision&) override {
    rules.push_back(record.rule);
  }
  std::vector<std::string> rules;
};

// ---------------------------------------------------------------- composition

TEST(PipelineComposition, FakeStagesDriveAdmission) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);

  ctrl::AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<ctrl::NoQueryPlanner>();
  auto engine = std::make_unique<FakeDecisionEngine>(23);
  FakeDecisionEngine* engine_ptr = engine.get();
  pipeline.engine = std::move(engine);
  auto installer = std::make_unique<CountingInstallStrategy>();
  CountingInstallStrategy* installer_ptr = installer.get();
  pipeline.installer = std::move(installer);

  auto& controller = net.install_pipeline(std::move(pipeline));
  auto observer = std::make_unique<RecordingObserver>();
  RecordingObserver* observer_ptr = observer.get();
  controller.add_observer(std::move(observer));

  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle web = net.start_flow(client, pid, "10.0.0.2", 80);
  const FlowHandle telnet = net.start_flow(client, pid, "10.0.0.2", 23);
  net.run();

  // The fake engine decided both flows; the fake strategy installed both
  // outcomes; the observer saw both rules.
  EXPECT_TRUE(net.flow_delivered(web));
  EXPECT_FALSE(net.flow_delivered(telnet));
  EXPECT_EQ(engine_ptr->decide_calls, 2u);
  EXPECT_EQ(installer_ptr->allow_calls, 1u);
  EXPECT_EQ(installer_ptr->drop_calls, 1u);
  EXPECT_EQ(controller.stats().flows_allowed, 1u);
  EXPECT_EQ(controller.stats().flows_blocked, 1u);
  ASSERT_EQ(observer_ptr->rules.size(), 2u);
  EXPECT_EQ(observer_ptr->rules[0], "fake pass");
  EXPECT_EQ(observer_ptr->rules[1], "fake block");
  // The shared audit log sees pipeline decisions too.
  ASSERT_EQ(controller.audit_log().size(), 2u);
  EXPECT_EQ(controller.audit_log()[1].rule, "fake block");
}

// ---------------------------------------------------------------- caches

TEST(TtlDecisionCacheTest, ExpiryAndHitAccounting) {
  ctrl::TtlDecisionCache cache(100);  // 100 ns TTL
  const net::FiveTuple flow = make_flow(1, 2, 80);
  ctrl::AdmissionDecision decision;
  decision.allowed = true;

  EXPECT_FALSE(cache.lookup(flow, 0).has_value());
  cache.store(flow, decision, 10);
  const auto hit = cache.lookup(flow, 50);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->allowed);
  // TTL passed: entry expires, lookup misses.
  EXPECT_FALSE(cache.lookup(flow, 110).has_value());
  EXPECT_EQ(cache.size(), 0u);

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST(TtlDecisionCacheTest, ZeroTtlMeansNeverExpire) {
  // ttl = 0 used to stamp entries with expires == now, so every lookup
  // expired them instantly — a silent bypass that still counted
  // insertions.  The contract (matching LruDecisionCache) is: 0 = entries
  // never age out; only invalidation removes them.
  ctrl::TtlDecisionCache cache(0);
  const net::FiveTuple flow = make_flow(1, 2, 80);
  ctrl::AdmissionDecision decision;
  decision.allowed = true;

  cache.store(flow, decision, 10);
  EXPECT_TRUE(cache.lookup(flow, 10).has_value());
  EXPECT_TRUE(
      cache.lookup(flow, 10 + 3600 * sim::kSecond).has_value());  // an hour on
  EXPECT_EQ(cache.stats().expirations, 0u);

  // Control-plane invalidation still works — the only way such entries die.
  EXPECT_EQ(cache.invalidate_if([](const net::FiveTuple&) { return true; }), 1u);
  EXPECT_FALSE(cache.lookup(flow, 20).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruDecisionCacheTest, ZeroTtlNeverExpiresOnlyEvicts) {
  // The companion config: capacity with ttl = 0 is a pure LRU bound.
  ctrl::LruDecisionCache cache(2, 0);
  ctrl::AdmissionDecision decision;
  const net::FiveTuple a = make_flow(1, 9, 80);
  cache.store(a, decision, 0);
  EXPECT_TRUE(cache.lookup(a, 1000 * sim::kSecond).has_value());
  EXPECT_EQ(cache.stats().expirations, 0u);
}

TEST(LruDecisionCacheTest, EvictsLeastRecentlyUsed) {
  ctrl::LruDecisionCache cache(2, 0);  // capacity 2, no TTL
  ctrl::AdmissionDecision decision;
  const net::FiveTuple a = make_flow(1, 9, 80);
  const net::FiveTuple b = make_flow(2, 9, 80);
  const net::FiveTuple c = make_flow(3, 9, 80);

  cache.store(a, decision, 0);
  cache.store(b, decision, 1);
  ASSERT_TRUE(cache.lookup(a, 2).has_value());  // refresh a: b becomes LRU
  cache.store(c, decision, 3);                  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(a, 4).has_value());
  EXPECT_FALSE(cache.lookup(b, 5).has_value());
  EXPECT_TRUE(cache.lookup(c, 6).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruDecisionCacheTest, TtlAndInvalidation) {
  ctrl::LruDecisionCache cache(8, 100);
  ctrl::AdmissionDecision decision;
  const net::FiveTuple a = make_flow(1, 9, 80);
  const net::FiveTuple b = make_flow(2, 9, 80);
  cache.store(a, decision, 0);
  cache.store(b, decision, 0);

  EXPECT_TRUE(cache.lookup(a, 50).has_value());
  EXPECT_FALSE(cache.lookup(a, 150).has_value());  // TTL expiry
  EXPECT_EQ(cache.stats().expirations, 1u);

  const std::size_t invalidated = cache.invalidate_if(
      [&b](const net::FiveTuple& flow) { return flow == b; });
  EXPECT_EQ(invalidated, 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

// ---------------------------------------------------------------- decide_many

TEST(DecideMany, PolicyEngineMemoizesDuplicateFlows) {
  ctrl::PolicyDecisionEngine engine(
      pf::parse("block all\npass from any to any port 80\n", "test"));

  ctrl::AdmissionContext web1, web2, telnet;
  web1.flow = make_flow(1, 2, 80);
  web2.flow = web1.flow;  // duplicate 5-tuple: must evaluate once
  telnet.flow = make_flow(1, 2, 23);

  const auto decisions = engine.decide_many({&web1, &web2, &telnet});
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_TRUE(decisions[0].allowed);
  EXPECT_TRUE(decisions[1].allowed);
  EXPECT_FALSE(decisions[2].allowed);
  // Two distinct flows, three contexts: the duplicate was served from the
  // batch memo.
  EXPECT_EQ(engine.policy_engine().stats().evaluations, 2u);
}

/// AdmissionController subclass whose queries vanish into the void: every
/// admission waits for the full query timeout, so simultaneous flows hit
/// one deadline sweep and decide as a single batch.
class BlackholeQueryController : public ctrl::AdmissionController {
 public:
  using AdmissionController::AdmissionController;

 protected:
  bool send_query(const net::FiveTuple&, const ctrl::QueryTarget&) override {
    return true;  // "sent"; no response will ever arrive
  }
};

TEST(DecideMany, SimultaneousTimeoutsDecideAsOneBatch) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "10.0.0.1");
  auto& b = net.add_host("b", "10.0.0.2");
  auto& c = net.add_host("c", "10.0.0.3");
  auto& server = net.add_host("server", "10.0.0.9");
  net.link(a, s1);
  net.link(b, s1);
  net.link(c, s1);
  net.link(server, s1);

  ctrl::AdmissionPipeline pipeline;
  auto engine = std::make_unique<FakeDecisionEngine>(23);
  FakeDecisionEngine* engine_ptr = engine.get();
  pipeline.engine = std::move(engine);
  BlackholeQueryController controller(&net.topology(), std::move(pipeline));
  controller.adopt_switch(s1);
  for (auto* h : {&a, &b, &c, &server}) {
    controller.register_host(h->ip(), h->id(), h->mac());
  }

  for (auto* h : {&a, &b, &c}) {
    h->add_user("u", "users");
    const int pid = h->launch("u", "/bin/x");
    net.start_flow(*h, pid, "10.0.0.9", 80);
  }
  net.run();

  // All three flows armed the same deadline; one sweep decided them
  // together through decide_many.
  ASSERT_EQ(engine_ptr->batch_sizes.size(), 1u);
  EXPECT_EQ(engine_ptr->batch_sizes[0], 3u);
  EXPECT_EQ(controller.stats().query_timeouts, 3u);
  EXPECT_EQ(controller.stats().flows_allowed, 3u);
  for (const auto& record : controller.audit_log()) {
    EXPECT_TRUE(record.timed_out);
  }
}

// ---------------------------------------------------------------- revocation

TEST(RevocationCacheInteraction, RevokeInvalidatesCachedDecisions) {
  // The seed bug: revoke_if removed installed entries but left decision-
  // cache entries live, so a revoked flow was silently re-admitted from
  // cache until its TTL passed.  Revocation must invalidate matching
  // cached decisions.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.decision_cache_ttl = 60 * sim::kSecond;
  auto& controller = net.install_controller("pass all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  ASSERT_EQ(controller.stats().flows_seen, 1u);

  const std::size_t removed = controller.revoke_if(
      [&client](const net::FiveTuple& flow) { return flow.src_ip == client.ip(); });
  EXPECT_GE(removed, 1u);
  ASSERT_NE(controller.decision_cache(), nullptr);
  EXPECT_GE(controller.decision_cache()->stats().invalidations, 1u);

  // The next packet must re-run the full decision (packet-in, queries),
  // not replay the revoked verdict from cache.
  client.send_flow_packet(h.flow, "after revoke", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller.stats().decision_cache_hits, 0u);
  EXPECT_EQ(controller.stats().flows_seen, 2u);
}

TEST(RevocationCacheInteraction, ReverseDirectionRevokeKillsKeepStateEntry) {
  // A cached keep_state decision installs entries for both directions but
  // is keyed on the forward flow; revoking by a predicate that matches
  // only the reverse direction must still invalidate it.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.decision_cache_ttl = 60 * sim::kSecond;
  auto& controller = net.install_controller("pass all keep state\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));

  // Predicate matches only flows *from the server* — the reverse direction
  // of the cached (forward-keyed) decision.
  (void)controller.revoke_if([&server](const net::FiveTuple& flow) {
    return flow.src_ip == server.ip();
  });
  EXPECT_GE(controller.decision_cache()->stats().invalidations, 1u);

  // Flush the surviving forward entries at the switch (bypassing revoke_if
  // so the cache is untouched): the next forward packet becomes a
  // packet-in, and it must re-decide instead of replaying the cached
  // keep_state verdict — a replay would silently reinstall the revoked
  // reverse entries.
  controller.topology().switch_at(s1).table().remove_if(
      [](const openflow::FlowEntry& e) { return e.cookie != 0; });
  client.send_flow_packet(h.flow, "again", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller.stats().decision_cache_hits, 0u);
  EXPECT_EQ(controller.stats().flows_seen, 2u);
}

TEST(RevocationCacheInteraction, CapacityAloneEnablesLruCache) {
  // decision_cache_capacity with ttl=0 means a pure LRU-bounded cache —
  // not "no cache".
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.decision_cache_capacity = 64;  // ttl stays 0
  config.install_full_path = false;
  auto& controller = net.install_controller("pass all\n", config);
  ASSERT_NE(controller.decision_cache(), nullptr);
  EXPECT_NE(dynamic_cast<ctrl::LruDecisionCache*>(controller.decision_cache()),
            nullptr);

  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  // Flush the installed entries: the next packet becomes a packet-in that
  // the (never-aging) cache answers without re-querying daemons.
  controller.topology().switch_at(s1).table().remove_if(
      [](const openflow::FlowEntry& e) { return e.cookie != 0; });
  const auto queries_before = controller.stats().queries_sent;
  client.send_flow_packet(h.flow, "later", net::TcpFlags::kPsh);
  net.run();
  EXPECT_GE(controller.stats().decision_cache_hits, 1u);
  EXPECT_EQ(controller.stats().queries_sent, queries_before);
}

TEST(RevocationCacheInteraction, PolicyReloadClearsCache) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.decision_cache_ttl = 60 * sim::kSecond;
  auto& controller = net.install_controller("pass all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));

  // Tighten the policy and revoke: the cached "pass" must not survive the
  // reload and re-admit the flow.
  controller.set_policy(pf::parse("block all\n", "revised"));
  controller.revoke_all();
  const auto delivered_before = server.stats().flow_payloads_received;
  client.send_flow_packet(h.flow, "after reload", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller.stats().decision_cache_hits, 0u);
  EXPECT_EQ(server.stats().flow_payloads_received, delivered_before);
  EXPECT_GE(controller.stats().flows_blocked, 1u);
}

TEST(RevocationCacheInteraction, DeferredDecisionReDecidesAfterControlChange) {
  // A controller on a shard decision lane (DESIGN.md §10) evaluates on
  // that lane and commits on the global lane at the same virtual instant.
  // A revoke_all between dispatch and commit bumps the control epoch, so
  // the commit discards the in-flight verdict and re-decides — behaviour
  // must match the inline (classic) decision path exactly.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.simulator().configure_shard_lanes(1);
  ctrl::ControllerConfig config;
  config.decision_lane = 1;
  config.cookie_namespace = 1;
  config.decision_cache_ttl = 60 * sim::kSecond;
  auto& controller = net.install_controller("pass all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  EXPECT_GE(controller.stats().flows_allowed, 1u);

  // And across a policy swap, the cached decision cannot re-admit.
  controller.set_policy(pf::parse("block all\n", "revised"));
  controller.revoke_all();
  client.send_flow_packet(h.flow, "after swap", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller.stats().decision_cache_hits, 0u);
  EXPECT_GE(controller.stats().flows_blocked, 1u);
}

TEST(RevocationCacheInteraction, TtlExpiryOnShardLaneReDecidesUnderCurrentEpoch) {
  // Cache expiry × shard control epoch: a TTL-expired verdict must force a
  // full re-decide through the shard-lane dispatch path, and a policy swap
  // after that must never resurrect the expired entry.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.simulator().configure_shard_lanes(1);
  ctrl::ControllerConfig config;
  config.decision_lane = 1;
  config.cookie_namespace = 1;
  config.decision_cache_ttl = 1 * sim::kMicrosecond;  // expires before reuse
  auto& controller = net.install_controller("pass all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  const auto queries_after_first = controller.stats().queries_sent;

  // Flush installed entries so the next packet is a packet-in again.  The
  // cached verdict has outlived its TTL by now (round trips take ms), so
  // the controller re-queries and re-decides on the shard lane.
  controller.topology().switch_at(s1).table().remove_if(
      [](const openflow::FlowEntry& e) { return e.cookie != 0; });
  client.send_flow_packet(h.flow, "after ttl", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller.stats().decision_cache_hits, 0u);
  EXPECT_GT(controller.stats().queries_sent, queries_after_first);
  ASSERT_NE(controller.decision_cache(), nullptr);
  EXPECT_GE(controller.decision_cache()->stats().expirations, 1u);

  // Epoch bump via policy swap: the re-decide lands under the new policy.
  controller.set_policy(pf::parse("block all\n", "revised"));
  controller.revoke_all();
  client.send_flow_packet(h.flow, "after swap", net::TcpFlags::kPsh);
  net.run();
  EXPECT_GE(controller.stats().flows_blocked, 1u);
}

// ---------------------------------------------------------------- regression

// Baselines on the shared pipeline must keep the seed behaviour bit-for-
// bit: same verdicts, same stats counters.

TEST(BaselineRegression, VanillaMatchesSeedVerdictsAndStats) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "192.168.1.1");
  net.link(client, s1);
  net.link(server, s1);
  auto& fw = net.install_vanilla_firewall(false);
  ctrl::VanillaFirewall::AclRule allow;
  allow.dst_port_low = 80;
  allow.dst_port_high = 80;
  allow.allow = true;
  fw.add_rule(allow);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");

  const FlowHandle web = net.start_flow(client, pid, "192.168.1.1", 80);
  const FlowHandle ssh = net.start_flow(client, pid, "192.168.1.1", 22);
  net.run();

  EXPECT_TRUE(net.flow_delivered(web));
  EXPECT_FALSE(net.flow_delivered(ssh));
  // Seed BaselineController counters: one packet-in per flow, immediate
  // decisions, one path entry (+1 reverse none), one drop entry.
  EXPECT_EQ(fw.stats().packet_ins, 2u);
  EXPECT_EQ(fw.stats().flows_seen, 2u);
  EXPECT_EQ(fw.stats().flows_allowed, 1u);
  EXPECT_EQ(fw.stats().flows_blocked, 1u);
  EXPECT_EQ(fw.stats().entries_installed, 2u);  // 1 allow path + 1 drop
  // No daemon machinery on baselines.
  EXPECT_EQ(fw.stats().queries_sent, 0u);
  EXPECT_EQ(fw.stats().query_timeouts, 0u);

  // Stateful reverse direction rides the state table, as in the seed.
  server.send_flow_packet(web.flow.reversed(), "SYN-ACK",
                          net::TcpFlags::kSyn | net::TcpFlags::kAck);
  net.run();
  EXPECT_EQ(client.stats().flow_payloads_received, 1u);
  EXPECT_EQ(fw.stats().flows_allowed, 2u);
}

TEST(BaselineRegression, EthaneSeesNoEndHostInformation) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  // Port rule works; @src predicate can never match (no queries).
  auto& ethane = net.install_ethane_controller(
      "block all\n"
      "pass from any to any port 80\n"
      "pass from any to any port 22 with eq(@src[userID], alice)\n");
  client.add_user("alice", "users");
  const int pid = client.launch("alice", "/usr/bin/ssh");

  const FlowHandle web = net.start_flow(client, pid, "10.0.0.2", 80);
  const FlowHandle ssh = net.start_flow(client, pid, "10.0.0.2", 22);
  net.run();

  EXPECT_TRUE(net.flow_delivered(web));
  EXPECT_FALSE(net.flow_delivered(ssh));  // alice IS the user, but Ethane
                                          // cannot know that
  EXPECT_EQ(ethane.stats().flows_allowed, 1u);
  EXPECT_EQ(ethane.stats().flows_blocked, 1u);
  EXPECT_EQ(ethane.stats().queries_sent, 0u);
  EXPECT_EQ(ethane.engine().stats().evaluations, 2u);
}

TEST(BaselineRegression, EthaneIgnoresKeepState) {
  // The seed Ethane baseline took only pass/block from the verdict: a
  // `keep state` rule never installed reverse-direction entries, so
  // reverse traffic re-decides on its own packet-in.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& ethane = net.install_ethane_controller("pass all keep state\n");
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  // Forward decision installed forward entries only.
  const auto flows_after_forward = ethane.stats().flows_seen;
  server.send_flow_packet(h.flow.reversed(), "SYN-ACK",
                          net::TcpFlags::kSyn | net::TcpFlags::kAck);
  net.run();
  EXPECT_EQ(ethane.stats().flows_seen, flows_after_forward + 1);
  EXPECT_EQ(client.stats().flow_payloads_received, 1u);  // still delivered
}

// ---------------------------------------------------------------- aggregation

[[nodiscard]] std::size_t installed_entries(core::Network& net, sim::NodeId sw) {
  std::size_t count = 0;
  for (const auto& entry : net.switch_at(sw).table().entries()) {
    if (entry.cookie != 0) ++count;  // skip boot/intercept rules
  }
  return count;
}

TEST(Aggregation, PortScanInstallsOneCoveringDrop) {
  // A port scan against a block-all policy: per-flow exact drops install
  // one entry per probe and punt every probe to the controller; the
  // aggregating strategy caches the covering rule once, after which the
  // scan dies in the switch.
  for (const bool aggregate : {false, true}) {
    Network net;
    const auto s1 = net.add_switch("s1");
    auto& attacker = net.add_host("attacker", "10.0.0.66");
    auto& victim = net.add_host("victim", "10.0.0.2");
    net.link(attacker, s1);
    net.link(victim, s1);
    ctrl::ControllerConfig config;
    config.aggregate_installs = aggregate;
    auto& controller = net.install_controller("block all\n", config);
    attacker.add_user("eve", "users");
    const int pid = attacker.launch("eve", "/bin/scan");

    constexpr std::uint16_t kProbes = 20;
    for (std::uint16_t port = 1000; port < 1000 + kProbes; ++port) {
      net.start_flow(attacker, pid, "10.0.0.2", port);
      net.run();
    }

    if (aggregate) {
      EXPECT_EQ(installed_entries(net, s1), 1u);   // one covering drop
      EXPECT_EQ(controller.stats().flows_seen, 1u);  // probes 2..N die in-switch
    } else {
      EXPECT_EQ(installed_entries(net, s1), kProbes);  // one drop per probe
      EXPECT_EQ(controller.stats().flows_seen, kProbes);
    }
  }
}

TEST(Aggregation, AllowCoverAdmitsLaterFlowsWithoutController) {
  // `pass from any to any port 80` (with an earlier, overridden
  // `block all`) is coverable: one wildcard entry per switch admits every
  // client, and only the first flow pays the controller round trip.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "10.0.0.1");
  auto& b = net.add_host("b", "10.0.0.2");
  auto& server = net.add_host("server", "10.0.0.9");
  net.link(a, s1);
  net.link(b, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.aggregate_installs = true;
  auto& controller = net.install_controller(
      "block all\npass from any to any port 80\n", config);

  core::FlowHandle first, second;
  a.add_user("u", "users");
  const int pa = a.launch("u", "/bin/x");
  first = net.start_flow(a, pa, "10.0.0.9", 80);
  net.run();
  b.add_user("v", "users");
  const int pb = b.launch("v", "/bin/x");
  second = net.start_flow(b, pb, "10.0.0.9", 80);
  net.run();

  EXPECT_TRUE(net.flow_delivered(first));
  EXPECT_TRUE(net.flow_delivered(second));
  EXPECT_EQ(installed_entries(net, s1), 1u);       // one covering allow
  EXPECT_EQ(controller.stats().flows_seen, 1u);    // second flow never punted
}

TEST(Aggregation, UncoverableRuleFallsBackToExactEntries) {
  // A rule guarded by a `with` predicate depends on daemon responses a
  // switch cannot evaluate — it must never be aggregated.
  ctrl::PolicyDecisionEngine engine(pf::parse(
      "block all\n"
      "pass from any to any port 22 with eq(@src[userID], alice)\n",
      "test"));
  EXPECT_TRUE(engine.rule_cover(1).empty());
  // And a rule shadowed by a later overlapping rule of opposite action is
  // unsound to cache wholesale.
  ctrl::PolicyDecisionEngine layered(pf::parse(
      "pass from any to any port 80\n"
      "block from 10.0.0.0/8 to any\n",
      "test"));
  EXPECT_TRUE(layered.rule_cover(0).empty());
  EXPECT_FALSE(layered.rule_cover(1).empty());
}

TEST(Aggregation, PolicyReloadFlushesCoveringEntries) {
  // set_policy keeps per-flow exact entries (seed behaviour) but MUST
  // flush rule covers: a covering entry keeps admitting/refusing *new*
  // flows under the old policy.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.aggregate_installs = true;
  auto& controller = net.install_controller("block all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  const core::FlowHandle blocked = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(blocked));
  ASSERT_EQ(installed_entries(net, s1), 1u);  // covering drop

  controller.set_policy(pf::parse("pass all\n", "revised"));
  EXPECT_EQ(installed_entries(net, s1), 0u);  // cover flushed with the policy
  const core::FlowHandle now_ok = net.start_flow(client, pid, "10.0.0.2", 81);
  net.run();
  EXPECT_TRUE(net.flow_delivered(now_ok));
}

TEST(Aggregation, RevokeIfRemovesCoverBySeedingFlow) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.aggregate_installs = true;
  auto& controller = net.install_controller("block all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_EQ(installed_entries(net, s1), 1u);

  const std::size_t removed = controller.revoke_if(
      [&client](const net::FiveTuple& flow) { return flow.src_ip == client.ip(); });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(installed_entries(net, s1), 0u);
}

// ---------------------------------------------------------------- audit log

TEST(Aggregation, PortRangeRuleCoversAsMaskedBlocks) {
  // An aligned contiguous range is one prefix-masked port entry...
  ctrl::PolicyDecisionEngine aligned(pf::parse(
      "block all\npass from any to any port 8000:8007\n", "test"));
  EXPECT_TRUE(aligned.rule_cover(0).empty());  // overlapped by the pass rule
  ASSERT_EQ(aligned.rule_cover(1).size(), 1u);
  EXPECT_EQ(aligned.rule_cover(1)[0].dst_port, 8000);
  EXPECT_EQ(aligned.rule_cover(1)[0].dst_port_mask, 0xfff8);

  // ...an unaligned one decomposes greedily (8000-8003 + 8004-8005)...
  ctrl::PolicyDecisionEngine split(pf::parse(
      "block all\npass from any to any port 8000:8005\n", "test"));
  ASSERT_EQ(split.rule_cover(1).size(), 2u);
  EXPECT_EQ(split.rule_cover(1)[0].dst_port_mask, 0xfffc);
  EXPECT_EQ(split.rule_cover(1)[1].dst_port, 8004);
  EXPECT_EQ(split.rule_cover(1)[1].dst_port_mask, 0xfffe);

  // ...and a range needing more than kMaxCoverEntries blocks stays
  // per-flow (worst-case alignment).
  ctrl::PolicyDecisionEngine awkward(pf::parse(
      "block all\npass from any to any port 1:65534\n", "test"));
  EXPECT_TRUE(awkward.rule_cover(1).empty());
}

TEST(Aggregation, PortRangeCoverAdmitsWholeRangeWithoutController) {
  // One decision against a port-range rule caches the range as masked
  // entries; later flows to OTHER ports of the range never punt.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "10.0.0.1");
  auto& b = net.add_host("b", "10.0.0.2");
  auto& server = net.add_host("server", "10.0.0.9");
  net.link(a, s1);
  net.link(b, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.aggregate_installs = true;
  auto& controller = net.install_controller(
      "block all\npass from any to any port 8000:8007\n", config);

  a.add_user("u", "users");
  const int pa = a.launch("u", "/bin/x");
  const auto first = net.start_flow(a, pa, "10.0.0.9", 8000);
  net.run();
  b.add_user("v", "users");
  const int pb = b.launch("v", "/bin/x");
  const auto second = net.start_flow(b, pb, "10.0.0.9", 8005);
  net.run();

  EXPECT_TRUE(net.flow_delivered(first));
  EXPECT_TRUE(net.flow_delivered(second));
  EXPECT_EQ(installed_entries(net, s1), 1u);     // one masked allow block
  EXPECT_EQ(controller.stats().flows_seen, 1u);  // second flow died in-switch
}

TEST(Aggregation, MultiCidrListCoversAsPrefixSet) {
  // A brace-list host covers with one prefix entry per member CIDR — the
  // IP analogue of the port-range block decomposition.
  ctrl::PolicyDecisionEngine engine(pf::parse(
      "block all\n"
      "pass from { 10.0.0.0/24 10.1.0.0/24 } to any port 80\n",
      "test"));
  const auto& covers = engine.rule_cover(1);
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0].src_ip_prefix, 24);
  EXPECT_EQ(covers[1].src_ip_prefix, 24);
  EXPECT_NE(covers[0].src_ip, covers[1].src_ip);
  EXPECT_EQ(covers[0].dst_port, 80);

  // Both sides listed: the cover is the cross product.
  ctrl::PolicyDecisionEngine both(pf::parse(
      "block all\n"
      "pass from { 10.0.0.0/24 10.1.0.0/24 } to "
      "{ 192.168.0.0/24 192.168.1.0/24 } port 80\n",
      "test"));
  EXPECT_EQ(both.rule_cover(1).size(), 4u);
}

TEST(Aggregation, TableHostCoversAsPrefixSet) {
  // Table-backed endpoints resolve through the ruleset's tables — a
  // ROADMAP known gap: these used to fall back to per-flow installs.
  ctrl::PolicyDecisionEngine engine(pf::parse(
      "table <lan> { 10.0.0.0/24 10.1.0.0/24 }\n"
      "block all\n"
      "pass from <lan> to any port 80\n",
      "test"));
  // Table declarations are not rules: the pass rule is index 1.
  EXPECT_EQ(engine.rule_cover(1).size(), 2u);
}

TEST(Aggregation, RedundantAndWideCidrListsNormalize) {
  // Contained members collapse into the wider prefix...
  ctrl::PolicyDecisionEngine nested(pf::parse(
      "block all\n"
      "pass from { 10.0.0.0/24 10.0.0.0/25 10.0.0.128/25 } to any port 80\n",
      "test"));
  EXPECT_EQ(nested.rule_cover(1).size(), 1u);
  // ...a /0 member makes the side unconstrained...
  ctrl::PolicyDecisionEngine wide(pf::parse(
      "block all\n"
      "pass from { 0.0.0.0/0 10.0.0.0/24 } to any port 80\n",
      "test"));
  ASSERT_EQ(wide.rule_cover(1).size(), 1u);
  EXPECT_NE(wide.rule_cover(1)[0].wildcards & openflow::Wildcard::kSrcIp,
            openflow::Wildcard::kNone);
  // ...and a cross product beyond kMaxCoverEntries stays per-flow
  // (5 CIDRs x 2 port blocks = 10 > 8).
  ctrl::PolicyDecisionEngine wide_product(pf::parse(
      "block all\n"
      "pass from { 10.0.0.0/24 10.1.0.0/24 10.2.0.0/24 10.3.0.0/24 "
      "10.4.0.0/24 } to any port 8000:8005\n",
      "test"));
  EXPECT_TRUE(wide_product.rule_cover(1).empty());
}

TEST(Aggregation, MultiCidrCoverAdmitsBothPrefixesWithoutController) {
  // One decision against a multi-CIDR rule installs the whole prefix set;
  // a later flow from the *other* CIDR rides it without a controller
  // round trip (previously: per-flow fallback, one round trip each).
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "10.0.0.1");
  auto& b = net.add_host("b", "10.1.0.1");
  auto& server = net.add_host("server", "192.168.0.9");
  net.link(a, s1);
  net.link(b, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.aggregate_installs = true;
  auto& controller = net.install_controller(
      "block all\npass from { 10.0.0.0/24 10.1.0.0/24 } to any port 80\n",
      config);

  a.add_user("u", "users");
  const int pa = a.launch("u", "/bin/x");
  const auto first = net.start_flow(a, pa, "192.168.0.9", 80);
  net.run();
  b.add_user("v", "users");
  const int pb = b.launch("v", "/bin/x");
  const auto second = net.start_flow(b, pb, "192.168.0.9", 80);
  net.run();

  EXPECT_TRUE(net.flow_delivered(first));
  EXPECT_TRUE(net.flow_delivered(second));
  EXPECT_EQ(installed_entries(net, s1), 2u);     // one entry per member CIDR
  EXPECT_EQ(controller.stats().flows_seen, 1u);  // second flow died in-switch
}

// ---------------------------------------------------------------- cookies

TEST(CookieMap, RevokeAllEmptiesCookieMap) {
  // The seed's installed_flows_ map never shrank; after a full revoke it
  // must return to zero (acceptance regression for the leak fix).
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& controller =
      net.install_controller("block all\npass from any to any port 80\n");
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/usr/sbin/httpd");
  server.listen(srv, 80);

  for (int i = 0; i < 4; ++i) {
    net.start_flow(client, pid, "10.0.0.2", 80);
    net.run();
  }
  EXPECT_GE(controller.installed_flow_count(), 4u);
  controller.revoke_all();
  EXPECT_EQ(controller.installed_flow_count(), 0u);
}

TEST(CookieMap, FlowExpiryRetiresCookies) {
  // Idle-timeout expiry notifies the controller, which must drop the
  // cookie-map entry once the cookie's last flow-table entry is gone.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.flow_idle_timeout = 1 * sim::kSecond;
  auto& controller = net.install_controller(
      "block all\npass from any to any port 80\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");

  net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_GT(controller.installed_flow_count(), 0u);

  // Sweep the table well past the idle timeout, then deliver the
  // flow-removed notifications.
  net.switch_at(s1).table().expire(net.simulator().now() + 5 * sim::kSecond);
  net.run();
  EXPECT_EQ(controller.installed_flow_count(), 0u);
  EXPECT_GT(controller.stats().flows_expired, 0u);
}

TEST(CookieMap, RevokeIfRetiresOnlyMatchingCookies) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& other = net.add_host("other", "10.0.0.3");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(other, s1);
  net.link(server, s1);
  auto& controller =
      net.install_controller("block all\npass from any to any port 80\n");
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  other.add_user("v", "users");
  const int po = other.launch("v", "/bin/x");

  net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  net.start_flow(other, po, "10.0.0.2", 80);
  net.run();
  const std::size_t before = controller.installed_flow_count();
  ASSERT_GE(before, 2u);

  const auto quarantined = *net::Ipv4Address::parse("10.0.0.1");
  controller.revoke_if([quarantined](const net::FiveTuple& flow) {
    return flow.src_ip == quarantined;
  });
  EXPECT_LT(controller.installed_flow_count(), before);
  EXPECT_GT(controller.installed_flow_count(), 0u);
}

// ---------------------------------------------------------------- verifier

TEST(VerifierIntegration, PolicyVerifyMemoizesAcrossDecisions) {
  // The policy's dict-embedded public key is registered (table built) at
  // engine construction, and identical attestations across decisions and
  // within a decide_many batch verify exactly once.
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("vendor");
  const std::string requirements = "block all pass all";
  const std::string exe_hash(64, 'a');
  const crypto::Signature sig =
      key.sign(proto::signed_message({exe_hash, "app", requirements}));

  proto::Response response;
  proto::Section section;
  section.add("exe-hash", exe_hash);
  section.add("app-name", "app");
  section.add("requirements", requirements);
  section.add("req-sig", sig.to_hex());
  response.append_section(section);

  ctrl::PolicyDecisionEngine engine(pf::parse(
      "dict <pubkeys> { vendor : " + key.public_key().to_hex() + " }\n"
      "block all\n"
      "pass all with verify(@dst[req-sig], @pubkeys[vendor], "
      "@dst[exe-hash], @dst[app-name], @dst[requirements])\n",
      "test"));
  ASSERT_NE(engine.verifier(), nullptr);
  EXPECT_EQ(engine.verifier()->registered_key_count(), 1u);

  ctrl::AdmissionContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("10.0.0.2");
  ctx.flow.dst_port = 80;
  ctx.dst_response = response;
  EXPECT_TRUE(engine.decide(ctx).allowed);
  EXPECT_EQ(engine.verifier()->stats().memo_misses, 1u);
  EXPECT_EQ(engine.verifier()->stats().table_verifications, 1u);
  EXPECT_TRUE(engine.decide(ctx).allowed);
  EXPECT_EQ(engine.verifier()->stats().memo_hits, 1u);

  // A batch of distinct flows carrying the same attestation: the 5-tuple
  // batch memo covers duplicates, the verification memo covers the rest.
  ctrl::AdmissionContext ctx2 = ctx;
  ctx2.flow.src_ip = *net::Ipv4Address::parse("10.0.0.7");
  const std::vector<const ctrl::AdmissionContext*> batch{&ctx, &ctx2, &ctx2};
  const auto decisions = engine.decide_many(batch);
  ASSERT_EQ(decisions.size(), 3u);
  for (const auto& d : decisions) EXPECT_TRUE(d.allowed);
  EXPECT_EQ(engine.verifier()->stats().table_verifications, 1u);  // still one
}

TEST(AuditLogCap, RingBufferDropsOldestAndCounts) {
  ctrl::AuditLogObserver log(2);
  ctrl::AdmissionDecision decision;
  for (std::uint16_t port : {std::uint16_t{1}, std::uint16_t{2}, std::uint16_t{3}}) {
    ctrl::DecisionRecord record;
    record.flow = make_flow(1, 2, port);
    log.on_decision(record, decision);
  }
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records().front().flow.dst_port, 2);  // oldest (port 1) dropped
  EXPECT_EQ(log.records().back().flow.dst_port, 3);
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(AuditLogCap, ControllerHonoursConfiguredCapacity) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.audit_log_capacity = 1;
  auto& controller = net.install_controller("pass all\n", config);
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");
  net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  net.start_flow(client, pid, "10.0.0.2", 81);
  net.run();
  ASSERT_EQ(controller.audit_log().size(), 1u);
  EXPECT_EQ(controller.audit_log().front().flow.dst_port, 81);
  EXPECT_EQ(controller.audit_dropped(), 1u);
}

TEST(BaselineRegression, DistributedFirewallAdmitsEverything) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& dfw = net.install_distributed_firewall();
  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/x");

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 4444);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  EXPECT_EQ(dfw.stats().flows_allowed, 1u);
  EXPECT_EQ(dfw.stats().flows_blocked, 0u);
}

}  // namespace
}  // namespace identxx
