// End-to-end integration tests on the simulated OpenFlow network:
//
//  * the Figure 1 flow-setup sequence (packet-in -> ident++ queries ->
//    policy -> path install -> delivery),
//  * decision caching in switch flow tables,
//  * the paper's application scenarios: Fig 2 (skype), Figs 4/5 (research
//    delegation), Figs 6/7 (trust delegation via "Secur"), Fig 8
//    (Conficker), §4 network collaboration and incremental deployment.

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "identxx/keys.hpp"

namespace identxx {
namespace {

using core::FlowHandle;
using core::Network;

/// Convenience: a host with one user and one running app, daemon configured
/// with an @app block built from the given pairs.
int launch_app(host::Host& h, const std::string& user, const std::string& group,
               const std::string& exe, const proto::KeyValueList& pairs = {}) {
  h.add_user(user, group);
  const int pid = h.launch(user, exe);
  if (!pairs.empty()) {
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = pairs;
    config.apps.push_back(app);
    h.daemon().add_config(proto::ConfigTrust::kSystem, config);
  }
  return pid;
}

// ---------------------------------------------------------------- Figure 1

struct Fig1Fixture : ::testing::Test {
  // client -- s1 -- server, default-deny except client->server:80 for
  // user alice.
  static constexpr char kPolicy[] =
      "block all\n"
      "pass from any to any port 80 with eq(@src[userID], alice)\n";

  Fig1Fixture() {
    s1 = net.add_switch("s1");
    client = &net.add_host("client", "10.0.0.1");
    server = &net.add_host("server", "10.0.0.2");
    net.link(*client, s1);
    net.link(*server, s1);
    controller = &net.install_controller(kPolicy);
    client_pid = launch_app(*client, "alice", "users", "/usr/bin/curl");
    server_pid = launch_app(*server, "www", "daemons", "/usr/sbin/httpd");
    server->listen(server_pid, 80);
  }

  Network net;
  sim::NodeId s1{};
  host::Host* client = nullptr;
  host::Host* server = nullptr;
  ctrl::IdentxxController* controller = nullptr;
  int client_pid = 0;
  int server_pid = 0;
};

TEST_F(Fig1Fixture, FlowSetupSequence) {
  const FlowHandle h = net.start_flow(*client, client_pid, "10.0.0.2", 80);
  net.run();

  // Step 5: the packet reached its destination.
  EXPECT_TRUE(net.flow_delivered(h));
  // Step 3: both ends were queried and answered.
  EXPECT_EQ(controller->stats().queries_sent, 2u);
  EXPECT_EQ(controller->stats().responses_received, 2u);
  EXPECT_EQ(controller->stats().query_timeouts, 0u);
  // Step 4: entries installed along the path.
  EXPECT_EQ(controller->stats().flows_allowed, 1u);
  EXPECT_GE(controller->stats().entries_installed, 1u);
  // The audit log identified the principal, not just the 5-tuple.
  ASSERT_EQ(controller->audit_log().size(), 1u);
  EXPECT_EQ(controller->audit_log()[0].src_user, "alice");
  EXPECT_TRUE(controller->audit_log()[0].allowed);
  EXPECT_GT(controller->audit_log()[0].setup_latency, 0);
}

TEST_F(Fig1Fixture, WrongUserIsBlocked) {
  client->add_user("mallory", "users");
  const int pid = client->launch("mallory", "/usr/bin/curl");
  const FlowHandle h = net.start_flow(*client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
  EXPECT_EQ(controller->stats().flows_blocked, 1u);
  ASSERT_EQ(controller->audit_log().size(), 1u);
  EXPECT_EQ(controller->audit_log()[0].src_user, "mallory");
  EXPECT_FALSE(controller->audit_log()[0].allowed);
}

TEST_F(Fig1Fixture, SecondPacketUsesCachedEntry) {
  const FlowHandle h = net.start_flow(*client, client_pid, "10.0.0.2", 80);
  net.run();
  const auto queries_before = controller->stats().queries_sent;
  const auto packet_ins_before = controller->stats().packet_ins;
  // Another packet of the same flow: served from the flow table.
  client->send_flow_packet(h.flow, "again", net::TcpFlags::kPsh);
  net.run();
  EXPECT_EQ(controller->stats().queries_sent, queries_before);
  EXPECT_EQ(controller->stats().packet_ins, packet_ins_before);
  const auto& dst = net.host("server");
  EXPECT_EQ(dst.stats().flow_payloads_received, 2u);
}

TEST_F(Fig1Fixture, BlockedFlowCachedAsDrop) {
  client->add_user("mallory", "users");
  const int pid = client->launch("mallory", "/usr/bin/curl");
  const FlowHandle h = net.start_flow(*client, pid, "10.0.0.2", 80);
  net.run();
  const auto packet_ins_before = controller->stats().packet_ins;
  client->send_flow_packet(h.flow, "retry");
  net.run();
  // The retry died at the switch's drop entry, not at the controller.
  EXPECT_EQ(controller->stats().packet_ins, packet_ins_before);
  EXPECT_FALSE(net.flow_delivered(h));
}

TEST_F(Fig1Fixture, RevocationForcesReDecision) {
  const FlowHandle h = net.start_flow(*client, client_pid, "10.0.0.2", 80);
  net.run();
  EXPECT_GT(controller->revoke_all(), 0u);
  // Flip policy to default-deny-everything, then retry the same flow.
  controller->set_policy(pf::parse("block all\n", "revised"));
  client->send_flow_packet(h.flow, "after-revoke");
  net.run();
  EXPECT_EQ(controller->stats().flows_blocked, 1u);
  EXPECT_EQ(net.host("server").stats().flow_payloads_received, 1u);
}

TEST_F(Fig1Fixture, UnknownDestinationTimesOutAndBlocks) {
  // Flow to an IP with no registered host: the dst query cannot be sent,
  // the src answers, and the default-deny policy blocks (no userID match
  // needed here — policy requires dst port 80 and alice, which holds, so
  // use a stricter policy instead).
  controller->set_policy(pf::parse(
      "block all\npass from any to any with eq(@dst[userID], www)\n", "t"));
  const FlowHandle h = net.start_flow(*client, client_pid, "99.99.99.99", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
  EXPECT_EQ(controller->stats().flows_blocked, 1u);
}

TEST_F(Fig1Fixture, DaemonlessHostTimesOut) {
  server->set_daemon_enabled(false);
  const FlowHandle h = net.start_flow(*client, client_pid, "10.0.0.2", 80);
  net.run();
  // The dst query goes unanswered; decision happens at the timeout with
  // src-only information.  Policy only needs @src so the flow still passes.
  EXPECT_EQ(controller->stats().query_timeouts, 1u);
  EXPECT_TRUE(net.flow_delivered(h));
  ASSERT_EQ(controller->audit_log().size(), 1u);
  EXPECT_TRUE(controller->audit_log()[0].timed_out);
}

// ---------------------------------------------------------------- paths

TEST(MultiSwitch, EntriesInstalledAlongFullPath) {
  Network net;
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto s3 = net.add_switch("s3");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(s1, s2);
  net.link(s2, s3);
  net.link(server, s3);
  auto& controller = net.install_controller("pass all\n");
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  (void)launch_app(server, "www", "daemons", "/bin/srv");

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  // One entry per switch on the path (plus 2 intercept rules per switch).
  EXPECT_EQ(controller.stats().entries_installed, 3u);
  for (const auto sw : {s1, s2, s3}) {
    EXPECT_EQ(net.switch_at(sw).table().size(), 3u) << "switch " << sw;
  }
  // Only the first switch saw a packet-in for the flow itself; the flow's
  // released packet traversed s2/s3 on installed entries.  (s3 punts exactly
  // one packet: the server daemon's ident++ response, by design.)
  EXPECT_EQ(controller.stats().flows_seen, 1u);
  EXPECT_EQ(net.switch_at(s2).stats().packets_to_controller, 0u);
  EXPECT_EQ(net.switch_at(s3).stats().packets_to_controller, 1u);
}

TEST(MultiSwitch, IngressOnlyAblationReAsksPerSwitch) {
  Network net;
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(s1, s2);
  net.link(server, s2);
  ctrl::ControllerConfig config;
  config.install_full_path = false;  // DESIGN.md §6 ablation
  auto& controller = net.install_controller("pass all\n", config);
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  (void)launch_app(server, "www", "daemons", "/bin/srv");

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  // s2 also had to punt the flow's first packet.
  EXPECT_GE(net.switch_at(s2).stats().packets_to_controller, 1u);
  EXPECT_GE(controller.stats().flows_seen, 2u);
}

TEST(MultiSwitch, KeepStateInstallsReversePath) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& controller = net.install_controller(
      "block all\npass from any to any port 80 keep state\n");
  const int client_pid = launch_app(client, "alice", "users", "/bin/app");
  const int server_pid = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(server_pid, 80);

  const FlowHandle h = net.start_flow(client, client_pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  const auto packet_ins = controller.stats().packet_ins;
  // Server replies on the reverse flow; with keep state it must not cause
  // a new packet-in (the reverse entry is already installed).
  server.connect_flow(server_pid, client.ip(), h.flow.src_port);  // socket
  server.send_flow_packet(h.flow.reversed(), "SYN-ACK",
                          net::TcpFlags::kSyn | net::TcpFlags::kAck);
  net.run();
  EXPECT_EQ(controller.stats().packet_ins, packet_ins);
  EXPECT_EQ(client.stats().flow_payloads_received, 1u);
}

// ---------------------------------------------------------------- Fig 2

struct SkypeFixture : ::testing::Test {
  static constexpr char kFig2Policy[] = R"(
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }"
block all
pass from <int_hosts> to !<int_hosts> keep state
pass from <int_hosts> to <int_hosts> \
  with member(@src[name], $allowed) keep state
table <skype_update> { 123.123.123.0/24 }
pass all with eq(@src[name], skype) with eq(@dst[name], skype)
pass from any to <skype_update> port 80 with eq(@src[name], skype) keep state
block all with eq(@src[name], skype) with lt(@src[version], 200)
block from any to <server> with eq(@src[name], skype)
)";

  SkypeFixture() {
    s1 = net.add_switch("s1");
    a = &net.add_host("a", "192.168.0.10");
    b = &net.add_host("b", "192.168.0.11");
    update = &net.add_host("update", "123.123.123.5");
    net.link(*a, s1);
    net.link(*b, s1);
    net.link(*update, s1);
    controller = &net.install_controller(kFig2Policy);
    (void)launch_app(*update, "www", "daemons", "/bin/updatesrv");
  }

  int launch_skype(host::Host& h, const char* version) {
    return launch_app(h, "user-" + h.name(), "users", "/usr/bin/skype",
                      {{"name", "skype"}, {"version", version}});
  }

  Network net;
  sim::NodeId s1{};
  host::Host* a = nullptr;
  host::Host* b = nullptr;
  host::Host* update = nullptr;
  ctrl::IdentxxController* controller = nullptr;
};

TEST_F(SkypeFixture, SkypeToSkypeAllowed) {
  const int pid_a = launch_skype(*a, "210");
  const int pid_b = launch_skype(*b, "210");
  b->listen(pid_b, 5555);
  const FlowHandle h = net.start_flow(*a, pid_a, "192.168.0.11", 5555);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
}

TEST_F(SkypeFixture, SkypeToNonSkypeBlocked) {
  const int pid_a = launch_skype(*a, "210");
  const int pid_b = launch_app(*b, "user-b", "users", "/usr/bin/nc",
                               {{"name", "nc"}});
  b->listen(pid_b, 5555);
  const FlowHandle h = net.start_flow(*a, pid_a, "192.168.0.11", 5555);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

TEST_F(SkypeFixture, OldSkypeBlockedEvenForUpdate) {
  const int pid = launch_skype(*a, "190");
  const FlowHandle h = net.start_flow(*a, pid, "123.123.123.5", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

TEST_F(SkypeFixture, CurrentSkypeMayFetchUpdates) {
  const int pid = launch_skype(*a, "210");
  const FlowHandle h = net.start_flow(*a, pid, "123.123.123.5", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
}

TEST_F(SkypeFixture, ApprovedAppBetweenInternalHosts) {
  const int pid = launch_app(*a, "user-a", "users", "/usr/bin/ssh",
                             {{"name", "ssh"}});
  const int pid_b = launch_app(*b, "user-b", "users", "/usr/sbin/sshd",
                               {{"name", "sshd"}});
  b->listen(pid_b, 22);
  const FlowHandle h = net.start_flow(*a, pid, "192.168.0.11", 22);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
}

TEST_F(SkypeFixture, UnapprovedAppBetweenInternalHostsBlocked) {
  const int pid = launch_app(*a, "user-a", "users", "/usr/bin/dropbox",
                             {{"name", "dropbox"}});
  const int pid_b = launch_app(*b, "user-b", "users", "/usr/bin/dropbox",
                               {{"name", "dropbox"}});
  b->listen(pid_b, 17500);
  const FlowHandle h = net.start_flow(*a, pid, "192.168.0.11", 17500);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

// ---------------------------------------------------------------- Fig 4/5

TEST(ResearchDelegation, SignedRequirementsGateTraffic) {
  // Figures 4 and 5: researchers may run any app on research machines as
  // long as the app's *signed* requirements admit the flow and the target
  // is not a production machine.
  const crypto::PrivateKey research_key = crypto::PrivateKey::from_seed(
      "research-group-key");

  Network net;
  const auto s1 = net.add_switch("s1");
  auto& rm1 = net.add_host("rm1", "10.1.0.1");
  auto& rm2 = net.add_host("rm2", "10.1.0.2");
  auto& prod = net.add_host("prod", "10.2.0.1");
  net.link(rm1, s1);
  net.link(rm2, s1);
  net.link(prod, s1);

  const std::string policy =
      "table <research-machines> { 10.1.0.0/16 }\n"
      "table <production-machines> { 10.2.0.0/16 }\n"
      "dict <pubkeys> { research : " + research_key.public_key().to_hex() +
      " }\n"
      "block all\n"
      "pass from <research-machines> \\\n"
      "  with member(@src[groupID], research) \\\n"
      "  to !<production-machines> \\\n"
      "  with member(@dst[groupID], research) \\\n"
      "  with allowed(@dst[requirements]) \\\n"
      "  with verify(@dst[req-sig], @pubkeys[research], \\\n"
      "    @dst[exe-hash], @dst[app-name], @dst[requirements])\n";
  auto& controller = net.install_controller(policy);

  // The research app only talks to other research apps (Fig 4).
  const std::string requirements =
      "block all pass all with eq(@src[name], research-app) "
      "with eq(@dst[name], research-app)";
  const std::string exe = "/usr/bin/research-app";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  const crypto::Signature sig = research_key.sign(
      proto::signed_message({exe_hash, "research-app", requirements}));
  const proto::KeyValueList app_pairs = {
      {"name", "research-app"},
      {"requirements", requirements},
      {"req-sig", sig.to_hex()},
  };

  const int pid1 = launch_app(rm1, "alice", "research", exe, app_pairs);
  const int pid2 = launch_app(rm2, "bob", "research", exe, app_pairs);
  rm2.listen(pid2, 9000);

  // research-app -> research-app on research machines: allowed.
  const FlowHandle ok = net.start_flow(rm1, pid1, "10.1.0.2", 9000);
  net.run();
  EXPECT_TRUE(net.flow_delivered(ok));
  EXPECT_EQ(controller.stats().flows_allowed, 1u);

  // Same app, but to a production machine: blocked by the admin's coarse
  // policy even though the signed requirements would permit it.
  const int pid_prod = launch_app(prod, "ops", "research", exe, app_pairs);
  prod.listen(pid_prod, 9000);
  const FlowHandle bad = net.start_flow(rm1, pid1, "10.2.0.1", 9000);
  net.run();
  EXPECT_FALSE(net.flow_delivered(bad));
}

TEST(ResearchDelegation, TamperedRequirementsRejected) {
  const crypto::PrivateKey research_key =
      crypto::PrivateKey::from_seed("research-group-key");
  const crypto::PrivateKey attacker_key =
      crypto::PrivateKey::from_seed("attacker");

  Network net;
  const auto s1 = net.add_switch("s1");
  auto& rm1 = net.add_host("rm1", "10.1.0.1");
  auto& rm2 = net.add_host("rm2", "10.1.0.2");
  net.link(rm1, s1);
  net.link(rm2, s1);
  const std::string policy =
      "table <research-machines> { 10.1.0.0/16 }\n"
      "dict <pubkeys> { research : " + research_key.public_key().to_hex() +
      " }\n"
      "block all\n"
      "pass from <research-machines> to any \\\n"
      "  with allowed(@dst[requirements]) \\\n"
      "  with verify(@dst[req-sig], @pubkeys[research], \\\n"
      "    @dst[exe-hash], @dst[app-name], @dst[requirements])\n";
  net.install_controller(policy);

  const std::string exe = "/usr/bin/research-app";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  // Signed by the WRONG key: the attacker cannot mint requirements.
  const std::string requirements = "pass all";
  const crypto::Signature forged = attacker_key.sign(
      proto::signed_message({exe_hash, "research-app", requirements}));
  const proto::KeyValueList pairs = {{"name", "research-app"},
                                     {"app-name", "research-app"},
                                     {"requirements", requirements},
                                     {"req-sig", forged.to_hex()}};
  const int pid1 = launch_app(rm1, "alice", "research", exe, pairs);
  const int pid2 = launch_app(rm2, "bob", "research", exe, pairs);
  rm2.listen(pid2, 9000);
  const FlowHandle h = net.start_flow(rm1, pid1, "10.1.0.2", 9000);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

// ---------------------------------------------------------------- Fig 6/7

TEST(TrustDelegation, SecurApprovedAppAllowed) {
  // Figures 6 and 7: any application is allowed as long as it carries
  // rules signed by the third-party security company "Secur" and the flow
  // conforms to those rules.
  const crypto::PrivateKey secur = crypto::PrivateKey::from_seed("Secur Inc");

  Network net;
  const auto s1 = net.add_switch("s1");
  auto& desk = net.add_host("desk", "10.0.0.1");
  auto& mail = net.add_host("mail", "10.0.0.2");
  net.link(desk, s1);
  net.link(mail, s1);

  const std::string policy =
      "dict <pubkeys> { Secur : " + secur.public_key().to_hex() + " }\n"
      "block all\n"
      "pass from any \\\n"
      "  with eq(@src[rule-maker], Secur) \\\n"
      "  with allowed(@src[requirements]) \\\n"
      "  with verify(@src[req-sig], @pubkeys[Secur], \\\n"
      "    @src[exe-hash], @src[app-name], @src[requirements]) \\\n"
      "  to any\n";
  net.install_controller(policy);

  // Fig 6: thunderbird may only talk to email servers.
  const std::string exe = "/usr/bin/thunderbird";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  const std::string requirements =
      "block all pass from any with eq(@src[name], thunderbird) "
      "to any with eq(@dst[type], email-server)";
  const crypto::Signature sig = secur.sign(
      proto::signed_message({exe_hash, "thunderbird", requirements}));
  const proto::KeyValueList tb_pairs = {{"name", "thunderbird"},
                                        {"type", "email-client"},
                                        {"rule-maker", "Secur"},
                                        {"requirements", requirements},
                                        {"req-sig", sig.to_hex()}};
  const int tb = launch_app(desk, "alice", "users", exe, tb_pairs);
  const int smtpd = launch_app(mail, "smtp", "daemons", "/usr/sbin/smtpd",
                               {{"name", "smtpd"}, {"type", "email-server"}});
  mail.listen(smtpd, 25);

  const FlowHandle ok = net.start_flow(desk, tb, "10.0.0.2", 25);
  net.run();
  EXPECT_TRUE(net.flow_delivered(ok));
}

TEST(TrustDelegation, SecurRulesConstrainTheApp) {
  // thunderbird trying to reach a non-email server is blocked by Secur's
  // own rules even though the signature verifies.
  const crypto::PrivateKey secur = crypto::PrivateKey::from_seed("Secur Inc");

  Network net;
  const auto s1 = net.add_switch("s1");
  auto& desk = net.add_host("desk", "10.0.0.1");
  auto& web = net.add_host("web", "10.0.0.3");
  net.link(desk, s1);
  net.link(web, s1);
  const std::string policy =
      "dict <pubkeys> { Secur : " + secur.public_key().to_hex() + " }\n"
      "block all\n"
      "pass from any \\\n"
      "  with eq(@src[rule-maker], Secur) \\\n"
      "  with allowed(@src[requirements]) \\\n"
      "  with verify(@src[req-sig], @pubkeys[Secur], \\\n"
      "    @src[exe-hash], @src[app-name], @src[requirements]) \\\n"
      "  to any\n";
  net.install_controller(policy);

  const std::string exe = "/usr/bin/thunderbird";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  const std::string requirements =
      "block all pass from any with eq(@src[name], thunderbird) "
      "to any with eq(@dst[type], email-server)";
  const crypto::Signature sig = secur.sign(
      proto::signed_message({exe_hash, "thunderbird", requirements}));
  const int tb = launch_app(desk, "alice", "users", exe,
                            {{"name", "thunderbird"},
                             {"rule-maker", "Secur"},
                             {"requirements", requirements},
                             {"req-sig", sig.to_hex()}});
  const int httpd = launch_app(web, "www", "daemons", "/usr/sbin/httpd",
                               {{"name", "httpd"}, {"type", "web-server"}});
  web.listen(httpd, 80);
  const FlowHandle h = net.start_flow(desk, tb, "10.0.0.3", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
}

// ---------------------------------------------------------------- Fig 8

TEST(ConfickerMitigation, PatchGateEndToEnd) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& ws = net.add_host("workstation", "192.168.0.10");
  auto& srv_patched = net.add_host("patched", "192.168.0.20");
  auto& srv_unpatched = net.add_host("unpatched", "192.168.0.21");
  net.link(ws, s1);
  net.link(srv_patched, s1);
  net.link(srv_unpatched, s1);
  net.install_controller(R"(
table <lan> { 192.168.0.0/24 }
block all
pass from <lan> with eq(@src[userID], system) \
  to <lan> with eq(@dst[userID], system) \
  with eq(@dst[name], Server) \
  with includes(@dst[os-patch], MS08-067)
)");

  const int client = launch_app(ws, "system", "system", "/win/svchost.exe");
  const int s_ok = launch_app(srv_patched, "system", "system",
                              "/win/services.exe", {{"name", "Server"}});
  srv_patched.daemon().add_host_fact(proto::keys::kOsPatch,
                                     "MS08-001 MS08-067");
  srv_patched.listen(s_ok, 445);
  const int s_bad = launch_app(srv_unpatched, "system", "system",
                               "/win/services.exe", {{"name", "Server"}});
  srv_unpatched.daemon().add_host_fact(proto::keys::kOsPatch, "MS08-001");
  srv_unpatched.listen(s_bad, 445);

  const FlowHandle ok = net.start_flow(ws, client, "192.168.0.20", 445);
  const FlowHandle blocked = net.start_flow(ws, client, "192.168.0.21", 445);
  net.run();
  EXPECT_TRUE(net.flow_delivered(ok));
  EXPECT_FALSE(net.flow_delivered(blocked));
}

// ---------------------------------------------------------------- §4 collab

TEST(BranchCollaboration, RemoteControllerAugmentsResponses) {
  // Two branches, each with its own switch + controller.  Branch B's
  // controller appends a signed section to responses transiting its domain;
  // branch A's policy requires that endorsement chain.
  Network net;
  const auto sA = net.add_switch("sA");
  const auto sB = net.add_switch("sB");
  auto& clientA = net.add_host("clientA", "10.1.0.1");
  auto& serverB = net.add_host("serverB", "10.2.0.1");
  net.link(clientA, sA);
  net.link(sA, sB);
  net.link(serverB, sB);

  ctrl::ControllerConfig confA;
  confA.name = "branchA";
  auto& ctrlA = net.install_domain_controller(
      "block all\n"
      "pass from any to any with eq(@dst[network], branchB)\n",
      {sA}, confA);
  ctrl::ControllerConfig confB;
  confB.name = "branchB";
  auto& ctrlB = net.install_domain_controller("pass all\n", {sB}, confB);

  // B vouches for responses leaving its network (§4: the controller
  // modifies responses to queries and adds rules/identity).
  ctrlB.set_response_augmenter(
      [](const proto::Response&, const net::FiveTuple&)
          -> std::optional<proto::Section> {
        proto::Section section;
        section.add(proto::keys::kNetwork, "branchB");
        return section;
      });

  const int pid = launch_app(clientA, "alice", "users", "/bin/app");
  const int srv = launch_app(serverB, "www", "daemons", "/bin/srv");
  serverB.listen(srv, 80);

  const FlowHandle h = net.start_flow(clientA, pid, "10.2.0.1", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  EXPECT_GE(ctrlB.stats().responses_augmented, 1u);
  EXPECT_GE(ctrlB.stats().ident_transit_forwarded, 1u);
  ASSERT_GE(ctrlA.audit_log().size(), 1u);
  EXPECT_TRUE(ctrlA.audit_log().back().allowed);
}

TEST(BranchCollaboration, WithoutEndorsementBlocked) {
  // Same setup but B does not augment: A's policy fails.
  Network net;
  const auto sA = net.add_switch("sA");
  const auto sB = net.add_switch("sB");
  auto& clientA = net.add_host("clientA", "10.1.0.1");
  auto& serverB = net.add_host("serverB", "10.2.0.1");
  net.link(clientA, sA);
  net.link(sA, sB);
  net.link(serverB, sB);
  auto& ctrlA = net.install_domain_controller(
      "block all\n"
      "pass from any to any with eq(@dst[network], branchB)\n",
      {sA});
  net.install_domain_controller("pass all\n", {sB});
  const int pid = launch_app(clientA, "alice", "users", "/bin/app");
  const int srv = launch_app(serverB, "www", "daemons", "/bin/srv");
  serverB.listen(srv, 80);
  const FlowHandle h = net.start_flow(clientA, pid, "10.2.0.1", 80);
  net.run();
  EXPECT_FALSE(net.flow_delivered(h));
  EXPECT_EQ(ctrlA.stats().flows_blocked, 1u);
}

// ---------------------------------------------------------------- §4 incr.

TEST(IncrementalDeployment, ProxyAnswersForDaemonlessHost) {
  // Controllers can answer queries on behalf of end-hosts that do not run
  // ident++ ("incremental benefit", §4).
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& legacy = net.add_host("legacy", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(legacy, s1);
  net.link(server, s1);
  auto& controller = net.install_controller(
      "block all\npass from any to any with eq(@src[userID], printer)\n");
  legacy.set_daemon_enabled(false);  // no ident++ on the legacy box
  proto::Section proxy;
  proxy.add(proto::keys::kUserId, "printer");
  controller.set_proxy_response(legacy.ip(), proxy);

  legacy.add_user("any", "any");
  const int pid = legacy.launch("any", "/firmware/print");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 631);
  const FlowHandle h = net.start_flow(legacy, pid, "10.0.0.2", 631);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  EXPECT_GE(controller.stats().queries_proxied, 1u);
}

TEST(IncrementalDeployment, HostsOnlyModeStillServesIdentity) {
  // If only end-hosts implement ident++ (no controller interception), a
  // server can query the daemon directly to distinguish users (§4).
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.install_controller("pass all\n");  // permissive network
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  (void)pid;
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 80);
  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  // The server-side application now queries the client's daemon itself.
  const net::FiveTuple ident_flow =
      server.connect_flow(srv, client.ip(), proto::kIdentPort);
  proto::Query query;
  query.proto = h.flow.proto;
  query.src_port = h.flow.src_port;
  query.dst_port = h.flow.dst_port;
  query.keys = {proto::keys::kUserId};
  server.send_flow_packet(ident_flow, query.serialize(),
                          net::TcpFlags::kPsh | net::TcpFlags::kAck);
  net.run();
  // The daemon's answer lands back at the server as a delivered payload.
  bool got_answer = false;
  for (const auto& packet : server.delivered()) {
    if (packet.tcp && packet.tcp->src_port == proto::kIdentPort) {
      const auto response = proto::Response::parse(packet.payload_text());
      const proto::ResponseDict dict(response);
      EXPECT_EQ(*dict.latest(proto::keys::kUserId), "alice");
      got_answer = true;
    }
  }
  EXPECT_TRUE(got_answer);
}

// ---------------------------------------------------------------- extras

TEST(LogRules, LoggedDecisionsAreFlaggedInAudit) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& controller = net.install_controller(
      "block all\n"
      "pass from any to any port 80\n"
      "pass log from any to any port 22\n");
  const int pid = launch_app(client, "u", "users", "/bin/x");
  (void)launch_app(server, "www", "daemons", "/bin/srv");

  const FlowHandle web = net.start_flow(client, pid, "10.0.0.2", 80);
  const FlowHandle ssh = net.start_flow(client, pid, "10.0.0.2", 22);
  net.run();
  EXPECT_TRUE(net.flow_delivered(web));
  EXPECT_TRUE(net.flow_delivered(ssh));
  ASSERT_EQ(controller.audit_log().size(), 2u);
  EXPECT_EQ(controller.stats().flows_logged, 1u);
  bool found_logged = false;
  for (const auto& record : controller.audit_log()) {
    if (record.flow.dst_port == 22) {
      EXPECT_TRUE(record.logged);
      found_logged = true;
    } else {
      EXPECT_FALSE(record.logged);
    }
  }
  EXPECT_TRUE(found_logged);
}

TEST(UdpFlows, FullStackDecision) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.install_controller(
      "block all\n"
      "pass proto udp from any to any port dns with eq(@src[userID], alice)\n");
  const int pid = launch_app(client, "alice", "users", "/usr/bin/dig");
  const int srv = launch_app(server, "named", "daemons", "/usr/sbin/named");
  server.listen(srv, 53, net::IpProto::kUdp);

  const FlowHandle udp =
      net.start_flow(client, pid, "10.0.0.2", 53, net::IpProto::kUdp, "query");
  net.run();
  EXPECT_TRUE(net.flow_delivered(udp));
  // Same port over TCP: blocked by the proto clause.
  const FlowHandle tcp =
      net.start_flow(client, pid, "10.0.0.2", 53, net::IpProto::kTcp, "query");
  net.run();
  EXPECT_FALSE(net.flow_delivered(tcp));
}

TEST(Robustness, HostileIdentPayloadsDoNotCrashController) {
  // An attacker sprays garbage at TCP 783 in both directions; the
  // controller must survive and keep deciding real flows.
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& attacker = net.add_host("attacker", "10.0.0.66");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(attacker, s1);
  net.link(client, s1);
  net.link(server, s1);
  net.install_controller(
      "block all\npass from 10.0.0.1 to any port 80\n");
  attacker.add_user("eve", "users");
  const int evil = attacker.launch("eve", "/bin/evil");
  const int pid = launch_app(client, "alice", "users", "/bin/x");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 80);

  const char* garbage[] = {"", "\n\n\n", "tcp", "tcp a b\n",
                           "not even close ::: }{",
                           "tcp 1 2\nkey without colon\n"};
  for (const char* payload : garbage) {
    // Toward a daemon (query direction)...
    auto f1 = attacker.connect_flow(evil, server.ip(), proto::kIdentPort);
    attacker.send_flow_packet(f1, payload, net::TcpFlags::kPsh);
    // ...and from a fake daemon (response direction).
    net::FiveTuple f2{attacker.ip(), client.ip(), net::IpProto::kTcp,
                      proto::kIdentPort, 12345};
    attacker.send_flow_packet(f2, payload, net::TcpFlags::kPsh);
  }
  net.run();

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
}

TEST(TcpHandshake, KeepStateLetsSynAckReturnWithoutNewDecision) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  auto& controller = net.install_controller(
      "block all\npass from any to any port 80 keep state\n");
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 80);
  server.set_auto_accept(true);

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  // The SYN arrived and the SYN-ACK came back over the keep-state reverse
  // entries without a second controller decision.
  EXPECT_TRUE(net.flow_delivered(h));
  EXPECT_EQ(client.stats().flow_payloads_received, 1u);  // the SYN-ACK
  EXPECT_EQ(controller.stats().flows_seen, 1u);
  // The server can now resolve the connected socket for later queries.
  const auto owner = server.resolve(h.flow.reversed(), false);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->user_id, "www");
}

TEST(TcpHandshake, StatelessPolicyEvaluatesSynAckAsNewFlow) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  // Stateless: forward direction to port 80 only; the SYN-ACK (sport 80)
  // is a distinct flow and must face the policy itself — and gets blocked.
  auto& controller = net.install_controller(
      "block all\npass from any to any port 80\n");
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 80);
  server.set_auto_accept(true);

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  EXPECT_EQ(client.stats().flow_payloads_received, 0u);  // SYN-ACK blocked
  EXPECT_EQ(controller.stats().flows_seen, 2u);          // both directions
  EXPECT_EQ(controller.stats().flows_blocked, 1u);
}

TEST(DecisionCache, ServesRepeatPacketInsWithoutRequerying) {
  // With install_full_path off, the flow's first packet misses at every
  // switch; the decision cache turns the later misses into cache hits
  // instead of fresh daemon queries.
  Network net;
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(s1, s2);
  net.link(server, s2);
  ctrl::ControllerConfig config;
  config.install_full_path = false;
  config.decision_cache_ttl = 1 * sim::kSecond;
  auto& controller = net.install_controller("pass all\n", config);
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 80);

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  EXPECT_TRUE(net.flow_delivered(h));
  // Exactly one query pair despite two packet-ins (one per switch).
  EXPECT_EQ(controller.stats().queries_sent, 2u);
  EXPECT_GE(controller.stats().decision_cache_hits, 1u);
}

TEST(DecisionCache, ExpiresAfterTtl) {
  Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.decision_cache_ttl = 10 * sim::kMillisecond;
  config.flow_idle_timeout = 1 * sim::kMillisecond;  // entries die fast
  auto& controller = net.install_controller("pass all\n", config);
  const int pid = launch_app(client, "alice", "users", "/bin/app");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  server.listen(srv, 80);

  const FlowHandle h = net.start_flow(client, pid, "10.0.0.2", 80);
  net.run();
  ASSERT_TRUE(net.flow_delivered(h));
  const auto queries_after_first = controller.stats().queries_sent;

  // Long after both the entry and the cached decision lapsed: full
  // re-decision, with fresh queries.
  net.simulator().schedule_after(
      500 * sim::kMillisecond, [&client, flow = h.flow] {
        client.send_flow_packet(flow, "later", net::TcpFlags::kPsh);
      });
  net.run();
  EXPECT_GT(controller.stats().queries_sent, queries_after_first);
}

TEST(Concurrency, ManySimultaneousFlowsDecideIndependently) {
  // 24 flows from 3 clients launched in the same instant; every decision
  // must match the per-flow attributes with no cross-talk in the pending
  // table.
  Network net;
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  net.link(s1, s2);
  std::vector<host::Host*> clients;
  for (int i = 0; i < 3; ++i) {
    auto& c = net.add_host("c" + std::to_string(i),
                           "10.0.0." + std::to_string(10 + i));
    net.link(c, s1);
    clients.push_back(&c);
  }
  auto& server = net.add_host("server", "10.0.1.1");
  net.link(server, s2);
  net.install_controller(
      "block all\npass from any to any with eq(@src[userID], alice)\n");
  const int srv = launch_app(server, "www", "daemons", "/bin/srv");
  for (std::uint16_t port = 8000; port < 8008; ++port) server.listen(srv, port);

  struct Expectation {
    FlowHandle handle;
    bool should_pass;
  };
  std::vector<Expectation> expectations;
  for (auto* c : clients) {
    c->add_user("alice", "users");
    c->add_user("bob", "users");
    const int alice_pid = c->launch("alice", "/bin/x");
    const int bob_pid = c->launch("bob", "/bin/x");
    for (std::uint16_t port = 8000; port < 8004; ++port) {
      expectations.push_back(
          {net.start_flow(*c, alice_pid, "10.0.1.1", port), true});
      expectations.push_back(
          {net.start_flow(*c, bob_pid, "10.0.1.1", port), false});
    }
  }
  net.run();
  for (const auto& [handle, should_pass] : expectations) {
    EXPECT_EQ(net.flow_delivered(handle), should_pass)
        << handle.flow.to_string();
  }
}

}  // namespace
}  // namespace identxx
