// Tests for the scenario description engine (core/scenario.hpp): parsing,
// semantic validation, end-to-end execution, and expectation checking.

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace identxx::core {
namespace {

constexpr char kMinimal[] = R"(
switch s1
host client 10.0.0.1 s1
host server 10.0.0.2 s1
user client alice staff
user server www daemons
launch c1 client alice /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
block all
pass from any to any port 80 with eq(@src[userID], alice)
policy end
flow f1 c1 10.0.0.2 80
expect f1 delivered
)";

TEST(ScenarioParse, MinimalCounts) {
  const Scenario scenario = Scenario::parse(kMinimal);
  EXPECT_EQ(scenario.switch_count(), 1u);
  EXPECT_EQ(scenario.host_count(), 2u);
  EXPECT_EQ(scenario.flow_count(), 1u);
  EXPECT_NE(scenario.policy().find("block all"), std::string::npos);
}

TEST(ScenarioParse, CommentsAndQuotes) {
  const Scenario scenario = Scenario::parse(
      "switch s1 # trailing comment\n"
      "host h 10.0.0.1 s1\n"
      "user h u g\n"
      "hostfact h os-patch \"MS08-001 MS08-067\"\n"
      "policy begin\npass all\npolicy end\n");
  EXPECT_EQ(scenario.host_count(), 1u);
}

TEST(ScenarioParse, Errors) {
  EXPECT_THROW((void)Scenario::parse("frobnicate x\n"), ParseError);
  EXPECT_THROW((void)Scenario::parse("switch\n"), ParseError);
  EXPECT_THROW((void)Scenario::parse("policy begin\npass all\n"), ParseError);
  EXPECT_THROW((void)Scenario::parse("flow f1 c1 10.0.0.2 0\n"), ParseError);
  EXPECT_THROW((void)Scenario::parse("flow f1 c1 10.0.0.2 80 sctp\n"),
               ParseError);
  EXPECT_THROW((void)Scenario::parse("expect f1 maybe\n"), ParseError);
  EXPECT_THROW((void)Scenario::parse("hostfact h key \"unterminated\n"),
               ParseError);
}

TEST(ScenarioRun, MinimalEndToEnd) {
  const Scenario scenario = Scenario::parse(kMinimal);
  const ScenarioResult result = scenario.run();
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_TRUE(result.flows[0].delivered);
  EXPECT_TRUE(result.flows[0].matches_expectation());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.controller_stats.flows_allowed, 1u);
  ASSERT_EQ(result.audit_log.size(), 1u);
  EXPECT_EQ(result.audit_log[0].src_user, "alice");
}

TEST(ScenarioRun, FailedExpectationReported) {
  std::string text = kMinimal;
  text += "expect f1 blocked\n";  // overrides: now wrong
  const ScenarioResult result = Scenario::parse(text).run();
  EXPECT_FALSE(result.ok());
}

TEST(ScenarioRun, SemanticErrors) {
  EXPECT_THROW((void)Scenario::parse("host h 10.0.0.1 ghost\n").run(), Error);
  EXPECT_THROW(
      (void)Scenario::parse("switch s1\nhost h 10.0.0.1 s1\n"
                            "user h u g\nlaunch a h u /bin/x\n"
                            "flow f1 ghost 10.0.0.2 80\n")
          .run(),
      Error);
  EXPECT_THROW(
      (void)Scenario::parse("switch s1\nswitch s1\n").run(), Error);
}

TEST(ScenarioRun, MultiSwitchWithAppIdentity) {
  const ScenarioResult result = Scenario::parse(R"(
switch s1
switch s2
link s1 s2 500
host a 10.0.0.1 s1
host b 10.0.0.2 s2
user a u staff
user b www daemons
launch good a u /usr/bin/approved
launch bad a u /usr/bin/other
launch srv b www /bin/srv
appconfig a /usr/bin/approved name=approved
appconfig a /usr/bin/other name=other
listen srv 443
policy begin
block all
pass from any to any with eq(@src[name], approved)
policy end
flow f-good good 10.0.0.2 443
flow f-bad  bad  10.0.0.2 443
expect f-good delivered
expect f-bad  blocked
)")
                                      .run();
  EXPECT_TRUE(result.ok());
}

TEST(ScenarioRun, SignedDelegationViaSignedapp) {
  // Figs 4+5 expressible purely in the scenario language: signedapp signs
  // the requirements, $pubkey() expands in the policy.
  const ScenarioResult result = Scenario::parse(R"SCN(
switch s1
host a 10.1.0.1 s1
host b 10.1.0.2 s1
user a alice research
user b bob research
launch app1 a alice /usr/bin/app
launch app2 b bob /usr/bin/app
signedapp a /usr/bin/app app grp-key "block all pass all with eq(@src[name], app)"
signedapp b /usr/bin/app app grp-key "block all pass all with eq(@src[name], app)"
listen app2 9000
policy begin
dict <pubkeys> { grp : $pubkey(grp-key) }
block all
pass from any to any \
  with allowed(@dst[requirements]) \
  with verify(@dst[req-sig], @pubkeys[grp], \
    @dst[exe-hash], @dst[app-name], @dst[requirements])
policy end
flow f1 app1 10.1.0.2 9000
expect f1 delivered
)SCN")
                                      .run();
  EXPECT_TRUE(result.ok()) << "signed delegation scenario failed";
}

TEST(ScenarioRun, WrongKeySeedFailsVerification) {
  const ScenarioResult result = Scenario::parse(R"SCN(
switch s1
host a 10.1.0.1 s1
host b 10.1.0.2 s1
user a alice research
user b bob research
launch app1 a alice /usr/bin/app
launch app2 b bob /usr/bin/app
signedapp b /usr/bin/app app attacker-key "pass all"
listen app2 9000
policy begin
dict <pubkeys> { grp : $pubkey(grp-key) }
block all
pass from any to any \
  with allowed(@dst[requirements]) \
  with verify(@dst[req-sig], @pubkeys[grp], \
    @dst[exe-hash], @dst[app-name], @dst[requirements])
policy end
flow f1 app1 10.1.0.2 9000
expect f1 blocked
)SCN")
                                      .run();
  EXPECT_TRUE(result.ok());
}

TEST(ScenarioRun, MultipathRepinReordersInFlightPackets) {
  // Two equal-cost (by hops) paths with very different latencies; mid-run
  // `control set_multipath` events re-pin the flow's ECMP choice.  A
  // re-pin from the slow leg to the fast one lets late packets overtake
  // the ones still in flight — the receiver's sequence stamps count them.
  const ScenarioResult result = Scenario::parse(R"(
switch s1
switch s2
switch s3
switch s4
link s1 s2 5
link s2 s4 5
link s1 s3 400
link s3 s4 400
host client 10.0.0.1 s1
host server 10.0.0.2 s4
user client alice staff
user server www daemons
launch c1 client alice /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
pass all
policy end
flow f1 c1 10.0.0.2 80
traffic f1 cbr packets=64 rate=100000
control 300 set_multipath 2 1
control 500 set_multipath 2 2
control 700 set_multipath 2 3
expect f1 delivered
)")
                                      .run();
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.flows.size(), 1u);
  const ScenarioFlowResult& flow = result.flows[0];
  EXPECT_TRUE(flow.delivered);
  EXPECT_EQ(flow.packets_sent, 64u);
  EXPECT_EQ(flow.packets_delivered, 64u);
  EXPECT_GT(flow.packets_reordered, 0u);
  EXPECT_LT(flow.packets_reordered, flow.packets_delivered);
}

TEST(ScenarioRun, SinglePathFlowsNeverReorder) {
  // The default single-path/unbounded-queue configuration is FIFO end to
  // end: the reorder counter must stay zero.
  const ScenarioResult result = Scenario::parse(kMinimal).run();
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].packets_reordered, 0u);
}

TEST(ScenarioRun, UdpFlows) {
  const ScenarioResult result = Scenario::parse(R"(
switch s1
host a 10.0.0.1 s1
host b 10.0.0.2 s1
user a u staff
user b www daemons
launch dig a u /usr/bin/dig
launch named b www /usr/sbin/named
listen named 53 udp
policy begin
block all
pass proto udp from any to any port dns
policy end
flow f1 dig 10.0.0.2 53 udp
flow f2 dig 10.0.0.2 53 tcp
expect f1 delivered
expect f2 blocked
)")
                                      .run();
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace identxx::core
