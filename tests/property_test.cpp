// Property-based tests: randomized/parameterized sweeps over the
// system's core invariants.
//
//  * wire format: serialize-parse is the identity for arbitrary generated
//    queries/responses;
//  * packet layer: to_bytes/from_bytes round-trips arbitrary flows, and a
//    single flipped bit anywhere in the IP header is always rejected;
//  * flow table: size never exceeds capacity and lookups never return
//    expired entries under random operation sequences;
//  * PF+=2: the latest-section-wins rule holds for arbitrary section
//    stacks; quick vs non-quick orderings agree when only one rule matches;
//  * simulator: event delivery order is a deterministic function of the
//    seed;
//  * end-to-end: under a default-deny policy, a flow is delivered if and
//    only if the policy admits its generated attributes.

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "identxx/wire.hpp"
#include "openflow/flow_table.hpp"
#include "pf/eval.hpp"
#include "pf/parser.hpp"
#include "util/rng.hpp"

namespace identxx {
namespace {

// ---------------------------------------------------------------- wire

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_token(util::SplitMix64& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_./";
  const std::size_t len = 1 + rng.next_below(max_len);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST_P(WireRoundTrip, QueryIdentity) {
  util::SplitMix64 rng(GetParam());
  proto::Query query;
  query.proto = rng.next_bool(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp;
  query.src_port = static_cast<std::uint16_t>(rng.next_below(65536));
  query.dst_port = static_cast<std::uint16_t>(rng.next_below(65536));
  const std::size_t keys = rng.next_below(12);
  for (std::size_t i = 0; i < keys; ++i) {
    query.keys.push_back(random_token(rng, 24));
  }
  EXPECT_EQ(proto::Query::parse(query.serialize()), query);
}

TEST_P(WireRoundTrip, ResponseIdentity) {
  util::SplitMix64 rng(GetParam() * 31 + 7);
  proto::Response response;
  response.proto = net::IpProto::kTcp;
  response.src_port = static_cast<std::uint16_t>(rng.next_below(65536));
  response.dst_port = static_cast<std::uint16_t>(rng.next_below(65536));
  const std::size_t sections = 1 + rng.next_below(5);
  for (std::size_t s = 0; s < sections; ++s) {
    proto::Section section;
    const std::size_t pairs = 1 + rng.next_below(8);
    for (std::size_t p = 0; p < pairs; ++p) {
      section.add(random_token(rng, 16), random_token(rng, 40));
    }
    response.append_section(std::move(section));
  }
  EXPECT_EQ(proto::Response::parse(response.serialize()), response);
}

TEST_P(WireRoundTrip, DictLatestAgreesWithLastSection) {
  util::SplitMix64 rng(GetParam() * 97 + 3);
  proto::Response response;
  // All sections reuse a small key space so collisions are guaranteed.
  const std::size_t sections = 1 + rng.next_below(6);
  std::map<std::string, std::string> expected;
  for (std::size_t s = 0; s < sections; ++s) {
    proto::Section section;
    const std::size_t pairs = 1 + rng.next_below(6);
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::string key = "k" + std::to_string(rng.next_below(4));
      const std::string value = random_token(rng, 12);
      section.add(key, value);
      expected[key] = value;  // later writes win
    }
    response.append_section(std::move(section));
  }
  const proto::ResponseDict dict(response);
  for (const auto& [key, value] : expected) {
    ASSERT_TRUE(dict.latest(key).has_value()) << key;
    EXPECT_EQ(*dict.latest(key), value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------- packets

class PacketProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketProperty, RoundTripRandomFlows) {
  util::SplitMix64 rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const bool tcp = rng.next_bool(0.7);
    const std::string payload = random_token(rng, 200);
    net::Packet pkt;
    const auto src_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    const auto dst_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    const auto sport = static_cast<std::uint16_t>(rng.next_below(65536));
    const auto dport = static_cast<std::uint16_t>(rng.next_below(65536));
    if (tcp) {
      pkt = net::make_tcp_packet(net::MacAddress(rng.next()),
                                 net::MacAddress(rng.next()), src_ip, dst_ip,
                                 sport, dport, payload);
    } else {
      pkt = net::make_udp_packet(net::MacAddress(rng.next()),
                                 net::MacAddress(rng.next()), src_ip, dst_ip,
                                 sport, dport, payload);
    }
    const auto parsed = net::Packet::from_bytes(pkt.to_bytes());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pkt);
  }
}

TEST_P(PacketProperty, IpHeaderBitFlipAlwaysDetected) {
  util::SplitMix64 rng(GetParam() * 13 + 1);
  const net::Packet pkt = net::make_tcp_packet(
      net::MacAddress::for_node(1), net::MacAddress::for_node(2),
      *net::Ipv4Address::parse("10.0.0.1"), *net::Ipv4Address::parse("10.0.0.2"),
      1000, 80, "payload");
  auto bytes = pkt.to_bytes();
  // Flip one random bit inside the IPv4 header (after version/IHL byte to
  // avoid turning it into a different header shape that is rejected for
  // other reasons — that would still be a pass, but keep the test sharp).
  const std::size_t ip_start = net::EthernetHeader::kSize;
  const std::size_t offset = 1 + rng.next_below(net::Ipv4Header::kSize - 1);
  const auto bit = static_cast<std::uint8_t>(1u << rng.next_below(8));
  bytes[ip_start + offset] ^= bit;
  const auto parsed = net::Packet::from_bytes(bytes);
  if (parsed.has_value()) {
    // The only acceptable parse is one that differs from the original
    // (never a silent corruption) — and with a correct checksum the parse
    // must fail, so reaching here means the flip hit the checksum field
    // itself in a way that still mismatches.  Assert inequality.
    EXPECT_NE(*parsed, pkt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------- table

class FlowTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableProperty, InvariantsUnderRandomOperations) {
  util::SplitMix64 rng(GetParam());
  constexpr std::size_t kCapacity = 64;
  openflow::FlowTable table(kCapacity);
  sim::SimTime now = 0;
  for (int step = 0; step < 2000; ++step) {
    now += static_cast<sim::SimTime>(rng.next_below(50));
    const auto op = rng.next_below(100);
    net::TenTuple tuple;
    tuple.src_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(0x0a000000 + rng.next_below(96)));
    tuple.dst_ip = net::Ipv4Address(0xc0a80001);
    tuple.proto = net::IpProto::kTcp;
    tuple.src_port = static_cast<std::uint16_t>(1024 + rng.next_below(96));
    tuple.dst_port = 80;
    if (op < 50) {
      openflow::FlowEntry entry;
      entry.match = openflow::FlowMatch::exact(tuple);
      entry.idle_timeout = static_cast<sim::SimTime>(rng.next_below(200));
      entry.hard_timeout = static_cast<sim::SimTime>(rng.next_below(400));
      table.insert(entry, now);
    } else if (op < 90) {
      const openflow::FlowEntry* found = table.lookup(tuple, now, 100);
      if (found != nullptr) {
        // Never returns an expired entry.
        if (found->hard_timeout > 0) {
          EXPECT_LT(now, found->created_at + found->hard_timeout);
        }
      }
    } else {
      table.expire(now);
    }
    ASSERT_LE(table.size(), kCapacity);
    ASSERT_EQ(table.entries().size(), table.size());
  }
  // Conservation: inserts == removals + live entries (overwrites replace
  // in place and are not counted as inserts of new entries).
  const auto& stats = table.stats();
  EXPECT_GE(stats.inserts, table.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------- policy

class PolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyProperty, SingleMatchingRuleAgreesWithQuickVariant) {
  // When exactly one pass rule can match, adding `quick` to it must not
  // change the verdict.
  util::SplitMix64 rng(GetParam());
  const int chosen = static_cast<int>(rng.next_below(8));
  const std::string app = "app-" + std::to_string(chosen);

  std::string plain = "block all\n";
  std::string quick = "block all\n";
  for (int i = 0; i < 8; ++i) {
    const std::string rule_tail =
        "all with eq(@src[name], app-" + std::to_string(i) + ")\n";
    plain += "pass " + rule_tail;
    quick += "pass quick " + rule_tail;
  }
  proto::Response r;
  proto::Section s;
  s.add("name", app);
  r.append_section(s);
  pf::FlowContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("10.0.0.2");
  ctx.src = proto::ResponseDict(r);

  const pf::PolicyEngine plain_engine(pf::parse(plain));
  const pf::PolicyEngine quick_engine(pf::parse(quick));
  EXPECT_EQ(plain_engine.evaluate(ctx).allowed(),
            quick_engine.evaluate(ctx).allowed());
  EXPECT_TRUE(plain_engine.evaluate(ctx).allowed());
}

TEST_P(PolicyProperty, RuleOrderIsLastMatchWins) {
  // For random pass/block sequences that all match, the verdict equals the
  // last rule's action.
  util::SplitMix64 rng(GetParam() * 7 + 5);
  std::string policy;
  pf::RuleAction last = pf::RuleAction::kPass;
  const std::size_t n = 1 + rng.next_below(20);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pass = rng.next_bool(0.5);
    policy += pass ? "pass all\n" : "block all\n";
    last = pass ? pf::RuleAction::kPass : pf::RuleAction::kBlock;
  }
  pf::FlowContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("10.0.0.2");
  const pf::PolicyEngine engine(pf::parse(policy));
  EXPECT_EQ(engine.evaluate(ctx).action, last);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------- end-to-end

class EndToEndProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndProperty, DeliveredIffPolicyAdmits) {
  // Generate random (user, app, version, port) flows against the Fig 2-ish
  // policy and check network delivery matches a direct policy evaluation.
  util::SplitMix64 rng(GetParam());
  static constexpr char kPolicy[] =
      "block all\n"
      "pass from any to any port 8000:8999 \\\n"
      "  with member(@src[name], { skype ssh }) \\\n"
      "  with gte(@src[version], 200)\n";

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  net.install_controller(kPolicy);
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/bin/srv");
  client.add_user("u", "users");

  const pf::PolicyEngine oracle(pf::parse(kPolicy));

  for (int trial = 0; trial < 6; ++trial) {
    const char* names[] = {"skype", "ssh", "dropbox"};
    const std::string name = names[rng.next_below(3)];
    const std::string version = std::to_string(100 + rng.next_below(300));
    const auto port = static_cast<std::uint16_t>(7500 + rng.next_below(2000));
    const std::string exe = "/bin/" + name + version;

    const int pid = client.launch("u", exe);
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = {{"name", name}, {"version", version}};
    config.apps.push_back(app);
    client.daemon().add_config(proto::ConfigTrust::kSystem, config);
    server.listen(srv, port);

    const auto before = server.stats().flow_payloads_received;
    const auto handle = net.start_flow(client, pid, "10.0.0.2", port);
    net.run();
    const bool delivered = server.stats().flow_payloads_received > before;

    // Oracle: evaluate the same policy directly over the attributes.
    proto::Response r;
    proto::Section s;
    s.add("name", name);
    s.add("version", version);
    r.append_section(s);
    pf::FlowContext ctx;
    ctx.flow = handle.flow;
    ctx.src = proto::ResponseDict(r);
    const bool admitted = oracle.evaluate(ctx).allowed();

    EXPECT_EQ(delivered, admitted)
        << name << " v" << version << " port " << port;
    client.close_flow(handle.flow);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace identxx
