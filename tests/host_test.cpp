// Unit tests for the end-host model: users/processes/sockets, the
// lsof-style flow resolution backing the daemon, dynamic per-flow pairs
// (§3.5), ident++ query handling over the wire, and the compromise hooks.

#include <gtest/gtest.h>

#include "host/host.hpp"
#include "identxx/keys.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace identxx::host {
namespace {

const net::Ipv4Address kHostIp = *net::Ipv4Address::parse("10.0.0.1");
const net::Ipv4Address kPeerIp = *net::Ipv4Address::parse("10.0.0.2");

std::unique_ptr<Host> make_host() {
  return std::make_unique<Host>("h", kHostIp, net::MacAddress::for_node(1));
}

TEST(HostModel, LaunchRequiresKnownUser) {
  auto h = make_host();
  EXPECT_THROW((void)h->launch("ghost", "/bin/x"), Error);
  h->add_user("alice", "users");
  const int pid = h->launch("alice", "/bin/x");
  ASSERT_NE(h->process(pid), nullptr);
  EXPECT_EQ(h->process(pid)->user, "alice");
  EXPECT_EQ(h->process(pid)->group, "users");
}

TEST(HostModel, PidsAreUniqueAndKillable) {
  auto h = make_host();
  h->add_user("alice", "users");
  const int p1 = h->launch("alice", "/bin/x");
  const int p2 = h->launch("alice", "/bin/x");
  EXPECT_NE(p1, p2);
  h->kill(p1);
  EXPECT_EQ(h->process(p1), nullptr);
  EXPECT_NE(h->process(p2), nullptr);
}

TEST(HostModel, ImageHashDependsOnPathAndSeed) {
  const auto a = Host::image_hash("/bin/x", "");
  const auto b = Host::image_hash("/bin/y", "");
  const auto c = Host::image_hash("/bin/x", "trojan");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, Host::image_hash("/bin/x", ""));
  EXPECT_EQ(a.size(), 64u);  // SHA-256 hex
}

TEST(HostModel, ConnectFlowAllocatesDistinctPorts) {
  auto h = make_host();
  h->add_user("alice", "users");
  const int pid = h->launch("alice", "/bin/x");
  const auto f1 = h->connect_flow(pid, kPeerIp, 80);
  const auto f2 = h->connect_flow(pid, kPeerIp, 80);
  EXPECT_NE(f1.src_port, f2.src_port);
  EXPECT_EQ(f1.src_ip, kHostIp);
  EXPECT_EQ(f1.dst_port, 80);
}

TEST(HostModel, ResolveOutboundFlow) {
  auto h = make_host();
  h->add_user("alice", "research");
  const int pid = h->launch("alice", "/usr/bin/app");
  const auto flow = h->connect_flow(pid, kPeerIp, 80);
  const auto owner = h->resolve(flow, /*as_destination=*/false);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->user_id, "alice");
  EXPECT_EQ(owner->group_id, "research");
  EXPECT_EQ(owner->pid, pid);
  EXPECT_EQ(owner->exe_path, "/usr/bin/app");
  EXPECT_FALSE(owner->exe_hash.empty());
}

TEST(HostModel, ResolveListeningSocketAsDestination) {
  auto h = make_host();
  h->add_user("www", "daemons");
  const int pid = h->launch("www", "/usr/sbin/httpd");
  h->listen(pid, 80);
  net::FiveTuple inbound{kPeerIp, kHostIp, net::IpProto::kTcp, 49152, 80};
  const auto owner = h->resolve(inbound, /*as_destination=*/true);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->user_id, "www");
  // Wrong port: no owner.
  inbound.dst_port = 81;
  EXPECT_FALSE(h->resolve(inbound, true).has_value());
}

TEST(HostModel, ResolveUnknownFlowFails) {
  auto h = make_host();
  h->add_user("alice", "users");
  (void)h->launch("alice", "/bin/x");
  const net::FiveTuple flow{kHostIp, kPeerIp, net::IpProto::kTcp, 1234, 80};
  EXPECT_FALSE(h->resolve(flow, false).has_value());
  EXPECT_FALSE(h->resolve(flow, true).has_value());
}

TEST(HostModel, CloseFlowRemovesSocket) {
  auto h = make_host();
  h->add_user("alice", "users");
  const int pid = h->launch("alice", "/bin/x");
  const auto flow = h->connect_flow(pid, kPeerIp, 80);
  ASSERT_TRUE(h->resolve(flow, false).has_value());
  h->close_flow(flow);
  EXPECT_FALSE(h->resolve(flow, false).has_value());
}

TEST(HostModel, KillRemovesProcessSockets) {
  auto h = make_host();
  h->add_user("alice", "users");
  const int pid = h->launch("alice", "/bin/x");
  const auto flow = h->connect_flow(pid, kPeerIp, 80);
  h->kill(pid);
  EXPECT_FALSE(h->resolve(flow, false).has_value());
}

TEST(HostModel, DynamicPairsAttachToOneFlow) {
  // §3.5: applications register per-flow pairs (the browser user-click
  // example) over the local socket stand-in.
  auto h = make_host();
  h->add_user("alice", "users");
  const int pid = h->launch("alice", "/usr/bin/browser");
  const auto clicked = h->connect_flow(pid, kPeerIp, 443);
  const auto background = h->connect_flow(pid, kPeerIp, 443);
  h->register_flow_pairs(clicked, {{"user-click", "true"}});

  const auto owner_clicked = h->resolve(clicked, false);
  const auto owner_background = h->resolve(background, false);
  ASSERT_TRUE(owner_clicked.has_value());
  ASSERT_TRUE(owner_background.has_value());
  ASSERT_EQ(owner_clicked->dynamic_pairs.size(), 1u);
  EXPECT_EQ(owner_clicked->dynamic_pairs[0].first, "user-click");
  EXPECT_TRUE(owner_background->dynamic_pairs.empty());
}

// ---------------------------------------------------------------- wire

struct WireFixture : ::testing::Test {
  WireFixture() {
    auto host_ptr = make_host();
    host = host_ptr.get();
    host_id = sim.add_node(std::move(host_ptr));
    auto peer_ptr = std::make_unique<Host>("peer", kPeerIp,
                                           net::MacAddress::for_node(2));
    peer = peer_ptr.get();
    peer_id = sim.add_node(std::move(peer_ptr));
    sim.connect(host_id, 1, peer_id, 1);
  }

  /// Send an ident++ query from the peer to the host about `flow`.
  void send_query(const net::FiveTuple& flow) {
    proto::Query query;
    query.proto = flow.proto;
    query.src_port = flow.src_port;
    query.dst_port = flow.dst_port;
    net::Packet packet = net::make_tcp_packet(
        peer->mac(), host->mac(), kPeerIp, kHostIp, 50000, proto::kIdentPort,
        query.serialize(), net::TcpFlags::kPsh);
    sim.send(peer_id, 1, packet);
    sim.run();
  }

  /// The response the peer received, if any.
  std::optional<proto::Response> response() const {
    for (const auto& packet : peer->delivered()) {
      if (packet.tcp && packet.tcp->src_port == proto::kIdentPort) {
        return proto::Response::parse(packet.payload_text());
      }
    }
    return std::nullopt;
  }

  sim::Simulator sim;
  Host* host = nullptr;
  Host* peer = nullptr;
  sim::NodeId host_id{}, peer_id{};
};

TEST_F(WireFixture, AnswersQueryOverTheWire) {
  host->add_user("alice", "users");
  const int pid = host->launch("alice", "/bin/x");
  const auto flow = host->connect_flow(pid, kPeerIp, 80);
  send_query(flow);
  const auto r = response();
  ASSERT_TRUE(r.has_value());
  const proto::ResponseDict dict(*r);
  EXPECT_EQ(*dict.latest(proto::keys::kUserId), "alice");
  EXPECT_EQ(host->stats().ident_queries_received, 1u);
}

TEST_F(WireFixture, DisabledDaemonStaysSilent) {
  host->set_daemon_enabled(false);
  host->add_user("alice", "users");
  const int pid = host->launch("alice", "/bin/x");
  const auto flow = host->connect_flow(pid, kPeerIp, 80);
  send_query(flow);
  EXPECT_FALSE(response().has_value());
}

TEST_F(WireFixture, MalformedQueryIgnored) {
  net::Packet packet = net::make_tcp_packet(
      peer->mac(), host->mac(), kPeerIp, kHostIp, 50000, proto::kIdentPort,
      "not a query at all : ::", net::TcpFlags::kPsh);
  sim.send(peer_id, 1, packet);
  sim.run();
  EXPECT_FALSE(response().has_value());
}

TEST_F(WireFixture, CompromisedHostForgesResponses) {
  host->set_compromised([](const proto::Query& query, net::Ipv4Address) {
    proto::Response response;
    response.proto = query.proto;
    response.src_port = query.src_port;
    response.dst_port = query.dst_port;
    proto::Section lie;
    lie.add(proto::keys::kUserId, "root");
    response.append_section(lie);
    return response;
  });
  EXPECT_TRUE(host->compromised());
  // No process/socket exists, yet the "daemon" answers with a forged user.
  send_query(net::FiveTuple{kHostIp, kPeerIp, net::IpProto::kTcp, 1, 2});
  const auto r = response();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*proto::ResponseDict(*r).latest(proto::keys::kUserId), "root");
}

TEST_F(WireFixture, WrongDestinationIpDropped) {
  net::Packet packet = net::make_tcp_packet(
      peer->mac(), host->mac(), kPeerIp,
      *net::Ipv4Address::parse("99.9.9.9"), 50000, proto::kIdentPort, "x",
      net::TcpFlags::kPsh);
  sim.send(peer_id, 1, packet);
  sim.run();
  EXPECT_EQ(host->stats().packets_dropped_wrong_ip, 1u);
  EXPECT_EQ(host->stats().ident_queries_received, 0u);
}

TEST_F(WireFixture, IngressFilterCountsAndDrops) {
  host->set_ingress_filter([](const net::Packet&) { return false; });
  net::Packet packet = net::make_tcp_packet(
      peer->mac(), host->mac(), kPeerIp, kHostIp, 50000, 80, "junk",
      net::TcpFlags::kPsh);
  sim.send(peer_id, 1, packet);
  sim.run();
  EXPECT_EQ(host->stats().packets_filtered_ingress, 1u);
  EXPECT_TRUE(host->delivered().empty());
}

TEST_F(WireFixture, ClassicIdentQueryOverTheWire) {
  // RFC-1413 compatibility: a legacy client asks "local-port , remote-port"
  // on TCP 783 and gets the classic one-line answer.
  host->add_user("jnaous", "users");
  const int pid = host->launch("jnaous", "/usr/bin/ssh");
  const auto flow = host->connect_flow(pid, kPeerIp, 23);

  net::Packet packet = net::make_tcp_packet(
      peer->mac(), host->mac(), kPeerIp, kHostIp, 50000, proto::kIdentPort,
      std::to_string(flow.src_port) + ", 23", net::TcpFlags::kPsh);
  sim.send(peer_id, 1, packet);
  sim.run();
  ASSERT_EQ(peer->delivered().size(), 1u);
  EXPECT_EQ(peer->delivered()[0].payload_text(),
            std::to_string(flow.src_port) + ", 23 : USERID : UNIX : jnaous\r\n");
}

TEST_F(WireFixture, DeliveryTimestampTracksLastPayload) {
  EXPECT_EQ(host->last_delivery_time(), -1);
  net::Packet packet = net::make_tcp_packet(
      peer->mac(), host->mac(), kPeerIp, kHostIp, 50000, 80, "data",
      net::TcpFlags::kPsh);
  sim.send(peer_id, 1, packet);
  sim.run();
  EXPECT_GT(host->last_delivery_time(), 0);
  host->clear_delivered();
  EXPECT_TRUE(host->delivered().empty());
}

}  // namespace
}  // namespace identxx::host
