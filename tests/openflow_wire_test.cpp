// Tests for the OpenFlow 1.0 wire codec: exact layout sizes, match
// round-trips including CIDR wildcard bits, all four message types, and
// rejection of malformed/foreign buffers.

#include <gtest/gtest.h>

#include "openflow/wire.hpp"
#include "util/rng.hpp"

namespace identxx::openflow::wire {
namespace {

net::TenTuple sample_tuple() {
  net::TenTuple t;
  t.in_port = 3;
  t.src_mac = net::MacAddress::for_node(7);
  t.dst_mac = net::MacAddress::for_node(9);
  t.ether_type = 0x0800;
  t.vlan_id = 42;
  t.src_ip = *net::Ipv4Address::parse("10.1.2.3");
  t.dst_ip = *net::Ipv4Address::parse("192.168.9.8");
  t.proto = net::IpProto::kTcp;
  t.src_port = 40001;
  t.dst_port = 783;
  return t;
}

net::Packet sample_packet() {
  return net::make_tcp_packet(net::MacAddress::for_node(7),
                              net::MacAddress::for_node(9),
                              *net::Ipv4Address::parse("10.1.2.3"),
                              *net::Ipv4Address::parse("192.168.9.8"), 40001,
                              80, "hello openflow");
}

// ---------------------------------------------------------------- match

TEST(OfMatch, EncodedSizeIs40Bytes) {
  std::vector<std::uint8_t> out;
  encode_match(FlowMatch::exact(sample_tuple()), out);
  EXPECT_EQ(out.size(), 40u);
}

TEST(OfMatch, PortMasksAreNotRepresentableAndNarrowSoundly) {
  // ofp_match has no transport-port masks: a port-block entry (DESIGN.md
  // §8.5) is flagged unrepresentable, and encoding narrows it to the
  // block's base port — the decoded entry matches a strict subset of the
  // original (sound: missed packets punt to the controller).
  FlowMatch match = FlowMatch::exact(sample_tuple());
  EXPECT_TRUE(of10_representable(match));
  match.dst_port = 8000;
  match.dst_port_mask = 0xfff8;  // block 8000-8007
  EXPECT_FALSE(of10_representable(match));

  std::vector<std::uint8_t> out;
  encode_match(match, out);
  const auto decoded = decode_match(out);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(of10_representable(*decoded));
  EXPECT_EQ(decoded->dst_port, 8000);
  EXPECT_EQ(decoded->dst_port_mask, 0xffff);
  net::TenTuple t = sample_tuple();
  for (std::uint16_t port : {8000, 8003, 8007}) {
    t.dst_port = port;
    EXPECT_TRUE(match.matches(t));
    EXPECT_EQ(decoded->matches(t), port == 8000);  // narrowed, never widened
  }
  // A wildcarded port with a stale mask value stays representable.
  FlowMatch wild = FlowMatch::any();
  wild.dst_port_mask = 0xff00;
  EXPECT_TRUE(of10_representable(wild));
}

TEST(OfMatch, ExactRoundTrip) {
  const FlowMatch match = FlowMatch::exact(sample_tuple());
  std::vector<std::uint8_t> out;
  encode_match(match, out);
  const auto decoded = decode_match(out);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, match);
}

TEST(OfMatch, FullWildcardRoundTrip) {
  const FlowMatch match = FlowMatch::any();
  std::vector<std::uint8_t> out;
  encode_match(match, out);
  const auto decoded = decode_match(out);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->matches(sample_tuple()));
  EXPECT_EQ(decoded->wildcards, Wildcard::kAll);
}

TEST(OfMatch, CidrPrefixBitsRoundTrip) {
  FlowMatch match;
  match.wildcards = without(Wildcard::kAll, Wildcard::kDstIp);
  match.dst_ip = *net::Ipv4Address::parse("192.168.0.0");
  match.dst_ip_prefix = 24;
  std::vector<std::uint8_t> out;
  encode_match(match, out);
  const auto decoded = decode_match(out);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dst_ip_prefix, 24u);
  EXPECT_FALSE(has_wildcard(decoded->wildcards, Wildcard::kDstIp));
  net::TenTuple t = sample_tuple();
  t.dst_ip = *net::Ipv4Address::parse("192.168.0.200");
  EXPECT_TRUE(decoded->matches(t));
  t.dst_ip = *net::Ipv4Address::parse("192.168.1.200");
  EXPECT_FALSE(decoded->matches(t));
}

TEST(OfMatch, SingleFieldMatchRoundTrip) {
  FlowMatch match;
  match.wildcards = without(Wildcard::kAll, Wildcard::kProto | Wildcard::kDstPort);
  match.proto = net::IpProto::kTcp;
  match.dst_port = 783;
  std::vector<std::uint8_t> out;
  encode_match(match, out);
  const auto decoded = decode_match(out);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->proto, net::IpProto::kTcp);
  EXPECT_EQ(decoded->dst_port, 783);
  EXPECT_EQ(decoded->wildcards, match.wildcards);
}

TEST(OfMatch, TruncatedRejected) {
  std::vector<std::uint8_t> out;
  encode_match(FlowMatch::any(), out);
  out.resize(39);
  EXPECT_FALSE(decode_match(out).has_value());
}

// ---------------------------------------------------------------- packet-in

TEST(OfPacketIn, RoundTrip) {
  PacketIn msg{4, sample_packet(), 3};
  const auto bytes = encode_packet_in(msg, 0xdeadbeef);
  const auto header = peek_header(bytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, MsgType::kPacketIn);
  EXPECT_EQ(header->length, bytes.size());
  EXPECT_EQ(header->xid, 0xdeadbeefu);
  const auto decoded = decode_packet_in(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->in_port, 3);
  EXPECT_EQ(decoded->packet, msg.packet);
  EXPECT_EQ(decoded->reason, PacketInReason::kNoMatch);
}

// ---------------------------------------------------------------- flow-mod

TEST(OfFlowMod, RoundTripOutputAction) {
  FlowEntry entry;
  entry.match = FlowMatch::exact(sample_tuple());
  entry.priority = 100;
  entry.cookie = 0x1122334455667788ULL;
  entry.idle_timeout = 60 * sim::kSecond;
  entry.hard_timeout = 0;
  entry.action = OutputAction{{7}};
  const auto bytes = encode_flow_mod(entry, 5);
  const auto decoded = decode_flow_mod(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->command, FlowModCommand::kAdd);
  EXPECT_EQ(decoded->entry.match, entry.match);
  EXPECT_EQ(decoded->entry.priority, 100);
  EXPECT_EQ(decoded->entry.cookie, entry.cookie);
  EXPECT_EQ(decoded->entry.idle_timeout, 60 * sim::kSecond);
  EXPECT_EQ(decoded->entry.hard_timeout, 0);
  EXPECT_EQ(decoded->entry.action, Action(OutputAction{{7}}));
}

TEST(OfFlowMod, DropEncodesAsEmptyActionList) {
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = DropAction{};
  const auto bytes = encode_flow_mod(entry, 1);
  const auto decoded = decode_flow_mod(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<DropAction>(decoded->entry.action));
}

TEST(OfFlowMod, FloodAndControllerPorts) {
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = FloodAction{};
  auto decoded = decode_flow_mod(encode_flow_mod(entry, 1));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<FloodAction>(decoded->entry.action));
  entry.action = ToControllerAction{};
  decoded = decode_flow_mod(encode_flow_mod(entry, 2));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(
      std::holds_alternative<ToControllerAction>(decoded->entry.action));
}

TEST(OfFlowMod, SubSecondTimeoutRoundsUpNotToZero) {
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.idle_timeout = 5 * sim::kMillisecond;  // < 1 s
  const auto decoded = decode_flow_mod(encode_flow_mod(entry, 1));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->entry.idle_timeout, 1 * sim::kSecond);
}

// ---------------------------------------------------------------- packet-out

TEST(OfPacketOut, RoundTripMultiPortOutput) {
  const auto bytes =
      encode_packet_out(sample_packet(), OutputAction{{2, 5}}, 1, 77);
  const auto decoded = decode_packet_out(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->xid, 77u);
  EXPECT_EQ(decoded->in_port, 1);
  EXPECT_EQ(decoded->action, Action(OutputAction{{2, 5}}));
  EXPECT_EQ(decoded->packet, sample_packet());
}

// ---------------------------------------------------------------- removed

TEST(OfFlowRemoved, RoundTrip) {
  FlowEntry entry;
  entry.match = FlowMatch::exact(sample_tuple());
  entry.priority = 100;
  entry.cookie = 42;
  entry.created_at = 0;
  entry.packet_count = 1234;
  entry.byte_count = 99999;
  const auto bytes = encode_flow_removed(
      entry, FlowRemovedReason::kIdleTimeout, 9, 5 * sim::kSecond);
  const auto decoded = decode_flow_removed(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cookie, 42u);
  EXPECT_EQ(decoded->priority, 100);
  EXPECT_EQ(decoded->reason, FlowRemovedReason::kIdleTimeout);
  EXPECT_EQ(decoded->packet_count, 1234u);
  EXPECT_EQ(decoded->byte_count, 99999u);
  EXPECT_EQ(decoded->match, entry.match);
}

// ---------------------------------------------------------------- robustness

TEST(OfWire, RejectsForeignAndTruncatedBuffers) {
  EXPECT_FALSE(peek_header({}).has_value());
  const std::vector<std::uint8_t> short_buf = {0x01, 10, 0x00};
  EXPECT_FALSE(peek_header(short_buf).has_value());
  // Wrong version.
  std::vector<std::uint8_t> wrong = encode_packet_in(
      PacketIn{1, sample_packet(), 1}, 1);
  wrong[0] = 0x04;  // OpenFlow 1.3
  EXPECT_FALSE(peek_header(wrong).has_value());
  EXPECT_FALSE(decode_packet_in(wrong).has_value());
  // Length larger than the buffer.
  std::vector<std::uint8_t> lying = encode_packet_in(
      PacketIn{1, sample_packet(), 1}, 1);
  lying[2] = 0xff;
  lying[3] = 0xff;
  EXPECT_FALSE(peek_header(lying).has_value());
  // Type confusion: a flow-mod buffer fed to the packet-in decoder.
  FlowEntry entry;
  entry.match = FlowMatch::any();
  EXPECT_FALSE(decode_packet_in(encode_flow_mod(entry, 1)).has_value());
}

TEST(OfWire, RandomNoiseNeverDecodes) {
  util::SplitMix64 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> noise(rng.next_below(120));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next());
    // Must not crash; decode may only succeed if the noise happens to be a
    // valid message (astronomically unlikely with a random version byte —
    // but tolerate it rather than flake).
    (void)decode_packet_in(noise);
    (void)decode_flow_mod(noise);
    (void)decode_packet_out(noise);
    (void)decode_flow_removed(noise);
  }
  SUCCEED();
}

/// Fidelity through the wire: encode a switch's packet-in, decode it as a
/// controller would, encode the controller's flow-mod answer, decode and
/// install it on the switch's table — the entry must forward the original
/// packet.
TEST(OfWire, ControlChannelRoundTripEndToEnd) {
  const PacketIn original{6, sample_packet(), 2};
  const auto decoded_in =
      decode_packet_in(encode_packet_in(original, 1));
  ASSERT_TRUE(decoded_in.has_value());

  FlowEntry decision;
  decision.match =
      FlowMatch::exact(decoded_in->packet.ten_tuple(decoded_in->in_port));
  decision.priority = 100;
  decision.action = OutputAction{{4}};
  decision.idle_timeout = 60 * sim::kSecond;
  const auto decoded_mod = decode_flow_mod(encode_flow_mod(decision, 2));
  ASSERT_TRUE(decoded_mod.has_value());

  FlowTable table;
  table.insert(decoded_mod->entry, 0);
  const FlowEntry* hit =
      table.lookup(original.packet.ten_tuple(original.in_port), 1, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, Action(OutputAction{{4}}));
}

}  // namespace
}  // namespace identxx::openflow::wire
