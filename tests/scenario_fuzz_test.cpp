// Seeded scenario fuzzer (DESIGN.md §10/§13): generate hundreds of random
// but well-formed scenario programs — random topologies, flow sets, traffic
// models, and mid-run control-plane churn — and check that the classic
// single-controller run and every sharded run produce equivalent_to-equal
// results.  Any failure prints the seed and the generated program so the
// case can be replayed directly with identxx_sim / identxx_mc.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace identxx {
namespace {

using core::Scenario;
using core::ScenarioOptions;
using core::ScenarioResult;

/// Deterministically generates one well-formed scenario program per seed.
/// Names are drawn from fixed-size pools so identity payload sizes stay
/// bounded; every flow references a declared launch and a listening port
/// roughly 3/4 of the time (closed-port flows exercise the block path).
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string generate() {
    std::string out;
    const std::uint32_t switches = 2 + pick(3);  // 2..4
    for (std::uint32_t s = 0; s < switches; ++s) {
      out += "switch s" + std::to_string(s) + "\n";
    }
    // A line backbone keeps every pair connected; extra chords sometimes
    // create equal-cost alternatives for the multipath runs.
    for (std::uint32_t s = 0; s + 1 < switches; ++s) {
      out += "link s" + std::to_string(s) + " s" + std::to_string(s + 1) +
             " " + std::to_string(5 + pick(20)) + "\n";
    }
    if (switches >= 3 && chance(2)) {
      out += "link s0 s" + std::to_string(switches - 1) + " " +
             std::to_string(5 + pick(20)) + "\n";
    }

    const std::uint32_t hosts = 3 + pick(4);  // 3..6
    static constexpr const char* kUsers[] = {"alice", "bobby", "carol",
                                             "david", "erica", "frank"};
    static constexpr const char* kGroups[] = {"staff", "admin", "guest"};
    for (std::uint32_t h = 0; h < hosts; ++h) {
      const std::string name = "h" + std::to_string(h);
      out += "host " + name + " 10.0." + std::to_string(h / 200) + "." +
             std::to_string(1 + h % 200) + " s" + std::to_string(pick(switches)) +
             "\n";
      out += "user " + name + " " + kUsers[h % 6] + " " +
             kGroups[pick(3)] + "\n";
    }

    // Every host gets one client launch; the first two hosts also run
    // servers so there is always something to connect to.
    static constexpr std::uint16_t kPorts[] = {80, 443, 8080};
    std::vector<std::uint16_t> listen_ports;
    for (std::uint32_t h = 0; h < hosts; ++h) {
      const std::string host = "h" + std::to_string(h);
      out += "launch c" + std::to_string(h) + " " + host + " " +
             kUsers[h % 6] + " /usr/bin/curl\n";
      if (h < 2) {
        const std::uint16_t port = kPorts[pick(3)];
        out += "launch d" + std::to_string(h) + " " + host + " " +
               kUsers[h % 6] + " /usr/sbin/httpd\n";
        out += "listen d" + std::to_string(h) + " " + std::to_string(port) +
               "\n";
        listen_ports.push_back(port);
      }
    }

    out += "policy begin\n";
    switch (pick(4)) {
      case 0:
        out += "pass from any to any\n";
        break;
      case 1:
        out += "block all\npass from any to any port 80\n";
        break;
      case 2:
        out += "block all\npass from any to any port 80\n"
               "pass from any to any port 443\n";
        break;
      default:
        out += "block all\npass from any to any with eq(@src[userID], " +
               std::string(kUsers[pick(6)]) + ")\n";
        break;
    }
    out += "policy end\n";

    const std::uint32_t flows = 2 + pick(5);  // 2..6
    for (std::uint32_t f = 0; f < flows; ++f) {
      const std::uint32_t src = pick(hosts);
      const std::uint32_t dst = pick(2);  // a server host
      const std::uint16_t port =
          chance(4) ? static_cast<std::uint16_t>(7000 + pick(100))  // closed
                    : listen_ports[dst % listen_ports.size()];
      out += "flow f" + std::to_string(f) + " c" + std::to_string(src) +
             " 10.0.0." + std::to_string(1 + dst) + " " +
             std::to_string(port) + "\n";
      switch (pick(5)) {
        case 0:
          out += "traffic f" + std::to_string(f) + " cbr packets=" +
                 std::to_string(2 + pick(15)) + " rate=" +
                 std::to_string(1000 + pick(30000)) + "\n";
          break;
        case 1:
          out += "traffic f" + std::to_string(f) + " onoff packets=" +
                 std::to_string(2 + pick(10)) + " rate=20000 on_us=" +
                 std::to_string(100 + pick(400)) + " off_us=" +
                 std::to_string(100 + pick(400)) + "\n";
          break;
        default:
          break;  // single-SYN flow
      }
    }

    // Non-raced control churn only: plain ops fire on the global lane at a
    // fixed virtual time, so classic and sharded runs stay comparable.
    const std::uint32_t controls = pick(3);  // 0..2
    for (std::uint32_t c = 0; c < controls; ++c) {
      const std::string at = std::to_string(200 + pick(1200));
      switch (pick(4)) {
        case 0:
          out += "control " + at + " revoke_all\n";
          break;
        case 1:
          out += "control " + at + " revoke_port " +
                 std::to_string(listen_ports[pick(static_cast<std::uint32_t>(
                     listen_ports.size()))]) + "\n";
          break;
        case 2:
          out += "control " + at + " set_policy \"block all\"\n";
          break;
        default:
          out += "control " + at + " set_multipath 2 " +
                 std::to_string(pick(100)) + "\n";
          break;
      }
    }

    out += "seed " + std::to_string(1 + pick(1000)) + "\n";
    return out;
  }

  /// A revocation storm (DESIGN.md §14): long-lived CBR flows while a
  /// burst of revoke_all / revoke_port ops rips entries out every few
  /// milliseconds, on a lossy/duplicating control plane with the full
  /// retry + degraded-cover ladder armed.
  [[nodiscard]] std::string generate_revocation_storm() {
    std::string out;
    const std::uint32_t switches = 2 + pick(2);  // 2..3
    for (std::uint32_t s = 0; s < switches; ++s) {
      out += "switch s" + std::to_string(s) + "\n";
    }
    for (std::uint32_t s = 0; s + 1 < switches; ++s) {
      out += "link s" + std::to_string(s) + " s" + std::to_string(s + 1) +
             " " + std::to_string(10 + pick(15)) + "\n";
    }
    static constexpr const char* kUsers[] = {"alice", "bobby", "carol",
                                             "david"};
    const std::uint32_t hosts = 3 + pick(2);  // 3..4
    for (std::uint32_t h = 0; h < hosts; ++h) {
      const std::string name = "h" + std::to_string(h);
      out += "host " + name + " 10.0.0." + std::to_string(1 + h) + " s" +
             std::to_string(pick(switches)) + "\n";
      out += "user " + name + " " + kUsers[h % 4] + " staff\n";
      out += "launch c" + std::to_string(h) + " " + name + " " +
             kUsers[h % 4] + " /usr/bin/curl\n";
    }
    out += "launch d0 h0 " + std::string(kUsers[0]) + " /usr/sbin/httpd\n";
    out += "listen d0 80\nlisten d0 443\n";
    out += "policy begin\nblock all\npass from any to any port 80\n"
           "pass from any to any port 443 with eq(@src[userID], " +
           std::string(kUsers[pick(4)]) + ")\npolicy end\n";

    static constexpr const char* kLoss[] = {"0.02", "0.05", "0.1"};
    out += "fault chan all loss=" + std::string(kLoss[pick(3)]) +
           " dup=" + std::string(kLoss[pick(3)]) + " delay_us=" +
           std::to_string(100 + pick(400)) + "\n";
    out += "fault retry max=" + std::to_string(1 + pick(3)) +
           " degraded_ttl_us=" + std::to_string(10000 + pick(20000)) + "\n";

    const std::uint32_t flows = 3 + pick(3);  // 3..5
    for (std::uint32_t f = 0; f < flows; ++f) {
      out += "flow f" + std::to_string(f) + " c" +
             std::to_string(pick(hosts)) + " 10.0.0.1 " +
             (chance(3) ? "443" : "80") + "\n";
      out += "traffic f" + std::to_string(f) + " cbr packets=" +
             std::to_string(16 + pick(32)) + " rate=" +
             std::to_string(1000 + pick(3000)) + "\n";
    }
    const std::uint32_t storm = 4 + pick(5);  // 4..8 revocations
    for (std::uint32_t c = 0; c < storm; ++c) {
      const std::string at = std::to_string(2000 + c * 3000 + pick(2000));
      switch (pick(3)) {
        case 0:
          out += "control " + at + " revoke_all\n";
          break;
        case 1:
          out += "control " + at + " revoke_port 80\n";
          break;
        default:
          out += "control " + at + " revoke_port 443\n";
          break;
      }
    }
    out += "seed " + std::to_string(1 + pick(1000)) + "\n";
    return out;
  }

  /// A key-rotation storm (DESIGN.md §14): a verify()-gated policy whose
  /// trusted group key rotates mid-run between the key the apps are signed
  /// with and one they are not, each rotation paired with a revoke_all so
  /// every flow re-decides under the new key.
  [[nodiscard]] std::string generate_key_rotation_storm() {
    const auto verify_policy = [](const std::string& key) {
      return "dict <pubkeys> { grp : $pubkey(" + key +
             ") } block all "
             "pass from any to any with allowed(@dst[requirements]) "
             "with verify(@dst[req-sig], @pubkeys[grp], @dst[exe-hash], "
             "@dst[app-name], @dst[requirements])";
    };
    std::string out;
    out += "switch s0\n";
    const bool two_switches = chance(2);
    if (two_switches) {
      out += "switch s1\nlink s0 s1 " + std::to_string(10 + pick(15)) + "\n";
    }
    out += "host a 10.1.0.1 s0\n";
    out += std::string("host b 10.1.0.2 ") + (two_switches ? "s1" : "s0") +
           "\n";
    out += "user a alice research\nuser b bob research\n";
    out += "launch app1 a alice /usr/bin/app\n";
    out += "launch app2 b bob /usr/bin/app\n";
    out += "signedapp a /usr/bin/app app key-v1 \"block all pass all with "
           "eq(@src[name], app)\"\n";
    out += "signedapp b /usr/bin/app app key-v1 \"block all pass all with "
           "eq(@src[name], app)\"\n";
    out += "listen app2 9000\n";
    out += "policy begin\n" + verify_policy("key-v1") + "\npolicy end\n";
    if (chance(2)) {
      out += "fault chan all loss=0.02 dup=0.02\n";
      out += "fault retry max=2 degraded_ttl_us=20000 probe_delay_us=" +
             std::to_string(30000 + pick(40000)) + "\n";
    }
    out += "flow f1 app1 10.1.0.2 9000\n";
    out += "traffic f1 cbr packets=" + std::to_string(32 + pick(48)) +
           " rate=" + std::to_string(800 + pick(1200)) + "\n";
    const std::uint32_t rotations = 2 + pick(3);  // 2..4
    for (std::uint32_t r = 0; r < rotations; ++r) {
      const std::string at = std::to_string(6000 + r * 9000 + pick(3000));
      const std::string key = (r % 2 == 0) ? "key-v2" : "key-v1";
      out += "control " + at + " set_policy \"" + verify_policy(key) + "\"\n";
      out += "control " + at + " revoke_all\n";
    }
    out += "seed " + std::to_string(1 + pick(1000)) + "\n";
    return out;
  }

  [[nodiscard]] ScenarioOptions options() {
    ScenarioOptions opts;
    if (chance(3)) opts.k_paths = 2;
    if (chance(4)) opts.queue_depth = 2 + pick(6);
    return opts;
  }

 private:
  [[nodiscard]] std::uint32_t pick(std::uint32_t bound) {
    return static_cast<std::uint32_t>(rng_.next_below(bound));
  }
  /// True one time in `denom`.
  [[nodiscard]] bool chance(std::uint32_t denom) { return pick(denom) == 0; }

  util::SplitMix64 rng_;
};

TEST(ScenarioFuzz, ClassicAndShardedRunsAreEquivalent) {
  // SCENARIO_FUZZ_SEEDS trims the sweep for quick local iteration.
  std::uint64_t seeds = 200;
  if (const char* env = std::getenv("SCENARIO_FUZZ_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    if (std::getenv("SCENARIO_FUZZ_PRINT") != nullptr) {
      std::fprintf(stderr, "=== seed %llu ===\n%s",
                   static_cast<unsigned long long>(seed),
                   ScenarioGenerator(seed).generate().c_str());
    }
    ScenarioGenerator gen(seed);
    const std::string text = gen.generate();
    ScenarioOptions base = gen.options();

    const Scenario scenario = Scenario::parse(text);
    ScenarioOptions classic = base;
    classic.shards = 0;
    const ScenarioResult reference = scenario.run(classic);

    for (const std::uint32_t shards : {1u, 2u, 3u}) {
      ScenarioOptions sharded = base;
      sharded.shards = shards;
      const ScenarioResult result = scenario.run(sharded);
      ASSERT_TRUE(result.equivalent_to(reference))
          << "seed " << seed << ": classic vs " << shards
          << "-shard results diverge; replay with\n"
          << "  identxx_sim --shards " << shards
          << (base.k_paths > 1 ? " --k-paths 2" : "")
          << (base.queue_depth > 0
                  ? " --queue-depth " + std::to_string(base.queue_depth)
                  : "")
          << " <file>\non this scenario:\n"
          << text;
    }
  }
}

/// Shared classic-vs-sharded sweep for the storm generators below.  Any
/// divergence prints the generated program so it can be replayed directly.
void expect_shard_invariant(const std::string& text, const ScenarioOptions& base,
                            std::uint64_t seed, const char* storm) {
  const Scenario scenario = Scenario::parse(text);
  ScenarioOptions classic = base;
  classic.shards = 0;
  const ScenarioResult reference = scenario.run(classic);
  for (const std::uint32_t shards : {1u, 2u, 3u}) {
    ScenarioOptions sharded = base;
    sharded.shards = shards;
    const ScenarioResult result = scenario.run(sharded);
    ASSERT_TRUE(result.equivalent_to(reference))
        << storm << " seed " << seed << ": classic vs " << shards
        << "-shard results diverge; replay with\n"
        << "  identxx_sim --shards " << shards
        << (base.k_paths > 1 ? " --k-paths 2" : "")
        << (base.queue_depth > 0
                ? " --queue-depth " + std::to_string(base.queue_depth)
                : "")
        << " <file>\non this scenario:\n"
        << text;
  }
}

/// Number of storm seeds to sweep; SCENARIO_FUZZ_SEEDS trims this too
/// (capped at 40 so the storm sweeps stay a fraction of the main fuzzer).
[[nodiscard]] std::uint64_t storm_seed_count() {
  std::uint64_t seeds = 40;
  if (const char* env = std::getenv("SCENARIO_FUZZ_SEEDS")) {
    const std::uint64_t trimmed = std::strtoull(env, nullptr, 10);
    if (trimmed < seeds) seeds = trimmed;
  }
  return seeds;
}

TEST(ScenarioFuzz, RevocationStormRunsAreShardInvariant) {
  const std::uint64_t seeds = storm_seed_count();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("revocation storm seed " + std::to_string(seed));
    ScenarioGenerator gen(seed);
    const std::string text = gen.generate_revocation_storm();
    if (std::getenv("SCENARIO_FUZZ_PRINT") != nullptr) {
      std::fprintf(stderr, "=== revocation storm seed %llu ===\n%s",
                   static_cast<unsigned long long>(seed), text.c_str());
    }
    expect_shard_invariant(text, gen.options(), seed, "revocation storm");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ScenarioFuzz, KeyRotationStormRunsAreShardInvariant) {
  const std::uint64_t seeds = storm_seed_count();
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("key-rotation storm seed " + std::to_string(seed));
    ScenarioGenerator gen(seed);
    const std::string text = gen.generate_key_rotation_storm();
    if (std::getenv("SCENARIO_FUZZ_PRINT") != nullptr) {
      std::fprintf(stderr, "=== key-rotation storm seed %llu ===\n%s",
                   static_cast<unsigned long long>(seed), text.c_str());
    }
    expect_shard_invariant(text, gen.options(), seed, "key-rotation storm");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace identxx
