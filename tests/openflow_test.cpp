// Unit tests for src/openflow: match semantics, flow table (priority,
// timeouts, eviction, stats), switch datapath, topology paths, ECMP path
// sets and the bounded output-queue model.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "openflow/flow_table.hpp"
#include "openflow/match.hpp"
#include "openflow/switch.hpp"
#include "openflow/topology.hpp"
#include "sim/worker_pool.hpp"

namespace identxx::openflow {
namespace {

net::TenTuple tuple(const char* src = "10.0.0.1", const char* dst = "10.0.0.2",
                    std::uint16_t sport = 1000, std::uint16_t dport = 80,
                    std::uint16_t in_port = 1) {
  net::TenTuple t;
  t.in_port = in_port;
  t.src_mac = net::MacAddress::for_node(1);
  t.dst_mac = net::MacAddress::for_node(2);
  t.src_ip = *net::Ipv4Address::parse(src);
  t.dst_ip = *net::Ipv4Address::parse(dst);
  t.proto = net::IpProto::kTcp;
  t.src_port = sport;
  t.dst_port = dport;
  return t;
}

// ---------------------------------------------------------------- match

TEST(FlowMatch, AnyMatchesEverything) {
  EXPECT_TRUE(FlowMatch::any().matches(tuple()));
  EXPECT_TRUE(FlowMatch::any().matches(tuple("1.2.3.4", "5.6.7.8", 9, 10, 11)));
}

TEST(FlowMatch, ExactMatchesOnlyIdentical) {
  const FlowMatch m = FlowMatch::exact(tuple());
  EXPECT_TRUE(m.matches(tuple()));
  EXPECT_FALSE(m.matches(tuple("10.0.0.1", "10.0.0.2", 1000, 81)));
  EXPECT_FALSE(m.matches(tuple("10.0.0.1", "10.0.0.3")));
  EXPECT_FALSE(m.matches(tuple("10.0.0.1", "10.0.0.2", 1000, 80, 2)));
  EXPECT_TRUE(m.is_exact());
}

TEST(FlowMatch, SingleFieldMatch) {
  FlowMatch m;
  m.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  m.dst_port = 783;
  EXPECT_TRUE(m.matches(tuple("1.1.1.1", "2.2.2.2", 5, 783)));
  EXPECT_FALSE(m.matches(tuple("1.1.1.1", "2.2.2.2", 5, 80)));
  EXPECT_FALSE(m.is_exact());
}

TEST(FlowMatch, IpPrefixMatch) {
  FlowMatch m;
  m.wildcards = without(Wildcard::kAll, Wildcard::kDstIp);
  m.dst_ip = *net::Ipv4Address::parse("192.168.0.0");
  m.dst_ip_prefix = 24;
  EXPECT_TRUE(m.matches(tuple("1.1.1.1", "192.168.0.42")));
  EXPECT_FALSE(m.matches(tuple("1.1.1.1", "192.168.1.42")));
}

TEST(FlowMatch, PortMaskMatchesAlignedBlock) {
  // dport block 8000-8007 as one masked entry (8000 & 0xfff8 == 8000).
  FlowMatch m;
  m.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  m.dst_port = 8000;
  m.dst_port_mask = 0xfff8;
  EXPECT_TRUE(m.matches(tuple("1.1.1.1", "2.2.2.2", 5, 8000)));
  EXPECT_TRUE(m.matches(tuple("1.1.1.1", "2.2.2.2", 5, 8007)));
  EXPECT_FALSE(m.matches(tuple("1.1.1.1", "2.2.2.2", 5, 7999)));
  EXPECT_FALSE(m.matches(tuple("1.1.1.1", "2.2.2.2", 5, 8008)));
  EXPECT_FALSE(m.is_exact());
  // Projection folds every in-block port onto the same key.
  EXPECT_EQ(m.project(tuple("1.1.1.1", "2.2.2.2", 5, 8003)),
            m.project(tuple("3.3.3.3", "4.4.4.4", 7, 8005)));
  EXPECT_EQ(m.project(tuple("1.1.1.1", "2.2.2.2", 5, 8003)), m.key());
}

TEST(FlowMatch, FullPortMaskStaysExact) {
  const FlowMatch m = FlowMatch::exact(tuple());
  EXPECT_TRUE(m.is_exact());
  FlowMatch masked = m;
  masked.dst_port_mask = 0xfff0;
  EXPECT_FALSE(masked.is_exact());
}

TEST(FlowTable, PortMaskedEntriesLookupByBlock) {
  FlowTable table;
  // Two masked drop blocks at one priority: 8000-8003 and 8004-8005.
  for (const auto& [port, mask] :
       {std::pair<std::uint16_t, std::uint16_t>{8000, 0xfffc},
        std::pair<std::uint16_t, std::uint16_t>{8004, 0xfffe}}) {
    FlowEntry entry;
    entry.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
    entry.match.dst_port = port;
    entry.match.dst_port_mask = mask;
    entry.priority = 10;
    entry.action = DropAction{};
    entry.cookie = port;
    table.insert(entry, 0);
  }
  for (std::uint16_t port = 8000; port <= 8005; ++port) {
    const FlowEntry* found =
        table.lookup(tuple("1.1.1.1", "2.2.2.2", 5, port), 1, 10);
    ASSERT_NE(found, nullptr) << "port " << port;
    EXPECT_EQ(found->cookie, port <= 8003 ? 8000u : 8004u);
  }
  EXPECT_EQ(table.lookup(tuple("1.1.1.1", "2.2.2.2", 5, 8006), 1, 10), nullptr);
  // find() locates a masked entry structurally (cover dedupe path).
  FlowMatch probe;
  probe.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  probe.dst_port = 8000;
  probe.dst_port_mask = 0xfffc;
  EXPECT_NE(table.find(probe, 10, 1), nullptr);
  probe.dst_port_mask = 0xfffe;
  EXPECT_EQ(table.find(probe, 10, 1), nullptr);
}

TEST(FlowTable, CookieIndexTracksLiveEntries) {
  FlowTable table;
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple());
  entry.cookie = 42;
  table.insert(entry, 0);
  FlowEntry second;
  second.match = FlowMatch::exact(tuple("10.0.0.1", "10.0.0.9"));
  second.cookie = 42;
  table.insert(second, 0);
  EXPECT_TRUE(table.has_cookie(42));

  EXPECT_EQ(table.remove_if([](const FlowEntry& e) {
    return e.match.key().dst_ip == *net::Ipv4Address::parse("10.0.0.9");
  }), 1u);
  EXPECT_TRUE(table.has_cookie(42));  // one entry left
  table.clear();
  EXPECT_FALSE(table.has_cookie(42));

  // Overwrite with a different cookie retires the old one AND notifies —
  // without the notification the controller's cookie map would never
  // learn the old cookie left this table.
  std::vector<std::pair<std::uint64_t, RemovalReason>> removed;
  table.set_removal_listener([&](const FlowEntry& e, RemovalReason reason) {
    removed.emplace_back(e.cookie, reason);
  });
  entry.cookie = 7;
  table.insert(entry, 0);
  FlowEntry replacement = entry;
  replacement.cookie = 8;
  table.insert(replacement, 0);
  EXPECT_FALSE(table.has_cookie(7));
  EXPECT_TRUE(table.has_cookie(8));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], (std::pair<std::uint64_t, RemovalReason>{
                            7, RemovalReason::kDeleted}));
  // A same-cookie refresh is not a removal.
  removed.clear();
  table.insert(replacement, 0);
  EXPECT_TRUE(removed.empty());
}

TEST(FlowMatch, WildcardHelpers) {
  const Wildcard w = without(Wildcard::kAll, Wildcard::kProto | Wildcard::kDstPort);
  EXPECT_FALSE(has_wildcard(w, Wildcard::kProto));
  EXPECT_FALSE(has_wildcard(w, Wildcard::kDstPort));
  EXPECT_TRUE(has_wildcard(w, Wildcard::kSrcIp));
}

// ---------------------------------------------------------------- table

TEST(FlowTable, ExactLookupHit) {
  FlowTable table;
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple());
  entry.action = OutputAction{{2}};
  table.insert(entry, 0);
  const FlowEntry* found = table.lookup(tuple(), 10, 100);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->packet_count, 1u);
  EXPECT_EQ(found->byte_count, 100u);
  EXPECT_EQ(table.stats().hits, 1u);
}

TEST(FlowTable, MissIsCounted) {
  FlowTable table;
  EXPECT_EQ(table.lookup(tuple(), 0, 0), nullptr);
  EXPECT_EQ(table.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(table.stats().hit_rate(), 0.0);
}

TEST(FlowTable, PriorityOrderAmongWildcards) {
  FlowTable table;
  FlowEntry low;
  low.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  low.match.dst_port = 80;
  low.priority = 10;
  low.action = DropAction{};
  FlowEntry high = low;
  high.priority = 20;
  high.action = OutputAction{{7}};
  table.insert(low, 0);
  table.insert(high, 0);
  const FlowEntry* found = table.lookup(tuple(), 1, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->priority, 20);
  EXPECT_TRUE(std::holds_alternative<OutputAction>(found->action));
}

TEST(FlowTable, SameMatchSamePriorityOverwrites) {
  FlowTable table;
  FlowEntry entry;
  entry.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  entry.match.dst_port = 80;
  entry.priority = 5;
  entry.action = DropAction{};
  table.insert(entry, 0);
  entry.action = FloodAction{};
  table.insert(entry, 0);
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* found = table.lookup(tuple(), 1, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(std::holds_alternative<FloodAction>(found->action));
}

TEST(FlowTable, IdleTimeoutExpires) {
  FlowTable table;
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple());
  entry.idle_timeout = 100;
  table.insert(entry, 0);
  EXPECT_NE(table.lookup(tuple(), 50, 0), nullptr);   // refreshes last_used
  EXPECT_NE(table.lookup(tuple(), 149, 0), nullptr);  // 99 since last use
  EXPECT_EQ(table.lookup(tuple(), 249, 0), nullptr);  // 100 past
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, HardTimeoutExpiresRegardlessOfUse) {
  FlowTable table;
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple());
  entry.hard_timeout = 100;
  table.insert(entry, 0);
  EXPECT_NE(table.lookup(tuple(), 99, 0), nullptr);
  EXPECT_EQ(table.lookup(tuple(), 100, 0), nullptr);
}

TEST(FlowTable, ExpireSweepsAndNotifies) {
  FlowTable table;
  std::vector<RemovalReason> reasons;
  table.set_removal_listener([&](const FlowEntry&, RemovalReason reason) {
    reasons.push_back(reason);
  });
  FlowEntry idle;
  idle.match = FlowMatch::exact(tuple());
  idle.idle_timeout = 10;
  table.insert(idle, 0);
  FlowEntry hard;
  hard.match = FlowMatch::exact(tuple("9.9.9.9", "8.8.8.8"));
  hard.hard_timeout = 20;
  table.insert(hard, 0);
  EXPECT_EQ(table.expire(5), 0u);
  EXPECT_EQ(table.expire(50), 2u);
  EXPECT_EQ(reasons.size(), 2u);
}

TEST(FlowTable, CapacityEvictsLru) {
  FlowTable table(2);
  std::vector<RemovalReason> reasons;
  table.set_removal_listener([&](const FlowEntry&, RemovalReason reason) {
    reasons.push_back(reason);
  });
  FlowEntry a;
  a.match = FlowMatch::exact(tuple("1.1.1.1", "2.2.2.2"));
  table.insert(a, 0);
  FlowEntry b;
  b.match = FlowMatch::exact(tuple("3.3.3.3", "4.4.4.4"));
  table.insert(b, 1);
  // Touch `a` so `b` becomes LRU.
  (void)table.lookup(tuple("1.1.1.1", "2.2.2.2"), 5, 0);
  FlowEntry c;
  c.match = FlowMatch::exact(tuple("5.5.5.5", "6.6.6.6"));
  table.insert(c, 6);
  EXPECT_EQ(table.size(), 2u);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], RemovalReason::kEvicted);
  EXPECT_EQ(table.lookup(tuple("3.3.3.3", "4.4.4.4"), 7, 0), nullptr);
  EXPECT_NE(table.lookup(tuple("1.1.1.1", "2.2.2.2"), 7, 0), nullptr);
}

TEST(FlowTable, HighPriorityWildcardDropBeatsExactAllow) {
  // Wildcard-shadowing regression: the seed's exact-match fast path
  // returned without consulting wildcard entries of strictly higher
  // priority, so a quarantine drop covering the flow's source never
  // fired once a per-flow allow entry existed.
  FlowTable table;
  FlowEntry allow;
  allow.match = FlowMatch::exact(tuple());
  allow.priority = 100;
  allow.action = OutputAction{{2}};
  table.insert(allow, 0);

  FlowEntry quarantine;
  quarantine.match.wildcards = without(Wildcard::kAll, Wildcard::kSrcIp);
  quarantine.match.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  quarantine.priority = 900;  // strictly above the allow entry
  quarantine.action = DropAction{};
  table.insert(quarantine, 0);

  const FlowEntry* found = table.lookup(tuple(), 1, 64);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->priority, 900);
  EXPECT_TRUE(std::holds_alternative<DropAction>(found->action));
}

TEST(FlowTable, ExactBeatsEqualAndLowerPriorityWildcards) {
  // OpenFlow tie-break: the exact entry wins at equal (and lower)
  // wildcard priority.
  FlowTable table;
  FlowEntry allow;
  allow.match = FlowMatch::exact(tuple());
  allow.priority = 100;
  allow.action = OutputAction{{2}};
  table.insert(allow, 0);

  FlowEntry same_priority;
  same_priority.match.wildcards = without(Wildcard::kAll, Wildcard::kSrcIp);
  same_priority.match.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  same_priority.priority = 100;
  same_priority.action = DropAction{};
  table.insert(same_priority, 0);

  FlowEntry lower;
  lower.match.wildcards = Wildcard::kAll;
  lower.priority = 10;
  lower.action = DropAction{};
  table.insert(lower, 0);

  const FlowEntry* found = table.lookup(tuple(), 1, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->priority, 100);
  EXPECT_TRUE(std::holds_alternative<OutputAction>(found->action));
  EXPECT_TRUE(found->match.is_exact());
}

TEST(FlowTable, OverwritePreservesCountersAndCreation) {
  // A controller refreshing a rule (same match + priority) must not wipe
  // the counters AdmissionController::flow_usage reads for accounting.
  FlowTable table;
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple());
  entry.action = OutputAction{{2}};
  table.insert(entry, 0);
  (void)table.lookup(tuple(), 5, 100);
  (void)table.lookup(tuple(), 6, 100);

  entry.action = OutputAction{{3}};  // refreshed rule, new action
  table.insert(entry, 50);
  const FlowEntry* found = table.lookup(tuple(), 51, 100);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->packet_count, 3u);  // 2 before the refresh + this one
  EXPECT_EQ(found->byte_count, 300u);
  EXPECT_EQ(found->created_at, 0);
  EXPECT_TRUE(std::holds_alternative<OutputAction>(found->action));
  EXPECT_EQ(std::get<OutputAction>(found->action).ports[0], 3);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, WildcardOverwritePreservesCounters) {
  FlowTable table;
  FlowEntry entry;
  entry.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  entry.match.dst_port = 80;
  entry.priority = 7;
  entry.action = DropAction{};
  table.insert(entry, 0);
  (void)table.lookup(tuple(), 1, 40);

  table.insert(entry, 10);  // refresh
  const FlowEntry* found = table.lookup(tuple(), 11, 40);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->packet_count, 2u);
  EXPECT_EQ(found->byte_count, 80u);
  EXPECT_EQ(found->created_at, 0);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, ZeroCapacityClampsToOne) {
  // capacity == 0 used to disable eviction entirely (evict_lru no-oped on
  // the empty stores) and let the table grow past its cap.
  FlowTable table(0);
  EXPECT_EQ(table.capacity(), 1u);
  FlowEntry a;
  a.match = FlowMatch::exact(tuple("1.1.1.1", "2.2.2.2"));
  table.insert(a, 0);
  FlowEntry b;
  b.match = FlowMatch::exact(tuple("3.3.3.3", "4.4.4.4"));
  table.insert(b, 1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(tuple("1.1.1.1", "2.2.2.2"), 2, 0), nullptr);
  EXPECT_NE(table.lookup(tuple("3.3.3.3", "4.4.4.4"), 2, 0), nullptr);
}

TEST(FlowTable, BucketedLookupFindsLowerPriorityMatch) {
  // Many disjoint wildcard entries across several priorities: the bucketed
  // tuple-space index must still fall through to the only matching entry.
  FlowTable table;
  for (std::uint16_t p = 1; p <= 50; ++p) {
    FlowEntry entry;
    entry.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
    entry.match.dst_port = static_cast<std::uint16_t>(5000 + p);
    entry.priority = p;
    entry.action = DropAction{};
    table.insert(entry, 0);
  }
  FlowEntry target;
  target.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  target.match.dst_port = 80;
  target.priority = 3;
  target.action = OutputAction{{9}};
  table.insert(target, 0);

  const FlowEntry* found = table.lookup(tuple(), 1, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->priority, 3);
  EXPECT_TRUE(std::holds_alternative<OutputAction>(found->action));
}

TEST(FlowTable, FindByMatchAndPriority) {
  FlowTable table;
  FlowEntry wild;
  wild.match.wildcards = without(Wildcard::kAll, Wildcard::kDstPort);
  wild.match.dst_port = 80;
  wild.priority = 42;
  wild.idle_timeout = 100;
  table.insert(wild, 0);
  EXPECT_NE(table.find(wild.match, 42, 1), nullptr);
  EXPECT_EQ(table.find(wild.match, 43, 1), nullptr);
  FlowMatch other = wild.match;
  other.dst_port = 81;
  EXPECT_EQ(table.find(other, 42, 1), nullptr);
  // An expired-but-unswept entry is not a live rule.
  EXPECT_EQ(table.find(wild.match, 42, 500), nullptr);
}

TEST(FlowTable, RemoveIfByCookie) {
  FlowTable table;
  for (std::uint64_t cookie = 1; cookie <= 3; ++cookie) {
    FlowEntry entry;
    entry.match = FlowMatch::exact(
        tuple("1.1.1.1", "2.2.2.2", static_cast<std::uint16_t>(cookie), 80));
    entry.cookie = cookie;
    table.insert(entry, 0);
  }
  EXPECT_EQ(table.remove_if([](const FlowEntry& e) { return e.cookie == 2; }),
            1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTable, ClearEmptiesEverything) {
  FlowTable table;
  FlowEntry exact;
  exact.match = FlowMatch::exact(tuple());
  table.insert(exact, 0);
  FlowEntry wild;
  wild.match.wildcards = Wildcard::kAll;
  table.insert(wild, 0);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.entries().empty());
}

// ---------------------------------------------------------------- switch

class CapturingControlPlane : public ControlPlane {
 public:
  void on_packet_in(const PacketIn& msg) override { packet_ins.push_back(msg); }
  void on_flow_removed(const FlowRemovedMsg& msg) override {
    removed.push_back(msg);
  }
  std::vector<PacketIn> packet_ins;
  std::vector<FlowRemovedMsg> removed;
};

struct SwitchFixture : ::testing::Test {
  SwitchFixture() {
    s1 = topo.add_switch(std::make_unique<Switch>("s1"));
    // Two recorder hosts on ports 1 and 2 of s1.
    h1 = topo.add_host(std::make_unique<HostStub>("h1"));
    h2 = topo.add_host(std::make_unique<HostStub>("h2"));
    topo.link(s1, h1);
    topo.link(s1, h2);
    topo.switch_at(s1).set_controller(&controller, 10);
  }

  class HostStub : public sim::Node {
   public:
    explicit HostStub(std::string name) : name_(std::move(name)) {}
    void on_packet(const net::Packet& packet, sim::PortId) override {
      received.push_back(packet);
    }
    [[nodiscard]] std::string name() const override { return name_; }
    std::vector<net::Packet> received;

   private:
    std::string name_;
  };

  net::Packet packet() {
    return net::make_tcp_packet(
        net::MacAddress::for_node(1), net::MacAddress::for_node(2),
        *net::Ipv4Address::parse("10.0.0.1"), *net::Ipv4Address::parse("10.0.0.2"),
        1000, 80, "x");
  }

  Topology topo;
  CapturingControlPlane controller;
  sim::NodeId s1{}, h1{}, h2{};
};

TEST_F(SwitchFixture, TableMissGoesToController) {
  topo.simulator().send(h1, 1, packet());
  topo.simulator().run();
  ASSERT_EQ(controller.packet_ins.size(), 1u);
  EXPECT_EQ(controller.packet_ins[0].switch_id, s1);
  EXPECT_EQ(controller.packet_ins[0].in_port, 1);
  EXPECT_EQ(topo.switch_at(s1).stats().packets_to_controller, 1u);
}

TEST_F(SwitchFixture, InstalledOutputForwards) {
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = OutputAction{{2}};
  topo.switch_at(s1).install_flow(entry);
  topo.simulator().send(h1, 1, packet());
  topo.simulator().run();
  auto& host2 = dynamic_cast<HostStub&>(topo.simulator().node(h2));
  EXPECT_EQ(host2.received.size(), 1u);
  EXPECT_TRUE(controller.packet_ins.empty());
}

TEST_F(SwitchFixture, DropActionDrops) {
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = DropAction{};
  topo.switch_at(s1).install_flow(entry);
  topo.simulator().send(h1, 1, packet());
  topo.simulator().run();
  auto& host2 = dynamic_cast<HostStub&>(topo.simulator().node(h2));
  EXPECT_TRUE(host2.received.empty());
  EXPECT_EQ(topo.switch_at(s1).stats().packets_dropped, 1u);
}

TEST_F(SwitchFixture, FloodSkipsIngressPort) {
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = FloodAction{};
  topo.switch_at(s1).install_flow(entry);
  topo.simulator().send(h1, 1, packet());
  topo.simulator().run();
  auto& host1 = dynamic_cast<HostStub&>(topo.simulator().node(h1));
  auto& host2 = dynamic_cast<HostStub&>(topo.simulator().node(h2));
  EXPECT_TRUE(host1.received.empty());
  EXPECT_EQ(host2.received.size(), 1u);
}

TEST_F(SwitchFixture, MissDropBehaviour) {
  topo.switch_at(s1).set_miss_behaviour(MissBehaviour::kDrop);
  topo.simulator().send(h1, 1, packet());
  topo.simulator().run();
  EXPECT_TRUE(controller.packet_ins.empty());
  EXPECT_EQ(topo.switch_at(s1).stats().packets_dropped, 1u);
}

TEST_F(SwitchFixture, CompromisedSwitchFloodsEverything) {
  topo.switch_at(s1).set_compromised(true);
  // Even with a drop-all entry installed, traffic passes (§5.2).
  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = DropAction{};
  topo.switch_at(s1).install_flow(entry);
  topo.simulator().send(h1, 1, packet());
  topo.simulator().run();
  auto& host2 = dynamic_cast<HostStub&>(topo.simulator().node(h2));
  EXPECT_EQ(host2.received.size(), 1u);
}

TEST_F(SwitchFixture, PacketOutAppliesAction) {
  topo.switch_at(s1).packet_out(packet(), OutputAction{{2}}, 0);
  topo.simulator().run();
  auto& host2 = dynamic_cast<HostStub&>(topo.simulator().node(h2));
  EXPECT_EQ(host2.received.size(), 1u);
}

TEST_F(SwitchFixture, FlowRemovedNotifiesController) {
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple());
  entry.idle_timeout = 5;
  entry.cookie = 42;
  topo.switch_at(s1).install_flow(entry);
  topo.simulator().schedule_at(100, [this] {
    topo.switch_at(s1).table().expire(topo.simulator().now());
  });
  topo.simulator().run();
  ASSERT_EQ(controller.removed.size(), 1u);
  EXPECT_EQ(controller.removed[0].entry.cookie, 42u);
}

// ---------------------------------------------------------------- topology

TEST(TopologyTest, AttachmentFindsSwitchPort) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto [host_port, switch_port] = topo.link(h1, s1);
  (void)host_port;
  const auto attachment = topo.attachment(h1);
  ASSERT_TRUE(attachment.has_value());
  EXPECT_EQ(attachment->switch_id, s1);
  EXPECT_EQ(attachment->out_port, switch_port);
}

TEST(TopologyTest, PathAcrossLinearFabric) {
  // h1 - s1 - s2 - s3 - h2
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto s2 = topo.add_switch(std::make_unique<Switch>("s2"));
  const auto s3 = topo.add_switch(std::make_unique<Switch>("s3"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);
  topo.link(s1, s2);
  topo.link(s2, s3);
  topo.link(h2, s3);
  const auto path = topo.path(h1, h2);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[0].switch_id, s1);
  EXPECT_EQ((*path)[1].switch_id, s2);
  EXPECT_EQ((*path)[2].switch_id, s3);
  // in_port of each hop faces the previous node.
  EXPECT_NE((*path)[1].in_port, 0);
  EXPECT_NE((*path)[2].in_port, 0);
}

TEST(TopologyTest, PathPrefersShortestRoute) {
  // Diamond: h1 - s1 - {s2 - s3} and s1 - s4 - h2 shortcut.
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto s2 = topo.add_switch(std::make_unique<Switch>("s2"));
  const auto s3 = topo.add_switch(std::make_unique<Switch>("s3"));
  const auto s4 = topo.add_switch(std::make_unique<Switch>("s4"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);
  topo.link(s1, s2);
  topo.link(s2, s3);
  topo.link(s3, s4);
  topo.link(s1, s4);
  topo.link(h2, s4);
  const auto path = topo.path(h1, h2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // s1 -> s4
}

TEST(TopologyTest, NoPathThroughHosts) {
  // h1 - hmid - h2: hosts do not forward.
  Topology topo;
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto hmid = topo.add_host(std::make_unique<SwitchFixture::HostStub>("hm"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, hmid);
  topo.link(hmid, h2);
  EXPECT_FALSE(topo.path(h1, h2).has_value());
}

TEST(TopologyTest, PathFromSwitchStart) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto s2 = topo.add_switch(std::make_unique<Switch>("s2"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(s1, s2);
  topo.link(h2, s2);
  const auto path = topo.path(s1, h2);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ(path->front().switch_id, s1);
}

TEST(TopologyTest, PathCacheHitsAndInvalidatesOnLink) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto s2 = topo.add_switch(std::make_unique<Switch>("s2"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);
  topo.link(s1, s2);
  topo.link(h2, s2);

  const auto first = topo.path(h1, h2);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 2u);
  EXPECT_EQ(topo.path_cache_stats().misses, 1u);
  const auto second = topo.path(h1, h2);
  EXPECT_EQ(second, first);  // served from cache, identical hops
  EXPECT_EQ(topo.path_cache_stats().hits, 1u);

  // Topology change: a direct s1—h2 shortcut.  The cache must not keep
  // handing out the stale two-hop path.
  topo.link(s1, h2);
  EXPECT_GE(topo.path_cache_stats().invalidations, 1u);
  const auto after = topo.path(h1, h2);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->size(), 1u);  // now one hop: s1 straight to h2
  EXPECT_EQ(after->front().switch_id, s1);
}

TEST(TopologyTest, PathCacheDisableFallsBackToBfs) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);
  topo.link(h2, s1);
  topo.set_path_cache_enabled(false);
  ASSERT_TRUE(topo.path(h1, h2).has_value());
  ASSERT_TRUE(topo.path(h1, h2).has_value());
  EXPECT_EQ(topo.path_cache_stats().hits, 0u);
  EXPECT_EQ(topo.path_cache_size(), 0u);
}

TEST(TopologyTest, SwitchAtRejectsHosts) {
  Topology topo;
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  EXPECT_THROW((void)topo.switch_at(h1), SimError);
}

// ------------------------------------------------------------ multipath

// Diamond fabric with two equal-cost routes h1 -> h2:
//     h1 - s1 - s2 - s4 - h2
//              \ s3 /
struct DiamondFixture : ::testing::Test {
  DiamondFixture() {
    s1 = topo.add_switch(std::make_unique<Switch>("s1"));
    s2 = topo.add_switch(std::make_unique<Switch>("s2"));
    s3 = topo.add_switch(std::make_unique<Switch>("s3"));
    s4 = topo.add_switch(std::make_unique<Switch>("s4"));
    h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
    h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
    topo.link(h1, s1);
    topo.link(s1, s2);
    topo.link(s1, s3);
    topo.link(s2, s4);
    topo.link(s3, s4);
    topo.link(h2, s4);
  }

  static net::FiveTuple flow_with_port(std::uint16_t src_port) {
    net::FiveTuple f;
    f.src_ip = *net::Ipv4Address::parse("10.0.0.1");
    f.dst_ip = *net::Ipv4Address::parse("10.0.0.2");
    f.proto = net::IpProto::kTcp;
    f.src_port = src_port;
    f.dst_port = 80;
    return f;
  }

  Topology topo;
  sim::NodeId s1{}, s2{}, s3{}, s4{}, h1{}, h2{};
};

TEST_F(DiamondFixture, PathSetEnumeratesEqualCostPaths) {
  const auto single = topo.path(h1, h2);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->size(), 3u);

  topo.set_multipath(2, 42);
  const PathSet set = topo.path_set(h1, h2);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.paths[0].size(), 3u);
  EXPECT_EQ(set.paths[1].size(), 3u);
  // The two routes diverge in the middle hop only.
  EXPECT_EQ(set.paths[0].front().switch_id, s1);
  EXPECT_EQ(set.paths[1].front().switch_id, s1);
  EXPECT_EQ(set.paths[0].back().switch_id, s4);
  EXPECT_EQ(set.paths[1].back().switch_id, s4);
  EXPECT_NE(set.paths[0][1].switch_id, set.paths[1][1].switch_id);
  // path() under multipath = the set's first path, and the set is capped
  // at k even when more equal-cost routes exist.
  EXPECT_EQ(topo.path(h1, h2), set.paths[0]);
}

TEST_F(DiamondFixture, SingleKPathReproducesLegacyBfs) {
  const auto legacy = topo.path(h1, h2);
  topo.set_multipath(1, 777);  // nonzero seed must not perturb k == 1
  EXPECT_EQ(topo.path(h1, h2), legacy);
  const net::FiveTuple f = flow_with_port(1234);
  EXPECT_EQ(topo.path_for_flow(h1, h2, f), legacy);
}

TEST_F(DiamondFixture, EcmpSelectionIsDeterministicAndCounted) {
  topo.set_multipath(2, 42);
  const PathSet set = topo.path_set(h1, h2);
  ASSERT_EQ(set.size(), 2u);

  // Same flow, same path — every time.
  const net::FiveTuple f = flow_with_port(5555);
  const auto chosen = topo.path_for_flow(h1, h2, f);
  ASSERT_TRUE(chosen.has_value());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(topo.path_for_flow(h1, h2, f), chosen);
  }

  // Across many flows both routes get used, and the histogram accounts
  // for every main-thread selection.
  std::uint64_t queries = 8;  // the loop above
  for (std::uint16_t port = 1000; port < 1064; ++port) {
    ASSERT_TRUE(topo.path_for_flow(h1, h2, flow_with_port(port)).has_value());
    ++queries;
  }
  const auto& hist = topo.path_cache_stats().ecmp_selections;
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_GT(hist[0], 0u);
  EXPECT_GT(hist[1], 0u);
  EXPECT_EQ(hist[0] + hist[1], queries + 1);  // +1: `chosen` itself
}

TEST_F(DiamondFixture, EcmpSeedChangesSelectionPattern) {
  topo.set_multipath(2, 1);
  std::vector<std::size_t> first;
  for (std::uint16_t port = 1000; port < 1032; ++port) {
    const auto p = topo.path_for_flow(h1, h2, flow_with_port(port));
    ASSERT_TRUE(p.has_value());
    first.push_back((*p)[1].switch_id == s2 ? 0 : 1);
  }
  topo.set_multipath(2, 2);
  std::vector<std::size_t> second;
  for (std::uint16_t port = 1000; port < 1032; ++port) {
    const auto p = topo.path_for_flow(h1, h2, flow_with_port(port));
    ASSERT_TRUE(p.has_value());
    second.push_back((*p)[1].switch_id == s2 ? 0 : 1);
  }
  EXPECT_NE(first, second);  // 2^-32 chance of colliding per seed pair
}

// Satellite regression: a worker thread's thread-local path memo must not
// serve stale hops after the main thread rewired the topology (the memos
// are invalidated by an epoch bump in link()).
TEST(TopologyTest, WorkerPathMemoInvalidatedOnLink) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto s2 = topo.add_switch(std::make_unique<Switch>("s2"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);
  topo.link(s1, s2);
  topo.link(h2, s2);

  sim::WorkerPool pool(2);
  // Run one path query on a pool thread (worker slot != 0, so it goes
  // through the thread-local memo).  Task distribution races between the
  // caller and the pool thread, so both tasks share one body: the pool
  // thread queries, the caller just waits for it.
  const auto query_on_worker = [&]() -> std::optional<std::size_t> {
    std::atomic<bool> done{false};
    std::atomic<bool> ran_on_worker{false};
    std::atomic<std::size_t> hops{0};
    const std::function<void()> body = [&]() {
      if (sim::WorkerPool::current_worker_slot() != 0) {
        const auto path = topo.path(h1, h2);
        hops.store(path.has_value() ? path->size() : 0);
        ran_on_worker.store(true);
        done.store(true);
        return;
      }
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!done.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    };
    std::vector<std::function<void()>> tasks{body, body};
    pool.run(tasks);
    if (!ran_on_worker.load()) return std::nullopt;  // caller drained both
    return hops.load();
  };

  std::optional<std::size_t> before;
  for (int attempt = 0; attempt < 100 && !before; ++attempt) {
    before = query_on_worker();
  }
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(*before, 2u);  // h1 - s1 - s2 - h2

  // Main thread rewires: direct s1—h2 shortcut.  The worker's memo was
  // populated before this; serving it again would hand out stale hops.
  topo.link(s1, h2);

  std::optional<std::size_t> after;
  for (int attempt = 0; attempt < 100 && !after; ++attempt) {
    after = query_on_worker();
  }
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, 1u);  // s1 straight to h2, not the stale 2-hop path
}

// ---------------------------------------------------------- output queues

TEST(SwitchQueueTest, BoundedQueueTailDropsAndCounts) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);  // default 10G: ingress is effectively instant
  // 1 Mbps egress: each small packet takes ~hundreds of µs on the wire.
  const auto [egress, unused] =
      topo.link(s1, h2, 10 * sim::kMicrosecond, 1'000'000);
  (void)unused;
  topo.switch_at(s1).set_queue_depth(2);

  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = OutputAction{{egress}};
  topo.switch_at(s1).install_flow(entry);

  const auto packet = net::make_tcp_packet(
      net::MacAddress::for_node(1), net::MacAddress::for_node(2),
      *net::Ipv4Address::parse("10.0.0.1"), *net::Ipv4Address::parse("10.0.0.2"),
      1000, 80, "x");
  // Five packets arrive back-to-back: one goes straight on the wire, two
  // queue, two overflow the depth-2 queue.
  for (int i = 0; i < 5; ++i) topo.simulator().send(h1, 1, packet);
  topo.simulator().run();

  auto& dst = dynamic_cast<SwitchFixture::HostStub&>(topo.simulator().node(h2));
  EXPECT_EQ(dst.received.size(), 3u);
  const auto& stats = topo.switch_at(s1).stats();
  EXPECT_EQ(stats.packets_forwarded, 5u);  // forwarding verdicts, pre-queue
  EXPECT_EQ(stats.queue_tail_drops, 2u);
  const PortQueueStats* q = topo.switch_at(s1).port_queue(egress);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->tail_drops, 2u);
  EXPECT_EQ(q->enqueued, 2u);
  EXPECT_EQ(q->peak_occupancy, 2u);
  EXPECT_EQ(q->occupancy, 0u);  // drained by the end of the run
}

TEST(SwitchQueueTest, UnboundedByDefaultAndZeroRestores) {
  Topology topo;
  const auto s1 = topo.add_switch(std::make_unique<Switch>("s1"));
  const auto h1 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h1"));
  const auto h2 = topo.add_host(std::make_unique<SwitchFixture::HostStub>("h2"));
  topo.link(h1, s1);
  const auto [egress, unused] =
      topo.link(s1, h2, 10 * sim::kMicrosecond, 1'000'000);
  (void)unused;

  FlowEntry entry;
  entry.match = FlowMatch::any();
  entry.action = OutputAction{{egress}};
  topo.switch_at(s1).install_flow(entry);

  const auto packet = net::make_tcp_packet(
      net::MacAddress::for_node(1), net::MacAddress::for_node(2),
      *net::Ipv4Address::parse("10.0.0.1"), *net::Ipv4Address::parse("10.0.0.2"),
      1000, 80, "x");
  for (int i = 0; i < 8; ++i) topo.simulator().send(h1, 1, packet);
  topo.simulator().run();

  auto& dst = dynamic_cast<SwitchFixture::HostStub&>(topo.simulator().node(h2));
  EXPECT_EQ(dst.received.size(), 8u);  // queue model off: nothing dropped
  EXPECT_EQ(topo.switch_at(s1).stats().queue_tail_drops, 0u);
}

}  // namespace
}  // namespace identxx::openflow
