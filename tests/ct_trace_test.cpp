// Dynamic secret-independence checker (ctgrind style) for the sign path.
//
// ct.hpp's TracedLimb carries a taint bit through every data-flow
// operation and throws TraceViolation the moment a tainted value reaches
// a branch decision, a variable-time operator, or a shift count.  The
// sign kernel (ct_sign.hpp) is templated on the limb type, so the SAME
// code that ships (L = uint64_t) runs here under L = TracedLimb with the
// private scalar and nonce poisoned — an execution-level proof that the
// instruction trace is secret-independent, complementing tools/ct_lint's
// static taint analysis.
//
// The IDENTXX_CT_TRACE build mode (cmake -DIDENTXX_CT_TRACE=ON) goes
// further: every production sign() re-runs the traced instantiation and
// aborts on divergence, so the whole test suite exercises the checker.

#include <cstdint>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "crypto/ct.hpp"
#include "crypto/ct_sign.hpp"
#include "crypto/schnorr.hpp"

namespace identxx::crypto {
namespace {

using ct::TracedLimb;
using ct::TraceViolation;

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(CtTrace, TaintPropagatesThroughDataFlow) {
  const TracedLimb s = TracedLimb::secret_value(0x1234);
  const TracedLimb p(7);
  EXPECT_TRUE((s + p).t);
  EXPECT_TRUE((s * p).t);
  EXPECT_TRUE((s ^ p).t);
  EXPECT_TRUE((s & p).t);
  EXPECT_TRUE((~s).t);
  EXPECT_TRUE((s << 3u).t);
  EXPECT_FALSE((p + TracedLimb(1)).t);  // public stays public
}

TEST(CtTrace, CertifiedPrimitivesRunCleanOnSecrets) {
  const TracedLimb a = TracedLimb::secret_value(42);
  const TracedLimb b = TracedLimb::secret_value(17);
  // Mask machinery must not branch: these all succeed on tainted limbs.
  const TracedLimb m = ct::ct_eq_mask(a, b);
  EXPECT_TRUE(m.t);
  EXPECT_EQ(ct::ct_limb_value(ct::ct_select(m, a, b)), 17u);
  TracedLimb hi(0);
  const TracedLimb lo = ct::ct_mul64(a, b, hi);
  EXPECT_TRUE(lo.t);
  EXPECT_TRUE(hi.t);
  EXPECT_EQ(ct::ct_limb_value(lo), 42u * 17u);
}

TEST(CtTrace, SecretBranchThrows) {
  const TracedLimb k = TracedLimb::secret_value(0x5a5a);
  EXPECT_THROW(static_cast<void>(static_cast<bool>(k)), TraceViolation);
  EXPECT_THROW(static_cast<void>(k == TracedLimb(0)), TraceViolation);
  EXPECT_THROW(static_cast<void>(k < TracedLimb(1)), TraceViolation);
}

TEST(CtTrace, SecretDivModAndShiftCountThrow) {
  const TracedLimb k = TracedLimb::secret_value(12);
  EXPECT_THROW(static_cast<void>(k / TracedLimb(3)), TraceViolation);
  EXPECT_THROW(static_cast<void>(k % TracedLimb(5)), TraceViolation);
  EXPECT_THROW(static_cast<void>(TracedLimb(1) << k), TraceViolation);
}

/// The pre-hardening nonce chain in miniature: a double-and-add walk
/// that branches on each scalar bit.  Under the tracer this MUST die on
/// the first bit inspected — this is the acceptance tripwire showing
/// that reverting the comb to a wNAF-style recoding cannot pass CI.
std::uint64_t leaky_double_and_add(TracedLimb k) {
  std::uint64_t acc = 0;
  while (static_cast<bool>(k & TracedLimb(1)) || ct::ct_limb_value(k) != 0) {
    acc = acc * 2 + 1;
    k = k >> 1u;
  }
  return acc;
}

TEST(CtTrace, LeakyDoubleAndAddIsCaught) {
  EXPECT_THROW(leaky_double_and_add(TracedLimb::secret_value(0x1b)),
               TraceViolation);
}

TEST(CtTrace, TracedSignRunsCleanAndMatchesProduction) {
  // End-to-end: sign with the nonce and private scalar poisoned.  No
  // TraceViolation may fire, and the declassified signature must equal
  // the production (uint64_t) instantiation bit-for-bit.
  const PrivateKey key = PrivateKey::from_seed("trace-test-key");
  const std::string messages[] = {
      "", "m", "attest:app=browser;exe-hash=deadbeef",
      std::string(200, 'x'),
  };
  for (const std::string& msg : messages) {
    const Signature prod = key.sign(as_bytes(msg));
    Signature traced{};
    ASSERT_NO_THROW(traced = ct::schnorr_sign_ct<TracedLimb>(
                        key.scalar(), key.public_key().point, as_bytes(msg)));
    EXPECT_EQ(traced, prod) << "msg=\"" << msg << '"';
    EXPECT_TRUE(verify(key.public_key(), as_bytes(msg), traced));
  }
}

TEST(CtTrace, TracedCombRunsCleanOnEdgeScalars) {
  // d = 1 exercises the all-zero-digit path (63 identity additions);
  // d = n-1 the all-top-digit path.  Complete addition must swallow both
  // without a data-dependent branch.
  const U256 n = Secp256k1::n();
  for (const U256& d : {U256{1}, U256::sub(n, U256{1}).first}) {
    AffinePoint traced{};
    ASSERT_NO_THROW(traced = ct::ec_mul_base_ct<TracedLimb>(d));
    EXPECT_EQ(traced, ec_mul_base(d).to_affine()) << d.to_hex();
  }
}

TEST(CtTrace, SecretsAreWipedOnKeyDestruction) {
  // ct::secret<U256> zeroizes its storage in the destructor.  Observe it
  // directly on a local secret (the PrivateKey member behaves the same).
  ct::secret<U256> s(U256{0xdeadbeefULL});
  // Launder the pointer through an asm barrier: the test inspects dead
  // storage on purpose, and without this gcc both warns and may fold the
  // post-destructor read away.
  const std::uint64_t* inside = &s.expose_secret().w[0];
  __asm__ __volatile__("" : "+r"(inside));
  EXPECT_EQ(inside[0], 0xdeadbeefULL);
  s.~secret();
  EXPECT_EQ(inside[0], 0u);  // wiped, not just dropped
  new (&s) ct::secret<U256>();  // restore for the real destructor
}

}  // namespace
}  // namespace identxx::crypto
