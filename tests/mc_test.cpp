// Determinism model checker (DESIGN.md §13): the mc::Explorer must prove
// schedule invariance for the control-plane race scenarios (revoke racing
// admission, set_policy mid-burst, an ECMP epoch bump), must catch both
// injected determinism mutations as self-tests, and the DPOR independence
// oracle must prune commuting schedules without missing conflicting ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "mc/explorer.hpp"
#include "sim/schedule.hpp"

namespace identxx {
namespace {

using core::Scenario;
using core::ScenarioOptions;
using core::ScenarioResult;
using mc::Explorer;
using mc::ExplorerOptions;
using mc::Mode;
using mc::Report;

// Two flows pinned to distinct shards so every admission wave has two
// shard lanes to reorder; the raced control op lands between a decision's
// shard-lane dispatch and its global-lane commit.
constexpr char kRevokeRacingAdmission[] = R"(
switch s1
host c1h 10.0.0.1 s1
host c2h 10.0.0.2 s1
host server 10.0.0.3 s1
user c1h alice staff
user c2h bobby staff
user server www daemons
launch c1 c1h alice /usr/bin/curl
launch c2 c2h bobby /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
pass from any to any port 80
policy end
pin c1h 0
pin c2h 1
flow f1 c1 10.0.0.3 80
flow f2 c2 10.0.0.3 80
control 0 raced revoke_all
)";

// A raced policy flip to `block all`: the control epoch bumps between
// dispatch and commit, so the commit-time re-decision must see the new
// engine and block the flow — the expectation encodes the healthy verdict.
constexpr char kSetPolicyMidBurst[] = R"(
switch s1
host c1h 10.0.0.1 s1
host c2h 10.0.0.2 s1
host server 10.0.0.3 s1
user c1h alice staff
user c2h bobby staff
user server www daemons
launch c1 c1h alice /usr/bin/curl
launch c2 c2h bobby /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
pass from any to any port 80
policy end
pin c1h 0
pin c2h 1
flow f1 c1 10.0.0.3 80
flow f2 c2 10.0.0.3 80
control 0 raced set_policy "block all"
expect f1 blocked
expect f2 blocked
)";

// Diamond topology with 2 equal-cost paths; the raced set_multipath bumps
// the topology's path epoch mid-admission, racing the per-worker path-memo
// invalidation against cached_path_set readers on the shard lanes.
constexpr char kEcmpEpochBump[] = R"(
switch s1
switch s2
switch s3
switch s4
link s1 s2 10
link s1 s3 10
link s2 s4 10
link s3 s4 10
host c1h 10.0.0.1 s1
host c2h 10.0.0.2 s1
host server 10.0.1.1 s4
user c1h alice staff
user c2h bobby staff
user server www daemons
launch c1 c1h alice /usr/bin/curl
launch c2 c2h bobby /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
pass from any to any port 80
policy end
pin c1h 0
pin c2h 1
flow f1 c1 10.0.1.1 80
flow f2 c2 10.0.1.1 80
control 0 raced set_multipath 2 7
expect f1 delivered
expect f2 delivered
)";

// Three flows in three distinct shards, all released SYNs contending for
// the 1 Mbps s1->s2 bottleneck behind a depth-1 output queue: the commit
// (packet_out) order picks the tail-drop victim, so the merged commit
// sequence is directly observable in per-flow delivery.  Identity strings
// are all the same length so the three daemon responses land in the same
// virtual-time wave.  Queries are src-only to keep the admission round
// trip off the bottleneck link.
constexpr char kBottleneckCommitOrder[] = R"(
switch s1
switch s2
link s1 s2 10 1
host c1h 10.0.0.1 s1
host c2h 10.0.0.2 s1
host c3h 10.0.0.3 s1
host server 10.0.1.1 s2
user c1h alice staff
user c2h bobby staff
user c3h carol staff
user server www daemons
launch c1 c1h alice /usr/bin/curl
launch c2 c2h bobby /usr/bin/curl
launch c3 c3h carol /usr/bin/curl
launch h1 server www /usr/sbin/httpd
listen h1 80
policy begin
pass from any to any port 80
policy end
pin c1h 0
pin c2h 1
pin c3h 2
flow f1 c1 10.0.1.1 80
flow f2 c2 10.0.1.1 80
flow f3 c3 10.0.1.1 80
expect f1 delivered
expect f2 delivered
expect f3 blocked
)";

// Two fully disjoint admission islands: different switches, different
// cookie namespaces, no control churn — the two shard lanes commute, so
// DPOR must collapse both orders into one Mazurkiewicz class.
constexpr char kDisjointIslands[] = R"(
switch s1
switch s2
host c1h 10.0.0.1 s1
host srv1 10.0.0.2 s1
host c2h 10.0.1.1 s2
host srv2 10.0.1.2 s2
user c1h alice staff
user srv1 www daemons
user c2h bobby staff
user srv2 www daemons
launch c1 c1h alice /usr/bin/curl
launch s1d srv1 www /usr/sbin/httpd
launch c2 c2h bobby /usr/bin/curl
launch s2d srv2 www /usr/sbin/httpd
listen s1d 80
listen s2d 80
policy begin
pass from any to any port 80
policy end
pin c1h 0
pin c2h 1
flow f1 c1 10.0.0.2 80
flow f2 c2 10.0.1.2 80
expect f1 delivered
expect f2 delivered
)";

[[nodiscard]] Report explore(const char* text, std::uint32_t shards,
                             Mode mode = Mode::kExhaustive,
                             ScenarioOptions base = {}) {
  const Scenario scenario = Scenario::parse(text);
  ExplorerOptions options;
  options.scenario = std::move(base);
  options.scenario.shards = shards;
  options.mode = mode;
  Explorer explorer(scenario, options);
  return explorer.run();
}

TEST(McExplorer, RevokeRacingAdmissionIsScheduleInvariant) {
  for (const std::uint32_t shards : {2u, 3u}) {
    const Report report = explore(kRevokeRacingAdmission, shards);
    EXPECT_TRUE(report.ok()) << "shards=" << shards << "\n"
                             << report.summary();
    EXPECT_GE(report.choice_points, 1u) << "shards=" << shards;
    EXPECT_GE(report.schedules_explored, 2u) << "shards=" << shards;
    EXPECT_FALSE(report.budget_exhausted);
  }
}

TEST(McExplorer, SetPolicyMidBurstIsScheduleInvariant) {
  for (const std::uint32_t shards : {2u, 3u}) {
    const Report report = explore(kSetPolicyMidBurst, shards);
    EXPECT_TRUE(report.ok()) << "shards=" << shards << "\n"
                             << report.summary();
    EXPECT_GE(report.choice_points, 1u) << "shards=" << shards;
    EXPECT_GE(report.schedules_explored, 2u) << "shards=" << shards;
  }
}

TEST(McExplorer, EcmpEpochBumpIsScheduleInvariant) {
  // Satellite of DESIGN.md §12: the raced set_multipath bumps the path
  // epoch while shard-lane work holds per-worker path memos; every
  // schedule must still pick identical paths.
  ScenarioOptions base;
  base.k_paths = 2;
  for (const std::uint32_t shards : {2u, 3u}) {
    const Report report = explore(kEcmpEpochBump, shards, Mode::kExhaustive,
                                  base);
    EXPECT_TRUE(report.ok()) << "shards=" << shards << "\n"
                             << report.summary();
    EXPECT_GE(report.choice_points, 1u) << "shards=" << shards;
  }
}

TEST(McExplorer, EcmpEpochBumpInvalidatesPathCacheMidRun) {
  // Sanity for the scenario above: a mid-run set_multipath really does
  // clear a populated path cache (the epoch machinery is exercised, not
  // idle).  The bump is plain (not raced) and scheduled after the t=0
  // admissions commit, so the cache holds both pair entries by then.
  std::string text = kEcmpEpochBump;
  const std::string raced = "control 0 raced set_multipath 2 7";
  text.replace(text.find(raced), raced.size(),
               "control 1000 set_multipath 2 7");
  const Scenario scenario = Scenario::parse(text);
  ScenarioOptions options;
  options.shards = 2;
  options.k_paths = 2;
  const ScenarioResult result = scenario.run(options);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.path_cache_stats.invalidations, 1u);
}

TEST(McExplorer, CatchesSkippedEpochRedecide) {
  // Injected mutation A: the controller keeps the stale pre-set_policy
  // verdict when the control epoch moved between dispatch and commit.
  // The mutation is schedule-invariant, so it surfaces as an expectation
  // violation already under the canonical schedule.
  ScenarioOptions base;
  base.config.fault_skip_epoch_redecide = true;
  const Report report = explore(kSetPolicyMidBurst, 2, Mode::kExhaustive,
                                base);
  ASSERT_FALSE(report.ok()) << report.summary();
  EXPECT_TRUE(report.divergence->schedule.empty()) << report.summary();
  EXPECT_NE(report.divergence->detail.find("expectation"), std::string::npos);
}

TEST(McExplorer, HealthyBottleneckCommitOrderIsScheduleInvariant) {
  ScenarioOptions base;
  base.queue_depth = 1;
  base.config.query_both_ends = false;
  const Report report = explore(kBottleneckCommitOrder, 3, Mode::kExhaustive,
                                base);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Three lanes in the contended wave: the canonical run plus all five
  // alternative permutations.
  EXPECT_GE(report.schedules_explored, 6u);
}

TEST(McExplorer, CatchesMergeInArrivalOrder) {
  // Injected mutation B: the simulator merges staged cross-lane commits in
  // modeled arrival (execution) order, so a permuted schedule moves the
  // bottleneck tail-drop onto a different flow.
  ScenarioOptions base;
  base.queue_depth = 1;
  base.config.query_both_ends = false;
  base.fault_merge_arrival_order = true;
  const Report report = explore(kBottleneckCommitOrder, 3, Mode::kExhaustive,
                                base);
  ASSERT_FALSE(report.ok()) << report.summary();
  // The minimized repro is a real reordering (non-empty, non-canonical).
  ASSERT_FALSE(report.divergence->schedule.empty()) << report.summary();
  const mc::WaveChoice& wave = report.divergence->schedule.back();
  std::vector<sim::LaneId> canonical = wave.order;
  std::sort(canonical.begin(), canonical.end());
  EXPECT_NE(wave.order, canonical) << report.summary();
}

TEST(McExplorer, RandomModeCatchesMergeInArrivalOrder) {
  ScenarioOptions base;
  base.queue_depth = 1;
  base.config.query_both_ends = false;
  base.fault_merge_arrival_order = true;
  const Report report = explore(kBottleneckCommitOrder, 3, Mode::kRandom,
                                base);
  EXPECT_FALSE(report.ok()) << report.summary();
}

TEST(McExplorer, DporPrunesCommutingLanes) {
  const Report exhaustive = explore(kDisjointIslands, 2, Mode::kExhaustive);
  const Report dpor = explore(kDisjointIslands, 2, Mode::kDpor);
  EXPECT_TRUE(exhaustive.ok()) << exhaustive.summary();
  EXPECT_TRUE(dpor.ok()) << dpor.summary();
  // Disjoint islands commute: both lane orders fall into one trace class.
  EXPECT_GE(dpor.schedules_pruned, 1u);
  EXPECT_LT(dpor.schedules_explored, exhaustive.schedules_explored);
}

TEST(McExplorer, DporKeepsConflictingLanes) {
  // The bottleneck scenario's lanes all write the same switch, so DPOR
  // must not prune anything — every permutation is its own trace class.
  ScenarioOptions base;
  base.queue_depth = 1;
  base.config.query_both_ends = false;
  const Report exhaustive = explore(kBottleneckCommitOrder, 3,
                                    Mode::kExhaustive, base);
  const Report dpor = explore(kBottleneckCommitOrder, 3, Mode::kDpor, base);
  EXPECT_TRUE(dpor.ok()) << dpor.summary();
  EXPECT_EQ(dpor.schedules_pruned, 0u);
  EXPECT_EQ(dpor.schedules_explored, exhaustive.schedules_explored);
}

/// Keeps every wave canonical while exercising the controller plumbing.
class IdentityController final : public sim::ScheduleController {
 public:
  void plan_wave(sim::SimTime, std::vector<sim::LaneId>&) override {
    ++waves_;
  }
  void on_access(sim::LaneId, const sim::LaneAccess&) override {}
  [[nodiscard]] std::uint64_t waves() const noexcept { return waves_; }

 private:
  std::uint64_t waves_ = 0;
};

TEST(McExplorer, IdentityControllerIsBitIdenticalToUncontrolled) {
  // Attaching a controller that never reorders must not perturb anything:
  // the instrumented (note_access, per-event scoping) run and the plain
  // run produce equivalent results.
  const Scenario scenario = Scenario::parse(kSetPolicyMidBurst);
  ScenarioOptions plain;
  plain.shards = 2;
  const ScenarioResult uncontrolled = scenario.run(plain);

  IdentityController identity;
  ScenarioOptions controlled = plain;
  controlled.schedule_controller = &identity;
  const ScenarioResult result = scenario.run(controlled);

  EXPECT_TRUE(result.equivalent_to(uncontrolled));
  EXPECT_GE(identity.waves(), 1u);
}

}  // namespace
}  // namespace identxx
