// B1 / F1: the Figure 1 flow-setup sequence, quantified.
//
// Measures end-to-end flow setup through the full simulated stack —
// packet-in, ident++ queries to both daemons, policy evaluation, path-wide
// entry installation, buffered-packet release — against the baselines
// (Ethane-style: no queries; vanilla firewall: ACL only) across path
// lengths, plus the DESIGN.md §6 ablations (src-only queries, ingress-only
// install, decision caching).
//
// Two numbers matter per configuration:
//   * wall-clock time/op — how fast the controller implementation is;
//   * sim_setup_us       — the *simulated* latency the end-host observes
//                           (propagation + control channel + daemon RTTs).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "controller/admission.hpp"
#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/verifier.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/parser.hpp"

namespace {

using namespace identxx;

enum class Flavour { kIdentxx, kIdentxxSrcOnly, kIdentxxIngressOnly,
                     kIdentxxIngressOnlyCached, kIdentxxIngressOnlyLru,
                     kEthane, kVanilla };

struct Rig {
  explicit Rig(std::int64_t path_len, Flavour flavour) : flavour_(flavour) {
    std::vector<sim::NodeId> switches;
    for (std::int64_t i = 0; i < path_len; ++i) {
      switches.push_back(net.add_switch("s" + std::to_string(i)));
    }
    client = &net.add_host("client", "10.0.0.1");
    server = &net.add_host("server", "10.0.0.2");
    net.link(*client, switches.front());
    for (std::size_t i = 0; i + 1 < switches.size(); ++i) {
      net.link(switches[i], switches[i + 1]);
    }
    net.link(*server, switches.back());

    const char* policy =
        "block all\npass from any to any port 80 with eq(@src[userID], alice)\n";
    switch (flavour) {
      case Flavour::kIdentxx:
        controller = &net.install_controller(policy);
        break;
      case Flavour::kIdentxxSrcOnly: {
        ctrl::ControllerConfig config;
        config.query_both_ends = false;
        controller = &net.install_controller(policy, config);
        break;
      }
      case Flavour::kIdentxxIngressOnly: {
        ctrl::ControllerConfig config;
        config.install_full_path = false;
        controller = &net.install_controller(policy, config);
        break;
      }
      case Flavour::kIdentxxIngressOnlyCached: {
        ctrl::ControllerConfig config;
        config.install_full_path = false;
        config.decision_cache_ttl = 60 * sim::kSecond;
        controller = &net.install_controller(policy, config);
        break;
      }
      case Flavour::kIdentxxIngressOnlyLru: {
        // Capacity-bounded LRU variant of the decision cache (the pipeline
        // swaps in an LruDecisionCache when a capacity is configured).
        ctrl::ControllerConfig config;
        config.install_full_path = false;
        config.decision_cache_ttl = 60 * sim::kSecond;
        config.decision_cache_capacity = 1024;
        controller = &net.install_controller(policy, config);
        break;
      }
      case Flavour::kEthane:
        net.install_ethane_controller(
            "block all\npass from any to any port 80\n");
        break;
      case Flavour::kVanilla: {
        auto& fw = net.install_vanilla_firewall(false);
        ctrl::VanillaFirewall::AclRule rule;
        rule.dst_port_low = 80;
        rule.dst_port_high = 80;
        rule.allow = true;
        fw.add_rule(rule);
        break;
      }
    }
    client->add_user("alice", "staff");
    pid = client->launch("alice", "/usr/bin/curl");
    server->add_user("www", "daemons");
    const int httpd = server->launch("www", "/usr/sbin/httpd");
    server->listen(httpd, 80);
  }

  /// One full flow setup; returns the simulated setup latency (ns).
  sim::SimTime one_flow() {
    if (flavour_ == Flavour::kEthane || flavour_ == Flavour::kVanilla) {
      // Long runs reuse ephemeral ports; flush the baselines' cached flow
      // entries so every iteration measures a fresh decision.  (The
      // ident++ rigs advance the simulated clock past the idle timeout
      // each iteration, so their entries expire naturally.)
      for (const auto sw : net.switch_ids()) {
        net.switch_at(sw).table().remove_if(
            [](const openflow::FlowEntry& e) { return e.cookie != 0; });
      }
    }
    const sim::SimTime start = net.simulator().now();
    const net::FiveTuple flow = client->connect_flow(pid, server->ip(), 80);
    client->send_flow_packet(flow);
    net.run();
    client->close_flow(flow);
    const sim::SimTime delivered = server->last_delivery_time();
    server->clear_delivered();
    return delivered >= start ? delivered - start : -1;
  }

  core::Network net;
  host::Host* client = nullptr;
  host::Host* server = nullptr;
  ctrl::IdentxxController* controller = nullptr;
  int pid = 0;
  Flavour flavour_;
};

void run_setup_bench(benchmark::State& state, Flavour flavour) {
  Rig rig(state.range(0), flavour);
  double total_sim_us = 0;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    const sim::SimTime latency = rig.one_flow();
    if (latency >= 0) {
      total_sim_us += static_cast<double>(latency) / 1000.0;
      ++delivered;
    }
  }
  state.counters["path_len"] = static_cast<double>(state.range(0));
  state.counters["sim_setup_us"] =
      delivered > 0 ? total_sim_us / static_cast<double>(delivered) : 0;
  state.counters["delivered"] = static_cast<double>(delivered);
  state.SetItemsProcessed(state.iterations());
}

void BM_IdentxxFlowSetup(benchmark::State& state) {
  run_setup_bench(state, Flavour::kIdentxx);
}
BENCHMARK(BM_IdentxxFlowSetup)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_IdentxxSrcOnlyQuery(benchmark::State& state) {
  run_setup_bench(state, Flavour::kIdentxxSrcOnly);
}
BENCHMARK(BM_IdentxxSrcOnlyQuery)->Arg(4);

void BM_IdentxxIngressOnlyInstall(benchmark::State& state) {
  run_setup_bench(state, Flavour::kIdentxxIngressOnly);
}
BENCHMARK(BM_IdentxxIngressOnlyInstall)->Arg(4);

void BM_IdentxxIngressOnlyWithDecisionCache(benchmark::State& state) {
  run_setup_bench(state, Flavour::kIdentxxIngressOnlyCached);
}
BENCHMARK(BM_IdentxxIngressOnlyWithDecisionCache)->Arg(4);

void BM_IdentxxIngressOnlyWithLruCache(benchmark::State& state) {
  run_setup_bench(state, Flavour::kIdentxxIngressOnlyLru);
}
BENCHMARK(BM_IdentxxIngressOnlyWithLruCache)->Arg(4);

void BM_EthaneFlowSetup(benchmark::State& state) {
  run_setup_bench(state, Flavour::kEthane);
}
BENCHMARK(BM_EthaneFlowSetup)->Arg(1)->Arg(4)->Arg(8);

void BM_VanillaFlowSetup(benchmark::State& state) {
  run_setup_bench(state, Flavour::kVanilla);
}
BENCHMARK(BM_VanillaFlowSetup)->Arg(1)->Arg(4)->Arg(8);

/// Batch-verify flavour of the flow-setup bench: `range(0)` clients all run
/// the same signed application, and every iteration launches one flow per
/// client *simultaneously*, so the attestations land on the controller
/// together.  Each flow's admission evaluates the Fig-5-style verify()
/// predicate; the per-key comb table (built once at policy load) plus the
/// verification memo mean one batch costs ~one signature verification
/// total instead of one per flow.
void BM_IdentxxFlowSetupBatchVerify(benchmark::State& state) {
  const std::int64_t kClients = state.range(0);
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& server = net.add_host("server", "10.0.1.1");
  net.link(server, s1);

  const crypto::PrivateKey vendor = crypto::PrivateKey::from_seed("vendor");
  const std::string exe = "/usr/bin/app";
  const std::string requirements = "pass from any to any port 80";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  const crypto::Signature req_sig = vendor.sign(
      proto::signed_message({exe_hash, "app", requirements}));
  net.install_controller(
      "dict <pubkeys> { vendor : " + vendor.public_key().to_hex() + " }\n"
      "block all\n"
      "pass from any to any port 80 with verify(@src[req-sig], "
      "@pubkeys[vendor], @src[exe-hash], @src[app-name], "
      "@src[requirements])\n");
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/usr/sbin/httpd");
  server.listen(srv, 80);

  std::vector<host::Host*> clients;
  std::vector<int> pids;
  for (std::int64_t i = 0; i < kClients; ++i) {
    auto& c = net.add_host("c" + std::to_string(i),
                           "10.0.0." + std::to_string(i + 1));
    net.link(c, s1);
    c.add_user("u", "users");
    const int pid = c.launch("u", exe);
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = {{"name", "app"},
                 {"requirements", requirements},
                 {"req-sig", req_sig.to_hex()}};
    config.apps.push_back(app);
    c.daemon().add_config(proto::ConfigTrust::kUser, config);
    clients.push_back(&c);
    pids.push_back(pid);
  }

  std::int64_t delivered = 0;
  for (auto _ : state) {
    std::vector<net::FiveTuple> flows;
    flows.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const net::FiveTuple flow =
          clients[i]->connect_flow(pids[i], server.ip(), 80);
      clients[i]->send_flow_packet(flow);
      flows.push_back(flow);
    }
    net.run();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      clients[i]->close_flow(flows[i]);
    }
    delivered += static_cast<std::int64_t>(server.delivered().size());
    server.clear_delivered();
  }
  state.counters["batch_size"] = static_cast<double>(kClients);
  state.counters["delivered"] = static_cast<double>(delivered);
  state.SetItemsProcessed(state.iterations() * kClients);
}
BENCHMARK(BM_IdentxxFlowSetupBatchVerify)->Arg(1)->Arg(8)->Arg(32);

/// Sharded admission domains (DESIGN.md §10): `range(0)` shards driven by
/// `range(1)` workers admit a 32-flow burst whose per-flow cost is one
/// full Schnorr verification (every client carries a *distinct* signed
/// attestation, and the verification memos are reset between iterations,
/// outside the timed region).  All bursts land at the same virtual
/// instant, so the per-domain decide batches execute in one parallel wave
/// — wall-clock throughput should scale with min(shards, workers) while
/// the simulated latency and verdicts stay bit-identical to 1/1.
void BM_ShardedFlowSetup(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  const auto workers = static_cast<std::uint32_t>(state.range(1));
  constexpr std::int64_t kClients = 32;

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& server = net.add_host("server", "10.0.1.1");
  net.link(server, s1);

  const crypto::PrivateKey vendor = crypto::PrivateKey::from_seed("vendor");
  const std::string exe = "/usr/bin/app";
  const std::string requirements = "pass from any to any port 80";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  auto& sharded = net.install_sharded_controller(
      "dict <pubkeys> { vendor : " + vendor.public_key().to_hex() + " }\n"
      "block all\n"
      "pass from any to any port 80 with verify(@src[req-sig], "
      "@pubkeys[vendor], @src[exe-hash], @src[app-name], "
      "@src[requirements])\n",
      shards, workers);
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/usr/sbin/httpd");
  server.listen(srv, 80);

  std::vector<host::Host*> clients;
  std::vector<int> pids;
  for (std::int64_t i = 0; i < kClients; ++i) {
    auto& c = net.add_host("c" + std::to_string(i),
                           "10.0.0." + std::to_string(i + 1));
    net.link(c, s1);
    c.add_user("u", "users");
    const int pid = c.launch("u", exe);
    // Fixed-width names keep every daemon response byte-identical in
    // length, so all responses arrive in the same virtual-clock wave and
    // the shard lanes fill together.
    char name[8];
    std::snprintf(name, sizeof name, "app%02d", static_cast<int>(i));
    const crypto::Signature sig =
        vendor.sign(proto::signed_message({exe_hash, name, requirements}));
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = {{"name", name},
                 {"requirements", requirements},
                 {"req-sig", sig.to_hex()}};
    config.apps.push_back(app);
    c.daemon().add_config(proto::ConfigTrust::kUser, config);
    clients.push_back(&c);
    pids.push_back(pid);
  }

  std::int64_t delivered = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Reset each domain's verification memo (generation bump) so every
    // iteration pays full verifications; the comb-table rebuild happens
    // here, outside the timed region.
    for (std::uint32_t d = 0; d < sharded.shard_count(); ++d) {
      auto* engine = dynamic_cast<ctrl::PolicyDecisionEngine*>(
          &sharded.domain(d).decision_engine());
      if (engine != nullptr && engine->verifier() != nullptr) {
        engine->verifier()->invalidate_key(vendor.public_key());
        engine->verifier()->register_key(vendor.public_key());
      }
    }
    state.ResumeTiming();

    std::vector<net::FiveTuple> flows;
    flows.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const net::FiveTuple flow =
          clients[i]->connect_flow(pids[i], server.ip(), 80);
      clients[i]->send_flow_packet(flow);
      flows.push_back(flow);
    }
    net.run();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      clients[i]->close_flow(flows[i]);
    }
    delivered += static_cast<std::int64_t>(server.delivered().size());
    server.clear_delivered();
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["delivered"] = static_cast<double>(delivered);
  state.SetItemsProcessed(state.iterations() * kClients);
}
BENCHMARK(BM_ShardedFlowSetup)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->UseRealTime();

/// Decision caching ablation, part 1: packets of an established flow ride
/// the installed entries (no controller involvement).
void BM_CachedForwarding(benchmark::State& state) {
  Rig rig(state.range(0), Flavour::kIdentxx);
  const net::FiveTuple flow = rig.client->connect_flow(rig.pid,
                                                       rig.server->ip(), 80);
  rig.client->send_flow_packet(flow);
  rig.net.run();  // set up once
  double total_sim_us = 0;
  for (auto _ : state) {
    const sim::SimTime start = rig.net.simulator().now();
    rig.client->send_flow_packet(flow, "payload", net::TcpFlags::kPsh);
    rig.net.run();
    total_sim_us +=
        static_cast<double>(rig.server->last_delivery_time() - start) / 1000.0;
    rig.server->clear_delivered();
  }
  state.counters["path_len"] = static_cast<double>(state.range(0));
  state.counters["sim_fwd_us"] =
      total_sim_us / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedForwarding)->Arg(1)->Arg(4)->Arg(8);

/// Decision caching ablation, part 2: revoke installed entries before each
/// packet, forcing a full re-decision (queries and all) every time.
void BM_UncachedEveryPacket(benchmark::State& state) {
  Rig rig(state.range(0), Flavour::kIdentxx);
  const net::FiveTuple flow = rig.client->connect_flow(rig.pid,
                                                       rig.server->ip(), 80);
  rig.client->send_flow_packet(flow);
  rig.net.run();
  double total_sim_us = 0;
  for (auto _ : state) {
    rig.controller->revoke_all();
    const sim::SimTime start = rig.net.simulator().now();
    rig.client->send_flow_packet(flow, "payload", net::TcpFlags::kPsh);
    rig.net.run();
    total_sim_us +=
        static_cast<double>(rig.server->last_delivery_time() - start) / 1000.0;
    rig.server->clear_delivered();
  }
  state.counters["path_len"] = static_cast<double>(state.range(0));
  state.counters["sim_fwd_us"] =
      total_sim_us / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UncachedEveryPacket)->Arg(4);

/// Negative-cache ablation: with drop entries installed, retries of a
/// blocked flow die in the switch; without them every retry re-runs the
/// whole decision (queries included) at the controller.
void run_blocked_retry_bench(benchmark::State& state, bool install_drops) {
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);
  ctrl::ControllerConfig config;
  config.install_drop_entries = install_drops;
  auto& controller = net.install_controller("block all\n", config);
  client.add_user("eve", "users");
  const int pid = client.launch("eve", "/bin/flood");
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/bin/srv");
  server.listen(srv, 80);

  const net::FiveTuple flow = client.connect_flow(pid, server.ip(), 80);
  client.send_flow_packet(flow);
  net.run();  // first decision (blocked)
  for (auto _ : state) {
    client.send_flow_packet(flow, "retry");
    net.run();
  }
  state.counters["controller_packet_ins"] =
      static_cast<double>(controller.stats().packet_ins);
  state.SetItemsProcessed(state.iterations());
}

void BM_BlockedRetryWithDropEntries(benchmark::State& state) {
  run_blocked_retry_bench(state, true);
}
BENCHMARK(BM_BlockedRetryWithDropEntries);

void BM_BlockedRetryNoDropEntries(benchmark::State& state) {
  run_blocked_retry_bench(state, false);
}
BENCHMARK(BM_BlockedRetryNoDropEntries);

/// Rule-cache aggregation ablation: a port scan (one source walking dst
/// ports) against `block all`.  Per-flow exact installs pay one controller
/// round trip AND one table entry per probe; the aggregating strategy
/// caches the covering rule once and the rest of the scan dies in the
/// switch.  Counters: flow_entries = drop entries installed at the ingress
/// switch, packet_ins = probes that reached the controller.
void run_port_scan_bench(benchmark::State& state, bool aggregate) {
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& attacker = net.add_host("attacker", "10.0.0.66");
  auto& victim = net.add_host("victim", "10.0.0.2");
  net.link(attacker, s1);
  net.link(victim, s1);
  ctrl::ControllerConfig config;
  config.aggregate_installs = aggregate;
  config.flow_idle_timeout = 0;  // entries persist across the whole scan
  auto& controller = net.install_controller("block all\n", config);
  attacker.add_user("eve", "users");
  const int pid = attacker.launch("eve", "/bin/scan");

  std::uint16_t port = 1;
  for (auto _ : state) {
    net.start_flow(attacker, pid, "10.0.0.2", port);
    net.run();
    port = static_cast<std::uint16_t>(port == 65535 ? 1 : port + 1);
  }
  std::size_t entries = 0;
  for (const auto& entry : net.switch_at(s1).table().entries()) {
    if (entry.cookie != 0) ++entries;
  }
  state.counters["flow_entries"] = static_cast<double>(entries);
  state.counters["packet_ins"] =
      static_cast<double>(controller.stats().packet_ins);
  state.SetItemsProcessed(state.iterations());
}

void BM_PortScanPerFlowInstall(benchmark::State& state) {
  run_port_scan_bench(state, false);
}
BENCHMARK(BM_PortScanPerFlowInstall);

void BM_PortScanAggregatedInstall(benchmark::State& state) {
  run_port_scan_bench(state, true);
}
BENCHMARK(BM_PortScanAggregatedInstall);

/// Topology::path memoization ablation: the exact query the controller
/// issues per admission, repeated over a fixed attachment pair (the
/// steady-state shape — most admissions share few (src,dst) switch pairs).
void run_path_query_bench(benchmark::State& state, bool cached) {
  core::Network net;
  std::vector<sim::NodeId> switches;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    switches.push_back(net.add_switch("s" + std::to_string(i)));
  }
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, switches.front());
  for (std::size_t i = 0; i + 1 < switches.size(); ++i) {
    net.link(switches[i], switches[i + 1]);
  }
  net.link(server, switches.back());
  net.topology().set_path_cache_enabled(cached);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.topology().path(client.id(), server.id()));
  }
  state.counters["path_len"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(state.iterations());
}

void BM_PathQueryUncachedBfs(benchmark::State& state) {
  run_path_query_bench(state, false);
}
BENCHMARK(BM_PathQueryUncachedBfs)->Arg(2)->Arg(8)->Arg(32);

void BM_PathQueryCached(benchmark::State& state) {
  run_path_query_bench(state, true);
}
BENCHMARK(BM_PathQueryCached)->Arg(2)->Arg(8)->Arg(32);

/// The DecisionEngine's batched entry point in isolation: decide_many over
/// a packet-in storm where `dup_factor` contexts repeat each 5-tuple (the
/// shape a shared query deadline produces).  The batch memo evaluates each
/// distinct flow once, so time/op should scale with unique flows, not
/// contexts.
void BM_DecideManyBatch(benchmark::State& state) {
  ctrl::PolicyDecisionEngine engine(pf::parse(
      "block all\npass from any to any port 80\n"
      "pass from any to any port 443\n",
      "bench"));
  const std::int64_t unique = state.range(0);
  const std::int64_t dup_factor = state.range(1);
  std::vector<ctrl::AdmissionContext> contexts;
  contexts.reserve(static_cast<std::size_t>(unique * dup_factor));
  for (std::int64_t i = 0; i < unique; ++i) {
    ctrl::AdmissionContext ctx;
    ctx.flow.src_ip = net::Ipv4Address{0x0a000001u + static_cast<std::uint32_t>(i)};
    ctx.flow.dst_ip = net::Ipv4Address{0xc0a80101u};
    ctx.flow.proto = net::IpProto::kTcp;
    ctx.flow.src_port = static_cast<std::uint16_t>(20000 + i);
    ctx.flow.dst_port = (i % 2) == 0 ? 80 : 23;
    for (std::int64_t d = 0; d < dup_factor; ++d) contexts.push_back(ctx);
  }
  std::vector<const ctrl::AdmissionContext*> batch;
  batch.reserve(contexts.size());
  for (const auto& ctx : contexts) batch.push_back(&ctx);

  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide_many(batch));
  }
  state.counters["unique_flows"] = static_cast<double>(unique);
  state.counters["batch_size"] = static_cast<double>(batch.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_DecideManyBatch)
    ->Args({16, 1})
    ->Args({16, 8})
    ->Args({256, 1})
    ->Args({256, 8});

}  // namespace

BENCHMARK_MAIN();
