// B3: switch flow-table performance — the datapath cost that caching
// controller decisions (Figure 1 step 4) relies on.  Sweeps table
// occupancy for the exact-match hit path, miss path, and the wildcard
// scan, plus insert/evict throughput at capacity.

#include <benchmark/benchmark.h>

#include "openflow/flow_table.hpp"
#include "openflow/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace identxx;
using openflow::FlowEntry;
using openflow::FlowMatch;
using openflow::FlowTable;

net::TenTuple tuple_for(std::uint64_t i) {
  net::TenTuple t;
  t.in_port = static_cast<std::uint16_t>(1 + (i % 4));
  t.src_mac = net::MacAddress::for_node(static_cast<std::uint32_t>(i % 1000));
  t.dst_mac = net::MacAddress::for_node(static_cast<std::uint32_t>(i % 997));
  t.src_ip = net::Ipv4Address(static_cast<std::uint32_t>(0x0a000000 + i));
  t.dst_ip = net::Ipv4Address(static_cast<std::uint32_t>(0xc0a80000 + i * 7));
  t.proto = net::IpProto::kTcp;
  t.src_port = static_cast<std::uint16_t>(1024 + (i % 50000));
  t.dst_port = 80;
  return t;
}

void fill_exact(FlowTable& table, std::int64_t entries) {
  for (std::int64_t i = 0; i < entries; ++i) {
    FlowEntry entry;
    entry.match = FlowMatch::exact(tuple_for(static_cast<std::uint64_t>(i)));
    entry.action = openflow::OutputAction{{2}};
    table.insert(entry, 0);
  }
}

void BM_ExactLookupHit(benchmark::State& state) {
  FlowTable table(1 << 20);
  fill_exact(table, state.range(0));
  util::SplitMix64 rng(1);
  for (auto _ : state) {
    const auto i = rng.next_below(static_cast<std::uint64_t>(state.range(0)));
    benchmark::DoNotOptimize(table.lookup(tuple_for(i), 1, 100));
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ExactLookupHit)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_LookupMiss(benchmark::State& state) {
  FlowTable table(1 << 20);
  fill_exact(table, state.range(0));
  util::SplitMix64 rng(2);
  for (auto _ : state) {
    // Tuples outside the inserted range: guaranteed miss.
    const auto i = static_cast<std::uint64_t>(state.range(0)) + 1 +
                   rng.next_below(1000);
    benchmark::DoNotOptimize(table.lookup(tuple_for(i), 1, 100));
  }
}
BENCHMARK(BM_LookupMiss)->Arg(1024)->Arg(65536);

void BM_WildcardScan(benchmark::State& state) {
  // Wildcard entries spread over 100 priorities.  Pre-bucketing this was a
  // linear scan over every entry; now it costs one hash probe per
  // (priority bucket × shape), independent of entries per bucket.
  FlowTable table(1 << 20);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    FlowEntry entry;
    entry.match.wildcards = openflow::without(openflow::Wildcard::kAll,
                                              openflow::Wildcard::kDstPort);
    entry.match.dst_port = static_cast<std::uint16_t>(i + 1000);
    entry.priority = static_cast<std::uint16_t>(i % 100);
    entry.action = openflow::DropAction{};
    table.insert(entry, 0);
  }
  // Target matches the last-inserted port (worst case for a scan: under
  // the bucketed layout only the match's own bucket probe can hit).
  net::TenTuple target = tuple_for(0);
  target.dst_port = static_cast<std::uint16_t>(1000 + state.range(0) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(target, 1, 100));
  }
}
BENCHMARK(BM_WildcardScan)->Arg(16)->Arg(128)->Arg(1024);

void BM_WildcardAggregatedTable(benchmark::State& state) {
  // The aggregated rule-cache shape: many covering entries at ONE
  // priority and one shape (e.g. thousands of (dst_ip, dst_port) covers
  // installed by AggregatingInstallStrategy).  Lookup is a single hash
  // probe regardless of occupancy — O(buckets), not O(entries).
  FlowTable table(1 << 20);
  const auto entries = state.range(0);
  for (std::int64_t i = 0; i < entries; ++i) {
    FlowEntry entry;
    entry.match.wildcards = openflow::without(
        openflow::Wildcard::kAll,
        openflow::Wildcard::kDstIp | openflow::Wildcard::kDstPort);
    entry.match.dst_ip =
        net::Ipv4Address(static_cast<std::uint32_t>(0xc0a80000 + i));
    entry.match.dst_port = 80;
    entry.priority = 100;
    entry.action = openflow::OutputAction{{2}};
    table.insert(entry, 0);
  }
  util::SplitMix64 rng(3);
  for (auto _ : state) {
    const auto i = rng.next_below(static_cast<std::uint64_t>(entries));
    net::TenTuple target = tuple_for(i);
    target.dst_ip = net::Ipv4Address(static_cast<std::uint32_t>(0xc0a80000 + i));
    target.dst_port = 80;
    benchmark::DoNotOptimize(table.lookup(target, 1, 100));
  }
  state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_WildcardAggregatedTable)->Arg(64)->Arg(1024)->Arg(16384);

void BM_InsertWithEviction(benchmark::State& state) {
  FlowTable table(static_cast<std::size_t>(state.range(0)));
  fill_exact(table, state.range(0));  // at capacity: every insert evicts
  std::uint64_t i = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    FlowEntry entry;
    entry.match = FlowMatch::exact(tuple_for(i++));
    entry.action = openflow::DropAction{};
    table.insert(entry, static_cast<sim::SimTime>(i));
  }
}
BENCHMARK(BM_InsertWithEviction)->Arg(1024)->Arg(8192);

void BM_ExpireSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    FlowTable table(1 << 20);
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      FlowEntry entry;
      entry.match = FlowMatch::exact(tuple_for(static_cast<std::uint64_t>(i)));
      entry.idle_timeout = 10;
      table.insert(entry, 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.expire(100));
  }
}
BENCHMARK(BM_ExpireSweep)->Arg(1024)->Arg(16384);

// ---- OpenFlow 1.0 wire codec (control-channel encoding costs) ----

void BM_OfEncodeFlowMod(benchmark::State& state) {
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple_for(7));
  entry.priority = 100;
  entry.idle_timeout = 60 * sim::kSecond;
  entry.action = openflow::OutputAction{{3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(openflow::wire::encode_flow_mod(entry, 1));
  }
}
BENCHMARK(BM_OfEncodeFlowMod);

void BM_OfDecodeFlowMod(benchmark::State& state) {
  FlowEntry entry;
  entry.match = FlowMatch::exact(tuple_for(7));
  entry.action = openflow::OutputAction{{3}};
  const auto bytes = openflow::wire::encode_flow_mod(entry, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(openflow::wire::decode_flow_mod(bytes));
  }
}
BENCHMARK(BM_OfDecodeFlowMod);

void BM_OfPacketInRoundTrip(benchmark::State& state) {
  openflow::PacketIn msg;
  msg.switch_id = 1;
  msg.in_port = 2;
  msg.packet = net::make_tcp_packet(
      net::MacAddress::for_node(1), net::MacAddress::for_node(2),
      net::Ipv4Address(0x0a000001), net::Ipv4Address(0x0a000002), 1000, 80,
      std::string(static_cast<std::size_t>(state.range(0)), 'x'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        openflow::wire::decode_packet_in(openflow::wire::encode_packet_in(msg, 1)));
  }
  state.counters["payload_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_OfPacketInRoundTrip)->Arg(64)->Arg(512)->Arg(1400);

}  // namespace

BENCHMARK_MAIN();
