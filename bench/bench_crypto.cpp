// B5: crypto substrate costs — SHA-256 over message sizes, Schnorr keygen/
// sign/verify, and the full PF+=2 `verify()` predicate as used by the
// delegation rules (Figs 5/7).  These bound how expensive authenticated
// delegation is per flow-setup.

#include <benchmark/benchmark.h>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/eval.hpp"
#include "pf/parser.hpp"

namespace {

using namespace identxx;

void BM_Sha256(benchmark::State& state) {
  const std::string message(static_cast<std::size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_SchnorrKeygen(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::PrivateKey::from_seed("seed-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_SchnorrKeygen);

void BM_SchnorrSign(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const std::string message(256, 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(message));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const std::string message(256, 'm');
  const crypto::Signature sig = key.sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(key.public_key(), message, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

/// The whole Fig 5-style predicate: verify(@dst[req-sig], @pubkeys[k], ...)
/// evaluated through the policy engine.
void BM_PolicyVerifyPredicate(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("research");
  const std::string requirements = "block all pass all";
  const std::string exe_hash(64, 'a');
  const crypto::Signature sig =
      key.sign(proto::signed_message({exe_hash, "app", requirements}));

  proto::Response response;
  proto::Section section;
  section.add("exe-hash", exe_hash);
  section.add("app-name", "app");
  section.add("requirements", requirements);
  section.add("req-sig", sig.to_hex());
  response.append_section(section);

  pf::FlowContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("10.0.0.2");
  ctx.dst = proto::ResponseDict(response);

  const pf::PolicyEngine engine(pf::parse(
      "dict <pubkeys> { research : " + key.public_key().to_hex() + " }\n"
      "block all\n"
      "pass all with verify(@dst[req-sig], @pubkeys[research], "
      "@dst[exe-hash], @dst[app-name], @dst[requirements])\n"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx).allowed());
  }
}
BENCHMARK(BM_PolicyVerifyPredicate);

}  // namespace

BENCHMARK_MAIN();
