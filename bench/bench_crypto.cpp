// B5: crypto substrate costs — SHA-256 over message sizes, Schnorr keygen/
// sign/verify, and the full PF+=2 `verify()` predicate as used by the
// delegation rules (Figs 5/7).  These bound how expensive authenticated
// delegation is per flow-setup.
//
// The fast-path flavours (DESIGN.md §9): BM_SchnorrVerifyPrecomputed
// (per-key comb table, no doubling chain), BM_SchnorrVerifyColdKeys (keys
// never seen twice — the no-precomputation floor), BM_EcMulAdd* (fused
// Shamir double-scalar vs two full multiplications), BM_ScalarReduce*
// (folding reduction mod n vs binary long division), and
// BM_SchnorrVerifierMemoHit (the controller-layer verification memo).

#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/ct_sign.hpp"
#include "crypto/hmac.hpp"
#include "crypto/key_tier.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verifier.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/eval.hpp"
#include "pf/parser.hpp"

namespace {

using namespace identxx;

void BM_Sha256(benchmark::State& state) {
  const std::string message(static_cast<std::size_t>(state.range(0)), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_SchnorrKeygen(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::PrivateKey::from_seed("seed-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_SchnorrKeygen);

void BM_SchnorrSign(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const std::string message(256, 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(message));
  }
}
BENCHMARK(BM_SchnorrSign);

/// The constant-time kernel called directly (what sign() runs since the
/// timing-leak hardening, DESIGN.md §16): fixed-window comb over complete
/// additions, masked reductions, one ct field inversion.
void BM_SchnorrSignCt(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const std::string message(256, 'm');
  const auto msg = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ct::schnorr_sign_ct<std::uint64_t>(
        key.scalar(), key.public_key().point, msg));
  }
}
BENCHMARK(BM_SchnorrSignCt);

/// The pre-hardening variable-time signing shape (wNAF nonce multiply,
/// branchy reductions), reassembled from the public primitives.  The
/// constant-time budget is BM_SchnorrSignCt <= 3x this baseline.
void BM_SchnorrSignVartime(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const crypto::U256 d = key.scalar();
  const crypto::PublicKey pub = key.public_key();
  const std::string message(256, 'm');
  const auto msg = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size());
  const auto d_bytes = d.to_bytes();
  for (auto _ : state) {
    crypto::Signature sig{};
    for (std::uint8_t counter = 0;; ++counter) {
      crypto::Sha256 h;
      h.update(msg);
      h.update(std::span(&counter, 1));
      const crypto::Digest msg_digest = h.finish();
      const crypto::Digest k_digest = crypto::hmac_sha256(
          std::span<const std::uint8_t>(d_bytes.data(), d_bytes.size()),
          std::span<const std::uint8_t>(msg_digest.data(), msg_digest.size()));
      const crypto::U256 k = crypto::sn_reduce(crypto::U256::from_bytes(
          std::span<const std::uint8_t, 32>(k_digest)));
      if (k.is_zero()) continue;
      const crypto::AffinePoint r = crypto::ec_mul_base(k).to_affine();
      const crypto::U256 e = crypto::schnorr_challenge(r, pub.point, msg);
      sig = crypto::Signature{r, crypto::sn_add(k, crypto::sn_mul(e, d))};
      break;
    }
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_SchnorrSignVartime);

void BM_SchnorrVerify(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const std::string message(256, 'm');
  const crypto::Signature sig = key.sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(key.public_key(), message, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

/// Verification against a key whose comb table was built at registration:
/// the per-daemon-key steady state on the flow-setup hot path.
void BM_SchnorrVerifyPrecomputed(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const crypto::PrecomputedPublicKey pre(key.public_key());
  const std::string message(256, 'm');
  const crypto::Signature sig = key.sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(pre, message, sig));
  }
}
BENCHMARK(BM_SchnorrVerifyPrecomputed);

/// Verification floor with NO per-key amortization: a pool of keys larger
/// than the shared table cache, so every verify runs the fused Shamir pass
/// from scratch.
void BM_SchnorrVerifyColdKeys(benchmark::State& state) {
  struct Case {
    crypto::PublicKey key;
    crypto::Signature sig;
  };
  std::vector<Case> cases;
  const std::string message(256, 'm');
  for (int i = 0; i < 256; ++i) {
    const crypto::PrivateKey key =
        crypto::PrivateKey::from_seed("cold-" + std::to_string(i));
    cases.push_back(Case{key.public_key(), key.sign(message)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Case& c = cases[i++ % cases.size()];
    benchmark::DoNotOptimize(crypto::verify(c.key, message, c.sig));
  }
}
BENCHMARK(BM_SchnorrVerifyColdKeys);

/// The GLV cold-key floor in isolation: verify_tiered with no tables at
/// all runs a*G + b*P through the endomorphism split — four half-length
/// scalar streams on one ~130-double chain (DESIGN.md §15).
void BM_SchnorrVerifyColdKeyGLV(benchmark::State& state) {
  struct Case {
    crypto::PublicKey key;
    crypto::Signature sig;
  };
  std::vector<Case> cases;
  const std::string message(256, 'm');
  const auto bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), message.size());
  for (int i = 0; i < 256; ++i) {
    const crypto::PrivateKey key =
        crypto::PrivateKey::from_seed("glv-cold-" + std::to_string(i));
    cases.push_back(Case{key.public_key(), key.sign(message)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Case& c = cases[i++ % cases.size()];
    benchmark::DoNotOptimize(crypto::verify_tiered(c.key, /*hot=*/nullptr,
                                                   /*warm=*/nullptr, bytes,
                                                   c.sig));
  }
}
BENCHMARK(BM_SchnorrVerifyColdKeyGLV);

/// Batch verification of N distinct attestations from a small principal
/// pool (a decide_many burst: a handful of daemons attest many flows).
/// One random-linear-combination MSM settles the whole batch; compare
/// time/N against BM_SchnorrVerifyPrecomputed for the per-item speedup.
/// The pool keys register eager-hot (default tier budget) — a decide_many
/// burst comes from registered daemons, so their key terms ride the
/// chain-free comb walk and only the 64-bit R-term streams set the shared
/// doubling-chain length.  A memo of capacity 1 keeps every iteration's
/// lookups missing.
void BM_SchnorrBatchVerify(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPrincipals = 4;
  constexpr std::size_t kBatchPool = 8;

  std::vector<crypto::PrivateKey> keys;
  for (std::size_t i = 0; i < kPrincipals; ++i) {
    keys.push_back(crypto::PrivateKey::from_seed("batch-" + std::to_string(i)));
  }
  std::vector<std::string> messages;
  std::vector<std::vector<crypto::SchnorrVerifier::BatchItem>> batches(
      kBatchPool);
  messages.reserve(kBatchPool * n);
  for (std::size_t b = 0; b < kBatchPool; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      const crypto::PrivateKey& key = keys[i % keys.size()];
      messages.push_back("attestation-" + std::to_string(b) + "-" +
                         std::to_string(i));
      batches[b].push_back(crypto::SchnorrVerifier::BatchItem{
          key.public_key(), messages.back(), key.sign(messages.back())});
    }
  }

  crypto::SchnorrVerifier verifier(/*memo_capacity=*/1);
  for (const auto& key : keys) verifier.register_key(key.public_key());

  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify_batch(batches[b++ % kBatchPool]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchnorrBatchVerify)->Arg(2)->Arg(8)->Arg(64);

/// The key-tier budget sweep: 256 registered principals verified
/// round-robin under a budget that holds (0) no tables — per-call GLV,
/// (1) a warm GLV table per key, (2) a hot comb table per key.  The memo
/// is capacity 1 so every verification runs the group arithmetic.
void BM_SchnorrVerifyTierSweep(benchmark::State& state) {
  constexpr std::size_t kKeys = 256;
  struct Case {
    crypto::PublicKey key;
    crypto::Signature sig;
  };
  crypto::KeyTierConfig tier_config;
  switch (state.range(0)) {
    case 0:
      tier_config.table_budget_bytes = 0;
      state.SetLabel("cold");
      break;
    case 1:
      tier_config.table_budget_bytes =
          kKeys * crypto::KeyTierStore::warm_table_bytes();
      tier_config.warm_after = 1;
      tier_config.hot_after = ~0ULL;  // never hot: isolate the warm tier
      state.SetLabel("warm");
      break;
    default:
      tier_config.table_budget_bytes =
          kKeys * crypto::KeyTierStore::hot_table_bytes();
      tier_config.warm_after = 1;
      tier_config.hot_after = 1;
      state.SetLabel("hot");
      break;
  }
  crypto::SchnorrVerifier verifier(/*memo_capacity=*/1, tier_config);
  std::vector<Case> cases;
  const std::string message(256, 'm');
  for (std::size_t i = 0; i < kKeys; ++i) {
    const crypto::PrivateKey key =
        crypto::PrivateKey::from_seed("tier-" + std::to_string(i));
    verifier.register_key(key.public_key());
    cases.push_back(Case{key.public_key(), key.sign(message)});
  }
  // Pre-warm: every key crosses its promotion threshold before timing.
  for (const Case& c : cases) {
    benchmark::DoNotOptimize(verifier.verify(c.key, message, c.sig));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Case& c = cases[i++ % cases.size()];
    benchmark::DoNotOptimize(verifier.verify(c.key, message, c.sig));
  }
  state.counters["table_mb"] =
      static_cast<double>(verifier.tiers().table_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_SchnorrVerifyTierSweep)->Arg(0)->Arg(1)->Arg(2);

/// The controller-layer verification memo: byte-identical attestations
/// (retransmissions, one app's flows in a batch) cost a hash + LRU probe.
void BM_SchnorrVerifierMemoHit(benchmark::State& state) {
  crypto::SchnorrVerifier verifier;
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  verifier.register_key(key.public_key());
  const std::string message(256, 'm');
  const crypto::Signature sig = key.sign(message);
  benchmark::DoNotOptimize(verifier.verify(key.public_key(), message, sig));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(key.public_key(), message, sig));
  }
}
BENCHMARK(BM_SchnorrVerifierMemoHit);

/// Fused a*G + b*P (one Shamir-interleaved wNAF pass) ...
void BM_EcMulAdd(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const crypto::AffinePoint p = key.public_key().point;
  const crypto::U256 a = crypto::hash_to_scalar(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("a"), 1));
  const crypto::U256 b = crypto::hash_to_scalar(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("b"), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ec_mul_add(a, b, p));
  }
}
BENCHMARK(BM_EcMulAdd);

/// ... versus the pre-fusion shape: two full multiplications plus an add.
void BM_EcMulAddTwoMuls(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  const crypto::AffinePoint p = key.public_key().point;
  const crypto::U256 a = crypto::hash_to_scalar(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("a"), 1));
  const crypto::U256 b = crypto::hash_to_scalar(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("b"), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::ec_add(crypto::ec_mul(a, crypto::AffinePoint::generator()),
                       crypto::ec_mul(b, p)));
  }
}
BENCHMARK(BM_EcMulAddTwoMuls);

/// Scalar reduction mod n: specialized folding vs generic long division.
void BM_ScalarReduceFast(benchmark::State& state) {
  crypto::U512 wide;
  for (std::size_t i = 0; i < 8; ++i) wide.w[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sn_reduce(wide));
  }
}
BENCHMARK(BM_ScalarReduceFast);

void BM_ScalarReduceGeneric(benchmark::State& state) {
  crypto::U512 wide;
  for (std::size_t i = 0; i < 8; ++i) wide.w[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::mod(wide, crypto::Secp256k1::n()));
  }
}
BENCHMARK(BM_ScalarReduceGeneric);

/// The whole Fig 5-style predicate: verify(@dst[req-sig], @pubkeys[k], ...)
/// evaluated through the policy engine.
void BM_PolicyVerifyPredicate(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("research");
  const std::string requirements = "block all pass all";
  const std::string exe_hash(64, 'a');
  const crypto::Signature sig =
      key.sign(proto::signed_message({exe_hash, "app", requirements}));

  proto::Response response;
  proto::Section section;
  section.add("exe-hash", exe_hash);
  section.add("app-name", "app");
  section.add("requirements", requirements);
  section.add("req-sig", sig.to_hex());
  response.append_section(section);

  pf::FlowContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("10.0.0.1");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("10.0.0.2");
  ctx.dst = proto::ResponseDict(response);

  const pf::PolicyEngine engine(pf::parse(
      "dict <pubkeys> { research : " + key.public_key().to_hex() + " }\n"
      "block all\n"
      "pass all with verify(@dst[req-sig], @pubkeys[research], "
      "@dst[exe-hash], @dst[app-name], @dst[requirements])\n"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx).allowed());
  }
}
BENCHMARK(BM_PolicyVerifyPredicate);

}  // namespace

BENCHMARK_MAIN();
