// B4: ident++ wire format costs — serialize/parse for queries and for
// responses with 1..8 sections x 1..64 pairs, plus dictionary construction
// and lookup (latest-wins vs *-concatenation ablation, DESIGN.md §6).

#include <benchmark/benchmark.h>

#include "identxx/dict.hpp"
#include "identxx/wire.hpp"

namespace {

using namespace identxx;

proto::Response make_response(int sections, int pairs_per_section) {
  proto::Response response;
  response.proto = net::IpProto::kTcp;
  response.src_port = 40000;
  response.dst_port = 80;
  for (int s = 0; s < sections; ++s) {
    proto::Section section;
    for (int p = 0; p < pairs_per_section; ++p) {
      section.add("key-" + std::to_string(p),
                  "value-" + std::to_string(s) + "-" + std::to_string(p));
    }
    response.append_section(std::move(section));
  }
  return response;
}

void BM_QuerySerialize(benchmark::State& state) {
  proto::Query query;
  query.proto = net::IpProto::kTcp;
  query.src_port = 40000;
  query.dst_port = 80;
  for (int i = 0; i < state.range(0); ++i) {
    query.keys.push_back("key-" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.serialize());
  }
}
BENCHMARK(BM_QuerySerialize)->Arg(2)->Arg(8)->Arg(32);

void BM_QueryParse(benchmark::State& state) {
  proto::Query query;
  query.proto = net::IpProto::kTcp;
  for (int i = 0; i < state.range(0); ++i) {
    query.keys.push_back("key-" + std::to_string(i));
  }
  const std::string wire = query.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::Query::parse(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_QueryParse)->Arg(2)->Arg(8)->Arg(32);

void BM_ResponseSerialize(benchmark::State& state) {
  const proto::Response response = make_response(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(response.serialize());
  }
}
BENCHMARK(BM_ResponseSerialize)
    ->Args({1, 4})->Args({1, 16})->Args({4, 16})->Args({8, 64});

void BM_ResponseParse(benchmark::State& state) {
  const std::string wire =
      make_response(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)))
          .serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::Response::parse(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ResponseParse)
    ->Args({1, 4})->Args({1, 16})->Args({4, 16})->Args({8, 64});

void BM_DictLatestLookup(benchmark::State& state) {
  const proto::ResponseDict dict(
      make_response(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.latest("key-7"));
  }
}
BENCHMARK(BM_DictLatestLookup)->Arg(1)->Arg(4)->Arg(8);

void BM_DictStarConcatenation(benchmark::State& state) {
  const proto::ResponseDict dict(
      make_response(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.concatenated("key-7"));
  }
}
BENCHMARK(BM_DictStarConcatenation)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
