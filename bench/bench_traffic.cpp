// Congestion/traffic benchmarks (DESIGN.md §12): incast fan-in at several
// scales and an elephant/mice mix spread over ECMP paths.  Each iteration
// is a complete scenario run — admission for every flow, then the traffic
// generators pushing data through bounded switch queues — so the numbers
// track the whole data-plane path, not just the generators.

#include <benchmark/benchmark.h>

#include <string>

#include "core/scenario.hpp"

namespace {

using namespace identxx;

/// `clients` senders fan in to one server across a 10 Mbps bottleneck
/// (host attachments keep the 10G default, so only s1—s2 congests).
std::string incast_scenario(int clients) {
  std::string text =
      "seed 42\n"
      "switch s1\n"
      "switch s2\n"
      "link s1 s2 10 10\n"
      "host server 10.0.1.1 s2\n"
      "user server www daemons\n"
      "launch srv server www /usr/sbin/httpd\n"
      "listen srv 80\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "host c" + n + " 10.0." + std::to_string(2 + i / 200) + "." +
            std::to_string(10 + i % 200) + " s1\n";
    text += "user c" + n + " u" + n + " staff\n";
    text += "launch l" + n + " c" + n + " u" + n + " /usr/bin/load\n";
  }
  text += "policy begin\npass all\npolicy end\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "flow f" + n + " l" + n + " 10.0.1.1 80\n";
  }
  return text;
}

/// Diamond fabric (two equal-cost routes) with `mice` short flows around
/// one heavy-tailed elephant, all ECMP-spread with k_paths = 2.
std::string elephant_mice_scenario(int mice) {
  std::string text =
      "seed 7\n"
      "switch s1\n"
      "switch s2\n"
      "switch s3\n"
      "switch s4\n"
      "link s1 s2 10 50\n"
      "link s1 s3 10 50\n"
      "link s2 s4 10 50\n"
      "link s3 s4 10 50\n"
      "host b 10.0.1.1 s4\n"
      "user b www daemons\n"
      "launch srv b www /usr/sbin/httpd\n"
      "listen srv 80\n"
      "host big 10.0.0.2 s1\n"
      "user big eu staff\n"
      "launch le big eu /usr/bin/elephant\n";
  for (int i = 0; i < mice; ++i) {
    const std::string n = std::to_string(i);
    text += "host m" + n + " 10.0.0." + std::to_string(10 + i) + " s1\n";
    text += "user m" + n + " u" + n + " staff\n";
    text += "launch lm" + n + " m" + n + " u" + n + " /usr/bin/mouse\n";
  }
  text += "policy begin\npass all\npolicy end\n";
  text += "flow fe le 10.0.1.1 80\n";
  text += "traffic fe pareto mean=96 shape=1.2 rate=50000 payload=512 "
          "start_us=5000\n";
  for (int i = 0; i < mice; ++i) {
    const std::string n = std::to_string(i);
    text += "flow fm" + n + " lm" + n + " 10.0.1.1 80\n";
    text += "traffic fm" + n +
            " pareto mean=8 shape=2.5 rate=50000 payload=512 start_us=5000\n";
  }
  return text;
}

void report_run(benchmark::State& state, std::uint64_t drops,
                std::uint64_t sent, std::uint64_t delivered) {
  const auto iters = static_cast<double>(state.iterations());
  state.counters["tail_drops"] = static_cast<double>(drops) / iters;
  state.counters["delivered_pct"] =
      sent ? 100.0 * static_cast<double>(delivered) / static_cast<double>(sent)
           : 0;
}

// ------------------------------------------------------------------ incast

void BM_IncastFanIn(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const auto scenario = core::Scenario::parse(incast_scenario(clients));
  core::ScenarioOptions options;
  options.queue_depth = 8;
  options.traffic = "cbr,packets=32,rate=4000,payload=512,start_us=5000";
  std::uint64_t drops = 0, sent = 0, delivered = 0;
  for (auto _ : state) {
    const auto result = scenario.run(options);
    drops += result.queue_tail_drops;
    for (const auto& flow : result.flows) {
      sent += flow.packets_sent;
      delivered += flow.packets_delivered;
    }
  }
  state.SetItemsProcessed(state.iterations() * clients);
  report_run(state, drops, sent, delivered);
}
BENCHMARK(BM_IncastFanIn)->Arg(8)->Arg(32)->Arg(128);

/// Same fan-in, closed loop: the AIMD senders see their own drops and back
/// off, so tail_drops here vs BM_IncastFanIn is the congestion-control
/// payoff at equal offered load.
void BM_IncastAimd(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const auto scenario = core::Scenario::parse(incast_scenario(clients));
  core::ScenarioOptions options;
  options.queue_depth = 8;
  options.traffic =
      "aimd,packets=32,payload=512,start_us=5000,rtt_us=4000,window=2";
  std::uint64_t drops = 0, sent = 0, delivered = 0;
  for (auto _ : state) {
    const auto result = scenario.run(options);
    drops += result.queue_tail_drops;
    for (const auto& flow : result.flows) {
      sent += flow.packets_sent;
      delivered += flow.packets_delivered;
    }
  }
  state.SetItemsProcessed(state.iterations() * clients);
  report_run(state, drops, sent, delivered);
}
BENCHMARK(BM_IncastAimd)->Arg(8)->Arg(32);

// ------------------------------------------------------------ elephant/mice

void BM_ElephantMice(benchmark::State& state) {
  const int mice = static_cast<int>(state.range(0));
  const auto scenario = core::Scenario::parse(elephant_mice_scenario(mice));
  core::ScenarioOptions options;
  options.k_paths = 2;
  options.queue_depth = 8;
  std::uint64_t drops = 0, sent = 0, delivered = 0;
  for (auto _ : state) {
    const auto result = scenario.run(options);
    drops += result.queue_tail_drops;
    for (const auto& flow : result.flows) {
      sent += flow.packets_sent;
      delivered += flow.packets_delivered;
    }
  }
  state.SetItemsProcessed(state.iterations() * (mice + 1));
  report_run(state, drops, sent, delivered);
}
BENCHMARK(BM_ElephantMice)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
