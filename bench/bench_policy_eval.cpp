// B2: PF+=2 policy evaluation scaling — rule-count sweeps with and without
// `with` predicates, the `quick` short-circuit ablation (DESIGN.md §6),
// table-membership costs, and the delegated-rules (`allowed`) path.

#include <benchmark/benchmark.h>

#include <span>

#include "crypto/schnorr.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/eval.hpp"
#include "pf/parser.hpp"

namespace {

using namespace identxx;

pf::FlowContext make_ctx(const char* app = "skype", const char* version = "210") {
  proto::Response r;
  proto::Section s;
  s.add("name", app);
  s.add("version", version);
  s.add("userID", "alice");
  s.add("groupID", "users");
  r.append_section(s);
  pf::FlowContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("192.168.0.10");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("192.168.0.11");
  ctx.flow.src_port = 40000;
  ctx.flow.dst_port = 80;
  ctx.src = proto::ResponseDict(r);
  ctx.dst = proto::ResponseDict(r);
  return ctx;
}

/// N rules over network primitives only (what Ethane/vanilla can express).
std::string primitive_rules(std::int64_t n) {
  std::string policy = "block all\n";
  for (std::int64_t i = 0; i < n; ++i) {
    policy += "pass from 10." + std::to_string(i % 256) + ".0.0/16 to any port " +
              std::to_string(1000 + i % 60000) + "\n";
  }
  return policy;
}

/// N rules each with two `with` predicates over @src.
std::string with_rules(std::int64_t n) {
  std::string policy = "block all\n";
  for (std::int64_t i = 0; i < n; ++i) {
    policy += "pass all with eq(@src[name], app-" + std::to_string(i) +
              ") with gte(@src[version], " + std::to_string(i % 400) + ")\n";
  }
  return policy;
}

void BM_ParseRules(benchmark::State& state) {
  const std::string policy = with_rules(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::parse(policy, "bench"));
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParseRules)->Arg(10)->Arg(100)->Arg(1000);

void BM_EvalPrimitiveRules(benchmark::State& state) {
  const pf::PolicyEngine engine(pf::parse(primitive_rules(state.range(0))));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EvalPrimitiveRules)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EvalWithRules(benchmark::State& state) {
  const pf::PolicyEngine engine(pf::parse(with_rules(state.range(0))));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EvalWithRules)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

/// Ablation: a matching `quick` rule near the top versus last-match scan of
/// the whole ruleset (DESIGN.md §6).
void BM_QuickShortCircuit(benchmark::State& state) {
  std::string policy = "block all\npass quick all with eq(@src[name], skype)\n";
  policy += with_rules(state.range(0));
  const pf::PolicyEngine engine(pf::parse(policy));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
}
BENCHMARK(BM_QuickShortCircuit)->Arg(1000)->Arg(10000);

void BM_NoQuickFullScan(benchmark::State& state) {
  std::string policy = "block all\npass all with eq(@src[name], skype)\n";
  policy += with_rules(state.range(0));
  const pf::PolicyEngine engine(pf::parse(policy));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
}
BENCHMARK(BM_NoQuickFullScan)->Arg(1000)->Arg(10000);

void BM_TableMembership(benchmark::State& state) {
  // One rule over a table with N entries.
  std::string policy = "table <lan> { ";
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    policy += std::to_string(10 + i % 200) + "." + std::to_string(i % 256) +
              ".0.0/16 ";
  }
  policy += "}\nblock all\npass from <lan> to any\n";
  const pf::PolicyEngine engine(pf::parse(policy));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["table_entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TableMembership)->Arg(16)->Arg(256)->Arg(4096);

// ------------------------------------------------------------- batched eval
//
// The decide_many hot path (DESIGN.md §11): a deadline batch of flows
// through one evaluate_batch call versus the serial per-flow loop.  The
// policy carries rule-spread (prefilter target) plus a signature-guarded
// rule (hoisting target).  `shared` = every flow carries one attestation
// (a flash crowd from one application — verify runs once per batch);
// distinct = per-flow signatures (worst case for hoisting).

struct BatchBenchFixture {
  pf::PolicyEngine engine;
  std::vector<pf::FlowContext> batch;

  static std::string policy(const std::string& pubkey_hex) {
    std::string out =
        "table <lan> { 10.0.0.0/8 }\n"
        "dict <pubkeys> { vendor : " + pubkey_hex + " }\n"
        "block all\n";
    // Rule spread over ports the benchmark flows never hit: serial
    // evaluation visits all of them per flow, the prefilter skips them.
    for (int i = 0; i < 24; ++i) {
      out += "pass from 172.16." + std::to_string(i) + ".0/24 to any port " +
             std::to_string(2000 + i) + "\n";
    }
    out +=
        "pass from <lan> to any port 80 "
        "with verify(@src[sig], @pubkeys[vendor], @src[name], @src[version]) "
        "with gte(@src[version], 100)\n";
    return out;
  }

  static proto::Response attestation(const crypto::PrivateKey& key, int i) {
    const std::string name = "app-" + std::to_string(i);
    const std::string version = "210";
    proto::Response r;
    proto::Section s;
    s.add("name", name);
    s.add("version", version);
    s.add("sig", key.sign(proto::signed_message({name, version})).to_hex());
    r.append_section(s);
    return r;
  }

  BatchBenchFixture(std::int64_t batch_size, bool shared,
                    const crypto::PrivateKey& key)
      : engine(pf::parse(policy(key.public_key().to_hex()), "bench")) {
    const proto::Response shared_response = attestation(key, 0);
    batch.reserve(static_cast<std::size_t>(batch_size));
    for (std::int64_t i = 0; i < batch_size; ++i) {
      pf::FlowContext ctx;
      ctx.flow.src_ip = *net::Ipv4Address::parse("10.0.0.10");
      ctx.flow.dst_ip = *net::Ipv4Address::parse("10.0.2.1");
      ctx.flow.proto = net::IpProto::kTcp;
      ctx.flow.src_port = static_cast<std::uint16_t>(30000 + i);
      ctx.flow.dst_port = 80;
      ctx.src = proto::ResponseDict(
          shared ? shared_response : attestation(key, static_cast<int>(i)));
      batch.push_back(std::move(ctx));
    }
  }
};

void BM_PolicyEvalBatch(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  BatchBenchFixture fx(state.range(0), state.range(1) != 0, key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.engine.evaluate_batch(std::span<const pf::FlowContext>(fx.batch)));
  }
  state.counters["batch_size"] = static_cast<double>(state.range(0));
  state.counters["shared_attestation"] = static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolicyEvalBatch)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({8, 0})
    ->Args({64, 0});

/// The serial oracle on identical inputs — the baseline the ≥2×-per-flow
/// acceptance bar for batch size 64 with shared attestations is measured
/// against.
void BM_PolicyEvalLooped(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("bench");
  BatchBenchFixture fx(state.range(0), state.range(1) != 0, key);
  for (auto _ : state) {
    for (const pf::FlowContext& ctx : fx.batch) {
      benchmark::DoNotOptimize(fx.engine.evaluate(ctx));
    }
  }
  state.counters["batch_size"] = static_cast<double>(state.range(0));
  state.counters["shared_attestation"] = static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolicyEvalLooped)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({8, 0})
    ->Args({64, 0});

void BM_DelegatedAllowed(benchmark::State& state) {
  // The allowed() path re-parses and evaluates delegated rules per call —
  // the per-flow price of delegation without signature checking.
  proto::Response r;
  proto::Section s;
  s.add("name", "research-app");
  std::string requirements = "block all";
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    requirements += " pass all with eq(@src[name], research-app)";
  }
  s.add("requirements", requirements);
  r.append_section(s);
  pf::FlowContext ctx = make_ctx();
  ctx.src = proto::ResponseDict(r);
  const pf::PolicyEngine engine(
      pf::parse("block all\npass all with allowed(@src[requirements])\n"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["delegated_rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DelegatedAllowed)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
