// B2: PF+=2 policy evaluation scaling — rule-count sweeps with and without
// `with` predicates, the `quick` short-circuit ablation (DESIGN.md §6),
// table-membership costs, and the delegated-rules (`allowed`) path.

#include <benchmark/benchmark.h>

#include "pf/eval.hpp"
#include "pf/parser.hpp"

namespace {

using namespace identxx;

pf::FlowContext make_ctx(const char* app = "skype", const char* version = "210") {
  proto::Response r;
  proto::Section s;
  s.add("name", app);
  s.add("version", version);
  s.add("userID", "alice");
  s.add("groupID", "users");
  r.append_section(s);
  pf::FlowContext ctx;
  ctx.flow.src_ip = *net::Ipv4Address::parse("192.168.0.10");
  ctx.flow.dst_ip = *net::Ipv4Address::parse("192.168.0.11");
  ctx.flow.src_port = 40000;
  ctx.flow.dst_port = 80;
  ctx.src = proto::ResponseDict(r);
  ctx.dst = proto::ResponseDict(r);
  return ctx;
}

/// N rules over network primitives only (what Ethane/vanilla can express).
std::string primitive_rules(std::int64_t n) {
  std::string policy = "block all\n";
  for (std::int64_t i = 0; i < n; ++i) {
    policy += "pass from 10." + std::to_string(i % 256) + ".0.0/16 to any port " +
              std::to_string(1000 + i % 60000) + "\n";
  }
  return policy;
}

/// N rules each with two `with` predicates over @src.
std::string with_rules(std::int64_t n) {
  std::string policy = "block all\n";
  for (std::int64_t i = 0; i < n; ++i) {
    policy += "pass all with eq(@src[name], app-" + std::to_string(i) +
              ") with gte(@src[version], " + std::to_string(i % 400) + ")\n";
  }
  return policy;
}

void BM_ParseRules(benchmark::State& state) {
  const std::string policy = with_rules(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::parse(policy, "bench"));
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParseRules)->Arg(10)->Arg(100)->Arg(1000);

void BM_EvalPrimitiveRules(benchmark::State& state) {
  const pf::PolicyEngine engine(pf::parse(primitive_rules(state.range(0))));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EvalPrimitiveRules)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EvalWithRules(benchmark::State& state) {
  const pf::PolicyEngine engine(pf::parse(with_rules(state.range(0))));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EvalWithRules)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

/// Ablation: a matching `quick` rule near the top versus last-match scan of
/// the whole ruleset (DESIGN.md §6).
void BM_QuickShortCircuit(benchmark::State& state) {
  std::string policy = "block all\npass quick all with eq(@src[name], skype)\n";
  policy += with_rules(state.range(0));
  const pf::PolicyEngine engine(pf::parse(policy));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
}
BENCHMARK(BM_QuickShortCircuit)->Arg(1000)->Arg(10000);

void BM_NoQuickFullScan(benchmark::State& state) {
  std::string policy = "block all\npass all with eq(@src[name], skype)\n";
  policy += with_rules(state.range(0));
  const pf::PolicyEngine engine(pf::parse(policy));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
}
BENCHMARK(BM_NoQuickFullScan)->Arg(1000)->Arg(10000);

void BM_TableMembership(benchmark::State& state) {
  // One rule over a table with N entries.
  std::string policy = "table <lan> { ";
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    policy += std::to_string(10 + i % 200) + "." + std::to_string(i % 256) +
              ".0.0/16 ";
  }
  policy += "}\nblock all\npass from <lan> to any\n";
  const pf::PolicyEngine engine(pf::parse(policy));
  const pf::FlowContext ctx = make_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["table_entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TableMembership)->Arg(16)->Arg(256)->Arg(4096);

void BM_DelegatedAllowed(benchmark::State& state) {
  // The allowed() path re-parses and evaluates delegated rules per call —
  // the per-flow price of delegation without signature checking.
  proto::Response r;
  proto::Section s;
  s.add("name", "research-app");
  std::string requirements = "block all";
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    requirements += " pass all with eq(@src[name], research-app)";
  }
  s.add("requirements", requirements);
  r.append_section(s);
  pf::FlowContext ctx = make_ctx();
  ctx.src = proto::ResponseDict(r);
  const pf::PolicyEngine engine(
      pf::parse("block all\npass all with allowed(@src[requirements])\n"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(ctx));
  }
  state.counters["delegated_rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DelegatedAllowed)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
