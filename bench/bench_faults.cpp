// Control-plane fault benchmarks (DESIGN.md §14): admission latency and
// delivery goodput as the control channel degrades.  Each iteration is a
// complete scenario run — a client fan-in admits under seeded loss on
// every switch's channel with the retry/backoff ladder armed — so the
// numbers track the end-to-end cost of a faulty control plane: retries
// stretch setup latency, degraded covers show up as lost goodput, and the
// Arg(0) run is the fault-free baseline the other points are read against.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "core/scenario.hpp"

namespace {

using namespace identxx;

/// `clients` senders fan in to one HTTP server; every flow needs one
/// src-side and one dst-side identity query, so each admission crosses the
/// faulted control channel several times.
std::string fanin_scenario(int clients) {
  std::string text =
      "seed 42\n"
      "switch s1\n"
      "switch s2\n"
      "link s1 s2 10\n"
      "host server 10.0.1.1 s2\n"
      "user server www daemons\n"
      "launch srv server www /usr/sbin/httpd\n"
      "listen srv 80\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "host c" + n + " 10.0.2." + std::to_string(10 + i) + " s1\n";
    text += "user c" + n + " u" + n + " staff\n";
    text += "launch l" + n + " c" + n + " u" + n + " /usr/bin/load\n";
  }
  text += "policy begin\nblock all\n"
          "pass from any to any port 80 with eq(@dst[userID], www)\n"
          "policy end\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "flow f" + n + " l" + n + " 10.0.1.1 80\n";
    text += "traffic f" + n + " cbr packets=24 rate=2000 payload=256\n";
  }
  return text;
}

/// One run per loss point.  state.range(0) is the per-message loss (and
/// duplication) percentage on every control channel; the retry ladder and
/// degraded covers are armed so admission stays live at every point.
void BM_AdmissionUnderLoss(benchmark::State& state) {
  constexpr int kClients = 16;
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  const auto scenario = core::Scenario::parse(fanin_scenario(kClients));
  core::ScenarioOptions options;
  options.chan_loss = loss;
  options.chan_dup = loss / 2.0;
  options.config.max_query_retries = 2;
  options.config.degraded_cover_ttl = 20 * sim::kMillisecond;
  options.config.readmission_probe_delay = 50 * sim::kMillisecond;
  std::uint64_t sent = 0, delivered = 0, retries = 0, degraded = 0;
  std::uint64_t admissions = 0;
  sim::SimTime setup_total = 0;
  for (auto _ : state) {
    const auto result = scenario.run(options);
    for (const auto& flow : result.flows) {
      sent += flow.packets_sent;
      delivered += flow.packets_delivered;
    }
    retries += result.controller_stats.query_retries;
    degraded += result.controller_stats.degraded_verdicts;
    for (const auto& record : result.audit_log) {
      if (!record.allowed) continue;
      setup_total += record.setup_latency;
      ++admissions;
    }
  }
  const auto iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * kClients);
  state.counters["goodput_pct"] =
      sent ? 100.0 * static_cast<double>(delivered) / static_cast<double>(sent)
           : 0;
  state.counters["setup_us_mean"] =
      admissions ? static_cast<double>(setup_total) /
                       static_cast<double>(admissions) / 1e3
                 : 0;
  state.counters["retries"] = static_cast<double>(retries) / iters;
  state.counters["degraded"] = static_cast<double>(degraded) / iters;
}
BENCHMARK(BM_AdmissionUnderLoss)->Arg(0)->Arg(1)->Arg(5)->Arg(20);

/// `clients` senders each drive `flows_per_client` concurrent flows to one
/// server, and a mid-run `revoke_all` flushes every installed entry while
/// the whole population is still sending — so the entire flow set storms
/// back through admission at once.
std::string storm_scenario(int clients, int flows_per_client) {
  std::string text =
      "seed 42\n"
      "switch s1\n"
      "switch s2\n"
      "link s1 s2 10\n"
      "host server 10.0.1.1 s2\n"
      "user server www daemons\n"
      "launch srv server www /usr/sbin/httpd\n"
      "listen srv 80\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    text += "host c" + n + " 10.0." + std::to_string(2 + i / 200) + "." +
            std::to_string(10 + i % 200) + " s1\n";
    text += "user c" + n + " u" + n + " staff\n";
    text += "launch l" + n + " c" + n + " u" + n + " /usr/bin/load\n";
  }
  text += "policy begin\nblock all\n"
          "pass from any to any port 80 with eq(@dst[userID], www)\n"
          "policy end\n";
  for (int i = 0; i < clients; ++i) {
    const std::string n = std::to_string(i);
    for (int j = 0; j < flows_per_client; ++j) {
      const std::string id = "f" + n + "x" + std::to_string(j);
      text += "flow " + id + " l" + n + " 10.0.1.1 80\n";
      text += "traffic " + id + " cbr packets=8 rate=2000 payload=128\n";
    }
  }
  // The storm: every flow entry revoked while all flows are mid-stream.
  text += "control 2000 revoke_all\n";
  return text;
}

/// Revocation storm at state.range(0) concurrent flows (up to 10^3): the
/// whole population re-admits simultaneously.  Tracks how many admissions
/// the controller absorbed, the mean setup latency across both waves, and
/// whether goodput survived the flush.
void BM_RevocationStorm(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const int clients = flows / 20;
  const auto scenario = core::Scenario::parse(storm_scenario(clients, 20));
  const core::ScenarioOptions options;
  std::uint64_t sent = 0, delivered = 0, installs = 0, admissions = 0;
  sim::SimTime setup_total = 0;
  for (auto _ : state) {
    const auto result = scenario.run(options);
    for (const auto& flow : result.flows) {
      sent += flow.packets_sent;
      delivered += flow.packets_delivered;
    }
    installs += result.controller_stats.entries_installed;
    for (const auto& record : result.audit_log) {
      if (!record.allowed) continue;
      setup_total += record.setup_latency;
      ++admissions;
    }
  }
  const auto iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * flows);
  state.counters["goodput_pct"] =
      sent ? 100.0 * static_cast<double>(delivered) / static_cast<double>(sent)
           : 0;
  state.counters["admissions"] = static_cast<double>(admissions) / iters;
  state.counters["installs"] = static_cast<double>(installs) / iters;
  state.counters["setup_us_mean"] =
      admissions ? static_cast<double>(setup_total) /
                       static_cast<double>(admissions) / 1e3
                 : 0;
}
BENCHMARK(BM_RevocationStorm)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
