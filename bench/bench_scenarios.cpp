// B6 / F2-F8: the paper's application scenarios as end-to-end benchmarks.
//
// Each benchmark drives complete flow setups (daemon queries, policy with
// the figure's actual rules, signature verification where the figure uses
// it) through the simulated network and reports flows/second plus the
// share of flows the policy admitted.

#include <benchmark/benchmark.h>

#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "identxx/daemon_config.hpp"
#include "identxx/keys.hpp"

namespace {

using namespace identxx;

int launch_with_pairs(host::Host& h, const std::string& user,
                      const std::string& group, const std::string& exe,
                      const proto::KeyValueList& pairs) {
  h.add_user(user, group);
  const int pid = h.launch(user, exe);
  if (!pairs.empty()) {
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = pairs;
    config.apps.push_back(app);
    h.daemon().add_config(proto::ConfigTrust::kSystem, config);
  }
  return pid;
}

/// Drive one flow to completion and tear its socket down.
bool drive(core::Network& net, host::Host& src, int pid,
           const std::string& dst_ip, std::uint16_t port) {
  const auto handle = net.start_flow(src, pid, dst_ip, port);
  net.run();
  const bool delivered = net.flow_delivered(handle);
  src.close_flow(handle.flow);
  net.host(handle.dst_node != sim::kInvalidNode ? handle.dst_node
                                                : src.id())
      .clear_delivered();
  return delivered;
}

// ---------------------------------------------------------------- Fig 2

void BM_Fig2SkypeScenario(benchmark::State& state) {
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "192.168.0.10");
  auto& b = net.add_host("b", "192.168.0.11");
  auto& server = net.add_host("server", "192.168.1.1");
  net.link(a, s1);
  net.link(b, s1);
  net.link(server, s1);
  net.install_controller(R"(
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }"
block all
pass from <int_hosts> to !<int_hosts> keep state
pass from <int_hosts> to <int_hosts> with member(@src[name], $allowed) keep state
table <skype_update> { 123.123.123.0/24 }
pass all with eq(@src[name], skype) with eq(@dst[name], skype)
pass from any to <skype_update> port 80 with eq(@src[name], skype) keep state
block all with eq(@src[name], skype) with lt(@src[version], 200)
block from any to <server> with eq(@src[name], skype)
)");
  const int skype_a = launch_with_pairs(a, "ann", "users", "/usr/bin/skype",
                                        {{"name", "skype"}, {"version", "210"}});
  const int ssh_a = launch_with_pairs(a, "ann2", "users", "/usr/bin/ssh",
                                      {{"name", "ssh"}});
  const int skype_b = launch_with_pairs(b, "ben", "users", "/usr/bin/skype",
                                        {{"name", "skype"}, {"version", "205"}});
  b.listen(skype_b, 5555);
  b.listen(skype_b, 22);
  (void)launch_with_pairs(server, "www", "daemons", "/usr/sbin/httpd",
                          {{"name", "httpd"}});

  std::int64_t allowed = 0, flows = 0;
  int variant = 0;
  for (auto _ : state) {
    bool delivered = false;
    switch (variant++ % 3) {
      case 0: delivered = drive(net, a, skype_a, "192.168.0.11", 5555); break;
      case 1: delivered = drive(net, a, ssh_a, "192.168.0.11", 22); break;
      case 2: delivered = drive(net, a, skype_a, "192.168.1.1", 80); break;
    }
    allowed += delivered ? 1 : 0;
    ++flows;
  }
  state.SetItemsProcessed(flows);
  state.counters["allowed_pct"] =
      flows ? 100.0 * static_cast<double>(allowed) / static_cast<double>(flows)
            : 0;
}
BENCHMARK(BM_Fig2SkypeScenario);

/// The same Fig 2 topology under the vanilla-firewall baseline — now the
/// same AdmissionController skeleton with an ACL DecisionEngine and no
/// QueryPlanner, so the flows/second delta against BM_Fig2SkypeScenario is
/// purely the ident++ query/policy machinery, not a different controller
/// implementation.
void BM_Fig2VanillaBaseline(benchmark::State& state) {
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& a = net.add_host("a", "192.168.0.10");
  auto& b = net.add_host("b", "192.168.0.11");
  auto& server = net.add_host("server", "192.168.1.1");
  net.link(a, s1);
  net.link(b, s1);
  net.link(server, s1);
  auto& fw = net.install_vanilla_firewall(false);
  // Port-granular approximation of the Fig 2 policy — the closest a
  // 5-tuple ACL can get (it cannot tell Skype from ssh on the same port).
  ctrl::VanillaFirewall::AclRule lan_ssh;
  lan_ssh.dst = *net::Cidr::parse("192.168.0.0/24");
  lan_ssh.dst_port_low = 22;
  lan_ssh.dst_port_high = 22;
  lan_ssh.allow = true;
  fw.add_rule(lan_ssh);
  ctrl::VanillaFirewall::AclRule web;
  web.dst = *net::Cidr::parse("192.168.1.1/32");
  web.dst_port_low = 80;
  web.dst_port_high = 80;
  web.allow = true;
  fw.add_rule(web);

  const int skype_a = launch_with_pairs(a, "ann", "users", "/usr/bin/skype",
                                        {{"name", "skype"}, {"version", "210"}});
  const int ssh_a = launch_with_pairs(a, "ann2", "users", "/usr/bin/ssh",
                                      {{"name", "ssh"}});
  const int skype_b = launch_with_pairs(b, "ben", "users", "/usr/bin/skype",
                                        {{"name", "skype"}, {"version", "205"}});
  b.listen(skype_b, 5555);
  b.listen(skype_b, 22);
  (void)launch_with_pairs(server, "www", "daemons", "/usr/sbin/httpd",
                          {{"name", "httpd"}});

  std::int64_t allowed = 0, flows = 0;
  int variant = 0;
  for (auto _ : state) {
    // Flush cached flow entries so every iteration measures a decision.
    for (const auto sw : net.switch_ids()) {
      net.switch_at(sw).table().remove_if(
          [](const openflow::FlowEntry& e) { return e.cookie != 0; });
    }
    bool delivered = false;
    switch (variant++ % 3) {
      case 0: delivered = drive(net, a, skype_a, "192.168.0.11", 5555); break;
      case 1: delivered = drive(net, a, ssh_a, "192.168.0.11", 22); break;
      case 2: delivered = drive(net, a, skype_a, "192.168.1.1", 80); break;
    }
    allowed += delivered ? 1 : 0;
    ++flows;
  }
  state.SetItemsProcessed(flows);
  state.counters["allowed_pct"] =
      flows ? 100.0 * static_cast<double>(allowed) / static_cast<double>(flows)
            : 0;
}
BENCHMARK(BM_Fig2VanillaBaseline);

// ---------------------------------------------------------------- Fig 5

void BM_Fig5ResearchDelegation(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed("research");
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& rm1 = net.add_host("rm1", "10.1.0.1");
  auto& rm2 = net.add_host("rm2", "10.1.0.2");
  net.link(rm1, s1);
  net.link(rm2, s1);
  net.install_controller(
      "table <research-machines> { 10.1.0.0/16 }\n"
      "table <production-machines> { 10.2.0.0/16 }\n"
      "dict <pubkeys> { research : " + key.public_key().to_hex() + " }\n"
      "block all\n"
      "pass from <research-machines> with member(@src[groupID], research) \\\n"
      "  to !<production-machines> with member(@dst[groupID], research) \\\n"
      "  with allowed(@dst[requirements]) \\\n"
      "  with verify(@dst[req-sig], @pubkeys[research], \\\n"
      "    @dst[exe-hash], @dst[app-name], @dst[requirements])\n");

  const std::string exe = "/usr/bin/research-app";
  const std::string requirements =
      "block all pass all with eq(@src[name], research-app) "
      "with eq(@dst[name], research-app)";
  const crypto::Signature sig = key.sign(proto::signed_message(
      {host::Host::image_hash(exe, ""), "research-app", requirements}));
  const proto::KeyValueList pairs = {{"name", "research-app"},
                                     {"requirements", requirements},
                                     {"req-sig", sig.to_hex()}};
  const int pid1 = launch_with_pairs(rm1, "alice", "research", exe, pairs);
  const int pid2 = launch_with_pairs(rm2, "bob", "research", exe, pairs);
  rm2.listen(pid2, 9000);

  std::int64_t allowed = 0;
  for (auto _ : state) {
    allowed += drive(net, rm1, pid1, "10.1.0.2", 9000) ? 1 : 0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allowed_pct"] =
      100.0 * static_cast<double>(allowed) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Fig5ResearchDelegation);

// ---------------------------------------------------------------- Fig 8

void BM_Fig8ConfickerGate(benchmark::State& state) {
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& ws = net.add_host("ws", "192.168.0.10");
  auto& patched = net.add_host("patched", "192.168.0.20");
  auto& unpatched = net.add_host("unpatched", "192.168.0.21");
  net.link(ws, s1);
  net.link(patched, s1);
  net.link(unpatched, s1);
  net.install_controller(R"(
table <lan> { 192.168.0.0/24 }
block all
pass from <lan> with eq(@src[userID], system) \
  to <lan> with eq(@dst[userID], system) \
  with eq(@dst[name], Server) \
  with includes(@dst[os-patch], MS08-067)
)");
  const int client = launch_with_pairs(ws, "system", "system",
                                       "/win/svchost.exe", {});
  const int s_ok = launch_with_pairs(patched, "system", "system",
                                     "/win/services.exe",
                                     {{"name", "Server"}});
  patched.daemon().add_host_fact(proto::keys::kOsPatch, "MS08-001 MS08-067");
  patched.listen(s_ok, 445);
  const int s_bad = launch_with_pairs(unpatched, "system", "system",
                                      "/win/services.exe",
                                      {{"name", "Server"}});
  unpatched.daemon().add_host_fact(proto::keys::kOsPatch, "MS08-001");
  unpatched.listen(s_bad, 445);

  std::int64_t allowed = 0, flows = 0;
  int variant = 0;
  for (auto _ : state) {
    const bool to_patched = (variant++ % 2) == 0;
    allowed += drive(net, ws, client,
                     to_patched ? "192.168.0.20" : "192.168.0.21", 445)
                   ? 1
                   : 0;
    ++flows;
  }
  state.SetItemsProcessed(flows);
  state.counters["allowed_pct"] =
      flows ? 100.0 * static_cast<double>(allowed) / static_cast<double>(flows)
            : 0;
}
BENCHMARK(BM_Fig8ConfickerGate);

// ---------------------------------------------------------------- §4 collab

void BM_NetworkCollaboration(benchmark::State& state) {
  core::Network net;
  const auto sA = net.add_switch("sA");
  const auto sB = net.add_switch("sB");
  auto& clientA = net.add_host("clientA", "10.1.0.1");
  auto& serverB = net.add_host("serverB", "10.2.0.1");
  net.link(clientA, sA);
  net.link(sA, sB);
  net.link(serverB, sB);
  net.install_domain_controller(
      "block all\npass from any to any with eq(@dst[network], branchB)\n",
      {sA});
  auto& ctrlB = net.install_domain_controller("pass all\n", {sB});
  ctrlB.set_response_augmenter(
      [](const proto::Response&, const net::FiveTuple&)
          -> std::optional<proto::Section> {
        proto::Section section;
        section.add(proto::keys::kNetwork, "branchB");
        return section;
      });
  const int pid = launch_with_pairs(clientA, "alice", "users", "/bin/app", {});
  const int srv = launch_with_pairs(serverB, "www", "daemons", "/bin/srv", {});
  serverB.listen(srv, 80);

  std::int64_t allowed = 0;
  for (auto _ : state) {
    allowed += drive(net, clientA, pid, "10.2.0.1", 80) ? 1 : 0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["allowed_pct"] =
      100.0 * static_cast<double>(allowed) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_NetworkCollaboration);

// ---------------------------------------------------------------- daemon

/// The daemon's answer path in isolation: 5-tuple -> process resolution,
/// config lookup, response assembly (§3.5).  Sweeps the number of @app
/// blocks the daemon has loaded.
void BM_DaemonAnswer(benchmark::State& state) {
  host::Host h("bench-host", *net::Ipv4Address::parse("10.0.0.1"),
               net::MacAddress::for_node(1));
  h.add_user("alice", "users");
  proto::DaemonConfig config;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    proto::AppConfig app;
    app.exe_path = "/usr/bin/app-" + std::to_string(i);
    app.pairs = {{"name", "app-" + std::to_string(i)},
                 {"version", std::to_string(i)},
                 {"requirements", "block all pass all"}};
    config.apps.push_back(std::move(app));
  }
  h.daemon().add_config(proto::ConfigTrust::kSystem, config);
  const int pid = h.launch(
      "alice", "/usr/bin/app-" + std::to_string(state.range(0) - 1));
  const auto flow =
      h.connect_flow(pid, *net::Ipv4Address::parse("10.0.0.2"), 80);

  proto::Query query;
  query.proto = flow.proto;
  query.src_port = flow.src_port;
  query.dst_port = flow.dst_port;
  query.keys = {"userID", "name", "requirements"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.daemon().answer(query, flow.dst_ip, flow.src_ip));
  }
  state.counters["app_blocks"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonAnswer)->Arg(1)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
