// Pipeline composition: building a controller flavour from admission
// stages instead of subclassing.
//
// The ident++ controller and every baseline are configurations of the same
// five-stage AdmissionPipeline (DESIGN.md, "AdmissionPipeline stage
// contract").  This example assembles a custom flavour from parts — an
// Ethane-style PF engine, an LRU decision cache, the standard path install
// strategy — and attaches a custom AdmissionObserver that watches
// decisions stream past, the hook that subsumes the audit log and stats.
//
//   $ ./examples/pipeline_composition

#include <cstdio>

#include "controller/admission.hpp"
#include "core/network.hpp"

using namespace identxx;

namespace {

/// An observer that prints every decision as it happens — the same seam
/// the built-in stats and audit-log observers use.
class PrintingObserver : public ctrl::AdmissionObserver {
 public:
  void on_decision(const ctrl::DecisionRecord& record,
                   const ctrl::AdmissionDecision&) override {
    std::printf("  [observer] %-40s -> %s (%s)\n",
                record.flow.to_string().c_str(),
                record.allowed ? "pass" : "block", record.rule.c_str());
  }
  void on_cache_hit(const net::FiveTuple& flow,
                    const ctrl::AdmissionDecision& cached) override {
    std::printf("  [observer] %-40s -> %s (decision cache)\n",
                flow.to_string().c_str(), cached.allowed ? "pass" : "block");
  }
};

}  // namespace

int main() {
  std::printf("AdmissionPipeline composition: a custom controller flavour "
              "from stages\n\n");

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "10.0.0.1");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(client, s1);
  net.link(server, s1);

  // Assemble the pipeline by hand: no daemon queries (NoQueryPlanner), a
  // PF+=2 engine over network primitives, a small LRU decision cache, and
  // default path installation.  This is "Ethane with a decision cache" —
  // a flavour the old monolithic controllers could not express.
  ctrl::AdmissionPipeline pipeline;
  pipeline.planner = std::make_unique<ctrl::NoQueryPlanner>();
  pipeline.engine = std::make_unique<ctrl::PolicyDecisionEngine>(
      pf::parse("block all\npass from any to any port 80\n", "example"));
  pipeline.cache =
      std::make_unique<ctrl::LruDecisionCache>(128, 60 * sim::kSecond);

  ctrl::ControllerConfig config;
  config.name = "composed";
  config.install_full_path = false;  // ingress-only: later switches re-ask
  auto& controller = net.install_pipeline(std::move(pipeline), config);
  controller.add_observer(std::make_unique<PrintingObserver>());

  client.add_user("u", "users");
  const int pid = client.launch("u", "/bin/app");
  server.add_user("www", "daemons");
  const int httpd = server.launch("www", "/usr/sbin/httpd");
  server.listen(httpd, 80);

  std::printf("first flows (engine decides):\n");
  const auto web = net.start_flow(client, pid, "10.0.0.2", 80);
  const auto telnet = net.start_flow(client, pid, "10.0.0.2", 23);
  net.run();
  std::printf("web    %s\n", net.flow_delivered(web) ? "DELIVERED" : "BLOCKED");
  std::printf("telnet %s\n\n",
              net.flow_delivered(telnet) ? "DELIVERED" : "BLOCKED");

  // Revoke the installed entries: the next packet takes a packet-in again,
  // but the LRU cache replays the verdict without re-evaluating policy.
  controller.revoke_all();  // also invalidates the cache…
  std::printf("after revoke_all (cache invalidated, engine re-decides):\n");
  client.send_flow_packet(web.flow, "again", net::TcpFlags::kPsh);
  net.run();

  const auto* cache = controller.decision_cache();
  std::printf("\ncache stats: %llu hits, %llu misses, %llu insertions, "
              "%llu invalidations\n",
              static_cast<unsigned long long>(cache->stats().hits),
              static_cast<unsigned long long>(cache->stats().misses),
              static_cast<unsigned long long>(cache->stats().insertions),
              static_cast<unsigned long long>(cache->stats().invalidations));
  std::printf("controller stats: %llu flows seen, %llu allowed, %llu blocked, "
              "%llu cache hits\n",
              static_cast<unsigned long long>(controller.stats().flows_seen),
              static_cast<unsigned long long>(controller.stats().flows_allowed),
              static_cast<unsigned long long>(controller.stats().flows_blocked),
              static_cast<unsigned long long>(
                  controller.stats().decision_cache_hits));
  return 0;
}
