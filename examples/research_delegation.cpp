// Figures 4 + 5: delegation to users.
//
// Researchers run their own applications without asking the administrator
// to open ports.  A researcher signs the app's network requirements
// (Fig 4); the administrator's rule (Fig 5) verifies the signature and
// enforces the *researcher's own* rules, inside the admin's coarse
// boundary (never touch production machines).
//
//   $ ./examples/research_delegation

#include <cstdio>
#include <string>

#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "identxx/daemon_config.hpp"

using namespace identxx;

int main() {
  std::printf("Figures 4+5: delegation to users via signed requirements\n\n");

  // The research group's signing key.  The public half goes into the
  // administrator's <pubkeys> dict; the private half stays with the group.
  const crypto::PrivateKey research_key =
      crypto::PrivateKey::from_seed("research-group-signing-key");

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& rm1 = net.add_host("research-1", "10.1.0.1");
  auto& rm2 = net.add_host("research-2", "10.1.0.2");
  auto& prod = net.add_host("production-db", "10.2.0.1");
  net.link(rm1, s1);
  net.link(rm2, s1);
  net.link(prod, s1);

  // Fig 5, verbatim shape (30-research.control).
  const std::string policy =
      "table <research-machines> { 10.1.0.0/16 }\n"
      "table <production-machines> { 10.2.0.0/16 }\n"
      "dict <pubkeys> { \\\n"
      "  research : " + research_key.public_key().to_hex() + " \\\n"
      "}\n"
      "# Allow only researchers to run applications\n"
      "# and only access their own machines.\n"
      "# Let researchers specify what their apps need.\n"
      "block all\n"
      "pass from <research-machines> \\\n"
      "  with member(@src[groupID], research) \\\n"
      "  to !<production-machines> \\\n"
      "  with member(@dst[groupID], research) \\\n"
      "  with allowed(@dst[requirements]) \\\n"
      "  with verify(@dst[req-sig], \\\n"
      "    @pubkeys[research], \\\n"
      "    @dst[exe-hash], \\\n"
      "    @dst[app-name], \\\n"
      "    @dst[requirements])\n";
  net.install_controller(policy);
  std::printf("admin policy (Fig 5):\n%s\n", policy.c_str());

  // Fig 4: the researcher writes requirements — research apps only talk to
  // each other — and signs (exe-hash, app-name, requirements).
  const std::string exe = "/usr/bin/research-app";
  const std::string requirements =
      "block all pass all with eq(@src[name], research-app) "
      "with eq(@dst[name], research-app)";
  const std::string exe_hash = host::Host::image_hash(exe, "");
  const crypto::Signature req_sig = research_key.sign(
      proto::signed_message({exe_hash, "research-app", requirements}));
  std::printf("researcher signs requirements (Fig 4): %s\n  req-sig: %.24s...\n\n",
              requirements.c_str(), req_sig.to_hex().c_str());

  const proto::KeyValueList app_pairs = {{"name", "research-app"},
                                         {"requirements", requirements},
                                         {"req-sig", req_sig.to_hex()}};
  const auto setup = [&](host::Host& h, const char* user) {
    h.add_user(user, "research");
    const int pid = h.launch(user, exe);
    proto::DaemonConfig config;
    proto::AppConfig app;
    app.exe_path = exe;
    app.pairs = app_pairs;
    config.apps.push_back(app);
    h.daemon().add_config(proto::ConfigTrust::kUser, config);
    return pid;
  };
  const int pid1 = setup(rm1, "alice");
  const int pid2 = setup(rm2, "bob");
  rm2.listen(pid2, 9000);
  prod.add_user("ops", "research");
  const int dbd = prod.launch("ops", exe);
  prod.listen(dbd, 9000);

  // Scenario A: research-app -> research-app between research machines.
  const auto ok = net.start_flow(rm1, pid1, "10.1.0.2", 9000);
  net.run();
  std::printf("research-1 -> research-2:9000 (signed app)      %s\n",
              net.flow_delivered(ok) ? "DELIVERED" : "BLOCKED");

  // Scenario B: same app aimed at a production machine — the admin's
  // coarse boundary overrides the user's delegation.
  const auto bad = net.start_flow(rm1, pid1, "10.2.0.1", 9000);
  net.run();
  std::printf("research-1 -> production-db:9000 (same app)     %s\n",
              net.flow_delivered(bad) ? "DELIVERED" : "BLOCKED");

  // Scenario C: a different unsigned app on the research machine.
  rm1.add_user("carol", "research");
  const int rogue = rm1.launch("carol", "/usr/bin/rogue-tool");
  const auto rogue_flow = net.start_flow(rm1, rogue, "10.1.0.2", 9000);
  net.run();
  std::printf("research-1 -> research-2:9000 (unsigned app)    %s\n",
              net.flow_delivered(rogue_flow) ? "DELIVERED" : "BLOCKED");

  const bool correct = net.flow_delivered(ok) && !net.flow_delivered(bad) &&
                       !net.flow_delivered(rogue_flow);
  std::printf("\n%s\n", correct
                            ? "Delegation behaves exactly as §4 describes."
                            : "MISMATCH against the paper!");
  return correct ? 0 : 1;
}
