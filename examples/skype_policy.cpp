// Figure 2 end-to-end: the three controller configuration files
// (00-local-header, 50-skype, 99-local-footer) govern a LAN where users run
// web browsers, ssh and two versions of Skype.
//
// Reproduces the paper's narrative: approved apps talk internally, skype
// talks to skype, old skype versions are banned, and skype can never reach
// the server — all decided on application identity, not ports.
//
//   $ ./examples/skype_policy

#include <cstdio>
#include <string>

#include "core/network.hpp"

using namespace identxx;

namespace {

// The three .control files of Figure 2, concatenated in alphabetical order
// exactly as the controller reads them (§3.4).
constexpr char kFig2Policy[] = R"(
# ---- 00-local-header.control ----
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }" # a macro of apps

# default deny
block all

# allow connections outbound
pass from <int_hosts> \
  to !<int_hosts> \
  keep state

# allow all traffic from approved apps
pass from <int_hosts> \
  to <int_hosts> \
  with member(@src[name], $allowed) \
  keep state

# ---- 50-skype.control ----
table <skype_update> { 123.123.123.0/24 }

# skype to skype allowed
pass all \
  with eq(@src[name], skype) \
  with eq(@dst[name], skype)

# skype update feature
pass from any \
  to <skype_update> port 80 \
  with eq(@src[name], skype) \
  keep state

# ---- 99-local-footer.control ----
# no really old versions of skype
block all \
  with eq(@src[name], skype) \
  with lt(@src[version], 200)

# no skype to server
block from any \
  to <server> \
  with eq(@src[name], skype)
)";

int launch_named_app(host::Host& h, const std::string& user,
                     const std::string& exe, const std::string& name,
                     const std::string& version = "") {
  const int pid = h.launch(user, exe);
  proto::DaemonConfig config;
  proto::AppConfig app;
  app.exe_path = exe;
  app.pairs.emplace_back("name", name);
  if (!version.empty()) app.pairs.emplace_back("version", version);
  config.apps.push_back(app);
  h.daemon().add_config(proto::ConfigTrust::kSystem, config);
  return pid;
}

}  // namespace

int main() {
  std::printf("Figure 2: the skype policy, end to end\n\n%s\n", kFig2Policy);

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& desk_a = net.add_host("desk-a", "192.168.0.10");
  auto& desk_b = net.add_host("desk-b", "192.168.0.11");
  auto& server = net.add_host("server", "192.168.1.1");
  auto& update = net.add_host("skype-update", "123.123.123.5");
  auto& internet = net.add_host("internet-box", "8.8.8.8");
  for (auto* h : {&desk_a, &desk_b, &server, &update, &internet}) {
    net.link(*h, s1);
  }
  auto& controller = net.install_controller(kFig2Policy);

  desk_a.add_user("ann", "users");
  desk_b.add_user("ben", "users");
  server.add_user("www", "daemons");
  update.add_user("www", "daemons");
  internet.add_user("someone", "users");

  const int ann_skype =
      launch_named_app(desk_a, "ann", "/usr/bin/skype", "skype", "210");
  const int ann_old_skype =
      launch_named_app(desk_a, "ann", "/opt/old/skype", "skype", "190");
  const int ann_ssh = launch_named_app(desk_a, "ann", "/usr/bin/ssh", "ssh");
  const int ann_p2p =
      launch_named_app(desk_a, "ann", "/usr/bin/p2pshare", "p2pshare");
  const int ben_skype =
      launch_named_app(desk_b, "ben", "/usr/bin/skype", "skype", "205");
  const int ben_sshd =
      launch_named_app(desk_b, "ben", "/usr/sbin/sshd", "sshd");
  desk_b.listen(ben_skype, 5555);
  desk_b.listen(ben_sshd, 22);
  const int httpd = launch_named_app(server, "www", "/usr/sbin/httpd", "httpd");
  server.listen(httpd, 80);
  const int upd = launch_named_app(update, "www", "/bin/updsrv", "updsrv");
  update.listen(upd, 80);

  struct Scenario {
    const char* label;
    host::Host* src;
    int pid;
    const char* dst_ip;
    std::uint16_t dst_port;
    bool paper_expectation;
  };
  const Scenario scenarios[] = {
      {"skype(210) desk-a -> skype(205) desk-b:5555", &desk_a, ann_skype,
       "192.168.0.11", 5555, true},
      {"skype(190) desk-a -> skype(205) desk-b:5555", &desk_a, ann_old_skype,
       "192.168.0.11", 5555, false},
      {"skype(210) desk-a -> update-server:80      ", &desk_a, ann_skype,
       "123.123.123.5", 80, true},
      {"skype(190) desk-a -> update-server:80      ", &desk_a, ann_old_skype,
       "123.123.123.5", 80, false},
      {"skype(210) desk-a -> server:80             ", &desk_a, ann_skype,
       "192.168.1.1", 80, false},
      {"ssh        desk-a -> desk-b:22             ", &desk_a, ann_ssh,
       "192.168.0.11", 22, true},
      {"p2pshare   desk-a -> desk-b:22             ", &desk_a, ann_p2p,
       "192.168.0.11", 22, false},
      {"p2pshare   desk-a -> internet:80 (outbound)", &desk_a, ann_p2p,
       "8.8.8.8", 80, true},
  };

  std::printf("%-48s %-10s %s\n", "flow", "verdict", "matches paper?");
  bool all_match = true;
  for (const auto& s : scenarios) {
    const auto handle = net.start_flow(*s.src, s.pid, s.dst_ip, s.dst_port);
    net.run();
    const bool delivered = net.flow_delivered(handle);
    const bool match = delivered == s.paper_expectation;
    all_match &= match;
    std::printf("%-48s %-10s %s\n", s.label,
                delivered ? "DELIVERED" : "BLOCKED", match ? "yes" : "NO!");
  }
  std::printf("\n%s\n", all_match ? "All verdicts match Figure 2's narrative."
                                  : "MISMATCH against the paper!");
  std::printf("controller: %llu flows seen, %llu allowed, %llu blocked\n",
              static_cast<unsigned long long>(controller.stats().flows_seen),
              static_cast<unsigned long long>(controller.stats().flows_allowed),
              static_cast<unsigned long long>(
                  controller.stats().flows_blocked));
  return all_match ? 0 : 1;
}
