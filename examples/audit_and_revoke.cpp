// §1/§7: "the ability to delegate control and to override, audit, and
// revoke the delegation when necessary."
//
// This example exercises the administrator's side of delegation:
//   1. live traffic produces an audit log keyed by *principals* (users,
//      applications), not addresses;
//   2. per-flow usage accounting is read back from the switches' OpenFlow
//      counters;
//   3. when a user misbehaves, the administrator revokes that user's
//      installed flows at runtime (revoke_if) and tightens policy — the
//      next packet re-faces the controller and is blocked.
//
//   $ ./examples/audit_and_revoke

#include <cstdio>
#include <unordered_set>

#include "core/network.hpp"

using namespace identxx;

int main() {
  std::printf("§1/§7: override, audit, and revoke\n\n");

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& shared = net.add_host("shared-box", "10.0.0.5");
  auto& server = net.add_host("server", "10.0.0.2");
  net.link(shared, s1);
  net.link(server, s1);

  auto& controller = net.install_controller(
      "block all\n"
      "pass log from any to any port 9000 with eq(@src[userID], eve)\n"
      "pass from any to any port 9000 with eq(@src[userID], alice)\n");

  shared.add_user("alice", "staff");
  shared.add_user("eve", "staff");
  const int alice_pid = shared.launch("alice", "/usr/bin/sync-tool");
  const int eve_pid = shared.launch("eve", "/usr/bin/sync-tool");
  server.add_user("www", "daemons");
  const int srv = server.launch("www", "/bin/srv");
  server.listen(srv, 9000);

  // Both users open flows; eve's are log-flagged by policy.
  const auto alice_flow = net.start_flow(shared, alice_pid, "10.0.0.2", 9000);
  const auto eve_flow = net.start_flow(shared, eve_pid, "10.0.0.2", 9000);
  net.run();
  for (int i = 0; i < 3; ++i) {
    shared.send_flow_packet(eve_flow.flow, "bulk data", net::TcpFlags::kPsh);
  }
  shared.send_flow_packet(alice_flow.flow, "small sync", net::TcpFlags::kPsh);
  net.run();

  std::printf("audit log (principals, not addresses):\n");
  for (const auto& record : controller.audit_log()) {
    std::printf("  user=%-6s %-44s %s%s\n", record.src_user.c_str(),
                record.flow.to_string().c_str(),
                record.allowed ? "pass" : "block",
                record.logged ? "  [logged]" : "");
  }

  std::printf("\nper-flow usage from switch counters:\n");
  for (const auto& usage : controller.flow_usage()) {
    std::printf("  %-44s %llu packets, %llu bytes\n",
                usage.flow.to_string().c_str(),
                static_cast<unsigned long long>(usage.packets),
                static_cast<unsigned long long>(usage.bytes));
  }

  // The audit shows eve hammering the server.  Revoke exactly eve's flows:
  // collect her 5-tuples from the audit log, then surgically remove the
  // matching entries from every switch.
  std::unordered_set<net::FiveTuple> eve_flows;
  for (const auto& record : controller.audit_log()) {
    if (record.src_user == "eve" && record.allowed) {
      eve_flows.insert(record.flow);
    }
  }
  const std::size_t revoked = controller.revoke_if(
      [&eve_flows](const net::FiveTuple& flow) {
        return eve_flows.contains(flow);
      });
  // Override: tighten the policy before her next packet.
  controller.set_policy(pf::parse(
      "block all\npass from any to any port 9000 with eq(@src[userID], alice)\n",
      "tightened"));
  std::printf("\nrevoked %zu flow entr%s belonging to eve; policy tightened\n",
              revoked, revoked == 1 ? "y" : "ies");

  const auto before_eve = server.stats().flow_payloads_received;
  shared.send_flow_packet(eve_flow.flow, "more bulk", net::TcpFlags::kPsh);
  shared.send_flow_packet(alice_flow.flow, "still fine", net::TcpFlags::kPsh);
  net.run();

  const bool eve_cut = server.stats().flow_payloads_received == before_eve + 1;
  std::printf("after revocation: eve's packet %s, alice's packet %s\n",
              eve_cut ? "BLOCKED" : "delivered (!)",
              eve_cut ? "DELIVERED" : "uncertain");
  std::printf("\n%s\n", eve_cut
                            ? "Delegation stayed under the administrator's "
                              "full control, as §7 promises."
                            : "MISMATCH against the paper!");
  return eve_cut ? 0 : 1;
}
