// Figure 8: user- and application-specific rules — stopping Conficker.
//
// The Conficker worm attacked the Windows "Server" service (MS08-067).
// Fig 8's rule only admits flows where both ends run as the System user,
// the destination really is the Server service, and the destination OS has
// the MS08-067 patch installed — information only end-hosts have.
//
//   $ ./examples/conficker_mitigation

#include <cstdio>

#include "core/network.hpp"
#include "identxx/keys.hpp"

using namespace identxx;

namespace {

constexpr char kFig8Policy[] = R"(
table <lan> { 192.168.0.0/24 }
# default block everything
block all
# only allow ``system'' users in the LAN
pass from <lan> \
  with eq(@src[userID], system) \
  to <lan> \
  with eq(@dst[userID], system) \
  with eq(@dst[name], Server) \
  with includes(@dst[os-patch], MS08-067)
)";

host::Host& add_windows_box(core::Network& net, const std::string& name,
                            const std::string& ip, const char* patches,
                            sim::NodeId sw) {
  auto& h = net.add_host(name, ip);
  net.link(h, sw);
  h.add_user("system", "system");
  h.add_user("localuser", "users");
  const int services = h.launch("system", "/windows/system32/services.exe");
  proto::DaemonConfig config;
  proto::AppConfig app;
  app.exe_path = "/windows/system32/services.exe";
  app.pairs = {{"name", "Server"}};
  config.apps.push_back(app);
  h.daemon().add_config(proto::ConfigTrust::kSystem, config);
  h.daemon().add_host_fact(proto::keys::kOsPatch, patches);
  h.listen(services, 445);
  return h;
}

}  // namespace

int main() {
  std::printf("Figure 8: blocking Conficker with end-host information\n\n%s\n",
              kFig8Policy);

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& ws = add_windows_box(net, "workstation", "192.168.0.10",
                             "MS08-001 MS08-067", s1);
  auto& patched = add_windows_box(net, "patched-server", "192.168.0.20",
                                  "MS08-001 MS08-067", s1);
  auto& unpatched = add_windows_box(net, "unpatched-server", "192.168.0.21",
                                    "MS08-001", s1);
  auto& outside = net.add_host("internet-host", "203.0.113.7");
  net.link(outside, s1);
  outside.add_user("system", "system");

  net.install_controller(kFig8Policy);

  // Legitimate SMB from the workstation's System user.
  const int system_smb = ws.launch("system", "/windows/system32/svchost.exe");
  // The worm running under a compromised unprivileged account ("it is more
  // difficult to gain access as a super-user", §2 threat model).
  const int worm = ws.launch("localuser", "/tmp/conficker.exe");
  // The worm probing from the Internet at large.
  const int outside_worm = outside.launch("system", "/tmp/conficker.exe");

  struct Scenario {
    const char* label;
    host::Host* src;
    int pid;
    const char* dst;
    bool expected;
  };
  const Scenario scenarios[] = {
      {"system user  -> patched-server:445   ", &ws, system_smb,
       "192.168.0.20", true},
      {"system user  -> unpatched-server:445 ", &ws, system_smb,
       "192.168.0.21", false},
      {"worm (user)  -> patched-server:445   ", &ws, worm, "192.168.0.20",
       false},
      {"worm (inet)  -> patched-server:445   ", &outside, outside_worm,
       "192.168.0.20", false},
  };

  std::printf("%-40s verdict\n", "flow");
  bool all_ok = true;
  for (const auto& s : scenarios) {
    const auto h = net.start_flow(*s.src, s.pid, s.dst, 445);
    net.run();
    const bool delivered = net.flow_delivered(h);
    all_ok &= delivered == s.expected;
    std::printf("%-40s %s%s\n", s.label, delivered ? "DELIVERED" : "BLOCKED",
                delivered == s.expected ? "" : "  <-- MISMATCH");
  }
  std::printf("\n%s\n",
              all_ok ? "Unpatched services are quarantined; the worm's "
                       "lateral movement and inbound probes are blocked."
                     : "MISMATCH against the paper!");

  (void)patched;
  (void)unpatched;
  return all_ok ? 0 : 1;
}
