// Figures 6 + 7: trust delegation to a third party.
//
// "Secur", a security company, publishes signed firewall rules for
// applications (Fig 6 shows thunderbird's).  The administrator's single
// rule (Fig 7) trusts any application whose rules were approved by Secur —
// no per-application administration required.
//
//   $ ./examples/trust_delegation

#include <cstdio>
#include <string>

#include "core/network.hpp"
#include "crypto/schnorr.hpp"
#include "identxx/daemon_config.hpp"

using namespace identxx;

namespace {

/// What Secur ships for one application: its daemon-config @app block with
/// requirements and signature.
proto::DaemonConfig secur_bundle(const crypto::PrivateKey& secur,
                                 const std::string& exe,
                                 const std::string& name,
                                 const std::string& type,
                                 const std::string& requirements) {
  const std::string exe_hash = host::Host::image_hash(exe, "");
  const crypto::Signature sig =
      secur.sign(proto::signed_message({exe_hash, name, requirements}));
  proto::DaemonConfig config;
  proto::AppConfig app;
  app.exe_path = exe;
  app.pairs = {{"name", name},
               {"type", type},
               {"rule-maker", "Secur"},
               {"requirements", requirements},
               {"req-sig", sig.to_hex()}};
  config.apps.push_back(app);
  return config;
}

}  // namespace

int main() {
  std::printf("Figures 6+7: trust delegation to 'Secur'\n\n");
  const crypto::PrivateKey secur = crypto::PrivateKey::from_seed("Secur Inc.");

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& desk = net.add_host("desktop", "10.0.0.10");
  auto& mail = net.add_host("mail-server", "10.0.0.25");
  auto& web = net.add_host("web-server", "10.0.0.80");
  net.link(desk, s1);
  net.link(mail, s1);
  net.link(web, s1);

  // Fig 7 (30-secur.control): one rule covers every Secur-approved app.
  const std::string policy =
      "dict <pubkeys> { \\\n"
      "  Secur : " + secur.public_key().to_hex() + " \\\n"
      "}\n"
      "block all\n"
      "# Allow users to run any applications approved\n"
      "# by Secur and following rules Secur provides\n"
      "pass from any \\\n"
      "  with eq(@src[rule-maker], Secur) \\\n"
      "  with allowed(@src[requirements]) \\\n"
      "  with verify(@src[req-sig], \\\n"
      "    @pubkeys[Secur], \\\n"
      "    @src[exe-hash], \\\n"
      "    @src[app-name], \\\n"
      "    @src[requirements]) \\\n"
      "  to any\n";
  net.install_controller(policy);
  std::printf("admin policy (Fig 7):\n%s\n", policy.c_str());

  // Fig 6: Secur's bundle for thunderbird — email servers only.
  desk.add_user("alice", "staff");
  const int tb = desk.launch("alice", "/usr/bin/thunderbird");
  desk.daemon().add_config(
      proto::ConfigTrust::kSystem,
      secur_bundle(secur, "/usr/bin/thunderbird", "thunderbird",
                   "email-client",
                   "block all pass from any with eq(@src[name], thunderbird) "
                   "to any with eq(@dst[type], email-server)"));

  // A second Secur-approved app with different rules: a backup agent that
  // may only use port 8443.
  const int backup = desk.launch("alice", "/usr/bin/backupd");
  desk.daemon().add_config(
      proto::ConfigTrust::kSystem,
      secur_bundle(secur, "/usr/bin/backupd", "backupd", "backup",
                   "block all pass from any to any port 8443"));

  // An app Secur never reviewed.
  const int rogue = desk.launch("alice", "/usr/bin/unreviewed");

  mail.add_user("smtp", "daemons");
  const int smtpd = mail.launch("smtp", "/usr/sbin/smtpd");
  proto::DaemonConfig mail_cfg;
  proto::AppConfig mail_app;
  mail_app.exe_path = "/usr/sbin/smtpd";
  mail_app.pairs = {{"name", "smtpd"}, {"type", "email-server"}};
  mail_cfg.apps.push_back(mail_app);
  mail.daemon().add_config(proto::ConfigTrust::kSystem, mail_cfg);
  mail.listen(smtpd, 25);
  mail.listen(smtpd, 8443);

  web.add_user("www", "daemons");
  const int httpd = web.launch("www", "/usr/sbin/httpd");
  proto::DaemonConfig web_cfg;
  proto::AppConfig web_app;
  web_app.exe_path = "/usr/sbin/httpd";
  web_app.pairs = {{"name", "httpd"}, {"type", "web-server"}};
  web_cfg.apps.push_back(web_app);
  web.daemon().add_config(proto::ConfigTrust::kSystem, web_cfg);
  web.listen(httpd, 80);

  struct Scenario {
    const char* label;
    int pid;
    const char* dst;
    std::uint16_t port;
    bool expected;
  };
  const Scenario scenarios[] = {
      {"thunderbird -> mail-server:25 (email server) ", tb, "10.0.0.25", 25,
       true},
      {"thunderbird -> web-server:80  (not email)    ", tb, "10.0.0.80", 80,
       false},
      {"backupd     -> mail-server:8443              ", backup, "10.0.0.25",
       8443, true},
      {"backupd     -> web-server:80  (wrong port)   ", backup, "10.0.0.80",
       80, false},
      {"unreviewed  -> mail-server:25 (no Secur sig) ", rogue, "10.0.0.25", 25,
       false},
  };
  std::printf("%-48s verdict\n", "flow");
  bool all_ok = true;
  for (const auto& s : scenarios) {
    const auto h = net.start_flow(desk, s.pid, s.dst, s.port);
    net.run();
    const bool delivered = net.flow_delivered(h);
    all_ok &= delivered == s.expected;
    std::printf("%-48s %s%s\n", s.label, delivered ? "DELIVERED" : "BLOCKED",
                delivered == s.expected ? "" : "  <-- MISMATCH");
  }
  std::printf("\n%s\n",
              all_ok ? "One admin rule, per-app behaviour — delegation to a "
                       "trusted third party works."
                     : "MISMATCH against the paper!");
  return all_ok ? 0 : 1;
}
