// §3.5 run-time application pairs: distinguishing user clicks from
// background traffic.
//
// "This mechanism can be used by a web browser, for example, to distinguish
// between flows that were initiated in response to user mouse clicks and
// others that are not requested by a user."  The browser registers a
// per-flow key-value pair with the local ident++ daemon; the administrator
// blocks browser flows that no user asked for (malvertising beacons,
// trackers) without touching any other application.
//
//   $ ./examples/browser_clicks

#include <cstdio>

#include "core/network.hpp"

using namespace identxx;

int main() {
  std::printf("§3.5: per-flow application pairs — user clicks vs background "
              "traffic\n\n");

  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& desk = net.add_host("desktop", "10.0.0.10");
  auto& site = net.add_host("news-site", "10.0.0.20");
  auto& tracker = net.add_host("tracker", "10.0.0.66");
  net.link(desk, s1);
  net.link(site, s1);
  net.link(tracker, s1);

  // Browser flows need a user click; everything else (e.g. the mail
  // client) is governed by ordinary rules.
  auto& controller = net.install_controller(
      "block all\n"
      "pass from any to any with eq(@src[name], browser) \\\n"
      "  with eq(@src[user-click], true)\n"
      "pass from any to any port 993 with eq(@src[name], mail)\n");

  desk.add_user("alice", "staff");
  const int browser = desk.launch("alice", "/usr/bin/browser");
  proto::DaemonConfig config;
  proto::AppConfig app;
  app.exe_path = "/usr/bin/browser";
  app.pairs = {{"name", "browser"}};
  config.apps.push_back(app);
  desk.daemon().add_config(proto::ConfigTrust::kSystem, config);

  site.add_user("www", "daemons");
  const int httpd = site.launch("www", "/usr/sbin/httpd");
  site.listen(httpd, 443);
  tracker.add_user("www", "daemons");
  const int trackd = tracker.launch("www", "/usr/sbin/trackd");
  tracker.listen(trackd, 443);

  // Flow 1: alice clicks a link.  The browser tells the daemon about it
  // over the local socket (register_flow_pairs) *before* the SYN goes out.
  const auto clicked = desk.connect_flow(browser, site.ip(), 443);
  desk.register_flow_pairs(clicked, {{"user-click", "true"}});
  desk.send_flow_packet(clicked);
  net.run();

  // Flow 2: an embedded tracker fires a background beacon — same browser,
  // same machine, no click registered.
  const auto beacon = desk.connect_flow(browser, tracker.ip(), 443);
  desk.send_flow_packet(beacon);
  net.run();

  const bool clicked_ok = site.stats().flow_payloads_received > 0;
  const bool beacon_blocked = tracker.stats().flow_payloads_received == 0;
  std::printf("clicked navigation -> news-site:443   %s\n",
              clicked_ok ? "DELIVERED" : "BLOCKED");
  std::printf("background beacon  -> tracker:443     %s\n",
              beacon_blocked ? "BLOCKED" : "DELIVERED");
  std::printf("\naudit log:\n");
  for (const auto& record : controller.audit_log()) {
    std::printf("  %-44s app=%-8s %s\n", record.flow.to_string().c_str(),
                record.src_app.c_str(), record.allowed ? "pass" : "block");
  }

  const bool ok = clicked_ok && beacon_blocked;
  std::printf("\n%s\n", ok ? "The network enforced *user intent* — "
                             "information only the application had."
                           : "MISMATCH against the paper!");
  return ok ? 0 : 1;
}
