// Quickstart: the Figure 1 flow-setup sequence, narrated.
//
// Builds the smallest useful ident++ network — one client, one server, one
// OpenFlow switch, one controller — installs a user-aware policy that no
// conventional firewall can express, and walks one allowed and one blocked
// flow through the system.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/network.hpp"

using namespace identxx;

int main() {
  std::printf("ident++ quickstart: delegating network security with more "
              "information\n\n");

  // 1. Topology: client -- s1 -- server.
  core::Network net;
  const auto s1 = net.add_switch("s1");
  auto& client = net.add_host("client", "192.168.0.10");
  auto& server = net.add_host("server", "192.168.1.1");
  net.link(client, s1);
  net.link(server, s1);

  // 2. Policy: only user alice may reach the server, and only over HTTP.
  //    The principal here is the *user*, not an IP address (§1).
  auto& controller = net.install_controller(
      "table <server> { 192.168.1.1 }\n"
      "block all\n"
      "pass from any to <server> port 80 with eq(@src[userID], alice)\n");

  // 3. End-hosts: two users share the client machine; the server runs a
  //    web server listening on port 80.
  client.add_user("alice", "staff");
  client.add_user("bob", "staff");
  const int alice_curl = client.launch("alice", "/usr/bin/curl");
  const int bob_curl = client.launch("bob", "/usr/bin/curl");
  server.add_user("www", "daemons");
  const int httpd = server.launch("www", "/usr/sbin/httpd");
  server.listen(httpd, 80);

  // 4. alice opens a flow (Figure 1 steps 1-5 run inside net.run()).
  const auto alice_flow = net.start_flow(client, alice_curl, "192.168.1.1", 80);
  net.run();
  std::printf("alice -> server:80   %s\n",
              net.flow_delivered(alice_flow) ? "DELIVERED" : "BLOCKED");

  // 5. bob tries the same thing from the same machine and IP address.
  const auto bob_flow = net.start_flow(client, bob_curl, "192.168.1.1", 80);
  net.run();
  std::printf("bob   -> server:80   %s\n",
              net.flow_delivered(bob_flow) ? "DELIVERED" : "BLOCKED");

  // 6. What the controller saw (the audit trail of §1).
  std::printf("\ncontroller audit log:\n");
  for (const auto& record : controller.audit_log()) {
    std::printf("  [%8lld ns] %-40s user=%-8s %s  (%s)\n",
                static_cast<long long>(record.time),
                record.flow.to_string().c_str(), record.src_user.c_str(),
                record.allowed ? "pass " : "block", record.rule.c_str());
  }
  std::printf("\nstats: %llu queries sent, %llu responses, %llu entries "
              "installed, %llu flows allowed, %llu blocked\n",
              static_cast<unsigned long long>(controller.stats().queries_sent),
              static_cast<unsigned long long>(
                  controller.stats().responses_received),
              static_cast<unsigned long long>(
                  controller.stats().entries_installed),
              static_cast<unsigned long long>(controller.stats().flows_allowed),
              static_cast<unsigned long long>(
                  controller.stats().flows_blocked));
  return 0;
}
