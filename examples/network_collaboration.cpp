// §4 "Network Collaboration": two branches of one enterprise filter for
// each other over a bottleneck link.
//
// Branch B's controller augments ident++ responses leaving its network
// with an endorsement section; branch A's policy only forwards traffic to
// destinations B has vouched for — so junk destined to B is dropped at A,
// before it crosses the inter-branch link.
//
//   $ ./examples/network_collaboration

#include <cstdio>

#include "core/network.hpp"
#include "identxx/keys.hpp"

using namespace identxx;

int main() {
  std::printf("§4 network collaboration: branch B filters at branch A\n\n");

  core::Network net;
  const auto sA = net.add_switch("branchA-switch");
  const auto sB = net.add_switch("branchB-switch");
  auto& clientA = net.add_host("clientA", "10.1.0.1");
  auto& serverB = net.add_host("serverB", "10.2.0.1");
  auto& printerB = net.add_host("printerB", "10.2.0.9");
  net.link(clientA, sA);
  // The bottleneck inter-branch link (higher latency).
  net.link(sA, sB, 5 * sim::kMillisecond);
  net.link(serverB, sB);
  net.link(printerB, sB);

  // Branch A only forwards across the bottleneck when branch B endorsed
  // the destination as accepting-external.
  ctrl::ControllerConfig confA;
  confA.name = "branchA";
  auto& ctrlA = net.install_domain_controller(
      "block all\n"
      "pass from any to any with eq(@dst[accepts-external], yes) \\\n"
      "  with eq(*@dst[network], branchB)\n",
      {sA}, confA);

  ctrl::ControllerConfig confB;
  confB.name = "branchB";
  auto& ctrlB = net.install_domain_controller("pass all\n", {sB}, confB);

  // B's controller augments responses transiting toward A (§2: a controller
  // adds an empty line and its own key-value pairs): it names its network
  // and marks which hosts accept external traffic.
  ctrlB.set_response_augmenter(
      [&serverB](const proto::Response&, const net::FiveTuple& flow)
          -> std::optional<proto::Section> {
        proto::Section section;
        section.add(proto::keys::kNetwork, "branchB");
        section.add("accepts-external",
                    flow.src_ip == serverB.ip() ? "yes" : "no");
        return section;
      });

  clientA.add_user("alice", "staff");
  const int pid = clientA.launch("alice", "/usr/bin/tool");
  serverB.add_user("www", "daemons");
  const int srv = serverB.launch("www", "/bin/srv");
  serverB.listen(srv, 80);
  printerB.add_user("lp", "daemons");
  const int lp = printerB.launch("lp", "/bin/lpd");
  printerB.listen(lp, 631);

  // Flow 1: to the public server B vouches for.
  const auto to_server = net.start_flow(clientA, pid, "10.2.0.1", 80);
  net.run();
  std::printf("clientA -> serverB:80   %s\n",
              net.flow_delivered(to_server) ? "DELIVERED" : "BLOCKED");

  // Flow 2: to B's internal printer — B does not vouch, A drops locally.
  const auto to_printer = net.start_flow(clientA, pid, "10.2.0.9", 631);
  net.run();
  std::printf("clientA -> printerB:631 %s\n",
              net.flow_delivered(to_printer) ? "DELIVERED" : "BLOCKED");

  std::printf("\nbranchB augmented %llu responses; branchA blocked %llu "
              "flows before the bottleneck link\n",
              static_cast<unsigned long long>(
                  ctrlB.stats().responses_augmented),
              static_cast<unsigned long long>(ctrlA.stats().flows_blocked));

  const bool ok =
      net.flow_delivered(to_server) && !net.flow_delivered(to_printer);
  std::printf("%s\n", ok ? "Collaboration works: the unwanted flow never "
                           "crossed the inter-branch link."
                         : "MISMATCH against the paper!");
  return ok ? 0 : 1;
}
