# Empty dependencies file for example_browser_clicks.
# This may be replaced when dependencies are built.
