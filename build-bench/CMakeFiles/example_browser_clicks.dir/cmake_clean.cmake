file(REMOVE_RECURSE
  "CMakeFiles/example_browser_clicks.dir/examples/browser_clicks.cpp.o"
  "CMakeFiles/example_browser_clicks.dir/examples/browser_clicks.cpp.o.d"
  "browser_clicks"
  "browser_clicks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_browser_clicks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
