file(REMOVE_RECURSE
  "CMakeFiles/example_research_delegation.dir/examples/research_delegation.cpp.o"
  "CMakeFiles/example_research_delegation.dir/examples/research_delegation.cpp.o.d"
  "research_delegation"
  "research_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_research_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
