# Empty dependencies file for example_research_delegation.
# This may be replaced when dependencies are built.
