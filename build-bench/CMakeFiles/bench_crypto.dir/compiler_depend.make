# Empty compiler generated dependencies file for bench_crypto.
# This may be replaced when dependencies are built.
