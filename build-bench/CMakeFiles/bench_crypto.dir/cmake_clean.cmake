file(REMOVE_RECURSE
  "CMakeFiles/bench_crypto.dir/bench/bench_crypto.cpp.o"
  "CMakeFiles/bench_crypto.dir/bench/bench_crypto.cpp.o.d"
  "bench_crypto"
  "bench_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
