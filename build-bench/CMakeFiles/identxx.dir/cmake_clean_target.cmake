file(REMOVE_RECURSE
  "libidentxx.a"
)
