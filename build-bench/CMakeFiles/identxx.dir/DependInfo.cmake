
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/admission.cpp" "CMakeFiles/identxx.dir/src/controller/admission.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/controller/admission.cpp.o.d"
  "/root/repo/src/controller/admission_controller.cpp" "CMakeFiles/identxx.dir/src/controller/admission_controller.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/controller/admission_controller.cpp.o.d"
  "/root/repo/src/controller/baselines.cpp" "CMakeFiles/identxx.dir/src/controller/baselines.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/controller/baselines.cpp.o.d"
  "/root/repo/src/controller/identxx_controller.cpp" "CMakeFiles/identxx.dir/src/controller/identxx_controller.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/controller/identxx_controller.cpp.o.d"
  "/root/repo/src/core/network.cpp" "CMakeFiles/identxx.dir/src/core/network.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/core/network.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "CMakeFiles/identxx.dir/src/core/scenario.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/core/scenario.cpp.o.d"
  "/root/repo/src/crypto/ec.cpp" "CMakeFiles/identxx.dir/src/crypto/ec.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/crypto/ec.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/identxx.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "CMakeFiles/identxx.dir/src/crypto/schnorr.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/crypto/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/identxx.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/u256.cpp" "CMakeFiles/identxx.dir/src/crypto/u256.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/crypto/u256.cpp.o.d"
  "/root/repo/src/host/host.cpp" "CMakeFiles/identxx.dir/src/host/host.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/host/host.cpp.o.d"
  "/root/repo/src/identxx/daemon.cpp" "CMakeFiles/identxx.dir/src/identxx/daemon.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/identxx/daemon.cpp.o.d"
  "/root/repo/src/identxx/daemon_config.cpp" "CMakeFiles/identxx.dir/src/identxx/daemon_config.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/identxx/daemon_config.cpp.o.d"
  "/root/repo/src/identxx/dict.cpp" "CMakeFiles/identxx.dir/src/identxx/dict.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/identxx/dict.cpp.o.d"
  "/root/repo/src/identxx/wire.cpp" "CMakeFiles/identxx.dir/src/identxx/wire.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/identxx/wire.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "CMakeFiles/identxx.dir/src/net/ipv4.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/net/ipv4.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "CMakeFiles/identxx.dir/src/net/packet.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/net/packet.cpp.o.d"
  "/root/repo/src/openflow/flow_table.cpp" "CMakeFiles/identxx.dir/src/openflow/flow_table.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/openflow/flow_table.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "CMakeFiles/identxx.dir/src/openflow/match.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/openflow/match.cpp.o.d"
  "/root/repo/src/openflow/switch.cpp" "CMakeFiles/identxx.dir/src/openflow/switch.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/openflow/switch.cpp.o.d"
  "/root/repo/src/openflow/topology.cpp" "CMakeFiles/identxx.dir/src/openflow/topology.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/openflow/topology.cpp.o.d"
  "/root/repo/src/openflow/wire.cpp" "CMakeFiles/identxx.dir/src/openflow/wire.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/openflow/wire.cpp.o.d"
  "/root/repo/src/pf/control_files.cpp" "CMakeFiles/identxx.dir/src/pf/control_files.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/pf/control_files.cpp.o.d"
  "/root/repo/src/pf/eval.cpp" "CMakeFiles/identxx.dir/src/pf/eval.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/pf/eval.cpp.o.d"
  "/root/repo/src/pf/functions.cpp" "CMakeFiles/identxx.dir/src/pf/functions.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/pf/functions.cpp.o.d"
  "/root/repo/src/pf/lexer.cpp" "CMakeFiles/identxx.dir/src/pf/lexer.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/pf/lexer.cpp.o.d"
  "/root/repo/src/pf/parser.cpp" "CMakeFiles/identxx.dir/src/pf/parser.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/pf/parser.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/identxx.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "CMakeFiles/identxx.dir/src/util/hex.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/util/hex.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/identxx.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/identxx.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/identxx.dir/src/util/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
