# Empty dependencies file for identxx.
# This may be replaced when dependencies are built.
