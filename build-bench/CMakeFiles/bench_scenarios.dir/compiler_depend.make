# Empty compiler generated dependencies file for bench_scenarios.
# This may be replaced when dependencies are built.
