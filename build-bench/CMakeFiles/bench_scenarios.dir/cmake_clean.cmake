file(REMOVE_RECURSE
  "CMakeFiles/bench_scenarios.dir/bench/bench_scenarios.cpp.o"
  "CMakeFiles/bench_scenarios.dir/bench/bench_scenarios.cpp.o.d"
  "bench_scenarios"
  "bench_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
