file(REMOVE_RECURSE
  "CMakeFiles/pfeval.dir/tools/pfeval.cpp.o"
  "CMakeFiles/pfeval.dir/tools/pfeval.cpp.o.d"
  "pfeval"
  "pfeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfeval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
