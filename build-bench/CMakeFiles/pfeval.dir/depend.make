# Empty dependencies file for pfeval.
# This may be replaced when dependencies are built.
