# Empty dependencies file for identxx_sim.
# This may be replaced when dependencies are built.
