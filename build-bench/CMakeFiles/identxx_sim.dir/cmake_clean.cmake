file(REMOVE_RECURSE
  "CMakeFiles/identxx_sim.dir/tools/identxx_sim.cpp.o"
  "CMakeFiles/identxx_sim.dir/tools/identxx_sim.cpp.o.d"
  "identxx_sim"
  "identxx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identxx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
