# Empty compiler generated dependencies file for openflow_test.
# This may be replaced when dependencies are built.
