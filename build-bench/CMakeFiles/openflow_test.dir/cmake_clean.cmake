file(REMOVE_RECURSE
  "CMakeFiles/openflow_test.dir/tests/openflow_test.cpp.o"
  "CMakeFiles/openflow_test.dir/tests/openflow_test.cpp.o.d"
  "openflow_test"
  "openflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
