# Empty compiler generated dependencies file for bench_policy_eval.
# This may be replaced when dependencies are built.
