file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_eval.dir/bench/bench_policy_eval.cpp.o"
  "CMakeFiles/bench_policy_eval.dir/bench/bench_policy_eval.cpp.o.d"
  "bench_policy_eval"
  "bench_policy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
