# Empty dependencies file for example_network_collaboration.
# This may be replaced when dependencies are built.
