file(REMOVE_RECURSE
  "CMakeFiles/example_network_collaboration.dir/examples/network_collaboration.cpp.o"
  "CMakeFiles/example_network_collaboration.dir/examples/network_collaboration.cpp.o.d"
  "network_collaboration"
  "network_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
