file(REMOVE_RECURSE
  "CMakeFiles/bench_identxx_proto.dir/bench/bench_identxx_proto.cpp.o"
  "CMakeFiles/bench_identxx_proto.dir/bench/bench_identxx_proto.cpp.o.d"
  "bench_identxx_proto"
  "bench_identxx_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identxx_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
