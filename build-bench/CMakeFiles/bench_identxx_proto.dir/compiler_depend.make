# Empty compiler generated dependencies file for bench_identxx_proto.
# This may be replaced when dependencies are built.
