file(REMOVE_RECURSE
  "CMakeFiles/signctl.dir/tools/signctl.cpp.o"
  "CMakeFiles/signctl.dir/tools/signctl.cpp.o.d"
  "signctl"
  "signctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
