# Empty compiler generated dependencies file for signctl.
# This may be replaced when dependencies are built.
