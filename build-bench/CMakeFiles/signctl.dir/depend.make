# Empty dependencies file for signctl.
# This may be replaced when dependencies are built.
