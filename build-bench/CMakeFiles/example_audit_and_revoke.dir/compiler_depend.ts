# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_audit_and_revoke.
