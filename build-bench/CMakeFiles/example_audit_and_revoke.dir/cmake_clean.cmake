file(REMOVE_RECURSE
  "CMakeFiles/example_audit_and_revoke.dir/examples/audit_and_revoke.cpp.o"
  "CMakeFiles/example_audit_and_revoke.dir/examples/audit_and_revoke.cpp.o.d"
  "audit_and_revoke"
  "audit_and_revoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_audit_and_revoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
