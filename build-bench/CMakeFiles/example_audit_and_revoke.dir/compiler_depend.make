# Empty compiler generated dependencies file for example_audit_and_revoke.
# This may be replaced when dependencies are built.
