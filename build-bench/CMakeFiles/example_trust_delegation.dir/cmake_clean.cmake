file(REMOVE_RECURSE
  "CMakeFiles/example_trust_delegation.dir/examples/trust_delegation.cpp.o"
  "CMakeFiles/example_trust_delegation.dir/examples/trust_delegation.cpp.o.d"
  "trust_delegation"
  "trust_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trust_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
