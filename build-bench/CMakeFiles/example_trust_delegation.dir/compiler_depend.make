# Empty compiler generated dependencies file for example_trust_delegation.
# This may be replaced when dependencies are built.
