file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_table.dir/bench/bench_flow_table.cpp.o"
  "CMakeFiles/bench_flow_table.dir/bench/bench_flow_table.cpp.o.d"
  "bench_flow_table"
  "bench_flow_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
