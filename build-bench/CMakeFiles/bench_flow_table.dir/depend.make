# Empty dependencies file for bench_flow_table.
# This may be replaced when dependencies are built.
