# Empty dependencies file for example_pipeline_composition.
# This may be replaced when dependencies are built.
