file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_composition.dir/examples/pipeline_composition.cpp.o"
  "CMakeFiles/example_pipeline_composition.dir/examples/pipeline_composition.cpp.o.d"
  "pipeline_composition"
  "pipeline_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
