file(REMOVE_RECURSE
  "CMakeFiles/host_test.dir/tests/host_test.cpp.o"
  "CMakeFiles/host_test.dir/tests/host_test.cpp.o.d"
  "host_test"
  "host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
