# Empty compiler generated dependencies file for host_test.
# This may be replaced when dependencies are built.
