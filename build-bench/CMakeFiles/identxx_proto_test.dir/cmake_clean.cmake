file(REMOVE_RECURSE
  "CMakeFiles/identxx_proto_test.dir/tests/identxx_proto_test.cpp.o"
  "CMakeFiles/identxx_proto_test.dir/tests/identxx_proto_test.cpp.o.d"
  "identxx_proto_test"
  "identxx_proto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identxx_proto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
