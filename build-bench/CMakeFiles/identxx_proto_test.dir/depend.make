# Empty dependencies file for identxx_proto_test.
# This may be replaced when dependencies are built.
