file(REMOVE_RECURSE
  "CMakeFiles/openflow_wire_test.dir/tests/openflow_wire_test.cpp.o"
  "CMakeFiles/openflow_wire_test.dir/tests/openflow_wire_test.cpp.o.d"
  "openflow_wire_test"
  "openflow_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openflow_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
