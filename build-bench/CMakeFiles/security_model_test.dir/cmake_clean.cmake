file(REMOVE_RECURSE
  "CMakeFiles/security_model_test.dir/tests/security_model_test.cpp.o"
  "CMakeFiles/security_model_test.dir/tests/security_model_test.cpp.o.d"
  "security_model_test"
  "security_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
