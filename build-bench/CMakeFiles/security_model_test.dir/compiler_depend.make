# Empty compiler generated dependencies file for security_model_test.
# This may be replaced when dependencies are built.
