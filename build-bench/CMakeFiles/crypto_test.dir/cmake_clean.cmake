file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/tests/crypto_test.cpp.o"
  "CMakeFiles/crypto_test.dir/tests/crypto_test.cpp.o.d"
  "crypto_test"
  "crypto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
