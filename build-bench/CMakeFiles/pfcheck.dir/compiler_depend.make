# Empty compiler generated dependencies file for pfcheck.
# This may be replaced when dependencies are built.
