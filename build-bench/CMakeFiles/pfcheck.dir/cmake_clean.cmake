file(REMOVE_RECURSE
  "CMakeFiles/pfcheck.dir/tools/pfcheck.cpp.o"
  "CMakeFiles/pfcheck.dir/tools/pfcheck.cpp.o.d"
  "pfcheck"
  "pfcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
