file(REMOVE_RECURSE
  "CMakeFiles/admission_test.dir/tests/admission_test.cpp.o"
  "CMakeFiles/admission_test.dir/tests/admission_test.cpp.o.d"
  "admission_test"
  "admission_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
