# Empty compiler generated dependencies file for admission_test.
# This may be replaced when dependencies are built.
