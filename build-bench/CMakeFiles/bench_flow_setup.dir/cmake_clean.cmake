file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_setup.dir/bench/bench_flow_setup.cpp.o"
  "CMakeFiles/bench_flow_setup.dir/bench/bench_flow_setup.cpp.o.d"
  "bench_flow_setup"
  "bench_flow_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
