# Empty compiler generated dependencies file for bench_flow_setup.
# This may be replaced when dependencies are built.
