file(REMOVE_RECURSE
  "CMakeFiles/example_skype_policy.dir/examples/skype_policy.cpp.o"
  "CMakeFiles/example_skype_policy.dir/examples/skype_policy.cpp.o.d"
  "skype_policy"
  "skype_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_skype_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
