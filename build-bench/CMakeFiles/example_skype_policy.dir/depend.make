# Empty dependencies file for example_skype_policy.
# This may be replaced when dependencies are built.
