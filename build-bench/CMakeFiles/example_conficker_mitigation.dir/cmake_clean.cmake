file(REMOVE_RECURSE
  "CMakeFiles/example_conficker_mitigation.dir/examples/conficker_mitigation.cpp.o"
  "CMakeFiles/example_conficker_mitigation.dir/examples/conficker_mitigation.cpp.o.d"
  "conficker_mitigation"
  "conficker_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_conficker_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
