# Empty dependencies file for example_conficker_mitigation.
# This may be replaced when dependencies are built.
