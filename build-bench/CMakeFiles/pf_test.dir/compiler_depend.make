# Empty compiler generated dependencies file for pf_test.
# This may be replaced when dependencies are built.
