file(REMOVE_RECURSE
  "CMakeFiles/pf_test.dir/tests/pf_test.cpp.o"
  "CMakeFiles/pf_test.dir/tests/pf_test.cpp.o.d"
  "pf_test"
  "pf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
