// signctl — the delegate's side of authenticated delegation (Figs 4-7).
//
// A researcher (Fig 4) or third-party security company (Fig 6) uses this to
// produce the signed @app configuration block that their users drop into
// the ident++ daemon's config directory, and the <pubkeys> dict line the
// administrator adds to the controller policy.
//
//   # show the public key for a signing seed:
//   $ signctl pubkey --seed "research-group-key"
//
//   # sign an application's requirements:
//   $ signctl sign --seed "research-group-key" <backslash>
//       --exe /usr/bin/research-app --name research-app <backslash>
//       --requirements "..." <backslash>
//       [--image-seed ""]
//
// The executable hash is computed exactly as the simulated hosts compute it
// (host::Host::image_hash), so the emitted block verifies in-simulation.

#include <cstdio>
#include <cstring>
#include <string>

#include "crypto/schnorr.hpp"
#include "host/host.hpp"
#include "identxx/daemon_config.hpp"
#include "util/error.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: signctl pubkey --seed <seed>\n"
               "       signctl sign --seed <seed> --exe <path> --name <app>\n"
               "               --requirements <rules> [--image-seed <seed>]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  std::string seed, exe, name, requirements, image_seed;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw identxx::Error("missing value after " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--seed") seed = next();
      else if (arg == "--exe") exe = next();
      else if (arg == "--name") name = next();
      else if (arg == "--requirements") requirements = next();
      else if (arg == "--image-seed") image_seed = next();
      else return usage();
    } catch (const identxx::Error& e) {
      std::fprintf(stderr, "signctl: %s\n", e.what());
      return 1;
    }
  }
  if (seed.empty()) return usage();
  const identxx::crypto::PrivateKey key =
      identxx::crypto::PrivateKey::from_seed(seed);

  if (mode == "pubkey") {
    std::printf("# add to the controller policy:\n");
    std::printf("dict <pubkeys> { signer : %s }\n",
                key.public_key().to_hex().c_str());
    return 0;
  }
  if (mode == "sign") {
    if (exe.empty() || name.empty() || requirements.empty()) return usage();
    const std::string exe_hash =
        identxx::host::Host::image_hash(exe, image_seed);
    const identxx::crypto::Signature sig = key.sign(
        identxx::proto::signed_message({exe_hash, name, requirements}));
    std::printf("# daemon configuration block (drop into /etc/identxx):\n");
    std::printf("@app %s {\n", exe.c_str());
    std::printf("name : %s\n", name.c_str());
    std::printf("requirements : %s\n", requirements.c_str());
    std::printf("req-sig : %s\n", sig.to_hex().c_str());
    std::printf("}\n\n");
    std::printf("# controller-side verification (Fig 5 shape):\n");
    std::printf("#   with allowed(@src[requirements])\n");
    std::printf("#   with verify(@src[req-sig], @pubkeys[signer],\n");
    std::printf("#     @src[exe-hash], @src[app-name], @src[requirements])\n");
    std::printf("# exe-hash the daemon will report: %s\n", exe_hash.c_str());
    std::printf("# public key: %s\n", key.public_key().to_hex().c_str());
    return 0;
  }
  return usage();
}
