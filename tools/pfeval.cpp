// pfeval — evaluate a PF+=2 policy against a hypothetical flow.
//
// Lets an administrator answer "what would the controller decide?" without
// touching the network: supply the policy file(s), the flow 5-tuple, and
// the key-value pairs the two daemons would return.
//
//   $ pfeval --policy 50-skype.control <backslash>
//            --flow tcp:192.168.0.10:40000:192.168.0.11:5555 <backslash>
//            --src name=skype,version=210 --dst name=skype
//   pass (rule at 50-skype.control:5) [keep-state=no quick=no log=no]
//
// Exit status: 0 = pass, 2 = block, 1 = usage/parse error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pf/control_files.hpp"
#include "pf/eval.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace identxx;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// "name=skype,version=210" -> one response section.
proto::ResponseDict parse_pairs(std::string_view spec) {
  proto::Response response;
  proto::Section section;
  for (const auto item : util::split(spec, ',')) {
    if (util::trim(item).empty()) continue;
    const auto [key, value] = util::split_once(item, '=');
    if (!value) throw Error("expected key=value, got '" + std::string(item) + "'");
    section.add(std::string(util::trim(key)), std::string(util::trim(*value)));
  }
  response.append_section(std::move(section));
  return proto::ResponseDict(response);
}

/// "tcp:SRC:SPORT:DST:DPORT".
net::FiveTuple parse_flow(std::string_view spec) {
  const auto parts = util::split(spec, ':');
  if (parts.size() != 5) {
    throw Error("flow must be proto:src_ip:src_port:dst_ip:dst_port");
  }
  net::FiveTuple flow;
  if (util::iequals(parts[0], "tcp")) {
    flow.proto = net::IpProto::kTcp;
  } else if (util::iequals(parts[0], "udp")) {
    flow.proto = net::IpProto::kUdp;
  } else {
    throw Error("unknown protocol '" + std::string(parts[0]) + "'");
  }
  const auto src = net::Ipv4Address::parse(parts[1]);
  const auto sport = util::parse_u64(parts[2]);
  const auto dst = net::Ipv4Address::parse(parts[3]);
  const auto dport = util::parse_u64(parts[4]);
  if (!src || !dst || !sport || *sport > 65535 || !dport || *dport > 65535) {
    throw Error("bad address or port in flow spec");
  }
  flow.src_ip = *src;
  flow.dst_ip = *dst;
  flow.src_port = static_cast<std::uint16_t>(*sport);
  flow.dst_port = static_cast<std::uint16_t>(*dport);
  return flow;
}

int usage() {
  std::fprintf(stderr,
               "usage: pfeval --policy <file.control> [--policy <more>...]\n"
               "              --flow proto:src_ip:sport:dst_ip:dport\n"
               "              [--src k=v,k=v...] [--dst k=v,k=v...]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<pf::ControlFile> files;
  pf::FlowContext ctx;
  bool have_flow = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value after " + std::string(arg));
        return argv[++i];
      };
      if (arg == "--policy") {
        const std::string path = next();
        files.push_back({path, read_file(path)});
      } else if (arg == "--flow") {
        ctx.flow = parse_flow(next());
        have_flow = true;
      } else if (arg == "--src") {
        ctx.src = parse_pairs(next());
      } else if (arg == "--dst") {
        ctx.dst = parse_pairs(next());
      } else {
        return usage();
      }
    }
    if (files.empty() || !have_flow) return usage();

    const pf::PolicyEngine engine(pf::load_control_files(std::move(files)));
    const pf::Verdict verdict = engine.evaluate(ctx);
    if (verdict.rule != nullptr) {
      std::printf("%s (rule at %s:%zu) [keep-state=%s quick=%s log=%s]\n",
                  pf::to_string(verdict.action).c_str(),
                  verdict.rule->source_label.c_str(), verdict.rule->line,
                  verdict.keep_state ? "yes" : "no",
                  verdict.quick ? "yes" : "no", verdict.log ? "yes" : "no");
    } else {
      std::printf("%s (default: no rule matched)\n",
                  pf::to_string(verdict.action).c_str());
    }
    return verdict.allowed() ? 0 : 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "pfeval: %s\n", e.what());
    return 1;
  }
}
