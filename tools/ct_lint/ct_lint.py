#!/usr/bin/env python3
"""ct_lint — secret-taint static analysis for the crypto sources.

Walks the crypto translation units and flags code where secret data can
reach a timing side channel:

  branch   a branch/loop/switch condition depends on a tainted value
  index    a memory access is indexed by a tainted value
  divmod   a variable-time operator (/ or %) has a tainted operand
  call     a tainted value is passed to a function that is neither
           certified nor itself under analysis
  wipe     a local holding raw secret bytes is never secure_wipe()d

Taint sources
  * parameters named in a `// ct-lint: secret(a, b)` annotation on the
    function definition;
  * the result of any `expose_secret()` call (the only accessor of
    `ct::secret<T>`, src/crypto/ct.hpp).

Taint propagates through assignments, compound assignments, out-params of
certified primitives, `memcpy`, and method calls (a tainted argument
taints the receiver object).  It is *removed* by `declassify…` calls and
by calls to functions annotated `public-return` (their bodies declassify
internally — the annotation is checked where the function is defined).

Annotations (in a `//` comment):
  ct-lint: certified [secret(p, ...)] [public-return]
      on a function definition: the function is a certified constant-time
      primitive; tainted arguments may flow into it.  Its own body is
      still analyzed, with the `secret(...)` parameters seeded as tainted.
  ct-lint: secret(p, ...) [public-return]
      as above minus the "certified" claim: the function is analyzed and
      may receive taint, but is not part of the certified core.
  ct-lint: allow(rule, ...) -- suppress findings of those rules on the
      same source line.  Keep every use justified in an adjacent comment.

Known-audited callees live in certified.txt next to this script; the
committed baseline.txt (empty for the sign path) lists tolerated
findings as `file:function:rule` globs.

Usage:
  ct_lint.py [--repo DIR] [--baseline FILE] [--certified FILE] [files...]
  ct_lint.py --self-test
Exit codes: 0 clean, 1 findings outside the baseline, 2 usage/self-test
failure.
"""

from __future__ import annotations

import argparse
import fnmatch
import pathlib
import re
import sys

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "alignof", "decltype", "defined", "new", "delete", "else", "do",
    "static_assert", "noexcept", "assert", "typedef", "using", "template",
}

ANNOT_RE = re.compile(r"//\s*ct-lint:\s*(.*?)\s*$")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
CALL_RE = re.compile(r"\b([A-Za-z_][\w:]*)\s*\(")
TMPL_CALL_RE = re.compile(r"\b([A-Za-z_][\w:]*)\s*<[^;(){}=]*>\s*\(")
INDEX_RE = re.compile(r"\b[A-Za-z_][\w.]*\s*\[([^\]]+)\]")
DIVMOD_RE = re.compile(r"(\w+)(?:\[[^\]]*\])?\s*([/%])(?!=?\s*[/*])\s*(\w+)")
ASSIGN_RE = re.compile(
    r"([A-Za-z_][\w.]*)\s*(?:\[[^\]]*\])?\s*"
    r"(=|\+=|-=|\*=|\|=|&=|\^=|<<=|>>=)(?!=)\s*(.+)$",
    re.S,
)
DECL_INIT_RE = re.compile(
    r"(?:const\s+)?([A-Za-z_][\w:<>,\s]*?)\s*(&{0,2})\s*"
    r"\b([A-Za-z_]\w*)\s*[({=]\s*(.*)$",
    re.S,
)
WIPE_RE = re.compile(r"secure_wipe\s*\(\s*([A-Za-z_][\w.]*)")
METHOD_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(\w+)\s*\(")
WIPE_TYPES_RE = re.compile(
    r"^(?:const\s+)?(U256|Digest|auto|std::array<\s*(?:std::)?uint8_t[^;=]*>)\s*$")


class Annotation:
    def __init__(self) -> None:
        self.certified = False
        self.public_return = False
        self.secret_params: list[str] = []
        self.allow: set[str] = set()

    @staticmethod
    def parse(text: str) -> "Annotation":
        a = Annotation()
        if re.search(r"\bcertified\b", text):
            a.certified = True
        if re.search(r"\bpublic-return\b", text):
            a.public_return = True
        m = re.search(r"\bsecret\s*\(([^)]*)\)", text)
        if m:
            a.secret_params = [p.strip() for p in m.group(1).split(",") if p.strip()]
        m = re.search(r"\ballow\s*\(([^)]*)\)", text)
        if m:
            a.allow = {p.strip() for p in m.group(1).split(",") if p.strip()}
        return a

    def merge(self, other: "Annotation") -> None:
        self.certified |= other.certified
        self.public_return |= other.public_return
        self.secret_params += other.secret_params
        self.allow |= other.allow


class Function:
    def __init__(self, name: str, path: str, header: str, start_line: int,
                 annotation: Annotation) -> None:
        self.name = name
        self.path = path
        self.header = header
        self.start_line = start_line
        self.annotation = annotation
        # (line_number, statement_text, allowed_rules)
        self.statements: list[tuple[int, str, set[str]]] = []
        self.params = self._parse_params(header)

    @staticmethod
    def _parse_params(header: str) -> list[str]:
        lparen = header.find("(")
        if lparen < 0:
            return []
        depth = 0
        end = -1
        for i in range(lparen, len(header)):
            if header[i] == "(":
                depth += 1
            elif header[i] == ")":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end < 0:
            return []
        inner = header[lparen + 1:end]
        params = []
        depth = 0
        chunk = ""
        for ch in inner:
            if ch in "<([":
                depth += 1
            elif ch in ">)]":
                depth -= 1
            if ch == "," and depth == 0:
                params.append(chunk)
                chunk = ""
            else:
                chunk += ch
        if chunk.strip():
            params.append(chunk)
        names = []
        for p in params:
            p = p.split("=")[0].strip()
            idents = IDENT_RE.findall(p)
            if idents:
                names.append(idents[-1])
        return names


def strip_line(raw: str) -> tuple[str, Annotation | None]:
    """Remove comments/strings from one line; return (code, annotation)."""
    annotation = None
    m = ANNOT_RE.search(raw)
    if m:
        annotation = Annotation.parse(m.group(1))
    # Strip string and char literals so their contents can't confuse us.
    code = re.sub(r'"(\\.|[^"\\])*"', '""', raw)
    code = re.sub(r"'(\\.|[^'\\])*'", "''", code)
    # Line comments.
    code = re.sub(r"//.*$", "", code)
    return code, annotation


def parse_functions(path: pathlib.Path) -> list[Function]:
    """Split a C++ source into functions with per-statement bodies.

    Token-level, not a real parser: good enough for this codebase's style
    (clang-format, one statement per line or clean multi-line statements),
    and locked down by the fixture self-test.
    """
    text = path.read_text()
    # Erase block comments but keep line structure.
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)),
                  text, flags=re.S)
    lines = text.split("\n")

    functions: list[Function] = []
    pending = Annotation()       # annotations awaiting the next function
    stack: list[Function | None] = []
    current: Function | None = None
    header_acc = ""              # accumulated text since last statement end
    header_start = 0
    stmt_acc = ""
    stmt_start = 0
    stmt_allow: set[str] = set()
    depth = 0
    fn_depth = -1

    def flush_statement(line_no: int) -> None:
        nonlocal stmt_acc, stmt_allow
        if current is not None and stmt_acc.strip():
            current.statements.append((stmt_start, stmt_acc.strip(), stmt_allow))
        stmt_acc = ""
        stmt_allow = set()

    for idx, raw in enumerate(lines, start=1):
        code, annot = strip_line(raw)
        if annot is not None:
            if annot.allow and not (annot.certified or annot.secret_params):
                stmt_allow |= annot.allow
            else:
                pending.merge(annot)
        i = 0
        while i < len(code):
            ch = code[i]
            if ch == "{":
                depth += 1
                if current is None:
                    # header_acc already holds this line's chars up to i
                    # (appended char-by-char below).
                    header_text = header_acc.strip()
                    name = _function_name(header_text)
                    if name is not None:
                        current = Function(name, str(path), header_text,
                                           idx, pending)
                        pending = Annotation()
                        fn_depth = depth - 1
                        stack.append(None)
                        header_acc = ""
                        stmt_acc = ""
                        stmt_start = idx
                    else:
                        header_acc = ""
                else:
                    # Control-flow block inside a function: the header
                    # (e.g. `if (...)`) is a statement of its own.
                    if stmt_acc.strip():
                        flush_statement(idx)
            elif ch == "}":
                depth -= 1
                if current is not None and depth == fn_depth:
                    flush_statement(idx)
                    functions.append(current)
                    current = None
                    fn_depth = -1
                    header_acc = ""
                elif current is not None:
                    flush_statement(idx)
            elif ch == ";":
                if current is not None:
                    flush_statement(idx)
                else:
                    header_acc = ""
            else:
                if current is None:
                    if not header_acc:
                        header_start = idx
                    header_acc += ch
                else:
                    if not stmt_acc.strip():
                        stmt_start = idx
                    stmt_acc += ch
            i += 1
        # newline between accumulated fragments
        if current is None:
            header_acc += " "
        else:
            stmt_acc += " "

    return functions


def _function_name(header: str) -> str | None:
    """The function name from a header like `Type ns::name(args) const`."""
    lparen = header.find("(")
    if lparen <= 0:
        return None
    before = header[:lparen].strip()
    m = re.search(r"([A-Za-z_~][\w:~]*)\s*$", before)
    if not m:
        return None
    name = m.group(1).split("::")[-1].lstrip("~")
    if not name or name in CONTROL_KEYWORDS:
        return None
    # Reject obvious non-functions: lambdas assigned, macro-ish all-caps.
    if name in {"operator"}:
        return None
    return name


def base_name(qualified: str) -> str:
    return qualified.split("::")[-1]


def load_list(path: pathlib.Path) -> set[str]:
    entries: set[str] = set()
    if not path.exists():
        return entries
    for line in path.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


class Finding:
    def __init__(self, path: str, line: int, rule: str, function: str,
                 message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.function = function
        self.message = message

    def key(self) -> str:
        return f"{pathlib.Path(self.path).name}:{self.function}:{self.rule}"

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{self.function}: {self.message}")


def tainted_in(text: str, tainted: set[str]) -> set[str]:
    return {t for t in IDENT_RE.findall(text) if t in tainted}


def callees(stmt: str) -> list[tuple[str, str]]:
    """All (name, args) pairs for calls in a statement, template or plain."""
    out = []
    for m in list(TMPL_CALL_RE.finditer(stmt)) + list(CALL_RE.finditer(stmt)):
        name = m.group(1)
        if base_name(name) in CONTROL_KEYWORDS:
            continue
        # Extract the argument text up to the matching close paren.
        start = stmt.find("(", m.end(1))
        if start < 0:
            continue
        depth = 0
        args = ""
        for ch in stmt[start:]:
            if ch == "(":
                depth += 1
                if depth == 1:
                    continue
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
            args += ch
        out.append((name, args))
    return out


def analyze(functions: list[Function], analyzed_names: set[str],
            certified_names: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    ok_callees = analyzed_names | certified_names

    for fn in functions:
        tainted: set[str] = set(fn.annotation.secret_params)
        has_source = bool(tainted) or any(
            "expose_secret" in stmt for _, stmt, _ in fn.statements)
        if not has_source:
            continue

        wiped: set[str] = set()
        returned: set[str] = set()
        # declaration line of wipe-relevant tainted locals
        wipe_candidates: dict[str, int] = {}

        # Fixpoint taint propagation over the statement list.
        for _ in range(8):
            changed = False
            for line_no, stmt, _allow in fn.statements:
                sanitized = ("declassify" in stmt) or any(
                    base_name(n) in analyzed_names
                    and _public_return(base_name(n))
                    for n, _ in callees(stmt))
                m = ASSIGN_RE.search(stmt)
                if m:
                    lhs = m.group(1).split(".")[0]
                    rhs = m.group(3)
                    rhs_tainted = bool(tainted_in(rhs, tainted)) or \
                        "expose_secret" in rhs
                    if rhs_tainted and not sanitized and lhs not in tainted:
                        tainted.add(lhs)
                        changed = True
                else:
                    dm = DECL_INIT_RE.match(stmt)
                    if dm:
                        rhs = dm.group(4)
                        rhs_tainted = bool(tainted_in(rhs, tainted)) or \
                            "expose_secret" in rhs
                        if rhs_tainted and not sanitized and \
                                dm.group(3) not in tainted:
                            tainted.add(dm.group(3))
                            changed = True
                # memcpy / certified out-params: a tainted argument taints
                # every other identifier argument of the same call.
                for name, args in callees(stmt):
                    bn = base_name(name)
                    if bn in ("memcpy", "ct_mul64", "ct_adc", "ct_sbb",
                              "ct_swap"):
                        if tainted_in(args, tainted):
                            for ident in IDENT_RE.findall(args):
                                if ident not in tainted and \
                                        not ident.isdigit() and \
                                        ident not in CONTROL_KEYWORDS and \
                                        "." not in ident:
                                    # only plain local names
                                    if re.search(
                                            rf"(?<![\w.]){ident}\s*[,)]",
                                            args) or re.search(
                                            rf"(?<![\w.]){ident}\s*\.",
                                            args):
                                        tainted.add(ident)
                                        changed = True
                # method call with tainted argument taints the receiver
                for mm in METHOD_CALL_RE.finditer(stmt):
                    recv, meth = mm.group(1), mm.group(2)
                    start = stmt.find("(", mm.end(2) - 1)
                    args = stmt[start + 1:stmt.find(")", start) if
                                stmt.find(")", start) > 0 else len(stmt)]
                    if tainted_in(args, tainted) and recv not in tainted:
                        tainted.add(recv)
                        changed = True
            if not changed:
                break

        # Track wipes / returns / wipe-relevant declarations.
        for line_no, stmt, _allow in fn.statements:
            for wm in WIPE_RE.finditer(stmt):
                wiped.add(wm.group(1).split(".")[0])
            if stmt.strip().startswith("return"):
                returned |= set(IDENT_RE.findall(stmt))
            dm = DECL_INIT_RE.match(stmt)
            if dm and dm.group(3) in tainted and not dm.group(2):
                if WIPE_TYPES_RE.match(dm.group(1).strip()):
                    wipe_candidates.setdefault(dm.group(3), line_no)

        # ---- rule checks ----
        for line_no, stmt, allow in fn.statements:
            allow = allow | fn.annotation.allow

            def report(rule: str, message: str) -> None:
                if rule not in allow:
                    findings.append(Finding(fn.path, line_no, rule,
                                            fn.name, message))

            s = stmt.strip()
            # branch: control-flow condition on tainted data
            cm = re.match(r"(?:\}?\s*else\s+)?(if|while|switch|for)\b(.*)$",
                          s, re.S)
            if cm and not s.startswith("if constexpr"):
                cond = cm.group(2)
                hits = tainted_in(cond, tainted)
                if hits and "declassify" not in cond:
                    report("branch",
                           f"condition depends on secret value(s) "
                           f"{sorted(hits)}")
            if "?" in s and ":" in s and not s.startswith("case"):
                q = s.split("?")[0]
                hits = tainted_in(q, tainted)
                if hits and "declassify" not in s:
                    report("branch",
                           f"ternary condition depends on secret value(s) "
                           f"{sorted(hits)}")
            # index: tainted array subscript
            for im in INDEX_RE.finditer(s):
                hits = tainted_in(im.group(1), tainted)
                if hits:
                    report("index",
                           f"memory index depends on secret value(s) "
                           f"{sorted(hits)}")
            # divmod: variable-time operator with tainted operand
            for dm2 in DIVMOD_RE.finditer(s):
                operands = {dm2.group(1), dm2.group(3)}
                hits = operands & tainted
                if hits:
                    report("divmod",
                           f"variable-time '{dm2.group(2)}' on secret "
                           f"value(s) {sorted(hits)}")
            # call: tainted argument into an unvetted function
            for name, args in callees(s):
                bn = base_name(name)
                if bn in ok_callees or "declassify" in bn:
                    continue
                hits = tainted_in(args, tainted)
                if hits:
                    report("call",
                           f"secret value(s) {sorted(hits)} passed to "
                           f"unvetted function '{name}'")

        # wipe: raw secret locals must be wiped (unless returned)
        for var, decl_line in sorted(wipe_candidates.items()):
            if var in wiped or var in returned:
                continue
            findings.append(Finding(fn.path, decl_line, "wipe", fn.name,
                                    f"secret local '{var}' is never "
                                    f"secure_wipe()d"))
    return findings


_PUBLIC_RETURN: set[str] = set()


def _public_return(name: str) -> bool:
    return name in _PUBLIC_RETURN


def run(paths: list[pathlib.Path], baseline: set[str],
        certified: set[str]) -> tuple[list[Finding], list[Finding]]:
    all_functions: list[Function] = []
    for p in paths:
        all_functions.extend(parse_functions(p))

    analyzed = {f.name for f in all_functions
                if f.annotation.certified or f.annotation.secret_params}
    _PUBLIC_RETURN.clear()
    _PUBLIC_RETURN.update(f.name for f in all_functions
                          if f.annotation.public_return)

    findings = analyze(all_functions, analyzed, certified)
    new = [f for f in findings
           if not any(fnmatch.fnmatch(f.key(), pat) for pat in baseline)]
    return findings, new


def default_paths(repo: pathlib.Path) -> list[pathlib.Path]:
    crypto = repo / "src" / "crypto"
    return sorted(list(crypto.glob("*.hpp")) + list(crypto.glob("*.cpp")))


def self_test(script_dir: pathlib.Path) -> int:
    fixtures = script_dir / "fixtures"
    certified = load_list(script_dir / "certified.txt")

    findings, _ = run([fixtures / "leaky.cpp"], set(), certified)
    got = sorted(f"{f.function}:{f.rule}" for f in findings)
    expected = sorted(
        line.split("#", 1)[0].strip()
        for line in (fixtures / "leaky.expected").read_text().splitlines()
        if line.split("#", 1)[0].strip())
    ok = True
    if got != expected:
        print("self-test FAILED on leaky.cpp:", file=sys.stderr)
        print(f"  expected: {expected}", file=sys.stderr)
        print(f"  got:      {got}", file=sys.stderr)
        for f in findings:
            print(f"    {f}", file=sys.stderr)
        ok = False

    clean_findings, _ = run([fixtures / "clean.cpp"], set(), certified)
    if clean_findings:
        print("self-test FAILED on clean.cpp (expected no findings):",
              file=sys.stderr)
        for f in clean_findings:
            print(f"    {f}", file=sys.stderr)
        ok = False

    if ok:
        print("ct_lint self-test passed "
              f"({len(expected)} expected findings on leaky.cpp, "
              "0 on clean.cpp)")
    return 0 if ok else 2


def main(argv: list[str]) -> int:
    script_dir = pathlib.Path(__file__).resolve().parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to lint "
                    "(default: src/crypto/*.{hpp,cpp})")
    ap.add_argument("--repo", default=str(script_dir.parent.parent))
    ap.add_argument("--baseline", default=str(script_dir / "baseline.txt"))
    ap.add_argument("--certified", default=str(script_dir / "certified.txt"))
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture self-test and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(script_dir)

    repo = pathlib.Path(args.repo)
    paths = [pathlib.Path(f) for f in args.files] or default_paths(repo)
    baseline = load_list(pathlib.Path(args.baseline))
    certified = load_list(pathlib.Path(args.certified))

    findings, new = run(paths, baseline, certified)
    for f in new:
        print(f)
    suppressed = len(findings) - len(new)
    status = "clean" if not new else f"{len(new)} finding(s)"
    print(f"ct_lint: {len(paths)} file(s), {status}"
          + (f", {suppressed} baselined" if suppressed else ""))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
