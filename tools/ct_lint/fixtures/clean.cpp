// ct_lint self-test fixture: the same tasks as leaky.cpp done with the
// constant-time discipline — the lint must emit zero findings here.

#include <cstdint>

namespace fixture {

// ct-lint: certified secret(mask, a, b)
std::uint64_t ct_select(std::uint64_t mask, std::uint64_t a,
                        std::uint64_t b) {
  return b ^ (mask & (a ^ b));
}

// ct-lint: certified secret(x)
std::uint64_t ct_nonzero_bit(std::uint64_t x) {
  return (x | (0 - x)) >> 63;
}

// Fixed-shape scan with mask selection instead of a secret-indexed load.
// ct-lint: certified secret(idx)
std::uint64_t clean_table_scan(const std::uint64_t* table,
                               std::uint64_t idx) {
  std::uint64_t out = 0;
  for (std::uint64_t j = 0; j < 16; ++j) {
    const std::uint64_t m = 0 - (ct_nonzero_bit(j ^ idx) ^ 1);
    out = out | (m & table[j]);
  }
  return out;
}

// Masked conditional subtraction instead of '%': fixed reduction shape.
// ct-lint: certified secret(x)
std::uint64_t clean_reduce(std::uint64_t x) {
  const std::uint64_t m = 0 - (x >> 63);
  return x - (m & 0x1000003d1ULL);
}

std::uint64_t declassify(std::uint64_t v);

// The is-zero retry bit is intentionally public (RFC 6979 shape): the
// declassify call sanitizes the branch.
// ct-lint: secret(k)
std::uint64_t clean_declassified_retry(std::uint64_t k) {
  const std::uint64_t nz = declassify(ct_nonzero_bit(k));
  if (nz == 0) {
    return 1;
  }
  return 0;
}

}  // namespace fixture
