// ct_lint self-test fixture: every function here leaks on purpose, and
// fixtures/leaky.expected pins the exact findings the lint must emit.
// This file is analyzed, never compiled (U256/expand are stand-ins).

#include <cstdint>

namespace fixture {

// A wNAF-style nonce walk: branches on secret scalar bits — the exact
// shape the constant-time comb in ct_sign.hpp replaces.
// ct-lint: secret(k)
std::uint64_t leaky_double_and_add(std::uint64_t k) {
  std::uint64_t acc = 0;
  while (k > 0) {
    if (k & 1) {
      acc += 3;
    }
    k = k >> 1;
  }
  return acc;
}

// Secret-indexed table lookup: a classic cache side channel.
// ct-lint: secret(idx)
std::uint64_t leaky_table_lookup(const std::uint64_t* table,
                                 std::uint64_t idx) {
  return table[idx & 15];
}

// Variable-time operators on the secret.
// ct-lint: secret(d)
std::uint64_t leaky_divmod(std::uint64_t d) {
  const std::uint64_t q = d / 3;
  return q + d % 7;
}

std::uint64_t wnaf(std::uint64_t s);

// Secret handed to an unvetted helper (e.g. reverting the nonce chain to
// the variable-time wNAF machinery).
// ct-lint: secret(nonce)
std::uint64_t leaky_call(std::uint64_t nonce) {
  return wnaf(nonce);
}

U256 expand(std::uint64_t seed);

// Raw secret bytes never wiped before the function exits.
// ct-lint: secret(seed)
std::uint64_t leaky_no_wipe(std::uint64_t seed) {
  U256 scratch = expand(seed);
  return 0;
}

}  // namespace fixture
