// identxx_mc — determinism model checker for sharded scenario runs.
//
//   $ identxx_mc [--shards N] [--mode dpor] scenarios/skype.scn
//
// Explores alternative shard-lane execution schedules for the scenario
// (DESIGN.md §13) and checks that every schedule's ScenarioResult is
// bit-identical to the canonical one and satisfies the scenario's own
// `expect` lines.  Exit status 0 when the invariant holds everywhere,
// 2 on divergence (with the minimized failing schedule printed), 1 on
// usage/parse errors.
//
// --shards N       admission domains (>= 1; default 2)
// --mode M         exhaustive | dpor | random (default dpor)
// --depth D        branch only at the first D shard waves (default 32)
// --schedules B    hard budget on scenario executions (default 50000)
// --random N       random mode: schedules to sample (default 200)
// --seed S         RNG seed: random-mode sampling, and the scenario seed
//                  override (0 = keep the file's `seed` line)
// --fault F        inject a checker self-test mutation:
//                  skip_redecide  — controller skips the dispatch-to-commit
//                                   control-epoch re-decision
//                  merge_arrival  — simulator merges staged lane events in
//                                   modeled arrival order, not lane order
//                  none           — (default) healthy build
//
// --src-only       query only the source daemon (config.query_both_ends =
//                  false), keeping the admission path clear of data-plane
//                  bottleneck links in congestion scenarios
//
// Congestion knobs mirror identxx_sim: --k-paths, --link-bw, --queue-depth,
// --traffic.  Fault/robustness knobs (DESIGN.md §14) mirror identxx_sim
// too: --chan-loss, --chan-dup, --chan-delay-us, --max-retries,
// --retry-jitter-us, --degraded-ttl-us, --probe-delay-us — fault injection
// draws on the global lane, so faulted runs must stay schedule-invariant.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/scenario.hpp"
#include "mc/explorer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: identxx_mc [--shards N] [--mode exhaustive|dpor|random] "
               "[--depth D] [--schedules B] [--random N] [--seed S] "
               "[--fault skip_redecide|merge_arrival|none] [--src-only] "
               "[--traffic MODEL] [--k-paths K] [--link-bw MBPS] "
               "[--queue-depth PKTS] [--chan-loss P] [--chan-dup P] "
               "[--chan-delay-us N] [--max-retries N] [--retry-jitter-us N] "
               "[--degraded-ttl-us N] [--probe-delay-us N] <scenario-file>\n");
}

}  // namespace

int main(int argc, char** argv) {
  identxx::mc::ExplorerOptions options;
  options.scenario.shards = 2;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--shards")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n || *n == 0) { usage(); return 1; }
      options.scenario.shards = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--mode")) {
      if (std::strcmp(v, "exhaustive") == 0) {
        options.mode = identxx::mc::Mode::kExhaustive;
      } else if (std::strcmp(v, "dpor") == 0) {
        options.mode = identxx::mc::Mode::kDpor;
      } else if (std::strcmp(v, "random") == 0) {
        options.mode = identxx::mc::Mode::kRandom;
      } else {
        usage();
        return 1;
      }
    } else if (const char* v = flag_value("--depth")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.max_depth = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--schedules")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n || *n == 0) { usage(); return 1; }
      options.max_schedules = *n;
    } else if (const char* v = flag_value("--random")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.random_schedules = *n;
    } else if (const char* v = flag_value("--seed")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.seed = *n;
      options.scenario.seed = *n;
    } else if (const char* v = flag_value("--fault")) {
      if (std::strcmp(v, "skip_redecide") == 0) {
        options.scenario.config.fault_skip_epoch_redecide = true;
      } else if (std::strcmp(v, "merge_arrival") == 0) {
        options.scenario.fault_merge_arrival_order = true;
      } else if (std::strcmp(v, "none") != 0) {
        usage();
        return 1;
      }
    } else if (std::strcmp(argv[i], "--src-only") == 0) {
      options.scenario.config.query_both_ends = false;
    } else if (const char* v = flag_value("--traffic")) {
      options.scenario.traffic = v;
    } else if (const char* v = flag_value("--k-paths")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n || *n == 0) { usage(); return 1; }
      options.scenario.k_paths = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--link-bw")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.link_bandwidth_bps = *n * 1'000'000ULL;
    } else if (const char* v = flag_value("--queue-depth")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.queue_depth = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--chan-loss")) {
      char* end = nullptr;
      options.scenario.chan_loss = std::strtod(v, &end);
      if (end == v || *end != '\0' || options.scenario.chan_loss < 0.0 ||
          options.scenario.chan_loss > 1.0) { usage(); return 1; }
    } else if (const char* v = flag_value("--chan-dup")) {
      char* end = nullptr;
      options.scenario.chan_dup = std::strtod(v, &end);
      if (end == v || *end != '\0' || options.scenario.chan_dup < 0.0 ||
          options.scenario.chan_dup > 1.0) { usage(); return 1; }
    } else if (const char* v = flag_value("--chan-delay-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.chan_delay =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (const char* v = flag_value("--max-retries")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.config.max_query_retries =
          static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--retry-jitter-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.config.retry_jitter =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (const char* v = flag_value("--degraded-ttl-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.config.degraded_cover_ttl =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (const char* v = flag_value("--probe-delay-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.scenario.config.readmission_probe_delay =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (argv[i][0] == '-') {
      usage();
      return 1;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    usage();
    return 1;
  }
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw identxx::Error(std::string("cannot open '") + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const auto scenario = identxx::core::Scenario::parse(buffer.str());
    std::printf("scenario: %zu switch(es), %zu host(s), %zu flow(s), "
                "%u shard(s)\n",
                scenario.switch_count(), scenario.host_count(),
                scenario.flow_count(), options.scenario.shards);

    identxx::mc::Explorer explorer(scenario, options);
    const identxx::mc::Report report = explorer.run();
    std::fputs(report.summary().c_str(), stdout);
    return report.ok() ? 0 : 2;
  } catch (const identxx::Error& e) {
    std::fprintf(stderr, "identxx_mc: %s\n", e.what());
    return 1;
  }
}
