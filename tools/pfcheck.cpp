// pfcheck — lint PF+=2 .control files.
//
// Reads the given .control files, assembles them exactly as the ident++
// controller would (alphabetical order, concatenated, §3.4) and reports
// either the parse error or a summary of the resulting ruleset.  Exit
// status 0 on success, 1 on error — suitable for pre-commit hooks.
//
//   $ pfcheck 00-local-header.control 50-skype.control 99-local-footer.control

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pf/control_files.hpp"
#include "pf/parser.hpp"
#include "util/error.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw identxx::Error("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string describe_endpoint(const identxx::pf::Endpoint& e) {
  using namespace identxx::pf;
  std::string out = e.negated ? "!" : "";
  if (std::holds_alternative<AnyHost>(e.host)) {
    out += "any";
  } else if (const auto* t = std::get_if<TableHost>(&e.host)) {
    out += "<" + t->table + ">";
  } else if (const auto* c = std::get_if<CidrHost>(&e.host)) {
    out += c->cidr.to_string();
  } else if (const auto* list = std::get_if<ListHost>(&e.host)) {
    out += "{" + std::to_string(list->items.size()) + " items}";
  }
  if (e.port) {
    out += " port " + std::to_string(e.port->low);
    if (e.port->high != e.port->low) out += ":" + std::to_string(e.port->high);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: pfcheck <file.control> [more.control ...]\n");
    return 1;
  }
  std::vector<identxx::pf::ControlFile> files;
  try {
    for (int i = 1; i < argc; ++i) {
      files.push_back({argv[i], read_file(argv[i])});
    }
    const identxx::pf::Ruleset ruleset =
        identxx::pf::load_control_files(std::move(files));

    std::printf("OK: %zu rule(s), %zu table(s), %zu dict(s), %zu macro(s)\n\n",
                ruleset.rules.size(), ruleset.tables.size(),
                ruleset.dicts.size(), ruleset.macros.size());
    for (const auto& [name, entries] : ruleset.tables) {
      std::printf("table <%s>: %zu entr%s\n", name.c_str(), entries.size(),
                  entries.size() == 1 ? "y" : "ies");
    }
    for (const auto& [name, entries] : ruleset.dicts) {
      std::printf("dict <%s>: %zu key(s)\n", name.c_str(), entries.size());
    }
    std::printf("\nrules (last match wins):\n");
    for (std::size_t i = 0; i < ruleset.rules.size(); ++i) {
      const auto& rule = ruleset.rules[i];
      std::printf("  %3zu. %s%s%s from %s to %s, %zu with-predicate(s)%s  [%s:%zu]\n",
                  i + 1, identxx::pf::to_string(rule.action).c_str(),
                  rule.quick ? " quick" : "", rule.log ? " log" : "",
                  describe_endpoint(rule.from).c_str(),
                  describe_endpoint(rule.to).c_str(), rule.withs.size(),
                  rule.keep_state ? ", keep state" : "",
                  rule.source_label.c_str(), rule.line);
    }
    return 0;
  } catch (const identxx::Error& e) {
    std::fprintf(stderr, "pfcheck: %s\n", e.what());
    return 1;
  }
}
