// identxx_sim — run an ident++ deployment scenario from a description file.
//
//   $ identxx_sim scenarios/skype.scn
//
// Builds the topology, installs the controller with the inline policy,
// launches the declared processes, drives every declared flow through the
// full Figure-1 sequence, and reports per-flow verdicts plus the
// controller's audit log.  Exit status 0 when all `expect` lines hold.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/scenario.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: identxx_sim <scenario-file>\n");
    return 1;
  }
  try {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) throw identxx::Error(std::string("cannot open '") + argv[1] + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const auto scenario = identxx::core::Scenario::parse(buffer.str());
    std::printf("scenario: %zu switch(es), %zu host(s), %zu flow(s)\n\n",
                scenario.switch_count(), scenario.host_count(),
                scenario.flow_count());
    const auto result = scenario.run();

    std::printf("%-12s %-46s %-10s %s\n", "flow", "5-tuple", "verdict",
                "expectation");
    for (const auto& flow : result.flows) {
      std::printf("%-12s %-46s %-10s %s\n", flow.id.c_str(),
                  flow.flow.to_string().c_str(),
                  flow.delivered ? "DELIVERED" : "BLOCKED",
                  !flow.expectation_known    ? "-"
                  : flow.matches_expectation() ? "ok"
                                               : "MISMATCH");
    }
    std::printf("\naudit log:\n");
    for (const auto& record : result.audit_log) {
      std::printf("  [%9lld ns] %-46s user=%-10s app=%-12s %s%s\n",
                  static_cast<long long>(record.time),
                  record.flow.to_string().c_str(), record.src_user.c_str(),
                  record.src_app.c_str(), record.allowed ? "pass" : "block",
                  record.logged ? " [logged]" : "");
    }
    std::printf("\ncontroller: %llu queries, %llu responses, %llu entries "
                "installed, %llu allowed, %llu blocked, %llu timeouts\n",
                static_cast<unsigned long long>(
                    result.controller_stats.queries_sent),
                static_cast<unsigned long long>(
                    result.controller_stats.responses_received),
                static_cast<unsigned long long>(
                    result.controller_stats.entries_installed),
                static_cast<unsigned long long>(
                    result.controller_stats.flows_allowed),
                static_cast<unsigned long long>(
                    result.controller_stats.flows_blocked),
                static_cast<unsigned long long>(
                    result.controller_stats.query_timeouts));
    if (!result.ok()) {
      std::fprintf(stderr, "\nidentxx_sim: expectation mismatches\n");
      return 2;
    }
    return 0;
  } catch (const identxx::Error& e) {
    std::fprintf(stderr, "identxx_sim: %s\n", e.what());
    return 1;
  }
}
