// identxx_sim — run an ident++ deployment scenario from a description file.
//
//   $ identxx_sim [--shards N] [--workers N] [--seed S] scenarios/skype.scn
//
// Builds the topology, installs the controller with the inline policy,
// launches the declared processes, drives every declared flow through the
// full Figure-1 sequence, and reports per-flow verdicts plus the
// controller's audit log.  Exit status 0 when all `expect` lines hold.
//
// --shards N   partition admission across N parallel domains (DESIGN.md
//              §10); per-domain stats are reported after the run.
// --workers N  real threads driving the shard lanes (results are identical
//              at any worker count; use 0 for all hardware threads).
// --seed S     deterministic RNG seed (overrides the file's `seed` line).
//
// Congestion knobs (DESIGN.md §12) — the defaults reproduce the idealized
// single-path/unbounded-queue behaviour exactly:
//
// --src-only       query only the source daemon (the §6 src-only ablation;
//                  config.query_both_ends = false)
// --traffic M      override every flow's traffic model, e.g.
//                  "cbr,packets=64,rate=20000" or "aimd,packets=64"
// --k-paths K      equal-cost paths per (src,dst) pair (seeded ECMP)
// --link-bw MBPS   override every link's bandwidth (0 = declarations)
// --queue-depth P  bounded per-port switch output queues, in packets
//
// Fault / robustness knobs (DESIGN.md §14) — channel overrides replace the
// scenario's `fault chan` directives; retry knobs override `fault retry`:
//
// --chan-loss P        control-channel loss probability on every switch
// --chan-dup P         control-channel duplication probability
// --chan-delay-us N    max per-message control-channel delay (drawn 0..N)
// --max-retries N      re-query budget before the timeout decision
// --retry-jitter-us N  seeded jitter bound on retry deadlines
// --degraded-ttl-us N  fail-closed degraded-cover TTL (0 = no degradation)
// --probe-delay-us N   delay before a degraded flow's re-admission probe

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/scenario.hpp"
#include "sim/worker_pool.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: identxx_sim [--shards N] [--workers N] [--seed S] "
               "[--src-only] [--traffic MODEL] [--k-paths K] [--link-bw MBPS] "
               "[--queue-depth PKTS] [--chan-loss P] [--chan-dup P] "
               "[--chan-delay-us N] [--max-retries N] [--retry-jitter-us N] "
               "[--degraded-ttl-us N] [--probe-delay-us N] <scenario-file>\n");
}

}  // namespace

int main(int argc, char** argv) {
  identxx::core::ScenarioOptions options;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--shards")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.shards = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--workers")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.workers = *n == 0
                            ? identxx::sim::WorkerPool::hardware_workers()
                            : static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--seed")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.seed = *n;
    } else if (std::strcmp(argv[i], "--src-only") == 0) {
      options.config.query_both_ends = false;
    } else if (const char* v = flag_value("--traffic")) {
      options.traffic = v;
    } else if (const char* v = flag_value("--k-paths")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n || *n == 0) { usage(); return 1; }
      options.k_paths = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--link-bw")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.link_bandwidth_bps = *n * 1'000'000ULL;
    } else if (const char* v = flag_value("--queue-depth")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.queue_depth = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--chan-loss")) {
      char* end = nullptr;
      options.chan_loss = std::strtod(v, &end);
      if (end == v || *end != '\0' || options.chan_loss < 0.0 ||
          options.chan_loss > 1.0) { usage(); return 1; }
    } else if (const char* v = flag_value("--chan-dup")) {
      char* end = nullptr;
      options.chan_dup = std::strtod(v, &end);
      if (end == v || *end != '\0' || options.chan_dup < 0.0 ||
          options.chan_dup > 1.0) { usage(); return 1; }
    } else if (const char* v = flag_value("--chan-delay-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.chan_delay =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (const char* v = flag_value("--max-retries")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.config.max_query_retries = static_cast<std::uint32_t>(*n);
    } else if (const char* v = flag_value("--retry-jitter-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.config.retry_jitter =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (const char* v = flag_value("--degraded-ttl-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.config.degraded_cover_ttl =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (const char* v = flag_value("--probe-delay-us")) {
      const auto n = identxx::util::parse_u64(v);
      if (!n) { usage(); return 1; }
      options.config.readmission_probe_delay =
          static_cast<identxx::sim::SimTime>(*n) * identxx::sim::kMicrosecond;
    } else if (argv[i][0] == '-') {
      usage();
      return 1;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    usage();
    return 1;
  }
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw identxx::Error(std::string("cannot open '") + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const auto scenario = identxx::core::Scenario::parse(buffer.str());
    std::printf("scenario: %zu switch(es), %zu host(s), %zu flow(s)",
                scenario.switch_count(), scenario.host_count(),
                scenario.flow_count());
    if (options.shards > 0) {
      std::printf(", %u shard(s), %u worker(s)", options.shards,
                  options.workers);
    }
    std::printf("\n\n");
    const auto result = scenario.run(options);

    std::printf("%-12s %-46s %-10s %8s %8s %8s %s\n", "flow", "5-tuple",
                "verdict", "sent", "deliv", "reord", "expectation");
    for (const auto& flow : result.flows) {
      std::printf("%-12s %-46s %-10s %8llu %8llu %8llu %s\n", flow.id.c_str(),
                  flow.flow.to_string().c_str(),
                  flow.delivered ? "DELIVERED" : "BLOCKED",
                  static_cast<unsigned long long>(flow.packets_sent),
                  static_cast<unsigned long long>(flow.packets_delivered),
                  static_cast<unsigned long long>(flow.packets_reordered),
                  !flow.expectation_known    ? "-"
                  : flow.matches_expectation() ? "ok"
                                               : "MISMATCH");
    }
    std::printf("\naudit log:\n");
    for (const auto& record : result.audit_log) {
      std::printf("  [%9lld ns] %-46s user=%-10s app=%-12s %s%s\n",
                  static_cast<long long>(record.time),
                  record.flow.to_string().c_str(), record.src_user.c_str(),
                  record.src_app.c_str(), record.allowed ? "pass" : "block",
                  record.logged ? " [logged]" : "");
    }
    std::printf("\ncontroller: %llu queries, %llu responses, %llu entries "
                "installed, %llu allowed, %llu blocked, %llu timeouts\n",
                static_cast<unsigned long long>(
                    result.controller_stats.queries_sent),
                static_cast<unsigned long long>(
                    result.controller_stats.responses_received),
                static_cast<unsigned long long>(
                    result.controller_stats.entries_installed),
                static_cast<unsigned long long>(
                    result.controller_stats.flows_allowed),
                static_cast<unsigned long long>(
                    result.controller_stats.flows_blocked),
                static_cast<unsigned long long>(
                    result.controller_stats.query_timeouts));
    std::printf("robustness: %llu retries, %llu duplicate responses, "
                "%llu degraded verdicts\n",
                static_cast<unsigned long long>(
                    result.controller_stats.query_retries),
                static_cast<unsigned long long>(
                    result.controller_stats.duplicate_responses),
                static_cast<unsigned long long>(
                    result.controller_stats.degraded_verdicts));
    const auto& fs = result.fault_stats;
    if (fs != identxx::core::ScenarioFaultStats{}) {
      std::printf("faults injected: %llu dropped, %llu duplicated, "
                  "%llu delayed, %llu queries ignored by down daemons\n",
                  static_cast<unsigned long long>(fs.chan_dropped),
                  static_cast<unsigned long long>(fs.chan_duplicated),
                  static_cast<unsigned long long>(fs.chan_delayed),
                  static_cast<unsigned long long>(fs.daemon_queries_ignored));
    }
    const auto& pcs = result.path_cache_stats;
    std::printf("path cache: %llu hits, %llu misses, %llu invalidations\n",
                static_cast<unsigned long long>(pcs.hits),
                static_cast<unsigned long long>(pcs.misses),
                static_cast<unsigned long long>(pcs.invalidations));
    if (!pcs.ecmp_selections.empty()) {
      std::printf("ecmp selections:");
      for (std::size_t i = 0; i < pcs.ecmp_selections.size(); ++i) {
        std::printf(" path%zu=%llu", i,
                    static_cast<unsigned long long>(pcs.ecmp_selections[i]));
      }
      std::printf("\n");
    }
    if (result.queue_tail_drops > 0) {
      std::printf("queue tail drops: %llu total (per switch:",
                  static_cast<unsigned long long>(result.queue_tail_drops));
      for (const std::uint64_t drops : result.switch_queue_drops) {
        std::printf(" %llu", static_cast<unsigned long long>(drops));
      }
      std::printf(")\n");
    }
    if (options.shards > 0) {
      std::printf("\n%-8s %10s %10s %10s %10s %10s\n", "domain", "flows",
                  "allowed", "blocked", "cache-hits", "installs");
      for (std::size_t i = 0; i < result.domain_stats.size(); ++i) {
        const auto& s = result.domain_stats[i];
        std::printf("d%-7zu %10llu %10llu %10llu %10llu %10llu\n", i,
                    static_cast<unsigned long long>(s.flows_seen),
                    static_cast<unsigned long long>(s.flows_allowed),
                    static_cast<unsigned long long>(s.flows_blocked),
                    static_cast<unsigned long long>(s.decision_cache_hits),
                    static_cast<unsigned long long>(s.entries_installed));
      }
    }
    if (!result.ok()) {
      std::fprintf(stderr, "\nidentxx_sim: expectation mismatches\n");
      return 2;
    }
    return 0;
  } catch (const identxx::Error& e) {
    std::fprintf(stderr, "identxx_sim: %s\n", e.what());
    return 1;
  }
}
