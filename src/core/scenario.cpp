#include "core/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>

#include "crypto/schnorr.hpp"
#include "identxx/keys.hpp"
#include "net/traffic/traffic.hpp"
#include "pf/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace identxx::core {

namespace {

/// Split a line into fields, honoring double quotes for values with
/// spaces ("MS08-001 MS08-067").
std::vector<std::string> fields_of(std::string_view line, std::size_t lineno) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    if (line[i] == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) {
        throw ParseError("unterminated quote", lineno);
      }
      out.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
      out.emplace_back(line.substr(i, end - i));
      i = end;
    }
  }
  return out;
}

net::IpProto parse_proto_field(const std::vector<std::string>& fields,
                               std::size_t index, std::size_t lineno) {
  if (fields.size() <= index) return net::IpProto::kTcp;
  if (util::iequals(fields[index], "udp")) return net::IpProto::kUdp;
  if (util::iequals(fields[index], "tcp")) return net::IpProto::kTcp;
  throw ParseError("expected 'tcp' or 'udp', got '" + fields[index] + "'",
                   lineno);
}

std::uint16_t parse_port_field(const std::string& field, std::size_t lineno) {
  const auto port = util::parse_u64(field);
  if (!port || *port == 0 || *port > 65535) {
    throw ParseError("invalid port '" + field + "'", lineno);
  }
  return static_cast<std::uint16_t>(*port);
}

void require_fields(const std::vector<std::string>& fields, std::size_t n,
                    const char* usage, std::size_t lineno) {
  if (fields.size() < n) {
    throw ParseError(std::string("usage: ") + usage, lineno);
  }
}

/// Parse a probability in [0, 1] (fault loss/dup rates).
double parse_prob_field(const std::string& field, const char* what,
                        std::size_t lineno) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == nullptr || end == field.c_str() || *end != '\0' || value < 0.0 ||
      value > 1.0) {
    throw ParseError(std::string("invalid ") + what + " '" + field +
                         "' (want 0..1)",
                     lineno);
  }
  return value;
}

std::uint64_t parse_u64_field(const std::string& field, const char* what,
                              std::size_t lineno) {
  const auto value = util::parse_u64(field);
  if (!value) {
    throw ParseError(std::string("invalid ") + what + " '" + field + "'",
                     lineno);
  }
  return *value;
}

/// Expand $pubkey(<seed>) references so policy text (and control
/// set_policy payloads) can name signing keys symbolically.
std::string expand_pubkeys(std::string policy) {
  for (std::size_t pos = policy.find("$pubkey("); pos != std::string::npos;
       pos = policy.find("$pubkey(", pos)) {
    const std::size_t close = policy.find(')', pos);
    if (close == std::string::npos) {
      throw Error("unterminated $pubkey( in policy");
    }
    const std::string key_seed = policy.substr(pos + 8, close - pos - 8);
    const std::string hex =
        crypto::PrivateKey::from_seed(key_seed).public_key().to_hex();
    policy.replace(pos, close - pos + 1, hex);
    pos += hex.size();
  }
  return policy;
}

/// `control ... raced ...` trigger: fire the op on the first daemon
/// response at-or-after the arming time, two global-lane waves later —
/// i.e. between a sharded decision's shard-lane dispatch (scheduled by
/// the response event itself) and its global-lane commit, inside the
/// control-epoch re-decision window.  The op is shared across domains so
/// whichever response arrives first claims it.
class RacedControlHook : public ctrl::AdmissionObserver {
 public:
  RacedControlHook(sim::Simulator& sim, sim::SimTime at,
                   std::shared_ptr<std::function<void()>> op)
      : sim_(&sim), at_(at), op_(std::move(op)) {}

  void on_response_received(net::Ipv4Address /*responder*/) override {
    if (!op_ || !*op_ || sim_->now() < at_) return;
    std::function<void()> fn = std::move(*op_);
    *op_ = nullptr;
    sim_->schedule_at(sim_->now(), [sim = sim_, fn = std::move(fn)] {
      sim->schedule_at(sim->now(), fn);
    });
  }

 private:
  sim::Simulator* sim_;
  sim::SimTime at_;
  std::shared_ptr<std::function<void()>> op_;
};

}  // namespace

Scenario Scenario::parse(std::string_view text) {
  Scenario scenario;
  bool in_policy = false;
  std::size_t lineno = 0;
  for (const auto raw_line : util::split_lines(text)) {
    ++lineno;
    if (in_policy) {
      // Policy block runs verbatim until 'policy end' (PF+=2 has its own
      // comment handling).
      if (util::trim(raw_line) == "policy end") {
        in_policy = false;
      } else {
        scenario.policy_ += std::string(raw_line) + "\n";
      }
      continue;
    }
    std::string_view line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = util::trim(line);
    if (line.empty()) continue;
    const auto fields = fields_of(line, lineno);
    const std::string& directive = fields[0];

    if (directive == "seed") {
      require_fields(fields, 2, "seed <n>", lineno);
      const auto seed = util::parse_u64(fields[1]);
      if (!seed) throw ParseError("invalid seed '" + fields[1] + "'", lineno);
      scenario.seed_ = *seed;
    } else if (directive == "switch") {
      require_fields(fields, 2, "switch <name>", lineno);
      scenario.switches_.push_back({fields[1]});
    } else if (directive == "link") {
      require_fields(fields, 3, "link <a> <b> [latency_us] [bw_mbps]", lineno);
      LinkDecl link{fields[1], fields[2], 10 * sim::kMicrosecond,
                    sim::kDefaultBandwidthBps};
      if (fields.size() > 3) {
        const auto us = util::parse_u64(fields[3]);
        if (!us) throw ParseError("invalid latency", lineno);
        link.latency = static_cast<sim::SimTime>(*us) * sim::kMicrosecond;
      }
      if (fields.size() > 4) {
        const auto mbps = util::parse_u64(fields[4]);
        if (!mbps) throw ParseError("invalid bandwidth", lineno);
        link.bandwidth_bps = *mbps * 1'000'000ULL;
      }
      scenario.links_.push_back(std::move(link));
    } else if (directive == "host") {
      require_fields(fields, 4, "host <name> <ip> <switch>", lineno);
      scenario.hosts_.push_back({fields[1], fields[2], fields[3]});
    } else if (directive == "user") {
      require_fields(fields, 4, "user <host> <user> <group>", lineno);
      scenario.users_.push_back({fields[1], fields[2], fields[3]});
    } else if (directive == "launch") {
      require_fields(fields, 5, "launch <id> <host> <user> <exe>", lineno);
      scenario.launches_.push_back({fields[1], fields[2], fields[3], fields[4]});
    } else if (directive == "appconfig") {
      require_fields(fields, 4, "appconfig <host> <exe> <k>=<v>...", lineno);
      AppConfigDecl decl{fields[1], fields[2], {}};
      for (std::size_t i = 3; i < fields.size(); ++i) {
        const auto [key, value] = util::split_once(fields[i], '=');
        if (!value) {
          throw ParseError("expected key=value, got '" + fields[i] + "'",
                           lineno);
        }
        decl.pairs.emplace_back(std::string(key), std::string(*value));
      }
      scenario.app_configs_.push_back(std::move(decl));
    } else if (directive == "signedapp") {
      require_fields(fields, 6,
                     "signedapp <host> <exe> <name> <key-seed> \"<rules>\"",
                     lineno);
      scenario.signed_apps_.push_back(
          {fields[1], fields[2], fields[3], fields[4], fields[5]});
    } else if (directive == "hostfact") {
      require_fields(fields, 4, "hostfact <host> <key> <value>", lineno);
      scenario.host_facts_.push_back({fields[1], fields[2], fields[3]});
    } else if (directive == "listen") {
      require_fields(fields, 3, "listen <launch-id> <port> [udp]", lineno);
      scenario.listens_.push_back({fields[1],
                                   parse_port_field(fields[2], lineno),
                                   parse_proto_field(fields, 3, lineno)});
    } else if (directive == "policy") {
      require_fields(fields, 2, "policy begin", lineno);
      if (fields[1] != "begin") {
        throw ParseError("expected 'policy begin'", lineno);
      }
      in_policy = true;
    } else if (directive == "flow") {
      require_fields(fields, 5, "flow <id> <launch-id> <dst-ip> <port> [udp]",
                     lineno);
      scenario.flows_.push_back({fields[1], fields[2], fields[3],
                                 parse_port_field(fields[4], lineno),
                                 parse_proto_field(fields, 5, lineno),
                                 /*traffic=*/{}});
    } else if (directive == "traffic") {
      require_fields(fields, 3, "traffic <flow-id> <model> [key=value...]",
                     lineno);
      std::string spec = fields[2];
      for (std::size_t i = 3; i < fields.size(); ++i) {
        spec += ',' + fields[i];
      }
      try {
        (void)net::traffic::TrafficSpec::parse(spec);  // validate eagerly
      } catch (const Error& e) {
        throw ParseError(e.what(), lineno);
      }
      bool found = false;
      for (auto& flow : scenario.flows_) {
        if (flow.id == fields[1]) {
          flow.traffic = spec;
          found = true;
          break;
        }
      }
      if (!found) {
        throw ParseError("traffic references unknown flow '" + fields[1] + "'",
                         lineno);
      }
    } else if (directive == "pin") {
      require_fields(fields, 3, "pin <host> <shard>", lineno);
      const auto shard = util::parse_u64(fields[2]);
      if (!shard) throw ParseError("invalid shard '" + fields[2] + "'", lineno);
      scenario.pins_.push_back(
          {fields[1], static_cast<std::uint32_t>(*shard)});
    } else if (directive == "control") {
      require_fields(fields, 3, "control <at_us> [raced] <op> [args...]",
                     lineno);
      ControlDecl decl;
      const auto at = util::parse_u64(fields[1]);
      if (!at) {
        throw ParseError("invalid control time '" + fields[1] + "'", lineno);
      }
      decl.at = static_cast<sim::SimTime>(*at) * sim::kMicrosecond;
      std::size_t i = 2;
      if (fields[i] == "raced") {
        decl.raced = true;
        ++i;
        require_fields(fields, i + 1, "control <at_us> raced <op> [args...]",
                       lineno);
      }
      const std::string& op = fields[i];
      if (op == "revoke_all") {
        decl.op = ControlDecl::Op::kRevokeAll;
      } else if (op == "revoke_port") {
        require_fields(fields, i + 2, "control <at_us> revoke_port <port>",
                       lineno);
        decl.op = ControlDecl::Op::kRevokePort;
        decl.port = parse_port_field(fields[i + 1], lineno);
      } else if (op == "set_policy") {
        require_fields(fields, i + 2,
                       "control <at_us> set_policy \"<rules>\"", lineno);
        decl.op = ControlDecl::Op::kSetPolicy;
        decl.policy = fields[i + 1];
      } else if (op == "set_multipath") {
        require_fields(fields, i + 2,
                       "control <at_us> set_multipath <k> [seed]", lineno);
        decl.op = ControlDecl::Op::kSetMultipath;
        const auto k = util::parse_u64(fields[i + 1]);
        if (!k || *k == 0) throw ParseError("invalid k_paths", lineno);
        decl.k_paths = static_cast<std::uint32_t>(*k);
        if (fields.size() > i + 2) {
          const auto ecmp = util::parse_u64(fields[i + 2]);
          if (!ecmp) throw ParseError("invalid ecmp seed", lineno);
          decl.ecmp_seed = *ecmp;
        }
      } else {
        throw ParseError("unknown control op '" + op + "'", lineno);
      }
      scenario.controls_.push_back(std::move(decl));
    } else if (directive == "fault") {
      // Seeded control-plane fault model (DESIGN.md §14).
      require_fields(fields, 2, "fault chan|host|retry ...", lineno);
      const std::string& kind = fields[1];
      if (kind == "chan") {
        require_fields(fields, 3,
                       "fault chan <switch|all> [loss=<p>] [dup=<p>] "
                       "[delay_us=<n>]",
                       lineno);
        ChannelFaultDecl decl;
        decl.sw = fields[2];
        for (std::size_t i = 3; i < fields.size(); ++i) {
          const auto [key, value] = util::split_once(fields[i], '=');
          if (!value) {
            throw ParseError("expected key=value, got '" + fields[i] + "'",
                             lineno);
          }
          const std::string val(*value);
          if (key == "loss") {
            decl.spec.loss = parse_prob_field(val, "loss", lineno);
          } else if (key == "dup") {
            decl.spec.dup = parse_prob_field(val, "dup", lineno);
          } else if (key == "delay_us") {
            decl.spec.delay =
                static_cast<sim::SimTime>(
                    parse_u64_field(val, "delay_us", lineno)) *
                sim::kMicrosecond;
          } else {
            throw ParseError("unknown fault chan key '" + std::string(key) +
                                 "'",
                             lineno);
          }
        }
        scenario.chan_faults_.push_back(std::move(decl));
      } else if (kind == "host") {
        require_fields(fields, 4, "fault host <name> down_at=<us> [up_at=<us>]",
                       lineno);
        HostFaultDecl decl;
        decl.host = fields[2];
        bool have_down = false;
        for (std::size_t i = 3; i < fields.size(); ++i) {
          const auto [key, value] = util::split_once(fields[i], '=');
          if (!value) {
            throw ParseError("expected key=value, got '" + fields[i] + "'",
                             lineno);
          }
          const std::string val(*value);
          if (key == "down_at") {
            decl.down_at = static_cast<sim::SimTime>(
                               parse_u64_field(val, "down_at", lineno)) *
                           sim::kMicrosecond;
            have_down = true;
          } else if (key == "up_at") {
            decl.up_at = static_cast<sim::SimTime>(
                             parse_u64_field(val, "up_at", lineno)) *
                         sim::kMicrosecond;
          } else {
            throw ParseError("unknown fault host key '" + std::string(key) +
                                 "'",
                             lineno);
          }
        }
        if (!have_down) {
          throw ParseError("fault host requires down_at=<us>", lineno);
        }
        scenario.host_faults_.push_back(std::move(decl));
      } else if (kind == "retry") {
        for (std::size_t i = 2; i < fields.size(); ++i) {
          const auto [key, value] = util::split_once(fields[i], '=');
          if (!value) {
            throw ParseError("expected key=value, got '" + fields[i] + "'",
                             lineno);
          }
          const std::string val(*value);
          if (key == "max") {
            scenario.retry_.max_retries = static_cast<std::uint32_t>(
                parse_u64_field(val, "max", lineno));
          } else if (key == "jitter_us") {
            scenario.retry_.jitter = static_cast<sim::SimTime>(
                                         parse_u64_field(val, "jitter_us",
                                                         lineno)) *
                                     sim::kMicrosecond;
          } else if (key == "degraded_ttl_us") {
            scenario.retry_.degraded_ttl =
                static_cast<sim::SimTime>(
                    parse_u64_field(val, "degraded_ttl_us", lineno)) *
                sim::kMicrosecond;
          } else if (key == "probe_delay_us") {
            scenario.retry_.probe_delay =
                static_cast<sim::SimTime>(
                    parse_u64_field(val, "probe_delay_us", lineno)) *
                sim::kMicrosecond;
          } else if (key == "max_probes") {
            scenario.retry_.max_probes = static_cast<std::uint32_t>(
                parse_u64_field(val, "max_probes", lineno));
          } else {
            throw ParseError("unknown fault retry key '" + std::string(key) +
                                 "'",
                             lineno);
          }
        }
        scenario.retry_.set = true;
      } else {
        throw ParseError("unknown fault kind '" + kind + "'", lineno);
      }
    } else if (directive == "expect") {
      require_fields(fields, 3, "expect <flow-id> delivered|blocked", lineno);
      if (fields[2] == "delivered") {
        scenario.expectations_[fields[1]] = true;
      } else if (fields[2] == "blocked") {
        scenario.expectations_[fields[1]] = false;
      } else {
        throw ParseError("expect verdict must be 'delivered' or 'blocked'",
                         lineno);
      }
    } else {
      throw ParseError("unknown directive '" + directive + "'", lineno);
    }
  }
  if (in_policy) throw ParseError("unterminated 'policy begin' block");
  return scenario;
}

ScenarioResult Scenario::run(ctrl::ControllerConfig config) const {
  ScenarioOptions options;
  options.config = std::move(config);
  return run(options);
}

ScenarioResult Scenario::run(const ScenarioOptions& options) const {
  Network net;
  const std::uint64_t seed = options.seed != 0 ? options.seed : seed_;
  std::unordered_map<std::string, sim::NodeId> switches;
  for (const auto& decl : switches_) {
    if (switches.contains(decl.name)) {
      throw Error("duplicate switch '" + decl.name + "'");
    }
    switches[decl.name] = net.add_switch(decl.name);
  }
  // Congestion knobs (DESIGN.md §12): an options-level bandwidth override
  // applies to every link, host attachments included; otherwise each link
  // keeps its declared (or default) capacity.
  const auto link_bandwidth = [&options](std::uint64_t declared) {
    return options.link_bandwidth_bps != 0 ? options.link_bandwidth_bps
                                           : declared;
  };
  std::unordered_map<std::string, host::Host*> hosts;
  for (const auto& decl : hosts_) {
    auto& h = net.add_host(decl.name, decl.ip);
    hosts[decl.name] = &h;
    const auto sw = switches.find(decl.attach);
    if (sw == switches.end()) {
      throw Error("host '" + decl.name + "' attaches to unknown switch '" +
                  decl.attach + "'");
    }
    net.link(h, sw->second, 10 * sim::kMicrosecond,
             link_bandwidth(sim::kDefaultBandwidthBps));
  }
  for (const auto& decl : links_) {
    const auto a = switches.find(decl.a);
    const auto b = switches.find(decl.b);
    if (a == switches.end() || b == switches.end()) {
      throw Error("link references unknown switch");
    }
    net.link(a->second, b->second, decl.latency,
             link_bandwidth(decl.bandwidth_bps));
  }
  // Control-channel faults (DESIGN.md §14): an options-level override
  // applies one spec to every switch, replacing `fault chan` directives;
  // otherwise each declaration applies to its named switch (or "all").
  // Either way a switch draws from its own (seed, name)-derived stream,
  // so injection is bit-identical at any shard/worker count.
  const bool chan_override =
      options.chan_loss > 0.0 || options.chan_dup > 0.0 ||
      options.chan_delay > 0;
  if (chan_override) {
    const sim::ChannelFaultSpec spec{options.chan_loss, options.chan_dup,
                                     options.chan_delay};
    for (const auto& decl : switches_) {
      net.switch_at(switches[decl.name])
          .set_control_fault(spec, sim::fault_stream_seed(seed, decl.name));
    }
  } else {
    for (const ChannelFaultDecl& decl : chan_faults_) {
      if (decl.sw == "all") {
        for (const auto& sw_decl : switches_) {
          net.switch_at(switches[sw_decl.name])
              .set_control_fault(decl.spec,
                                 sim::fault_stream_seed(seed, sw_decl.name));
        }
        continue;
      }
      const auto it = switches.find(decl.sw);
      if (it == switches.end()) {
        throw Error("fault chan references unknown switch '" + decl.sw + "'");
      }
      net.switch_at(it->second)
          .set_control_fault(decl.spec, sim::fault_stream_seed(seed, decl.sw));
    }
  }
  net.topology().set_multipath(options.k_paths, seed);
  if (options.queue_depth > 0) net.set_queue_depth(options.queue_depth);
  // Expand $pubkey(<seed>) references in the policy so <pubkeys> dicts can
  // name signing keys symbolically.
  const std::string policy = expand_pubkeys(policy_);
  // Controller flavour: classic single controller, or sharded admission
  // domains (DESIGN.md §10).  Identical seeds replay identically at any
  // shard count: every domain draws from its own seed-derived RNG stream,
  // so no draw order ever crosses a shard boundary.
  // Robustness policy (DESIGN.md §14): `fault retry` directives fill in
  // controller knobs the caller left at their defaults, so CLI/test
  // overrides always win.  The jitter stream seed defaults off the
  // scenario seed so every run configuration draws identically.
  ctrl::ControllerConfig config = options.config;
  if (retry_.set) {
    const ctrl::ControllerConfig defaults;
    if (retry_.max_retries &&
        config.max_query_retries == defaults.max_query_retries) {
      config.max_query_retries = *retry_.max_retries;
    }
    if (retry_.jitter && config.retry_jitter == defaults.retry_jitter) {
      config.retry_jitter = *retry_.jitter;
    }
    if (retry_.degraded_ttl &&
        config.degraded_cover_ttl == defaults.degraded_cover_ttl) {
      config.degraded_cover_ttl = *retry_.degraded_ttl;
    }
    if (retry_.probe_delay &&
        config.readmission_probe_delay == defaults.readmission_probe_delay) {
      config.readmission_probe_delay = *retry_.probe_delay;
    }
    if (retry_.max_probes &&
        config.max_readmission_probes == defaults.max_readmission_probes) {
      config.max_readmission_probes = *retry_.max_probes;
    }
  }
  if (config.retry_jitter_seed == 0) {
    config.retry_jitter_seed = seed ^ 0x2545f4914f6cdd1dULL;
  }
  ctrl::IdentxxController* classic = nullptr;
  ctrl::ShardedAdmissionController* sharded = nullptr;
  if (options.shards == 0) {
    classic = &net.install_controller(policy, config);
    if (seed != 0) {
      // Same derivation as sharded domain 0, so classic and 1-shard runs
      // draw identical streams.
      util::SplitMix64 derive(seed ^ 0x9e3779b97f4a7c15ULL);
      classic->seed_query_ports(derive.next());
    }
  } else {
    sharded = &net.install_sharded_controller(policy, options.shards,
                                              options.workers, config);
    if (seed != 0) sharded->seed_query_ports(seed);
  }

  // Endpoint pins: shard placement for sharded runs (the shard-count
  // invariant must hold under any placement, so MC scenarios pin hosts to
  // make cross-shard races reproducible).  No-op for classic runs.
  if (sharded != nullptr) {
    for (const PinDecl& decl : pins_) {
      bool found = false;
      for (const auto& host : hosts_) {
        if (host.name != decl.host) continue;
        const auto ip = net::Ipv4Address::parse(host.ip);
        if (!ip) throw Error("pin: bad ip for host '" + decl.host + "'");
        sharded->shard_map().pin_endpoint(*ip, decl.shard);
        found = true;
        break;
      }
      if (!found) throw Error("pin references unknown host '" + decl.host + "'");
    }
  }

  // Schedule exploration (DESIGN.md §13): dictated shard-lane order and
  // the injected merge mutation, both off by default.
  net.simulator().set_schedule_controller(options.schedule_controller);
  net.simulator().set_fault_merge_arrival_order(
      options.fault_merge_arrival_order);

  // Control-plane churn directives: plain ops fire on the global lane at
  // their virtual time; raced ops arm an observer that fires inside the
  // dispatch-to-commit window of an in-flight admission.
  for (const ControlDecl& decl : controls_) {
    std::function<void()> apply;
    switch (decl.op) {
      case ControlDecl::Op::kRevokeAll:
        apply = [classic, sharded] {
          if (sharded != nullptr) {
            (void)sharded->revoke_all();
          } else {
            (void)classic->revoke_all();
          }
        };
        break;
      case ControlDecl::Op::kRevokePort:
        apply = [classic, sharded, port = decl.port] {
          const auto pred = [port](const net::FiveTuple& flow) {
            return flow.dst_port == port;
          };
          if (sharded != nullptr) {
            (void)sharded->revoke_if(pred);
          } else {
            (void)classic->revoke_if(pred);
          }
        };
        break;
      case ControlDecl::Op::kSetPolicy:
        apply = [classic, sharded, rules = expand_pubkeys(decl.policy)] {
          pf::Ruleset ruleset = pf::parse(rules, "control");
          if (sharded != nullptr) {
            sharded->set_policy(std::move(ruleset));
          } else {
            classic->set_policy(std::move(ruleset));
          }
        };
        break;
      case ControlDecl::Op::kSetMultipath:
        apply = [topology = &net.topology(), k = decl.k_paths,
                 ecmp = decl.ecmp_seed] { topology->set_multipath(k, ecmp); };
        break;
    }
    if (!decl.raced) {
      net.simulator().schedule_at(decl.at, std::move(apply));
    } else {
      auto shared = std::make_shared<std::function<void()>>(std::move(apply));
      if (sharded != nullptr) {
        for (std::uint32_t i = 0; i < sharded->shard_count(); ++i) {
          sharded->domain(i).add_observer(std::make_unique<RacedControlHook>(
              net.simulator(), decl.at, shared));
        }
      } else {
        classic->add_observer(std::make_unique<RacedControlHook>(
            net.simulator(), decl.at, shared));
      }
    }
  }

  const auto host_of = [&hosts](const std::string& name) -> host::Host& {
    const auto it = hosts.find(name);
    if (it == hosts.end()) throw Error("unknown host '" + name + "'");
    return *it->second;
  };
  // Daemon unresponsiveness (DESIGN.md §14): the host stays reachable, but
  // its ident++ daemon ignores queries between down_at and up_at — the
  // controller sees silence, not a reset.
  for (const HostFaultDecl& decl : host_faults_) {
    host::Host& down_host = host_of(decl.host);
    net.simulator().schedule_at(
        decl.down_at, [&down_host] { down_host.set_daemon_enabled(false); });
    if (decl.up_at >= 0) {
      net.simulator().schedule_at(
          decl.up_at, [&down_host] { down_host.set_daemon_enabled(true); });
    }
  }
  for (const auto& decl : users_) {
    host_of(decl.host).add_user(decl.user, decl.group);
  }
  struct LaunchInfo {
    host::Host* host = nullptr;
    int pid = 0;
  };
  std::unordered_map<std::string, LaunchInfo> launches;
  for (const auto& decl : launches_) {
    if (launches.contains(decl.id)) {
      throw Error("duplicate launch id '" + decl.id + "'");
    }
    auto& h = host_of(decl.host);
    launches[decl.id] = {&h, h.launch(decl.user, decl.exe)};
  }
  for (const auto& decl : app_configs_) {
    proto::DaemonConfig config_entry;
    proto::AppConfig app;
    app.exe_path = decl.exe;
    app.pairs = decl.pairs;
    config_entry.apps.push_back(std::move(app));
    host_of(decl.host).daemon().add_config(proto::ConfigTrust::kSystem,
                                           config_entry);
  }
  for (const auto& decl : signed_apps_) {
    const crypto::PrivateKey key = crypto::PrivateKey::from_seed(decl.key_seed);
    const std::string exe_hash = host::Host::image_hash(decl.exe, "");
    const crypto::Signature sig = key.sign(
        proto::signed_message({exe_hash, decl.name, decl.requirements}));
    proto::DaemonConfig config_entry;
    proto::AppConfig app;
    app.exe_path = decl.exe;
    app.pairs = {{proto::keys::kName, decl.name},
                 {proto::keys::kRequirements, decl.requirements},
                 {proto::keys::kReqSig, sig.to_hex()}};
    config_entry.apps.push_back(std::move(app));
    host_of(decl.host).daemon().add_config(proto::ConfigTrust::kUser,
                                           config_entry);
  }
  for (const auto& decl : host_facts_) {
    host_of(decl.host).daemon().add_host_fact(decl.key, decl.value);
  }
  const auto launch_of = [&launches](const std::string& id) -> LaunchInfo& {
    const auto it = launches.find(id);
    if (it == launches.end()) throw Error("unknown launch id '" + id + "'");
    return it->second;
  };
  for (const auto& decl : listens_) {
    const LaunchInfo& info = launch_of(decl.launch_id);
    info.host->listen(info.pid, decl.port, decl.proto);
  }

  ScenarioResult result;
  std::vector<std::pair<std::string, FlowHandle>> handles;
  // Traffic generators (src/net/traffic): per-flow seeds come from one
  // SplitMix64 stream over the scenario seed in flow file order, so a given
  // scenario+seed drives identical traffic at any shard/worker count.
  std::vector<std::unique_ptr<net::traffic::FlowDriver>> drivers;
  std::unordered_map<std::string, const net::traffic::FlowDriver*> by_flow_id;
  util::SplitMix64 traffic_seeds(seed ^ 0xc2b2ae3d27d4eb4fULL);
  for (const auto& decl : flows_) {
    const LaunchInfo& info = launch_of(decl.launch_id);
    handles.emplace_back(
        decl.id,
        net.start_flow(*info.host, info.pid, decl.dst_ip, decl.port, decl.proto));
    const std::uint64_t flow_seed = traffic_seeds.next();
    const std::string& spec_text =
        !options.traffic.empty() ? options.traffic : decl.traffic;
    if (spec_text.empty()) continue;
    const auto spec = net::traffic::TrafficSpec::parse(spec_text);
    if (spec.model == net::traffic::Model::kSingle) continue;
    const FlowHandle& handle = handles.back().second;
    if (handle.dst_node == sim::kInvalidNode) {
      throw Error("traffic for flow '" + decl.id +
                  "': destination host not in scenario");
    }
    drivers.push_back(std::make_unique<net::traffic::FlowDriver>(
        net.simulator(), *info.host, net.host(handle.dst_node), handle.flow,
        spec, flow_seed));
    by_flow_id[decl.id] = drivers.back().get();
  }
  for (const auto& driver : drivers) driver->start();
  net.run();

  for (const auto& [id, handle] : handles) {
    ScenarioFlowResult flow_result;
    flow_result.id = id;
    flow_result.flow = handle.flow;
    flow_result.delivered = net.flow_delivered(handle);
    if (const auto it = by_flow_id.find(id); it != by_flow_id.end()) {
      flow_result.packets_sent = it->second->stats().packets_sent;
    }
    if (handle.dst_node != sim::kInvalidNode) {
      flow_result.packets_delivered =
          net.host(handle.dst_node).delivered_count(handle.flow);
      flow_result.packets_reordered =
          net.host(handle.dst_node).reordered_count(handle.flow);
    }
    if (const auto it = expectations_.find(id); it != expectations_.end()) {
      flow_result.expectation_known = true;
      flow_result.expected_delivered = it->second;
    }
    result.flows.push_back(std::move(flow_result));
  }
  for (const sim::NodeId id : net.switch_ids()) {
    const std::uint64_t drops = net.switch_at(id).stats().queue_tail_drops;
    result.switch_queue_drops.push_back(drops);
    result.queue_tail_drops += drops;
    const sim::ChannelFaultStats fstats = net.switch_at(id).control_fault_stats();
    result.fault_stats.chan_dropped += fstats.dropped;
    result.fault_stats.chan_duplicated += fstats.duplicated;
    result.fault_stats.chan_delayed += fstats.delayed;
  }
  for (const auto& decl : hosts_) {
    result.fault_stats.daemon_queries_ignored +=
        hosts.at(decl.name)->stats().ident_queries_ignored;
  }
  result.path_cache_stats = net.topology().path_cache_stats();
  if (sharded != nullptr) {
    result.controller_stats = sharded->aggregated_stats();
    for (std::uint32_t i = 0; i < sharded->shard_count(); ++i) {
      result.domain_stats.push_back(sharded->domain(i).stats());
    }
    result.audit_log = sharded->merged_audit_log();
  } else {
    result.controller_stats = classic->stats();
    result.domain_stats.push_back(classic->stats());
    result.audit_log.assign(classic->audit_log().begin(),
                            classic->audit_log().end());
    // Same canonical order as merged sharded logs, so results compare
    // across run configurations.
    std::sort(result.audit_log.begin(), result.audit_log.end(),
              ctrl::audit_record_before);
  }
  return result;
}

}  // namespace identxx::core
