#pragma once

// identxx::core::Network — the library's one-stop facade.
//
// Wires together the simulator, OpenFlow topology, end-hosts, daemons and
// controllers so that examples, tests and benchmarks read like the
// scenarios in the paper:
//
//     core::Network net;
//     auto& s1 = net.add_switch("s1");
//     auto& client = net.add_host("client", "192.168.0.10");
//     auto& server = net.add_host("server", "192.168.1.1");
//     net.link(client, s1);
//     net.link(server, s1);
//     auto& controller = net.install_controller(kPolicyText);
//     ... launch processes, start flows, run, inspect ...

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "controller/baselines.hpp"
#include "controller/identxx_controller.hpp"
#include "controller/sharded_controller.hpp"
#include "host/host.hpp"
#include "openflow/topology.hpp"
#include "pf/control_files.hpp"
#include "pf/parser.hpp"

namespace identxx::core {

/// Handle to a started application flow.
struct FlowHandle {
  net::FiveTuple flow;
  sim::NodeId src_node = sim::kInvalidNode;
  sim::NodeId dst_node = sim::kInvalidNode;
  int src_pid = 0;
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- topology -------------------------------------------------------------

  /// Add an OpenFlow switch; returns its node id.
  sim::NodeId add_switch(const std::string& name,
                         std::size_t table_capacity = 65536);

  /// Add an end-host with a deterministic MAC derived from its node id.
  host::Host& add_host(const std::string& name, const std::string& ip);

  /// Wire two nodes (host or switch) together.  `bandwidth_bps` feeds the
  /// serialization-delay model and the switch queue model (DESIGN.md §12).
  void link(sim::NodeId a, sim::NodeId b,
            sim::SimTime latency = 10 * sim::kMicrosecond,
            std::uint64_t bandwidth_bps = sim::kDefaultBandwidthBps);
  void link(host::Host& a, sim::NodeId b,
            sim::SimTime latency = 10 * sim::kMicrosecond,
            std::uint64_t bandwidth_bps = sim::kDefaultBandwidthBps);

  /// Bound every switch's output queues to `packets` (0 restores the
  /// idealized unbounded behaviour).  Applies to all current switches.
  void set_queue_depth(std::uint32_t packets);

  // ---- controllers -----------------------------------------------------------

  /// Parse `policy` (concatenated .control file text) and install an
  /// ident++ controller owning every so-far-unadopted switch.  All hosts
  /// (current and future) are registered with it.
  ctrl::IdentxxController& install_controller(
      std::string_view policy, ctrl::ControllerConfig config = {});

  /// Multi-domain variant: the controller adopts only `switches`.
  ctrl::IdentxxController& install_domain_controller(
      std::string_view policy, const std::vector<sim::NodeId>& switches,
      ctrl::ControllerConfig config = {});

  /// Install a controller from a set of .control files (sorted and
  /// concatenated per §3.4, as in Figure 2).
  ctrl::IdentxxController& install_controller_files(
      std::vector<pf::ControlFile> files, ctrl::ControllerConfig config = {});

  /// Sharded admission domains (DESIGN.md §10): partition flows across
  /// `shards` parallel AdmissionControllers with shard-local caches and
  /// verifiers, evaluated on `workers` real threads (1 = serial; results
  /// are identical either way).  Adopts every so-far-unadopted switch and
  /// configures the simulator's shard lanes and worker pool.
  ctrl::ShardedAdmissionController& install_sharded_controller(
      std::string_view policy, std::uint32_t shards, std::uint32_t workers = 1,
      ctrl::ControllerConfig config = {});

  /// Baselines (each adopts every unadopted switch).
  ctrl::VanillaFirewall& install_vanilla_firewall(bool default_allow = false);
  ctrl::EthaneController& install_ethane_controller(std::string_view policy);
  ctrl::DistributedFirewallController& install_distributed_firewall();

  // ---- traffic ---------------------------------------------------------------

  /// Open a flow from process `pid` on `src` to `dst_ip:dst_port` and emit
  /// its first packet (SYN).
  FlowHandle start_flow(host::Host& src, int pid, const std::string& dst_ip,
                        std::uint16_t dst_port,
                        net::IpProto proto = net::IpProto::kTcp,
                        std::string_view payload = "");

  /// Did any packet of `handle`'s flow reach the destination application?
  [[nodiscard]] bool flow_delivered(const FlowHandle& handle) const;

  // ---- running ----------------------------------------------------------------

  /// Run the simulation until idle (or `deadline` if nonnegative).
  void run(sim::SimTime deadline = -1);

  // ---- access -----------------------------------------------------------------

  [[nodiscard]] openflow::Topology& topology() noexcept { return topology_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return topology_.simulator();
  }
  [[nodiscard]] host::Host& host(sim::NodeId id);
  [[nodiscard]] host::Host& host(const std::string& name);
  [[nodiscard]] openflow::Switch& switch_at(sim::NodeId id) {
    return topology_.switch_at(id);
  }
  [[nodiscard]] const std::vector<sim::NodeId>& switch_ids() const noexcept {
    return topology_.switch_ids();
  }

  /// Install a caller-assembled AdmissionPipeline as a controller owning
  /// every so-far-unadopted switch — the escape hatch for custom stage
  /// compositions (new flavours, instrumented stages, test fakes).
  ctrl::AdmissionController& install_pipeline(ctrl::AdmissionPipeline pipeline,
                                              ctrl::ControllerConfig config = {});

 private:
  /// Adopt `switches` (or every unadopted switch when nullptr), register
  /// all current hosts, take ownership.
  ctrl::AdmissionController& attach_controller(
      std::unique_ptr<ctrl::AdmissionController> controller,
      const std::vector<sim::NodeId>* switches = nullptr);
  [[nodiscard]] std::vector<sim::NodeId> unadopted_switches() const;

  openflow::Topology topology_;
  std::unordered_map<std::string, sim::NodeId> hosts_by_name_;
  std::vector<sim::NodeId> host_ids_;
  std::vector<std::unique_ptr<ctrl::AdmissionController>> controllers_;
  std::vector<std::unique_ptr<ctrl::ShardedAdmissionController>>
      sharded_controllers_;
  std::unordered_map<sim::NodeId, bool> adopted_;
};

}  // namespace identxx::core
