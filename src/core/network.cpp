#include "core/network.hpp"

#include "util/error.hpp"

namespace identxx::core {

sim::NodeId Network::add_switch(const std::string& name,
                                std::size_t table_capacity) {
  const sim::NodeId id = topology_.add_switch(
      std::make_unique<openflow::Switch>(name, table_capacity));
  adopted_[id] = false;
  return id;
}

host::Host& Network::add_host(const std::string& name, const std::string& ip) {
  const auto addr = net::Ipv4Address::parse(ip);
  if (!addr) throw Error("add_host: invalid IP '" + ip + "'");
  if (hosts_by_name_.contains(name)) {
    throw Error("add_host: duplicate host name '" + name + "'");
  }
  // MAC derived from the eventual node id (node_count is the next id).
  const auto mac = net::MacAddress::for_node(
      static_cast<std::uint32_t>(topology_.simulator().node_count()));
  auto host_ptr = std::make_unique<host::Host>(name, *addr, mac);
  host::Host& ref = *host_ptr;
  const sim::NodeId id = topology_.add_host(std::move(host_ptr));
  hosts_by_name_[name] = id;
  host_ids_.push_back(id);
  // Late host registration: tell every existing controller about it.
  for (const auto& controller : controllers_) {
    controller->register_host(ref.ip(), id, ref.mac());
  }
  for (const auto& controller : sharded_controllers_) {
    controller->register_host(ref.ip(), id, ref.mac());
  }
  return ref;
}

void Network::link(sim::NodeId a, sim::NodeId b, sim::SimTime latency,
                   std::uint64_t bandwidth_bps) {
  topology_.link(a, b, latency, bandwidth_bps);
}

void Network::link(host::Host& a, sim::NodeId b, sim::SimTime latency,
                   std::uint64_t bandwidth_bps) {
  topology_.link(a.id(), b, latency, bandwidth_bps);
}

void Network::set_queue_depth(std::uint32_t packets) {
  for (const sim::NodeId id : topology_.switch_ids()) {
    topology_.switch_at(id).set_queue_depth(packets);
  }
}

std::vector<sim::NodeId> Network::unadopted_switches() const {
  std::vector<sim::NodeId> out;
  for (const sim::NodeId id : topology_.switch_ids()) {
    const auto it = adopted_.find(id);
    if (it != adopted_.end() && !it->second) out.push_back(id);
  }
  return out;
}

ctrl::AdmissionController& Network::attach_controller(
    std::unique_ptr<ctrl::AdmissionController> controller,
    const std::vector<sim::NodeId>* switches) {
  const std::vector<sim::NodeId> unadopted =
      switches == nullptr ? unadopted_switches() : *switches;
  for (const sim::NodeId id : unadopted) {
    controller->adopt_switch(id);
    adopted_[id] = true;
  }
  for (const sim::NodeId id : host_ids_) {
    auto& h = host(id);
    controller->register_host(h.ip(), id, h.mac());
  }
  controllers_.push_back(std::move(controller));
  return *controllers_.back();
}

ctrl::IdentxxController& Network::install_controller(
    std::string_view policy, ctrl::ControllerConfig config) {
  return install_domain_controller(policy, unadopted_switches(),
                                   std::move(config));
}

ctrl::IdentxxController& Network::install_controller_files(
    std::vector<pf::ControlFile> files, ctrl::ControllerConfig config) {
  pf::Ruleset ruleset = pf::load_control_files(std::move(files));
  return static_cast<ctrl::IdentxxController&>(
      attach_controller(std::make_unique<ctrl::IdentxxController>(
          &topology_, std::move(ruleset), std::move(config))));
}

ctrl::IdentxxController& Network::install_domain_controller(
    std::string_view policy, const std::vector<sim::NodeId>& switches,
    ctrl::ControllerConfig config) {
  pf::Ruleset ruleset = pf::parse(policy, config.name);
  return static_cast<ctrl::IdentxxController&>(attach_controller(
      std::make_unique<ctrl::IdentxxController>(&topology_, std::move(ruleset),
                                                std::move(config)),
      &switches));
}

ctrl::ShardedAdmissionController& Network::install_sharded_controller(
    std::string_view policy, std::uint32_t shards, std::uint32_t workers,
    ctrl::ControllerConfig config) {
  simulator().configure_shard_lanes(shards == 0 ? 1 : shards);
  simulator().set_workers(workers == 0 ? 1 : workers);
  pf::Ruleset ruleset = pf::parse(policy, config.name);
  auto controller = std::make_unique<ctrl::ShardedAdmissionController>(
      &topology_, std::move(ruleset), shards, std::move(config));
  for (const sim::NodeId id : unadopted_switches()) {
    controller->adopt_switch(id);
    adopted_[id] = true;
  }
  for (const sim::NodeId id : host_ids_) {
    auto& h = host(id);
    controller->register_host(h.ip(), id, h.mac());
  }
  sharded_controllers_.push_back(std::move(controller));
  return *sharded_controllers_.back();
}

ctrl::VanillaFirewall& Network::install_vanilla_firewall(bool default_allow) {
  return static_cast<ctrl::VanillaFirewall&>(attach_controller(
      std::make_unique<ctrl::VanillaFirewall>(&topology_, default_allow)));
}

ctrl::EthaneController& Network::install_ethane_controller(
    std::string_view policy) {
  return static_cast<ctrl::EthaneController&>(
      attach_controller(std::make_unique<ctrl::EthaneController>(
          &topology_, pf::parse(policy, "ethane"))));
}

ctrl::DistributedFirewallController& Network::install_distributed_firewall() {
  return static_cast<ctrl::DistributedFirewallController&>(attach_controller(
      std::make_unique<ctrl::DistributedFirewallController>(&topology_)));
}

ctrl::AdmissionController& Network::install_pipeline(
    ctrl::AdmissionPipeline pipeline, ctrl::ControllerConfig config) {
  return attach_controller(std::make_unique<ctrl::AdmissionController>(
      &topology_, std::move(pipeline), std::move(config)));
}

FlowHandle Network::start_flow(host::Host& src, int pid,
                               const std::string& dst_ip,
                               std::uint16_t dst_port, net::IpProto proto,
                               std::string_view payload) {
  const auto addr = net::Ipv4Address::parse(dst_ip);
  if (!addr) throw Error("start_flow: invalid IP '" + dst_ip + "'");
  const net::FiveTuple flow = src.connect_flow(pid, *addr, dst_port, proto);
  src.send_flow_packet(flow, payload);

  FlowHandle handle;
  handle.flow = flow;
  handle.src_node = src.id();
  handle.src_pid = pid;
  for (const sim::NodeId id : host_ids_) {
    if (const auto* h = dynamic_cast<const host::Host*>(
            &topology_.simulator().node(id));
        h != nullptr && h->ip() == *addr) {
      handle.dst_node = id;
      break;
    }
  }
  return handle;
}

bool Network::flow_delivered(const FlowHandle& handle) const {
  if (handle.dst_node == sim::kInvalidNode) return false;
  const auto& dst = dynamic_cast<const host::Host&>(
      topology_.simulator().node(handle.dst_node));
  for (const net::Packet& packet : dst.delivered()) {
    if (packet.five_tuple() == handle.flow) return true;
  }
  return false;
}

void Network::run(sim::SimTime deadline) {
  topology_.simulator().run(deadline);
}

host::Host& Network::host(sim::NodeId id) {
  auto* h = dynamic_cast<host::Host*>(&topology_.simulator().node(id));
  if (h == nullptr) throw Error("host: node is not a Host");
  return *h;
}

host::Host& Network::host(const std::string& name) {
  const auto it = hosts_by_name_.find(name);
  if (it == hosts_by_name_.end()) throw Error("host: unknown name '" + name + "'");
  return host(it->second);
}

}  // namespace identxx::core
