#pragma once

// Scenario descriptions: build and drive a whole ident++ deployment from a
// plain-text file, no C++ required.  This is what `tools/identxx_sim` runs
// and what operators would use to stage policy changes.
//
// Directive language (one directive per line, '#' comments):
//
//     seed 42                            # RNG seed for deterministic replay
//     switch s1
//     switch s2
//     link s1 s2 [latency_us]
//     host client 192.168.0.10 s1        # name ip attachment-switch
//     user client alice staff            # host user group
//     launch curl1 client alice /usr/bin/curl     # id host user exe
//     appconfig client /usr/bin/curl name=curl version=3
//     hostfact server os-patch "MS08-001 MS08-067"
//     listen httpd1 80 [udp]
//     policy begin                       # inline PF+=2 until 'policy end'
//       block all
//       pass from any to any port 80 with eq(@src[userID], alice)
//     policy end
//     flow f1 curl1 192.168.1.1 80 [udp]
//     expect f1 delivered                # or blocked
//
// Authenticated delegation (Figs 4-7) is first-class:
//
//     signedapp rm1 /usr/bin/research-app research-app research-key ...
//         "block all pass all with eq(@src[name], research-app)"
//
// derives a Schnorr key pair from the seed "research-key", signs
// (exe-hash, app-name, requirements), and installs the @app block on the
// host.  Inside the policy block, `$pubkey(research-key)` expands to the
// corresponding public key hex, so the Fig 5 <pubkeys> dict can be written
// without pasting keys.
//
// Flows start in file order; expectations are checked after the run.

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/network.hpp"

namespace identxx::core {

/// Outcome of one scenario flow.
struct ScenarioFlowResult {
  std::string id;
  net::FiveTuple flow;
  bool delivered = false;
  bool expectation_known = false;
  bool expected_delivered = false;

  [[nodiscard]] bool matches_expectation() const noexcept {
    return !expectation_known || delivered == expected_delivered;
  }

  [[nodiscard]] bool operator==(const ScenarioFlowResult&) const = default;
};

struct ScenarioResult {
  std::vector<ScenarioFlowResult> flows;
  /// Aggregate over all admission domains (a single controller's stats
  /// verbatim for unsharded runs).
  ctrl::ControllerStats controller_stats;
  /// Per-domain breakdown; one entry for unsharded runs.
  std::vector<ctrl::ControllerStats> domain_stats;
  /// Canonically ordered (audit_record_before) so the log is comparable
  /// across shard counts.
  std::vector<ctrl::DecisionRecord> audit_log;

  /// All expectations met?
  [[nodiscard]] bool ok() const noexcept {
    for (const auto& flow : flows) {
      if (!flow.matches_expectation()) return false;
    }
    return true;
  }

  /// The shard-count/worker-count invariant (DESIGN.md §10): everything
  /// observable — flow verdicts, aggregate stats, the canonical audit
  /// log — must be identical however the run was partitioned.  The
  /// per-domain breakdown is intentionally not compared.
  [[nodiscard]] bool equivalent_to(const ScenarioResult& other) const {
    return flows == other.flows && controller_stats == other.controller_stats &&
           audit_log == other.audit_log;
  }
};

/// Knobs for Scenario::run.
struct ScenarioOptions {
  ctrl::ControllerConfig config;
  /// 0 = classic single controller; >= 1 = sharded admission domains.
  std::uint32_t shards = 0;
  /// Real parallelism for sharded runs (1 = serial; results identical).
  std::uint32_t workers = 1;
  /// Seed for the deterministic per-domain RNG streams (query ephemeral
  /// ports).  0 falls back to the scenario file's `seed` directive (or 0).
  std::uint64_t seed = 0;
};

/// A parsed scenario, ready to run.  Parsing and execution are split so
/// tests can inspect intermediate state and reuse a scenario.
class Scenario {
 public:
  /// Parse a scenario description.  Throws ParseError with line numbers.
  [[nodiscard]] static Scenario parse(std::string_view text);

  /// Build the network, start every flow, run to completion, check
  /// expectations.  Throws Error for semantic problems (unknown names).
  [[nodiscard]] ScenarioResult run(ctrl::ControllerConfig config = {}) const;

  /// As above, with sharding/worker/seed control.  A given scenario and
  /// seed produce an equivalent_to-identical result at any shard count
  /// and any worker count.
  [[nodiscard]] ScenarioResult run(const ScenarioOptions& options) const;

  [[nodiscard]] const std::string& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }

 private:
  struct SwitchDecl {
    std::string name;
  };
  struct LinkDecl {
    std::string a, b;
    sim::SimTime latency = 10 * sim::kMicrosecond;
  };
  struct HostDecl {
    std::string name, ip, attach;
  };
  struct UserDecl {
    std::string host, user, group;
  };
  struct LaunchDecl {
    std::string id, host, user, exe;
  };
  struct AppConfigDecl {
    std::string host, exe;
    proto::KeyValueList pairs;
  };
  struct SignedAppDecl {
    std::string host, exe, name, key_seed, requirements;
  };
  struct HostFactDecl {
    std::string host, key, value;
  };
  struct ListenDecl {
    std::string launch_id;
    std::uint16_t port = 0;
    net::IpProto proto = net::IpProto::kTcp;
  };
  struct FlowDecl {
    std::string id, launch_id, dst_ip;
    std::uint16_t port = 0;
    net::IpProto proto = net::IpProto::kTcp;
  };

  std::vector<SwitchDecl> switches_;
  std::vector<LinkDecl> links_;
  std::vector<HostDecl> hosts_;
  std::vector<UserDecl> users_;
  std::vector<LaunchDecl> launches_;
  std::vector<AppConfigDecl> app_configs_;
  std::vector<SignedAppDecl> signed_apps_;
  std::vector<HostFactDecl> host_facts_;
  std::vector<ListenDecl> listens_;
  std::vector<FlowDecl> flows_;
  std::unordered_map<std::string, bool> expectations_;  // flow id -> delivered
  std::string policy_;
  std::uint64_t seed_ = 0;  ///< `seed <n>` directive; 0 when absent
};

}  // namespace identxx::core
