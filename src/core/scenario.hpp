#pragma once

// Scenario descriptions: build and drive a whole ident++ deployment from a
// plain-text file, no C++ required.  This is what `tools/identxx_sim` runs
// and what operators would use to stage policy changes.
//
// Directive language (one directive per line, '#' comments):
//
//     seed 42                            # RNG seed for deterministic replay
//     switch s1
//     switch s2
//     link s1 s2 [latency_us] [bw_mbps]  # 0 mbps = serialization-free
//     host client 192.168.0.10 s1        # name ip attachment-switch
//     user client alice staff            # host user group
//     launch curl1 client alice /usr/bin/curl     # id host user exe
//     appconfig client /usr/bin/curl name=curl version=3
//     hostfact server os-patch "MS08-001 MS08-067"
//     listen httpd1 80 [udp]
//     policy begin                       # inline PF+=2 until 'policy end'
//       block all
//       pass from any to any port 80 with eq(@src[userID], alice)
//     policy end
//     flow f1 curl1 192.168.1.1 80 [udp]
//     traffic f1 cbr packets=64 rate=20000   # traffic model (DESIGN.md §12)
//     control 500 revoke_all             # control-plane op at t=500us
//     control 500 raced set_policy "block all"   # fired mid-admission
//     fault chan s1 loss=0.05 delay_us=200 dup=0.01   # control-channel fault
//     fault chan all loss=0.01           # every switch's channel
//     fault host server down_at=0 up_at=40000         # daemon crash/restart
//     fault retry max=2 jitter_us=500 degraded_ttl_us=20000
//     fault retry probe_delay_us=100000 max_probes=3  # admission robustness
//     pin client 1                       # pin a host's flows to shard 1
//     expect f1 delivered                # or blocked
//
// Control-plane churn (DESIGN.md §13): `control <at_us> [raced] <op>` runs
// a cross-shard control operation mid-run.  Ops: `revoke_all`,
// `revoke_port <port>`, `set_policy "<rules>"` ($pubkey expansion
// applies), `set_multipath <k> [seed]`.  Plain ops fire on the global
// lane at the given virtual time, before that instant's admission work —
// classic and sharded runs stay comparable.  `raced` ops instead arm on
// the first daemon response at-or-after the given time and fire two
// global-lane waves later — between a sharded decision's shard-lane
// dispatch and its global-lane commit, the control-epoch re-decision
// window (raced scenarios are for exercising sharded commit ordering;
// classic runs decide inline, so the op lands after the decision).
//
// Traffic models (src/net/traffic): single (default), cbr, onoff,
// pareto, aimd — `traffic <flow-id> <model> [key=value ...]` attaches a
// generator to the flow; see traffic.hpp for the keys.
//
// Authenticated delegation (Figs 4-7) is first-class:
//
//     signedapp rm1 /usr/bin/research-app research-app research-key ...
//         "block all pass all with eq(@src[name], research-app)"
//
// derives a Schnorr key pair from the seed "research-key", signs
// (exe-hash, app-name, requirements), and installs the @app block on the
// host.  Inside the policy block, `$pubkey(research-key)` expands to the
// corresponding public key hex, so the Fig 5 <pubkeys> dict can be written
// without pasting keys.
//
// Flows start in file order; expectations are checked after the run.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/network.hpp"
#include "sim/fault.hpp"

namespace identxx::core {

/// Outcome of one scenario flow.
struct ScenarioFlowResult {
  std::string id;
  net::FiveTuple flow;
  bool delivered = false;
  /// Traffic accounting: packets the flow's generator emitted (1 for the
  /// default single-SYN flows) and payload packets the destination
  /// application received.  Compared by equivalent_to, so per-flow
  /// delivery under congestion must be bit-identical across shard and
  /// worker counts.
  std::uint64_t packets_sent = 1;
  std::uint64_t packets_delivered = 0;
  /// Deliveries that arrived behind a later-sent packet of this flow
  /// (sender-stamped sequence below the receiver's high-water mark) — the
  /// per-flow cost of mid-run path changes, e.g. a `control set_multipath`
  /// re-pin moving the flow across equal-cost paths of different latency.
  /// Compared by equivalent_to like the other traffic counters.
  std::uint64_t packets_reordered = 0;
  bool expectation_known = false;
  bool expected_delivered = false;

  [[nodiscard]] bool matches_expectation() const noexcept {
    return !expectation_known || delivered == expected_delivered;
  }

  [[nodiscard]] bool operator==(const ScenarioFlowResult&) const = default;
};

/// What the seeded fault model actually did during a run (DESIGN.md §14).
/// Part of equivalent_to: fault injection draws on the global lane, so a
/// faulted run's injections must be bit-identical at any shard/worker
/// count.
struct ScenarioFaultStats {
  std::uint64_t chan_dropped = 0;
  std::uint64_t chan_duplicated = 0;
  std::uint64_t chan_delayed = 0;
  std::uint64_t daemon_queries_ignored = 0;  ///< queries hitting a down daemon

  [[nodiscard]] bool operator==(const ScenarioFaultStats&) const = default;
};

struct ScenarioResult {
  std::vector<ScenarioFlowResult> flows;
  /// Aggregate over all admission domains (a single controller's stats
  /// verbatim for unsharded runs).
  ctrl::ControllerStats controller_stats;
  /// Per-domain breakdown; one entry for unsharded runs.
  std::vector<ctrl::ControllerStats> domain_stats;
  /// Canonically ordered (audit_record_before) so the log is comparable
  /// across shard counts.
  std::vector<ctrl::DecisionRecord> audit_log;
  /// Congestion observability (DESIGN.md §12): bounded-queue tail drops,
  /// total and per switch in creation order.  Zero everywhere when the
  /// queue model is off (queue_depth 0).
  std::uint64_t queue_tail_drops = 0;
  std::vector<std::uint64_t> switch_queue_drops;
  /// Path-set cache counters and the ECMP selection histogram, surfaced
  /// by identxx_sim.  NOT part of equivalent_to: worker threads use
  /// private path memos, so hit/miss counts legitimately vary with the
  /// worker count even though the selected paths (and therefore
  /// everything above) do not.
  openflow::PathCacheStats path_cache_stats;
  /// Injected control-plane faults (DESIGN.md §14); all-zero in unfaulted
  /// runs.
  ScenarioFaultStats fault_stats;

  /// All expectations met?
  [[nodiscard]] bool ok() const noexcept {
    for (const auto& flow : flows) {
      if (!flow.matches_expectation()) return false;
    }
    return true;
  }

  /// The shard-count/worker-count invariant (DESIGN.md §10): everything
  /// observable — flow verdicts, aggregate stats, the canonical audit
  /// log — must be identical however the run was partitioned.  The
  /// per-domain breakdown is intentionally not compared.
  [[nodiscard]] bool equivalent_to(const ScenarioResult& other) const {
    return flows == other.flows && controller_stats == other.controller_stats &&
           audit_log == other.audit_log &&
           queue_tail_drops == other.queue_tail_drops &&
           switch_queue_drops == other.switch_queue_drops &&
           fault_stats == other.fault_stats;
  }
};

/// Knobs for Scenario::run.
struct ScenarioOptions {
  ctrl::ControllerConfig config;
  /// 0 = classic single controller; >= 1 = sharded admission domains.
  std::uint32_t shards = 0;
  /// Real parallelism for sharded runs (1 = serial; results identical).
  std::uint32_t workers = 1;
  /// Seed for the deterministic per-domain RNG streams (query ephemeral
  /// ports).  0 falls back to the scenario file's `seed` directive (or 0).
  std::uint64_t seed = 0;
  /// Congestion knobs (DESIGN.md §12).  The defaults reproduce the
  /// idealized pre-multipath behaviour exactly: one BFS path per pair,
  /// per-link declared bandwidth, unbounded queues, one SYN per flow.
  std::uint32_t k_paths = 1;  ///< equal-cost paths per (src,dst) pair
  /// Override every link's bandwidth (host attachments included);
  /// 0 = keep per-link declarations / defaults.
  std::uint64_t link_bandwidth_bps = 0;
  std::uint32_t queue_depth = 0;  ///< bounded switch output queues; 0 = off
  /// Override every flow's traffic model with this spec
  /// ("cbr,packets=64,..."); empty = per-flow `traffic` directives.
  std::string traffic;
  /// Schedule exploration (DESIGN.md §13): dictate the per-wave shard-lane
  /// execution order.  Not owned; nullptr = canonical order.
  sim::ScheduleController* schedule_controller = nullptr;
  /// Injected determinism mutation: merge staged cross-lane events in
  /// modeled arrival order instead of canonical lane order (checker
  /// self-test; see Simulator::set_fault_merge_arrival_order).
  bool fault_merge_arrival_order = false;
  /// Control-channel fault overrides (DESIGN.md §14): when any is nonzero,
  /// a ChannelFaultSpec{chan_loss, chan_dup, chan_delay} is applied to
  /// EVERY switch, replacing the scenario's `fault chan` directives.  Each
  /// switch still draws from its own name-derived stream.
  double chan_loss = 0.0;
  double chan_dup = 0.0;
  sim::SimTime chan_delay = 0;
};

/// A parsed scenario, ready to run.  Parsing and execution are split so
/// tests can inspect intermediate state and reuse a scenario.
class Scenario {
 public:
  /// Parse a scenario description.  Throws ParseError with line numbers.
  [[nodiscard]] static Scenario parse(std::string_view text);

  /// Build the network, start every flow, run to completion, check
  /// expectations.  Throws Error for semantic problems (unknown names).
  [[nodiscard]] ScenarioResult run(ctrl::ControllerConfig config = {}) const;

  /// As above, with sharding/worker/seed control.  A given scenario and
  /// seed produce an equivalent_to-identical result at any shard count
  /// and any worker count.
  [[nodiscard]] ScenarioResult run(const ScenarioOptions& options) const;

  [[nodiscard]] const std::string& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }

 private:
  struct SwitchDecl {
    std::string name;
  };
  struct LinkDecl {
    std::string a, b;
    sim::SimTime latency = 10 * sim::kMicrosecond;
    /// Declared capacity; an explicit 0 mbps disables serialization delay.
    std::uint64_t bandwidth_bps = sim::kDefaultBandwidthBps;
  };
  struct HostDecl {
    std::string name, ip, attach;
  };
  struct UserDecl {
    std::string host, user, group;
  };
  struct LaunchDecl {
    std::string id, host, user, exe;
  };
  struct AppConfigDecl {
    std::string host, exe;
    proto::KeyValueList pairs;
  };
  struct SignedAppDecl {
    std::string host, exe, name, key_seed, requirements;
  };
  struct HostFactDecl {
    std::string host, key, value;
  };
  struct ListenDecl {
    std::string launch_id;
    std::uint16_t port = 0;
    net::IpProto proto = net::IpProto::kTcp;
  };
  struct FlowDecl {
    std::string id, launch_id, dst_ip;
    std::uint16_t port = 0;
    net::IpProto proto = net::IpProto::kTcp;
    std::string traffic;  ///< TrafficSpec text; empty = single SYN
  };
  struct PinDecl {
    std::string host;
    std::uint32_t shard = 0;
  };
  struct ChannelFaultDecl {
    std::string sw;  ///< switch name, or "all"
    sim::ChannelFaultSpec spec;
  };
  struct HostFaultDecl {
    std::string host;
    sim::SimTime down_at = 0;
    sim::SimTime up_at = -1;  ///< -1 = never restarts
  };
  /// Scenario-level admission robustness policy (`fault retry ...`).
  /// Applied to the controller config only where the caller left the
  /// corresponding knob at its default, so CLI/test overrides win.
  struct RetryDecl {
    bool set = false;
    std::optional<std::uint32_t> max_retries;
    std::optional<sim::SimTime> jitter;
    std::optional<sim::SimTime> degraded_ttl;
    std::optional<sim::SimTime> probe_delay;
    std::optional<std::uint32_t> max_probes;
  };
  struct ControlDecl {
    enum class Op { kRevokeAll, kRevokePort, kSetPolicy, kSetMultipath };
    sim::SimTime at = 0;
    bool raced = false;
    Op op = Op::kRevokeAll;
    std::uint16_t port = 0;      ///< kRevokePort
    std::string policy;          ///< kSetPolicy
    std::uint32_t k_paths = 1;   ///< kSetMultipath
    std::uint64_t ecmp_seed = 0; ///< kSetMultipath
  };

  std::vector<SwitchDecl> switches_;
  std::vector<LinkDecl> links_;
  std::vector<HostDecl> hosts_;
  std::vector<UserDecl> users_;
  std::vector<LaunchDecl> launches_;
  std::vector<AppConfigDecl> app_configs_;
  std::vector<SignedAppDecl> signed_apps_;
  std::vector<HostFactDecl> host_facts_;
  std::vector<ListenDecl> listens_;
  std::vector<FlowDecl> flows_;
  std::vector<PinDecl> pins_;
  std::vector<ControlDecl> controls_;
  std::vector<ChannelFaultDecl> chan_faults_;
  std::vector<HostFaultDecl> host_faults_;
  RetryDecl retry_;
  std::unordered_map<std::string, bool> expectations_;  // flow id -> delivered
  std::string policy_;
  std::uint64_t seed_ = 0;  ///< `seed <n>` directive; 0 when absent
};

}  // namespace identxx::core
