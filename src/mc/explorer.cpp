#include "mc/explorer.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace identxx::mc {

namespace {

using Order = std::vector<sim::LaneId>;

/// What one shard wave did in one run: when it ran, which lanes were
/// active (canonical ascending), the order actually executed, and each
/// lane's logical-resource footprint (the lane's own batch plus its
/// staged commits, attributed via the simulator's origin tags).
struct WaveRecord {
  sim::SimTime when = 0;
  Order active;
  Order taken;
  std::map<sim::LaneId, std::vector<sim::LaneAccess>> accesses;
};

/// ScheduleController that replays a prescribed order for the first N
/// shard waves (canonical beyond), or — in random mode — shuffles every
/// wave, while recording the trace and access footprints either way.
class ReplayController final : public sim::ScheduleController {
 public:
  explicit ReplayController(std::vector<Order> prescription)
      : prescription_(std::move(prescription)) {}
  ReplayController(std::uint64_t shuffle_seed, bool /*random_tag*/)
      : random_(true), rng_(shuffle_seed) {}

  void plan_wave(sim::SimTime when, std::vector<sim::LaneId>& order) override {
    WaveRecord rec;
    rec.when = when;
    rec.active = order;
    const std::size_t wave = trace_.size();
    if (random_) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng_.next_below(i)]);
      }
    } else if (wave < prescription_.size() &&
               std::is_permutation(prescription_[wave].begin(),
                                   prescription_[wave].end(), order.begin(),
                                   order.end())) {
      // The active set can drift from the prescribing run's only when a
      // divergence already happened; falling back to canonical keeps the
      // replay well-defined either way.
      order = prescription_[wave];
    }
    rec.taken = order;
    trace_.push_back(std::move(rec));
  }

  void on_access(sim::LaneId origin, const sim::LaneAccess& access) override {
    // Purely global work (origin 0) is schedule-independent by
    // construction; footprints only matter for shard-attributed events.
    if (origin == sim::kGlobalLane || trace_.empty()) return;
    auto& list = trace_.back().accesses[origin];
    for (const sim::LaneAccess& seen : list) {
      if (seen.kind == access.kind && seen.id == access.id &&
          seen.write == access.write) {
        return;
      }
    }
    list.push_back(access);
  }

  [[nodiscard]] std::vector<WaveRecord> take_trace() {
    return std::move(trace_);
  }

 private:
  std::vector<Order> prescription_;
  bool random_ = false;
  util::SplitMix64 rng_{0};
  std::vector<WaveRecord> trace_;
};

/// Do the two lanes' footprints at this wave conflict (same logical
/// resource, at least one write)?  Lanes with disjoint footprints commute:
/// swapping their execution order provably cannot change the merged
/// outcome, which is exactly the DPOR independence oracle.
[[nodiscard]] bool lanes_conflict(const WaveRecord& rec, sim::LaneId a,
                                  sim::LaneId b) {
  const auto ita = rec.accesses.find(a);
  const auto itb = rec.accesses.find(b);
  if (ita == rec.accesses.end() || itb == rec.accesses.end()) return false;
  for (const sim::LaneAccess& x : ita->second) {
    for (const sim::LaneAccess& y : itb->second) {
      if (x.conflicts_with(y)) return true;
    }
  }
  return false;
}

/// All permutations of `active` (ascending input; bounded by the caller).
[[nodiscard]] std::vector<Order> all_orders(Order active) {
  std::vector<Order> out;
  std::sort(active.begin(), active.end());
  do {
    out.push_back(active);
  } while (std::next_permutation(active.begin(), active.end()));
  return out;
}

/// Partition the permutations of rec.active into Mazurkiewicz
/// trace-equivalence classes (closure under swapping adjacent
/// *independent* lanes) and return one representative per class, plus the
/// number of permutations pruned as equivalent.  Small n only: the caller
/// bounds |active|.
[[nodiscard]] std::pair<std::vector<Order>, std::uint64_t>
representative_orders(const WaveRecord& rec) {
  const std::vector<Order> perms = all_orders(rec.active);
  std::map<Order, std::size_t> cls;
  std::size_t next_class = 0;
  for (const Order& seed : perms) {
    if (cls.contains(seed)) continue;
    // BFS over adjacent-independent swaps.
    std::vector<Order> frontier{seed};
    cls[seed] = next_class;
    while (!frontier.empty()) {
      const Order cur = std::move(frontier.back());
      frontier.pop_back();
      for (std::size_t k = 0; k + 1 < cur.size(); ++k) {
        if (lanes_conflict(rec, cur[k], cur[k + 1])) continue;
        Order next = cur;
        std::swap(next[k], next[k + 1]);
        if (cls.emplace(next, next_class).second) {
          frontier.push_back(std::move(next));
        }
      }
    }
    ++next_class;
  }
  // Representative = lexicographically least member of each class, which
  // the ordered map yields for free.
  std::vector<Order> reps(next_class);
  std::vector<bool> have(next_class, false);
  for (const auto& [perm, c] : cls) {
    if (!have[c]) {
      reps[c] = perm;
      have[c] = true;
    }
  }
  return {std::move(reps), perms.size() - next_class};
}

std::string order_to_string(const Order& order) {
  std::string out = "[";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(order[i]);
  }
  out += ']';
  return out;
}

}  // namespace

std::string Divergence::to_string() const {
  std::ostringstream out;
  out << detail << "\n";
  if (schedule.empty()) {
    out << "  schedule: canonical (no reordering required)\n";
    return out.str();
  }
  out << "  minimized schedule (canonical order resumes afterwards):\n";
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    Order canonical = schedule[i].order;
    std::sort(canonical.begin(), canonical.end());
    out << "    wave " << i << " @ " << schedule[i].when / sim::kMicrosecond
        << "us: lanes " << order_to_string(schedule[i].order)
        << (schedule[i].order == canonical ? "  (canonical)" : "") << "\n";
  }
  return out.str();
}

std::string Report::summary() const {
  std::ostringstream out;
  out << "schedules explored: " << schedules_explored
      << ", branching choice points: " << choice_points
      << ", permutations pruned as commuting: " << schedules_pruned;
  if (budget_exhausted) out << " (schedule budget exhausted)";
  out << "\n";
  if (divergence) {
    out << "DIVERGENCE: " << divergence->to_string();
  } else {
    out << "OK: ScenarioResult invariant across all explored schedules\n";
  }
  return out.str();
}

Explorer::Explorer(const core::Scenario& scenario, ExplorerOptions options)
    : scenario_(&scenario), options_(std::move(options)) {
  if (options_.scenario.shards == 0) {
    throw Error("mc::Explorer: scenario.shards must be >= 1");
  }
  // Exploration is serial by construction: the dictated order IS the
  // execution order, no worker pool involved.
  options_.scenario.workers = 1;
}

Report Explorer::run() {
  Report report;

  const auto run_once = [&](const std::vector<Order>& prescription)
      -> std::pair<core::ScenarioResult, std::vector<WaveRecord>> {
    ReplayController controller{prescription};
    core::ScenarioOptions opts = options_.scenario;
    opts.schedule_controller = &controller;
    core::ScenarioResult result = scenario_->run(opts);
    ++report.schedules_explored;
    return {std::move(result), controller.take_trace()};
  };

  auto [canonical, canonical_trace] = run_once({});
  for (const WaveRecord& rec : canonical_trace) {
    if (rec.active.size() >= 2) ++report.choice_points;
  }

  const auto failure_of =
      [&](const core::ScenarioResult& result) -> const char* {
    if (!result.equivalent_to(canonical)) {
      return "ScenarioResult diverges from the canonical schedule";
    }
    if (!result.ok()) return "scenario expectation violated";
    return nullptr;
  };

  // The canonical schedule must satisfy the scenario's own expectations;
  // a violation here needs no reordering at all (this is how the
  // epoch-re-decide mutation surfaces: the raced control op scenario
  // encodes the post-re-decision verdict as an expectation).
  if (!canonical.ok()) {
    report.divergence = Divergence{
        {}, "scenario expectation violated under the canonical schedule"};
    return report;
  }

  const auto budget_left = [&] {
    if (report.schedules_explored < options_.max_schedules) return true;
    report.budget_exhausted = true;
    return false;
  };

  // Greedy minimization: truncate trailing choices, then revert each wave
  // to canonical order, keeping every change that still fails.
  const auto minimize = [&](std::vector<Order> prescription,
                            const char* detail) {
    const auto still_fails = [&](const std::vector<Order>& candidate) {
      if (!budget_left()) return false;
      auto [result, trace] = run_once(candidate);
      return failure_of(result) != nullptr;
    };
    while (!prescription.empty()) {
      std::vector<Order> shorter(prescription.begin(), prescription.end() - 1);
      if (!still_fails(shorter)) break;
      prescription = std::move(shorter);
    }
    for (std::size_t i = 0; i < prescription.size(); ++i) {
      std::vector<Order> reverted = prescription;
      std::sort(reverted[i].begin(), reverted[i].end());
      if (reverted[i] == prescription[i]) continue;
      if (still_fails(reverted)) prescription = std::move(reverted);
    }
    // Re-run the minimized schedule once to stamp wave times.
    Divergence divergence;
    divergence.detail = detail;
    auto [result, trace] = run_once(prescription);
    for (std::size_t i = 0; i < prescription.size(); ++i) {
      const sim::SimTime when = i < trace.size() ? trace[i].when : 0;
      divergence.schedule.push_back(WaveChoice{when, prescription[i]});
    }
    report.divergence = std::move(divergence);
  };

  if (options_.mode == Mode::kRandom) {
    util::SplitMix64 seeds(options_.seed ^ 0x6d0f27bd642bf3a9ULL);
    for (std::uint64_t i = 0; i < options_.random_schedules; ++i) {
      if (!budget_left()) break;
      ReplayController controller{seeds.next(), true};
      core::ScenarioOptions opts = options_.scenario;
      opts.schedule_controller = &controller;
      core::ScenarioResult result = scenario_->run(opts);
      ++report.schedules_explored;
      if (const char* detail = failure_of(result)) {
        std::vector<WaveRecord> trace = controller.take_trace();
        std::vector<Order> prescription;
        prescription.reserve(trace.size());
        for (const WaveRecord& rec : trace) prescription.push_back(rec.taken);
        minimize(std::move(prescription), detail);
        return report;
      }
    }
    return report;
  }

  // DFS over the product of per-wave orders.  Each run's trace seeds
  // alternatives at every wave past its prescribed prefix, so every
  // distinct schedule (up to max_depth, and up to trace equivalence in
  // kDpor) executes exactly once.
  constexpr std::size_t kMaxPermutedLanes = 5;  // 5! = 120 orders per wave
  bool stop = false;
  const std::function<void(std::size_t, const std::vector<WaveRecord>&)>
      explore = [&](std::size_t first_free_wave,
                    const std::vector<WaveRecord>& trace) {
        if (stop) return;
        const std::size_t depth =
            std::min<std::size_t>(trace.size(), options_.max_depth);
        for (std::size_t d = first_free_wave; d < depth && !stop; ++d) {
          const WaveRecord& rec = trace[d];
          if (rec.active.size() < 2) continue;
          if (rec.active.size() > kMaxPermutedLanes) {
            // Too wide to permute exhaustively; kRandom covers these.
            continue;
          }
          std::vector<Order> alternatives;
          if (options_.mode == Mode::kDpor) {
            auto [reps, pruned] = representative_orders(rec);
            report.schedules_pruned += pruned;
            alternatives = std::move(reps);
          } else {
            alternatives = all_orders(rec.active);
          }
          for (const Order& alt : alternatives) {
            if (alt == rec.taken) continue;  // this run already covers it
            if (!budget_left()) {
              stop = true;
              return;
            }
            std::vector<Order> prescription;
            prescription.reserve(d + 1);
            for (std::size_t i = 0; i < d; ++i) {
              prescription.push_back(trace[i].taken);
            }
            prescription.push_back(alt);
            auto [result, alt_trace] = run_once(prescription);
            if (const char* detail = failure_of(result)) {
              minimize(std::move(prescription), detail);
              stop = true;
              return;
            }
            explore(d + 1, alt_trace);
          }
        }
      };
  explore(0, canonical_trace);
  return report;
}

}  // namespace identxx::mc
