#pragma once

// mc::Explorer — a determinism model checker for the sharded simulator
// (DESIGN.md §13).
//
// The checked claim (DESIGN.md §10) is that a scenario's observable result
// is bit-identical however the per-wave shard-lane work is ordered: shard
// lanes only communicate through the staged global-lane commit protocol,
// and the canonical merge makes the committed event sequence independent
// of the order the lanes actually ran.  The explorer treats the per-wave
// lane execution order as the nondeterminism alphabet: it drives the
// scenario through a sim::ScheduleController, systematically permutes the
// order at each multi-lane wave ("choice point"), and checks every
// schedule's ScenarioResult for equivalent_to-equality with the canonical
// schedule plus the scenario's own `expect` directives.
//
// Modes:
//   * kExhaustive — every permutation at every choice point (product DFS).
//   * kDpor      — sleep-set-style pruning: two lanes in a wave commute
//     unless their access footprints (same switch, cookie namespace,
//     control epoch, or path-cache epoch, at least one write — see
//     sim::LaneAccess) conflict; only one representative per Mazurkiewicz
//     trace-equivalence class of the permutations is executed.
//   * kRandom    — a bounded number of uniformly random schedules, for
//     configurations whose exhaustive product is too large.
//
// On divergence the explorer greedily minimizes the failing schedule
// (dropping trailing choices, reverting individual waves to canonical
// order) and reports the shortest prefix that still reproduces it.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/schedule.hpp"

namespace identxx::mc {

/// One wave's dictated lane execution order.
struct WaveChoice {
  sim::SimTime when = 0;
  std::vector<sim::LaneId> order;
};

/// A reproducible failure: the minimized schedule prefix (canonical order
/// resumes after the last entry) and which check it violated.
struct Divergence {
  std::vector<WaveChoice> schedule;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

enum class Mode { kExhaustive, kDpor, kRandom };

struct ExplorerOptions {
  /// Base scenario options.  `shards` must be >= 1 (the classic inline
  /// controller has no shard lanes to reorder); `workers` is forced to 1 —
  /// exploration runs serially so the dictated order is exact.
  core::ScenarioOptions scenario;
  Mode mode = Mode::kDpor;
  /// Branch only at the first `max_depth` waves of each schedule; later
  /// waves follow canonical order.
  std::uint32_t max_depth = 32;
  /// Hard budget on scenario executions (minimization runs included).
  std::uint64_t max_schedules = 50'000;
  /// kRandom: how many random schedules to sample, and the sampling seed.
  std::uint64_t random_schedules = 200;
  std::uint64_t seed = 1;
};

struct Report {
  std::uint64_t schedules_explored = 0;  ///< scenario executions performed
  std::uint64_t choice_points = 0;       ///< branching waves, canonical run
  std::uint64_t schedules_pruned = 0;    ///< permutations skipped as commuting
  bool budget_exhausted = false;         ///< hit max_schedules before done
  std::optional<Divergence> divergence;

  [[nodiscard]] bool ok() const noexcept { return !divergence.has_value(); }
  [[nodiscard]] std::string summary() const;
};

class Explorer {
 public:
  /// `scenario` must outlive the explorer.
  Explorer(const core::Scenario& scenario, ExplorerOptions options);

  /// Explore and check; safe to call once per Explorer.
  [[nodiscard]] Report run();

 private:
  const core::Scenario* scenario_;
  ExplorerOptions options_;
};

}  // namespace identxx::mc
