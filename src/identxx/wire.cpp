#include "identxx/wire.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace identxx::proto {

namespace {

/// Parse the shared first line "<PROTO> <SRC PORT> <DST PORT>".
struct FirstLine {
  net::IpProto proto;
  std::uint16_t src_port;
  std::uint16_t dst_port;
};

FirstLine parse_first_line(std::string_view line) {
  const auto fields = util::split_ws(line);
  if (fields.size() != 3) {
    throw ParseError("ident++ first line must be '<proto> <sport> <dport>'", 1);
  }
  const net::IpProto proto = parse_proto_token(fields[0]);
  const auto sport = util::parse_u64(fields[1]);
  const auto dport = util::parse_u64(fields[2]);
  if (!sport || *sport > 65535 || !dport || *dport > 65535) {
    throw ParseError("ident++ first line has invalid port", 1);
  }
  return FirstLine{proto, static_cast<std::uint16_t>(*sport),
                   static_cast<std::uint16_t>(*dport)};
}

}  // namespace

std::string proto_token(net::IpProto proto) {
  return net::to_string(proto);
}

net::IpProto parse_proto_token(std::string_view token) {
  if (util::iequals(token, "tcp")) return net::IpProto::kTcp;
  if (util::iequals(token, "udp")) return net::IpProto::kUdp;
  if (util::iequals(token, "icmp")) return net::IpProto::kIcmp;
  const auto number = util::parse_u64(token);
  if (number && *number <= 255) return static_cast<net::IpProto>(*number);
  throw ParseError("unknown protocol token '" + std::string(token) + "'", 1);
}

bool is_ident_traffic(const net::FiveTuple& flow) noexcept {
  return flow.proto == net::IpProto::kTcp &&
         (flow.dst_port == kIdentPort || flow.src_port == kIdentPort);
}

// ---------------------------------------------------------------- Query

std::string Query::serialize() const {
  std::string out = proto_token(proto) + " " + std::to_string(src_port) + " " +
                    std::to_string(dst_port) + "\n";
  for (const auto& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

Query Query::parse(std::string_view text) {
  const auto lines = util::split_lines(text);
  if (lines.empty()) throw ParseError("empty ident++ query");
  Query query;
  const FirstLine first = parse_first_line(lines[0]);
  query.proto = first.proto;
  query.src_port = first.src_port;
  query.dst_port = first.dst_port;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto key = util::trim(lines[i]);
    if (key.empty()) continue;
    if (key.find(':') != std::string_view::npos) {
      throw ParseError("query keys must not contain ':'", i + 1);
    }
    query.keys.emplace_back(key);
  }
  return query;
}

// ---------------------------------------------------------------- Section

const std::string* Section::find(std::string_view key) const noexcept {
  const std::string* found = nullptr;
  for (const auto& [k, v] : pairs) {
    if (k == key) found = &v;
  }
  return found;
}

// ---------------------------------------------------------------- Response

void Response::append_section(Section section) {
  if (!section.empty()) sections.push_back(std::move(section));
}

std::string Response::serialize() const {
  std::string out = proto_token(proto) + " " + std::to_string(src_port) + " " +
                    std::to_string(dst_port) + "\n";
  bool first = true;
  for (const auto& section : sections) {
    if (!first) out += '\n';  // empty line between sections
    first = false;
    for (const auto& [key, value] : section.pairs) {
      out += key;
      out += ": ";
      out += value;
      out += '\n';
    }
  }
  return out;
}

Response Response::parse(std::string_view text) {
  const auto lines = util::split_lines(text);
  if (lines.empty()) throw ParseError("empty ident++ response");
  Response response;
  const FirstLine first = parse_first_line(lines[0]);
  response.proto = first.proto;
  response.src_port = first.src_port;
  response.dst_port = first.dst_port;

  Section current;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto line = util::trim_right(lines[i]);
    if (line.empty()) {
      // Section boundary (possibly several blank lines in a row).
      response.append_section(std::move(current));
      current = Section{};
      continue;
    }
    const auto [key_part, value_part] = util::split_once(line, ':');
    if (!value_part) {
      throw ParseError("response line missing ':'", i + 1);
    }
    const auto key = util::trim(key_part);
    if (key.empty()) throw ParseError("response line with empty key", i + 1);
    current.add(std::string(key), std::string(util::trim(*value_part)));
  }
  response.append_section(std::move(current));
  return response;
}

}  // namespace identxx::proto
