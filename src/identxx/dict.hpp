#pragma once

// Response dictionaries (§3.3).
//
// PF+=2 parses ident++ responses into @src and @dst dictionaries.  Keys may
// repeat across sections (each controller on the path may append a section);
// plain indexing returns the value from the *latest* section — "the most
// trusted (though not necessarily the most trustworthy) because a controller
// can overwrite or modify any responses that it sees".  The *@src[key] form
// concatenates the values from all sections in order, which lets a policy
// check that a chain of endorsements was followed or that a value changed
// between networks.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "identxx/wire.hpp"

namespace identxx::proto {

class ResponseDict {
 public:
  ResponseDict() = default;
  explicit ResponseDict(const Response& response);

  /// @dict[key]: value from the latest section that defines `key`.
  [[nodiscard]] std::optional<std::string_view> latest(
      std::string_view key) const noexcept;

  /// *@dict[key]: values from every section that defines `key`, in section
  /// order, joined with ",".
  [[nodiscard]] std::string concatenated(std::string_view key) const;

  /// All values for `key` in section order.
  [[nodiscard]] std::vector<std::string_view> all(std::string_view key) const;

  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return latest(key).has_value();
  }

  [[nodiscard]] std::size_t section_count() const noexcept {
    return sections_.size();
  }

  [[nodiscard]] bool empty() const noexcept { return sections_.empty(); }

 private:
  std::vector<Section> sections_;
};

}  // namespace identxx::proto
