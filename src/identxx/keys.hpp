#pragma once

// Well-known ident++ key names.
//
// The protocol deliberately leaves keys free-form (§1: "These pairs are
// mostly free-form and ident++ does not constrain the types that can be
// used") — these constants cover the keys the paper itself uses, so the
// daemon, controller and policies agree on spelling.

namespace identxx::proto::keys {

/// User that initiated (source) or would receive (destination) the flow.
inline constexpr char kUserId[] = "userID";
/// Primary group of that user.
inline constexpr char kGroupId[] = "groupID";
/// Application name (Fig 3 `name`); `app-name` is emitted as an alias since
/// the paper's policies use both spellings (Fig 2 vs Fig 5).
inline constexpr char kName[] = "name";
inline constexpr char kAppName[] = "app-name";
/// SHA-256 of the executable image.
inline constexpr char kExeHash[] = "exe-hash";
inline constexpr char kVersion[] = "version";
inline constexpr char kVendor[] = "vendor";
inline constexpr char kType[] = "type";
/// PF+=2 rules the signer wants enforced for this application (Fig 3-7).
inline constexpr char kRequirements[] = "requirements";
/// Schnorr signature over (exe-hash, app-name, requirements).
inline constexpr char kReqSig[] = "req-sig";
/// Identity of the third party that authored the requirements (Fig 6).
inline constexpr char kRuleMaker[] = "rule-maker";
/// Installed OS patch list (Fig 8, MS08-067 / Conficker scenario).
inline constexpr char kOsPatch[] = "os-patch";
/// Process id on the end-host (audit aid).
inline constexpr char kPid[] = "pid";
/// Name of the network/branch a controller speaks for when augmenting a
/// response (§4 network collaboration).
inline constexpr char kNetwork[] = "network";

}  // namespace identxx::proto::keys
