#include "identxx/daemon.hpp"

#include "identxx/keys.hpp"
#include "util/strings.hpp"

namespace identxx::proto {

void Daemon::add_config(ConfigTrust trust, const DaemonConfig& config) {
  DaemonConfig copy = config;
  if (trust == ConfigTrust::kSystem) {
    system_config_.merge(std::move(copy));
  } else {
    user_config_.merge(std::move(copy));
  }
}

void Daemon::add_host_fact(std::string key, std::string value) {
  host_facts_.emplace_back(std::move(key), std::move(value));
}

Response Daemon::answer(const Query& query, net::Ipv4Address query_peer_ip,
                        net::Ipv4Address host_ip) const {
  // Orientation 1: this host is the source.
  const net::FiveTuple as_source{host_ip, query_peer_ip, query.proto,
                                 query.src_port, query.dst_port};
  // Orientation 2: this host is the destination.
  const net::FiveTuple as_destination{query_peer_ip, host_ip, query.proto,
                                      query.src_port, query.dst_port};

  std::optional<FlowOwner> owner = resolver_->resolve(as_source, false);
  if (!owner) {
    owner = resolver_->resolve(as_destination, true);
  }

  Response response;
  response.proto = query.proto;
  response.src_port = query.src_port;
  response.dst_port = query.dst_port;

  if (!owner) {
    ++stats_.queries_unresolved;
    Section error;
    error.add("error", "NO-USER");
    response.append_section(std::move(error));
    return response;
  }
  ++stats_.queries_answered;
  return build_response(query, *owner);
}

std::optional<std::string> Daemon::answer_classic(
    std::string_view payload, net::Ipv4Address query_peer_ip,
    net::Ipv4Address host_ip) const {
  // RFC 1413 query: "<port-on-server> , <port-on-client>" (whitespace
  // tolerant, one line).  Anything with letters/colons is ident++.
  const auto line = util::trim(payload);
  const auto [left, right] = util::split_once(line, ',');
  if (!right) return std::nullopt;
  const auto local = util::parse_u64(util::trim(left));
  const auto remote = util::parse_u64(util::trim(*right));
  if (!local || *local == 0 || *local > 65535 || !remote || *remote == 0 ||
      *remote > 65535) {
    return std::nullopt;
  }
  ++stats_.classic_queries;
  const auto ports = std::to_string(*local) + ", " + std::to_string(*remote);

  // The connection, seen from this host: local port here, remote port on
  // the querying host.
  const net::FiveTuple outbound{host_ip, query_peer_ip, net::IpProto::kTcp,
                                static_cast<std::uint16_t>(*local),
                                static_cast<std::uint16_t>(*remote)};
  std::optional<FlowOwner> owner = resolver_->resolve(outbound, false);
  if (!owner) {
    const net::FiveTuple inbound{query_peer_ip, host_ip, net::IpProto::kTcp,
                                 static_cast<std::uint16_t>(*remote),
                                 static_cast<std::uint16_t>(*local)};
    owner = resolver_->resolve(inbound, true);
  }
  if (!owner) {
    ++stats_.queries_unresolved;
    return ports + " : ERROR : NO-USER";
  }
  ++stats_.queries_answered;
  return ports + " : USERID : UNIX : " + owner->user_id;
}

Response Daemon::build_response(const Query& query,
                                const FlowOwner& owner) const {
  Response response;
  response.proto = query.proto;
  response.src_port = query.src_port;
  response.dst_port = query.dst_port;

  // Section 1 — facts the daemon itself derives (kernel-level truth).
  Section system;
  system.add(keys::kUserId, owner.user_id);
  if (!owner.group_id.empty()) system.add(keys::kGroupId, owner.group_id);
  system.add(keys::kPid, std::to_string(owner.pid));
  if (!owner.exe_hash.empty()) system.add(keys::kExeHash, owner.exe_hash);
  for (const auto& [key, value] : host_facts_) {
    system.add(key, value);
  }
  // @app pairs from system config (administrator / distro / third party).
  for (const AppConfig* app : system_config_.find_apps(owner.exe_path)) {
    for (const auto& [key, value] : app->pairs) {
      system.add(key, value);
      if (key == keys::kName) system.add(keys::kAppName, value);
    }
  }
  for (const auto& [key, value] : system_config_.global_pairs) {
    system.add(key, value);
  }
  response.append_section(std::move(system));

  // Section 2 — user-modifiable configuration.
  Section user;
  for (const AppConfig* app : user_config_.find_apps(owner.exe_path)) {
    for (const auto& [key, value] : app->pairs) {
      user.add(key, value);
      if (key == keys::kName) user.add(keys::kAppName, value);
    }
  }
  for (const auto& [key, value] : user_config_.global_pairs) {
    user.add(key, value);
  }
  response.append_section(std::move(user));

  // Section 3 — pairs the application registered for this flow at run time
  // (delivered over the local socket, §3.5).
  Section dynamic;
  for (const auto& [key, value] : owner.dynamic_pairs) {
    dynamic.add(key, value);
  }
  response.append_section(std::move(dynamic));

  (void)query;  // `keys` are hints only; we return everything we know (§3.2)
  return response;
}

}  // namespace identxx::proto
