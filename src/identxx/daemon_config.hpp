#pragma once

// ident++ daemon configuration files (§3.5, Figures 3, 4 and 6).
//
// Format:
//
//     # comment
//     @app /usr/bin/skype {
//     name : skype
//     version : 210
//     requirements : <backslash>
//     pass from any port http <backslash>
//     with eq(@src[name], skype)
//     req-sig : <hex signature>
//     }
//
// (where <backslash> is the line-continuation character)
//
//     @global {
//     os-patch : MS08-067
//     }
//
// `@app <exe-path> { ... }` blocks hold the key-value pairs returned for
// flows owned by that executable.  `@global { ... }` blocks (our extension,
// standing in for "other configuration files" the paper mentions) hold
// host-wide pairs such as the OS patch level used in Fig 8.
//
// A trailing backslash continues a line; continuations are joined with a
// single space, so a multi-rule `requirements` value becomes one logical
// line that the (newline-insensitive) PF+=2 parser consumes directly.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace identxx::proto {

using KeyValueList = std::vector<std::pair<std::string, std::string>>;

struct AppConfig {
  std::string exe_path;
  KeyValueList pairs;

  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;
  [[nodiscard]] bool operator==(const AppConfig&) const noexcept = default;
};

struct DaemonConfig {
  KeyValueList global_pairs;
  std::vector<AppConfig> apps;

  /// Parse one config file.  Throws ParseError with a line number.
  [[nodiscard]] static DaemonConfig parse(std::string_view text);

  /// Append everything from `other` (later files refine earlier ones; an
  /// @app block for an already-known path adds a second entry whose pairs
  /// are appended after the first at answer time).
  void merge(DaemonConfig other);

  [[nodiscard]] const AppConfig* find_app(std::string_view exe_path) const noexcept;

  /// All @app blocks for `exe_path`, in order.
  [[nodiscard]] std::vector<const AppConfig*> find_apps(
      std::string_view exe_path) const;
};

/// Canonical message that `req-sig` signs: the values joined by '\n' in the
/// order they are passed to PF+=2's verify() — conventionally
/// (exe-hash, app-name, requirements), per Figures 5 and 7.
[[nodiscard]] std::string signed_message(
    const std::vector<std::string>& values);

}  // namespace identxx::proto
