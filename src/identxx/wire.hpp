#pragma once

// ident++ wire format (§3.2).
//
// Query packet payload:
//     <PROTO> <SRC PORT> <DST PORT>
//     <key 0>
//     <key 1>
//     ...
//
// Response packet payload:
//     <PROTO> <SRC PORT> <DST PORT>
//     <key 0>: <value 0>
//     ...
//     <empty line>
//     <key n>: <value n>
//     ...
//
// Sections are separated by empty lines; each section groups the key-value
// pairs from one source (daemon system config, user config, the application,
// or a controller on the path augmenting the response).  The flow's IP
// addresses travel in the IP header of the carrying packet, not the payload.
//
// Values are single-line; config-file backslash continuations are collapsed
// before serialization.  ident++ daemons listen on TCP port 783.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/flow.hpp"

namespace identxx::proto {

/// TCP port the ident++ daemon listens on (paper §2).
constexpr std::uint16_t kIdentPort = 783;

/// A query for additional information about a flow.  `keys` are hints; the
/// daemon may answer with additional unsolicited pairs (§3.2).
struct Query {
  net::IpProto proto = net::IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::string> keys;

  [[nodiscard]] bool operator==(const Query&) const noexcept = default;

  [[nodiscard]] std::string serialize() const;

  /// Throws ParseError on malformed input.
  [[nodiscard]] static Query parse(std::string_view text);
};

/// One section of a response: ordered key-value pairs from a single source.
struct Section {
  std::vector<std::pair<std::string, std::string>> pairs;

  [[nodiscard]] bool operator==(const Section&) const noexcept = default;
  [[nodiscard]] bool empty() const noexcept { return pairs.empty(); }

  void add(std::string key, std::string value) {
    pairs.emplace_back(std::move(key), std::move(value));
  }

  /// Last value for `key` within this section, if present.
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;
};

struct Response {
  net::IpProto proto = net::IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<Section> sections;

  [[nodiscard]] bool operator==(const Response&) const noexcept = default;

  /// Append a non-empty section (a controller augmenting the response adds
  /// an empty line followed by its pairs, §2).
  void append_section(Section section);

  [[nodiscard]] std::string serialize() const;

  /// Throws ParseError on malformed input.
  [[nodiscard]] static Response parse(std::string_view text);
};

/// Render an IpProto for the first line ("tcp", "udp", or decimal).
[[nodiscard]] std::string proto_token(net::IpProto proto);

/// Parse a proto token (name or decimal).  Throws ParseError.
[[nodiscard]] net::IpProto parse_proto_token(std::string_view token);

/// Is this packet (by its ports) ident++ protocol traffic?
[[nodiscard]] bool is_ident_traffic(const net::FiveTuple& flow) noexcept;

}  // namespace identxx::proto
