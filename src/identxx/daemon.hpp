#pragma once

// The ident++ daemon (§3.5).
//
// Runs on every end-host, listening on TCP port 783.  Given a query it:
//   1. maps the flow 5-tuple to the owning process and user (à la lsof),
//   2. finds the executable's @app configuration blocks,
//   3. assembles a response with one section per source of information:
//      system daemon facts, system config, user config, then dynamic pairs
//      the application registered for this flow at run time.
//
// The daemon answers both when the host is the flow's source and when it is
// a destination that has yet to accept a connection.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "identxx/daemon_config.hpp"
#include "identxx/dict.hpp"
#include "identxx/wire.hpp"
#include "net/flow.hpp"

namespace identxx::proto {

/// Everything the host kernel knows about a flow's owner — the output of
/// the lsof-style lookup the paper describes.
struct FlowOwner {
  std::string user_id;    ///< e.g. "jnaous", "smtp", "system"
  std::string group_id;   ///< primary group, e.g. "research"
  int pid = 0;
  std::string exe_path;   ///< e.g. "/usr/bin/skype"
  std::string exe_hash;   ///< SHA-256 of the executable image (hex)
  /// Pairs the application registered for this flow over the local socket.
  KeyValueList dynamic_pairs;
};

/// The host side of the 5-tuple -> process lookup; implemented by the host
/// model's socket table (substituting for kernel introspection).
class FlowResolver {
 public:
  virtual ~FlowResolver() = default;

  /// Resolve `flow` to its owner on this host.  `as_destination` is false
  /// when this host is the flow's source, true when it is the (possibly
  /// not-yet-accepted) destination.
  [[nodiscard]] virtual std::optional<FlowOwner> resolve(
      const net::FiveTuple& flow, bool as_destination) const = 0;
};

/// Which configuration directory a file came from; system files are only
/// modifiable by the local administrator, user files by the user (§3.5).
enum class ConfigTrust { kSystem, kUser };

class Daemon {
 public:
  /// `resolver` must outlive the daemon.
  explicit Daemon(const FlowResolver* resolver) : resolver_(resolver) {}

  /// Load a configuration file's contents.  Files are consulted in the
  /// order added within each trust class.
  void add_config(ConfigTrust trust, const DaemonConfig& config);

  /// Host-wide facts (e.g. os-patch) reported in the system section.
  void add_host_fact(std::string key, std::string value);

  /// Answer a query.  `query_peer_ip` is the IP the query claims to be from
  /// (the flow's other endpoint, §3.2) and `host_ip` this host's address.
  /// The daemon reconstructs the flow in both orientations and answers for
  /// whichever one its resolver recognizes; an unknown flow produces a
  /// single-section response with an `error: NO-USER` pair, mirroring the
  /// classic ident protocol's error replies.
  [[nodiscard]] Response answer(const Query& query,
                                net::Ipv4Address query_peer_ip,
                                net::Ipv4Address host_ip) const;

  /// RFC-1413 compatibility (§6: ident++ "expands on the idea of the ident
  /// protocol").  A classic Identification Protocol client sends
  /// "<server-port> , <client-port>" on the same TCP 783 socket; the daemon
  /// answers "<ports> : USERID : UNIX : <user>" or "<ports> : ERROR :
  /// NO-USER".  Returns nullopt when the payload is not a classic query
  /// (the caller then tries the ident++ format).
  ///
  /// Orientation matches RFC 1413: the pair names (port-on-this-host,
  /// port-on-the-querying-host) of an existing connection between the two.
  [[nodiscard]] std::optional<std::string> answer_classic(
      std::string_view payload, net::Ipv4Address query_peer_ip,
      net::Ipv4Address host_ip) const;

  /// Statistics for tests/benchmarks.
  struct Stats {
    std::uint64_t queries_answered = 0;
    std::uint64_t queries_unresolved = 0;
    std::uint64_t classic_queries = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] Response build_response(const Query& query,
                                        const FlowOwner& owner) const;

  const FlowResolver* resolver_;
  DaemonConfig system_config_;
  DaemonConfig user_config_;
  KeyValueList host_facts_;
  mutable Stats stats_;
};

}  // namespace identxx::proto
