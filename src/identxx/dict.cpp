#include "identxx/dict.hpp"

namespace identxx::proto {

ResponseDict::ResponseDict(const Response& response)
    : sections_(response.sections) {}

std::optional<std::string_view> ResponseDict::latest(
    std::string_view key) const noexcept {
  const std::string* found = nullptr;
  for (const auto& section : sections_) {
    if (const std::string* v = section.find(key)) found = v;
  }
  if (found == nullptr) return std::nullopt;
  return std::string_view(*found);
}

std::string ResponseDict::concatenated(std::string_view key) const {
  std::string out;
  for (const auto& section : sections_) {
    if (const std::string* v = section.find(key)) {
      if (!out.empty()) out += ',';
      out += *v;
    }
  }
  return out;
}

std::vector<std::string_view> ResponseDict::all(std::string_view key) const {
  std::vector<std::string_view> out;
  for (const auto& section : sections_) {
    if (const std::string* v = section.find(key)) out.emplace_back(*v);
  }
  return out;
}

}  // namespace identxx::proto
