#include "identxx/daemon_config.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace identxx::proto {

namespace {

/// Strip a '#' comment (outside of any quoting; the format has none).
[[nodiscard]] std::string_view strip_comment(std::string_view line) noexcept {
  const auto pos = line.find('#');
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

/// Join physical lines into logical lines: a trailing '\' continues onto
/// the next line with a single space.  Records the starting line number of
/// each logical line for error messages.
struct LogicalLine {
  std::string text;
  std::size_t number;
};

std::vector<LogicalLine> logical_lines(std::string_view text) {
  std::vector<LogicalLine> out;
  const auto physical = util::split_lines(text);
  std::string pending;
  std::size_t pending_start = 0;
  for (std::size_t i = 0; i < physical.size(); ++i) {
    std::string_view line = util::trim(strip_comment(physical[i]));
    const bool continues = !line.empty() && line.back() == '\\';
    if (continues) {
      line = util::trim_right(line.substr(0, line.size() - 1));
    }
    if (pending.empty()) {
      pending = std::string(line);
      pending_start = i + 1;
    } else if (!line.empty()) {
      pending += ' ';
      pending += line;
    }
    if (!continues) {
      if (!pending.empty()) out.push_back({std::move(pending), pending_start});
      pending.clear();
    }
  }
  if (!pending.empty()) out.push_back({std::move(pending), pending_start});
  return out;
}

}  // namespace

const std::string* AppConfig::find(std::string_view key) const noexcept {
  const std::string* found = nullptr;
  for (const auto& [k, v] : pairs) {
    if (k == key) found = &v;
  }
  return found;
}

DaemonConfig DaemonConfig::parse(std::string_view text) {
  DaemonConfig config;
  enum class State { kTop, kInApp, kInGlobal };
  State state = State::kTop;
  AppConfig current;

  for (const auto& line : logical_lines(text)) {
    std::string_view content = line.text;
    switch (state) {
      case State::kTop: {
        if (content == "}") {
          throw ParseError("unmatched '}'", line.number);
        }
        if (util::starts_with(content, "@app")) {
          auto rest = util::trim(content.substr(4));
          if (rest.empty() || rest.back() != '{') {
            throw ParseError("@app block must open with '{'", line.number);
          }
          rest = util::trim(rest.substr(0, rest.size() - 1));
          if (rest.empty()) {
            throw ParseError("@app block missing executable path", line.number);
          }
          current = AppConfig{std::string(rest), {}};
          state = State::kInApp;
        } else if (util::starts_with(content, "@global")) {
          const auto rest = util::trim(content.substr(7));
          if (rest != "{") {
            throw ParseError("@global block must open with '{'", line.number);
          }
          state = State::kInGlobal;
        } else {
          throw ParseError("expected '@app <path> {' or '@global {', got '" +
                               std::string(content) + "'",
                           line.number);
        }
        break;
      }
      case State::kInApp:
      case State::kInGlobal: {
        if (content == "}") {
          if (state == State::kInApp) {
            config.apps.push_back(std::move(current));
            current = AppConfig{};
          }
          state = State::kTop;
          break;
        }
        const auto [key_part, value_part] = util::split_once(content, ':');
        if (!value_part) {
          throw ParseError("expected 'key : value'", line.number);
        }
        const auto key = util::trim(key_part);
        if (key.empty()) {
          throw ParseError("empty key", line.number);
        }
        auto& pairs = state == State::kInApp ? current.pairs : config.global_pairs;
        pairs.emplace_back(std::string(key), std::string(util::trim(*value_part)));
        break;
      }
    }
  }
  if (state != State::kTop) {
    throw ParseError("unterminated block at end of file");
  }
  return config;
}

void DaemonConfig::merge(DaemonConfig other) {
  for (auto& pair : other.global_pairs) {
    global_pairs.push_back(std::move(pair));
  }
  for (auto& app : other.apps) {
    apps.push_back(std::move(app));
  }
}

const AppConfig* DaemonConfig::find_app(std::string_view exe_path) const noexcept {
  for (const auto& app : apps) {
    if (app.exe_path == exe_path) return &app;
  }
  return nullptr;
}

std::vector<const AppConfig*> DaemonConfig::find_apps(
    std::string_view exe_path) const {
  std::vector<const AppConfig*> out;
  for (const auto& app : apps) {
    if (app.exe_path == exe_path) out.push_back(&app);
  }
  return out;
}

std::string signed_message(const std::vector<std::string>& values) {
  return util::join(values, "\n");
}

}  // namespace identxx::proto
