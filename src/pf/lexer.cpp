#include "pf/lexer.hpp"

#include <cctype>

#include "util/error.hpp"

namespace identxx::pf {

namespace {

[[nodiscard]] bool is_word_char(char c) noexcept {
  // Words cover identifiers, numbers, IPs/CIDRs, version strings, hex
  // signatures, and file paths appearing as values.
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
         c == '-' || c == '_' || c == '/';
}

[[nodiscard]] bool is_name_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
         c == '_' || c == '.';
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_whitespace_and_comments();
      if (at_end()) break;
      tokens.push_back(next_token());
    }
    tokens.push_back(Token{TokenKind::kEnd, "", "", false, line_});
    return tokens;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const noexcept { return input_[pos_]; }
  char advance() noexcept {
    const char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '\\') {
        // Line continuation: treat as whitespace regardless of position.
        advance();
      } else if (c == '#') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token next_token() {
    const std::size_t line = line_;
    const char c = peek();
    switch (c) {
      case '{': advance(); return simple(TokenKind::kLBrace, "{", line);
      case '}': advance(); return simple(TokenKind::kRBrace, "}", line);
      case '(': advance(); return simple(TokenKind::kLParen, "(", line);
      case ')': advance(); return simple(TokenKind::kRParen, ")", line);
      case ',': advance(); return simple(TokenKind::kComma, ",", line);
      case ':': advance(); return simple(TokenKind::kColon, ":", line);
      case '=': advance(); return simple(TokenKind::kEquals, "=", line);
      case '!': advance(); return simple(TokenKind::kBang, "!", line);
      case '"': return lex_string(line);
      case '<': return lex_table_ref(line);
      case '$': return lex_macro_ref(line);
      case '@': return lex_dict_index(false, line);
      case '*':
        advance();
        if (at_end() || peek() != '@') {
          throw ParseError("'*' must be followed by '@dict[key]'", line);
        }
        return lex_dict_index(true, line);
      default:
        if (is_word_char(c)) return lex_word(line);
        throw ParseError(std::string("unexpected character '") + c + "'", line);
    }
  }

  static Token simple(TokenKind kind, std::string text, std::size_t line) {
    return Token{kind, std::move(text), "", false, line};
  }

  Token lex_string(std::size_t line) {
    advance();  // opening quote
    std::string value;
    while (!at_end() && peek() != '"') {
      value += advance();
    }
    if (at_end()) throw ParseError("unterminated string", line);
    advance();  // closing quote
    return Token{TokenKind::kString, std::move(value), "", false, line};
  }

  Token lex_table_ref(std::size_t line) {
    advance();  // '<'
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    if (at_end() || peek() != '>') {
      throw ParseError("unterminated table reference '<" + name + "'", line);
    }
    advance();  // '>'
    if (name.empty()) throw ParseError("empty table name '<>'", line);
    return Token{TokenKind::kTableRef, std::move(name), "", false, line};
  }

  Token lex_macro_ref(std::size_t line) {
    advance();  // '$'
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    if (name.empty()) throw ParseError("empty macro reference '$'", line);
    return Token{TokenKind::kMacroRef, std::move(name), "", false, line};
  }

  Token lex_dict_index(bool star, std::size_t line) {
    advance();  // '@'
    std::string dict;
    while (!at_end() && is_name_char(peek())) dict += advance();
    if (dict.empty()) throw ParseError("empty dictionary name after '@'", line);
    if (at_end() || peek() != '[') {
      // Bare @dict (no index) is not part of the language.
      throw ParseError("expected '[' after '@" + dict + "'", line);
    }
    advance();  // '['
    std::string key;
    while (!at_end() && peek() != ']') key += advance();
    if (at_end()) throw ParseError("unterminated '[' index", line);
    advance();  // ']'
    if (key.empty()) throw ParseError("empty key in '@" + dict + "[]'", line);
    Token token{TokenKind::kDictIndex, std::move(dict), std::move(key), star,
                line};
    return token;
  }

  Token lex_word(std::size_t line) {
    std::string word;
    while (!at_end() && is_word_char(peek())) word += advance();
    return Token{TokenKind::kWord, std::move(word), "", false, line};
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view input) { return Lexer(input).run(); }

std::string_view to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kWord: return "word";
    case TokenKind::kString: return "string";
    case TokenKind::kTableRef: return "table-ref";
    case TokenKind::kDictIndex: return "dict-index";
    case TokenKind::kMacroRef: return "macro-ref";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace identxx::pf
