#pragma once

// PF+=2 abstract syntax (§3.3).
//
// A ruleset is an ordered list of rules plus the tables, dicts and macros
// they reference.  Rules are evaluated top-down with last-match-wins
// semantics; `quick` short-circuits.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/flow.hpp"
#include "net/ipv4.hpp"

namespace identxx::pf {

// ---------------------------------------------------------------- Exprs

/// @dict[key] / *@dict[key].  `dict` is "src", "dst" (response dictionaries)
/// or a user-defined `dict <name> { ... }`.
struct DictIndexExpr {
  std::string dict;
  std::string key;
  bool star = false;
  [[nodiscard]] bool operator==(const DictIndexExpr&) const noexcept = default;
};

/// Bare word or quoted string literal.
struct LiteralExpr {
  std::string value;
  [[nodiscard]] bool operator==(const LiteralExpr&) const noexcept = default;
};

/// Brace list literal: { http ssh } — items are words.
struct ListExpr {
  std::vector<std::string> items;
  [[nodiscard]] bool operator==(const ListExpr&) const noexcept = default;
};

using Expr = std::variant<DictIndexExpr, LiteralExpr, ListExpr>;

/// A `with` predicate: a boolean function call over expressions.
struct FuncCall {
  std::string name;
  std::vector<Expr> args;
  std::size_t line = 0;
  [[nodiscard]] bool operator==(const FuncCall&) const noexcept = default;
};

// ---------------------------------------------------------------- Endpoints

/// Host part of a from/to endpoint.
struct AnyHost {
  [[nodiscard]] bool operator==(const AnyHost&) const noexcept = default;
};

struct TableHost {
  std::string table;
  [[nodiscard]] bool operator==(const TableHost&) const noexcept = default;
};

struct CidrHost {
  net::Cidr cidr;
  [[nodiscard]] bool operator==(const CidrHost&) const noexcept = default;
};

/// Inline address list: { 10.0.0.1 10.0.1.0/24 <lan> }.
struct ListHost {
  std::vector<std::variant<net::Cidr, std::string /*table name*/>> items;
  [[nodiscard]] bool operator==(const ListHost&) const noexcept = default;
};

using HostSpec = std::variant<AnyHost, TableHost, CidrHost, ListHost>;

/// Port predicate: single port or inclusive range (named ports resolved at
/// parse time: http -> 80, ...).
struct PortSpec {
  std::uint16_t low = 0;
  std::uint16_t high = 0;
  [[nodiscard]] bool contains(std::uint16_t port) const noexcept {
    return port >= low && port <= high;
  }
  [[nodiscard]] bool operator==(const PortSpec&) const noexcept = default;
};

struct Endpoint {
  HostSpec host = AnyHost{};
  bool negated = false;  // !<table> / !1.2.3.4
  std::optional<PortSpec> port;
  [[nodiscard]] bool operator==(const Endpoint&) const noexcept = default;
};

// ---------------------------------------------------------------- Rules

enum class RuleAction { kPass, kBlock };

struct Rule {
  RuleAction action = RuleAction::kBlock;
  bool quick = false;
  /// PF's `log` modifier (the paper's footnote 1 leaves it unused; we
  /// implement it: matched log rules are flagged in the verdict so the
  /// controller records them prominently in its audit log).
  bool log = false;
  Endpoint from;
  Endpoint to;
  /// Optional `proto tcp|udp|icmp` clause (vanilla PF).
  std::optional<net::IpProto> proto;
  std::vector<FuncCall> withs;
  bool keep_state = false;
  std::size_t line = 0;       ///< source line (diagnostics/audit)
  std::string source_label;   ///< which .control file this came from

  [[nodiscard]] bool operator==(const Rule&) const noexcept = default;
};

// ---------------------------------------------------------------- Ruleset

struct Ruleset {
  /// table <name> { ... }: named IP sets (composable).
  std::map<std::string, std::vector<net::Cidr>> tables;
  /// dict <name> { key : value ... }: named string maps (e.g. pubkeys).
  std::map<std::string, std::map<std::string, std::string>> dicts;
  /// name = "value": macros (textually expanded at parse time; retained
  /// for list lookups by member()).
  std::map<std::string, std::string> macros;
  std::vector<Rule> rules;

  /// Look up a named list for member(): a macro whose value is a brace
  /// list yields its items.
  [[nodiscard]] std::optional<std::vector<std::string>> named_list(
      const std::string& name) const;
};

[[nodiscard]] std::string to_string(RuleAction action);
[[nodiscard]] std::string to_string(const Rule& rule);

}  // namespace identxx::pf
