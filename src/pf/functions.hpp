#pragma once

// PF+=2 policy functions (§3.3).
//
// `with` predicates call boolean functions over values drawn from the
// @src/@dst response dictionaries.  The predefined set is
//   eq gt lt gte lte member includes allowed verify
// and the registry is open: administrators and application developers can
// register new functions ("Functions are user-definable and new functions
// can be added").

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace identxx::crypto {
class SchnorrVerifier;
}

namespace identxx::pf {

class EvalContext;
struct FuncCall;

/// An absent dictionary key.  Every builtin predicate is false when any
/// argument is Undefined — a policy cannot match on information that was
/// never provided.
struct Undefined {
  [[nodiscard]] bool operator==(const Undefined&) const noexcept = default;
};

using Value = std::variant<Undefined, std::string, std::vector<std::string>>;

[[nodiscard]] inline bool is_undefined(const Value& v) noexcept {
  return std::holds_alternative<Undefined>(v);
}

/// Undefined -> nullopt; list -> items joined with ','.
[[nodiscard]] std::optional<std::string> value_to_string(const Value& v);

/// Undefined -> nullopt; string -> singleton list.
[[nodiscard]] std::optional<std::vector<std::string>> value_to_list(
    const Value& v);

/// A policy function: receives the evaluation context, the syntactic call
/// (for error messages) and the evaluated arguments.
using PolicyFunction = std::function<bool(
    const EvalContext&, const FuncCall&, const std::vector<Value>&)>;

/// Advisory batch warm-up for a policy function: receives the resolved
/// argument vectors of every reachable call to that function across one
/// evaluate_batch(), before any flow is evaluated.  The preparer may prime
/// backend caches (the `verify` builtin batch-verifies all attestations in
/// one multi-scalar multiplication, seeding the verification memo) but must
/// not produce verdicts — the per-flow evaluation still calls the function,
/// which is what keeps batch evaluation observably identical to serial.
using BatchPreparer = std::function<void(
    const std::vector<std::vector<Value>>& calls)>;

class FunctionRegistry {
 public:
  /// Empty registry (no functions).
  FunctionRegistry() = default;

  /// Registry pre-loaded with the paper's predefined functions.
  [[nodiscard]] static FunctionRegistry with_builtins();

  /// Register or replace a function.  `flow_invariant` declares that the
  /// function's verdict is fully determined by its argument values (it
  /// does not read the flow, the responses, or mutable state through the
  /// EvalContext) — the batch evaluator may then memoize calls per
  /// (call site, resolved arguments) across the flows of one batch
  /// (DESIGN.md §11).  Every builtin except `allowed` qualifies; the flag
  /// defaults to false, so user-registered functions are never hoisted
  /// unless they opt in.
  void register_function(std::string name, PolicyFunction fn,
                         bool flow_invariant = false);

  [[nodiscard]] const PolicyFunction* find(std::string_view name) const;

  /// Attach a batch preparer to an already-registered function.  The batch
  /// evaluator invokes it once per batch with all reachable resolved calls.
  void register_batch_preparer(std::string name, BatchPreparer preparer);

  /// The preparer for `name`, or null (most functions have none).
  [[nodiscard]] const BatchPreparer* batch_preparer(
      std::string_view name) const;

  /// Was `name` registered flow-invariant?  False for unknown names.
  [[nodiscard]] bool flow_invariant(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;

  /// The Schnorr verifier backing the `verify` builtin: per-key precomputed
  /// tables plus the bounded (key, message digest, signature) memo, so
  /// identical attestations across flows and retransmissions verify once.
  /// Copies of a registry share one verifier; null for registries built
  /// without the builtins.  PolicyDecisionEngine registers the policy's
  /// dict-embedded public keys here at construction (DESIGN.md §9).
  [[nodiscard]] const std::shared_ptr<crypto::SchnorrVerifier>& verifier()
      const noexcept {
    return verifier_;
  }

 private:
  struct Entry {
    PolicyFunction fn;
    bool flow_invariant = false;
  };
  std::map<std::string, Entry, std::less<>> functions_;
  std::map<std::string, BatchPreparer, std::less<>> preparers_;
  std::shared_ptr<crypto::SchnorrVerifier> verifier_;
};

}  // namespace identxx::pf
