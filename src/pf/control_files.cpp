#include "pf/control_files.hpp"

#include <algorithm>

#include "pf/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace identxx::pf {

Ruleset load_control_files(std::vector<ControlFile> files) {
  std::erase_if(files, [](const ControlFile& file) {
    return !util::ends_with(file.name, ".control");
  });
  std::sort(files.begin(), files.end(),
            [](const ControlFile& a, const ControlFile& b) {
              return a.name < b.name;
            });
  Ruleset ruleset;
  for (const ControlFile& file : files) {
    try {
      std::vector<Rule> rules =
          parse_rules_into(ruleset, file.contents, file.name);
      for (Rule& rule : rules) {
        ruleset.rules.push_back(std::move(rule));
      }
    } catch (const ParseError& e) {
      throw ParseError(file.name + ": " + e.what());
    }
  }
  return ruleset;
}

}  // namespace identxx::pf
