#pragma once

// .control file handling (§3.4).
//
// "The controller's configuration files reside in a well known location and
// have the .control extension.  The files are read in alphabetical order
// and their contents are concatenated."  Files may come from the
// administrator, application developers, or third-party security companies
// (Figure 2 shows 00-local-header / 50-skype / 99-local-footer).

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pf/ast.hpp"

namespace identxx::pf {

/// One configuration file: name (used for ordering and rule provenance)
/// plus contents.
struct ControlFile {
  std::string name;
  std::string contents;
};

/// Assemble a ruleset from a set of .control files:
///  * files whose name does not end in ".control" are ignored (§3.4),
///  * remaining files are sorted by name and concatenated,
///  * each rule remembers which file it came from (audit trail).
/// Throws ParseError (with the offending file in the message) on bad input.
[[nodiscard]] Ruleset load_control_files(std::vector<ControlFile> files);

}  // namespace identxx::pf
