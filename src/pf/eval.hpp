#pragma once

// PF+=2 evaluation (§3.3).
//
// A PolicyEngine holds a parsed ruleset plus a function registry and
// renders pass/block verdicts for flows.  Rules are scanned top-down; the
// *last* matching rule wins unless a matching rule carries `quick`, which
// short-circuits immediately (vanilla PF semantics).  When nothing matches
// the verdict defaults to pass, also as in PF — which is why every example
// policy in the paper opens with `block all`.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "identxx/dict.hpp"
#include "net/flow.hpp"
#include "pf/ast.hpp"
#include "pf/functions.hpp"

namespace identxx::pf {

/// Everything a policy can look at for one flow decision.
struct FlowContext {
  net::FiveTuple flow;
  proto::ResponseDict src;  ///< @src — parsed source-endpoint response
  proto::ResponseDict dst;  ///< @dst — parsed destination-endpoint response
  /// OpenFlow-level context for the @flow extension dictionary (§2 allows
  /// policies over ingress port / MAC addresses in an OpenFlow network).
  std::optional<net::TenTuple> openflow;
};

struct Verdict {
  RuleAction action = RuleAction::kPass;
  bool keep_state = false;
  bool quick = false;
  bool log = false;  ///< matched rule carried the `log` modifier
  /// Matched rule (owned by the engine's ruleset); nullptr for the default.
  const Rule* rule = nullptr;

  [[nodiscard]] bool allowed() const noexcept {
    return action == RuleAction::kPass;
  }
};

struct EngineStats {
  std::uint64_t evaluations = 0;
  std::uint64_t rules_scanned = 0;
  std::uint64_t functions_called = 0;
  std::uint64_t delegated_rule_evals = 0;  ///< rules run inside allowed()
};

class PolicyEngine {
 public:
  /// Takes ownership of `ruleset`; uses the builtin function registry
  /// unless a custom one is supplied.
  explicit PolicyEngine(Ruleset ruleset);
  PolicyEngine(Ruleset ruleset, FunctionRegistry registry);

  /// Decide `ctx`.  Throws PolicyError for unknown functions/tables (admin
  /// configuration errors); never throws for malformed *delegated* content,
  /// which simply fails to match.
  [[nodiscard]] Verdict evaluate(const FlowContext& ctx) const;

  [[nodiscard]] const Ruleset& ruleset() const noexcept { return ruleset_; }
  [[nodiscard]] const FunctionRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  Ruleset ruleset_;
  FunctionRegistry registry_;
  mutable EngineStats stats_;
};

/// Evaluation context handed to policy functions.  Exposes expression
/// evaluation and (for `allowed`) recursive rule evaluation.
class EvalContext {
 public:
  static constexpr int kMaxDelegationDepth = 4;

  EvalContext(const FlowContext& flow_ctx, const Ruleset& ruleset,
              const FunctionRegistry& registry, EngineStats& stats,
              int depth = 0)
      : flow_ctx_(flow_ctx),
        ruleset_(ruleset),
        registry_(registry),
        stats_(stats),
        depth_(depth) {}

  [[nodiscard]] const FlowContext& flow() const noexcept { return flow_ctx_; }
  [[nodiscard]] const Ruleset& ruleset() const noexcept { return ruleset_; }
  [[nodiscard]] const FunctionRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] EngineStats& stats() const noexcept { return stats_; }

  /// Evaluate an expression to a Value (Undefined when a dictionary key is
  /// absent).  Throws PolicyError for an unknown dictionary.
  [[nodiscard]] Value eval_expr(const Expr& expr) const;

  /// Evaluate `rules` with last-match-wins semantics against this context.
  [[nodiscard]] Verdict eval_rules(const std::vector<Rule>& rules) const;

  /// Does `rule` match the flow (endpoints + all with-predicates)?
  [[nodiscard]] bool rule_matches(const Rule& rule) const;

 private:
  [[nodiscard]] bool endpoint_matches(const Endpoint& endpoint,
                                      net::Ipv4Address addr,
                                      std::uint16_t port) const;
  [[nodiscard]] bool host_matches(const HostSpec& host,
                                  net::Ipv4Address addr) const;
  [[nodiscard]] Value lookup_dict(const DictIndexExpr& index) const;

  const FlowContext& flow_ctx_;
  const Ruleset& ruleset_;
  const FunctionRegistry& registry_;
  EngineStats& stats_;
  int depth_;
};

}  // namespace identxx::pf
