#pragma once

// PF+=2 evaluation (§3.3).
//
// A PolicyEngine holds a parsed ruleset plus a function registry and
// renders pass/block verdicts for flows.  Rules are scanned top-down; the
// *last* matching rule wins unless a matching rule carries `quick`, which
// short-circuits immediately (vanilla PF semantics).  When nothing matches
// the verdict defaults to pass, also as in PF — which is why every example
// policy in the paper opens with `block all`.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "identxx/dict.hpp"
#include "net/flow.hpp"
#include "pf/ast.hpp"
#include "pf/functions.hpp"

namespace identxx::pf {

/// Everything a policy can look at for one flow decision.
struct FlowContext {
  net::FiveTuple flow;
  proto::ResponseDict src;  ///< @src — parsed source-endpoint response
  proto::ResponseDict dst;  ///< @dst — parsed destination-endpoint response
  /// OpenFlow-level context for the @flow extension dictionary (§2 allows
  /// policies over ingress port / MAC addresses in an OpenFlow network).
  std::optional<net::TenTuple> openflow;
};

struct Verdict {
  RuleAction action = RuleAction::kPass;
  bool keep_state = false;
  bool quick = false;
  bool log = false;  ///< matched rule carried the `log` modifier
  /// Matched rule (owned by the engine's ruleset); nullptr for the default.
  const Rule* rule = nullptr;

  [[nodiscard]] bool allowed() const noexcept {
    return action == RuleAction::kPass;
  }
};

struct EngineStats {
  std::uint64_t evaluations = 0;
  std::uint64_t rules_scanned = 0;
  std::uint64_t functions_called = 0;
  std::uint64_t delegated_rule_evals = 0;  ///< rules run inside allowed()
  // Batched evaluation (DESIGN.md §11).  Two invariants tie the modes
  // together, per identical input set:
  //   serial.rules_scanned    == batch.rules_scanned + batch.prefilter_skips
  //   serial.functions_called == batch.functions_called + batch.hoist_memo_hits
  // These are *work* counters, so they hold for runs that complete: an
  // evaluation aborted by PolicyError keeps the work it did before the
  // throw (in either mode), and a caller that then falls back — e.g.
  // PolicyDecisionEngine::decide_many re-deciding per flow — counts the
  // fallback's work on top.
  std::uint64_t batches = 0;           ///< evaluate_batch() calls
  std::uint64_t batch_flows = 0;       ///< contexts decided through batches
  std::uint64_t prefilter_skips = 0;   ///< rule visits elided by static prefilters
  std::uint64_t hoist_memo_hits = 0;   ///< with-calls answered from the batch memo
};

class PolicyEngine {
 public:
  /// Takes ownership of `ruleset`; uses the builtin function registry
  /// unless a custom one is supplied.
  explicit PolicyEngine(Ruleset ruleset);
  PolicyEngine(Ruleset ruleset, FunctionRegistry registry);

  // The compiled ruleset (and every Verdict::rule) points into ruleset_;
  // copying would alias the copy onto the original's rules.  Moves are
  // fine: vector/map storage survives a move.
  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;
  PolicyEngine(PolicyEngine&&) = default;
  PolicyEngine& operator=(PolicyEngine&&) = default;

  /// Decide `ctx`.  Throws PolicyError for unknown functions/tables (admin
  /// configuration errors); never throws for malformed *delegated* content,
  /// which simply fails to match.
  [[nodiscard]] Verdict evaluate(const FlowContext& ctx) const;

  /// Decide a whole batch of flows through the compiled ruleset
  /// (DESIGN.md §11).  Verdicts — actions, modifiers and matched-rule
  /// pointers — are bit-identical to calling evaluate() on each context in
  /// order; only the work is shared:
  ///   * per-rule static prefilters (proto / CIDR / resolved-table /
  ///     port-range checks), probed once per distinct 5-tuple in the batch
  ///     instead of once per flow per rule;
  ///   * `with` predicates whose verdict is determined by their argument
  ///     values (every builtin except `allowed`) run once per batch per
  ///     (call site, resolved arguments) and are memoized after that, so a
  ///     shared attestation verifies once however many flows carry it.
  /// Throws PolicyError exactly where serial evaluation would (unknown
  /// function/table/dict reached by a flow); callers needing per-flow
  /// fail-closed semantics fall back to evaluate() per context.
  [[nodiscard]] std::vector<Verdict> evaluate_batch(
      std::span<const FlowContext> batch) const;

  [[nodiscard]] const Ruleset& ruleset() const noexcept { return ruleset_; }
  [[nodiscard]] const FunctionRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  /// One compiled endpoint: host spec resolved to a flat CIDR list so the
  /// batch path never walks tables.  `dynamic` marks specs that cannot be
  /// resolved statically (a table missing from the ruleset); those fall
  /// back to the interpreted matcher, preserving PolicyError parity.
  struct CompiledEndpoint {
    bool any = true;        ///< no host constraint (before negation)
    bool negated = false;
    bool dynamic = false;
    std::vector<net::Cidr> cidrs;
    bool has_port = false;
    std::uint16_t port_lo = 0;
    std::uint16_t port_hi = 65535;
  };
  /// One compiled `with` call.  `fn` is resolved at compile time but may
  /// be null — serial evaluation only throws for an unknown function when
  /// a flow actually reaches the call, and the batch path must match that.
  struct CompiledCall {
    const FuncCall* call = nullptr;
    const PolicyFunction* fn = nullptr;
    const BatchPreparer* preparer = nullptr;  ///< batch warm-up hook, or null
    std::uint32_t site = 0;      ///< global call-site id (memo key prefix)
    bool hoistable = false;      ///< fn is flow-invariant given its args
    bool static_args = false;    ///< args are literal/list/user-dict only
  };
  struct CompiledRule {
    const Rule* rule = nullptr;
    std::optional<net::IpProto> proto;
    CompiledEndpoint from, to;
    std::vector<CompiledCall> withs;
  };

  void compile();
  [[nodiscard]] std::vector<std::uint32_t> static_candidates(
      const net::FiveTuple& flow) const;
  /// Static counterpart of EvalContext::endpoint_matches for compiled
  /// endpoints (never throws; only valid when !dynamic).
  [[nodiscard]] static bool static_endpoint_matches(
      const CompiledEndpoint& endpoint, net::Ipv4Address addr,
      std::uint16_t port) noexcept;

  Ruleset ruleset_;
  FunctionRegistry registry_;
  std::vector<CompiledRule> compiled_;
  std::uint32_t call_sites_ = 0;
  bool has_preparers_ = false;  ///< any compiled call has a batch preparer
  mutable EngineStats stats_;
};

/// Evaluation context handed to policy functions.  Exposes expression
/// evaluation and (for `allowed`) recursive rule evaluation.
class EvalContext {
 public:
  static constexpr int kMaxDelegationDepth = 4;

  EvalContext(const FlowContext& flow_ctx, const Ruleset& ruleset,
              const FunctionRegistry& registry, EngineStats& stats,
              int depth = 0)
      : flow_ctx_(flow_ctx),
        ruleset_(ruleset),
        registry_(registry),
        stats_(stats),
        depth_(depth) {}

  [[nodiscard]] const FlowContext& flow() const noexcept { return flow_ctx_; }
  [[nodiscard]] const Ruleset& ruleset() const noexcept { return ruleset_; }
  [[nodiscard]] const FunctionRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] EngineStats& stats() const noexcept { return stats_; }

  /// Evaluate an expression to a Value (Undefined when a dictionary key is
  /// absent).  Throws PolicyError for an unknown dictionary.
  [[nodiscard]] Value eval_expr(const Expr& expr) const;

  /// Evaluate `rules` with last-match-wins semantics against this context.
  [[nodiscard]] Verdict eval_rules(const std::vector<Rule>& rules) const;

  /// Does `rule` match the flow (endpoints + all with-predicates)?
  [[nodiscard]] bool rule_matches(const Rule& rule) const;

  /// Interpreted endpoint match (host spec + negation + port).  Public so
  /// the batch evaluator can fall back to it for endpoints it could not
  /// compile (unknown tables throw PolicyError exactly as serial does).
  [[nodiscard]] bool endpoint_matches(const Endpoint& endpoint,
                                      net::Ipv4Address addr,
                                      std::uint16_t port) const;

 private:
  [[nodiscard]] bool host_matches(const HostSpec& host,
                                  net::Ipv4Address addr) const;
  [[nodiscard]] Value lookup_dict(const DictIndexExpr& index) const;

  const FlowContext& flow_ctx_;
  const Ruleset& ruleset_;
  const FunctionRegistry& registry_;
  EngineStats& stats_;
  int depth_;
};

/// Is `key` a valid `@flow[...]` key?  Covers the 5-tuple keys (always
/// available) and the OpenFlow-only keys (Undefined when the evaluation
/// context carries no TenTuple).  The parser rejects anything else at
/// policy-load time — a typo like `@flow[srcport]` used to silently never
/// match.
[[nodiscard]] bool is_flow_key(std::string_view key) noexcept;

}  // namespace identxx::pf
