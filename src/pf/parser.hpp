#pragma once

// PF+=2 parser (§3.3).
//
// Recursive-descent over the lexer's token stream.  Macros are expanded
// textually (spliced into the token stream), mirroring vanilla PF.  Table
// definitions may reference previously defined tables
// (`table <int_hosts> { <lan> <server> }`, Fig 2) and are flattened at
// definition time.

#include <string>
#include <string_view>
#include <vector>

#include "pf/ast.hpp"

namespace identxx::pf {

/// Parse a complete PF+=2 source (one .control file, or several files'
/// contents concatenated in alphabetical order, §3.4).  `source_label` is
/// recorded on every parsed rule for diagnostics.
/// Throws ParseError on syntax errors.
[[nodiscard]] Ruleset parse(std::string_view source,
                            std::string_view source_label = "");

/// Parse rule text into an existing ruleset's context (tables/dicts/macros
/// remain visible; new definitions are added).  Used by `allowed()` to
/// evaluate delegated requirements against the including policy's tables.
[[nodiscard]] std::vector<Rule> parse_rules_into(Ruleset& ruleset,
                                                 std::string_view source,
                                                 std::string_view source_label);

/// Resolve a service name to its port number (http -> 80, ...).
/// Returns 0 when unknown.
[[nodiscard]] std::uint16_t named_port(std::string_view name) noexcept;

}  // namespace identxx::pf
