#include "pf/parser.hpp"

#include <utility>

#include "pf/eval.hpp"  // is_flow_key
#include "pf/lexer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace identxx::pf {

namespace {

struct NamedPort {
  std::string_view name;
  std::uint16_t port;
};

constexpr NamedPort kNamedPorts[] = {
    {"http", 80},   {"https", 443}, {"ssh", 22},    {"smtp", 25},
    {"dns", 53},    {"domain", 53}, {"pop3", 110},  {"imap", 143},
    {"ident", 113}, {"identxx", 783}, {"ftp", 21},  {"telnet", 23},
    {"ntp", 123},   {"snmp", 161},  {"ldap", 389},  {"rdp", 3389},
};

class Parser {
 public:
  Parser(Ruleset& ruleset, std::string_view source,
         std::string_view source_label)
      : ruleset_(ruleset),
        tokens_(lex(source)),
        source_label_(source_label) {}

  /// Parse all statements; returns the rules added (definitions go straight
  /// into the ruleset).
  std::vector<Rule> run() {
    std::vector<Rule> rules;
    while (!check(TokenKind::kEnd)) {
      if (peek().is_word("table")) {
        parse_table();
      } else if (peek().is_word("dict")) {
        parse_dict();
      } else if (peek().is_word("pass") || peek().is_word("block")) {
        rules.push_back(parse_rule());
      } else if (check(TokenKind::kWord) &&
                 peek_at(1).kind == TokenKind::kEquals) {
        parse_macro();
      } else if (check(TokenKind::kMacroRef)) {
        splice_macro();
      } else {
        throw ParseError("expected statement, got " +
                             std::string(to_string(peek().kind)) +
                             (peek().kind == TokenKind::kWord
                                  ? " '" + peek().text + "'"
                                  : ""),
                         peek().line);
      }
    }
    return rules;
  }

 private:
  // ---- token stream helpers ----

  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] const Token& peek_at(std::size_t offset) const {
    const std::size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }

  Token advance() {
    Token token = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return token;
  }

  Token expect(TokenKind kind, std::string_view what) {
    if (!check(kind)) {
      throw ParseError("expected " + std::string(what) + ", got " +
                           std::string(to_string(peek().kind)),
                       peek().line);
    }
    return advance();
  }

  bool match_word(std::string_view word) {
    if (peek().is_word(word)) {
      advance();
      return true;
    }
    return false;
  }

  /// Textual macro expansion: replace the $ref with its lexed value.
  void splice_macro() {
    const Token ref = advance();
    const auto it = ruleset_.macros.find(ref.text);
    if (it == ruleset_.macros.end()) {
      throw ParseError("undefined macro '$" + ref.text + "'", ref.line);
    }
    std::vector<Token> expansion = lex(it->second);
    expansion.pop_back();  // drop kEnd
    tokens_.insert(tokens_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   expansion.begin(), expansion.end());
  }

  /// Expand any macro reference sitting at the cursor (used in positions
  /// where PF allows macros: hosts, ports, expressions, table items).
  void expand_macros_here() {
    while (check(TokenKind::kMacroRef)) splice_macro();
  }

  // ---- statements ----

  void parse_table() {
    advance();  // 'table'
    const Token name = expect(TokenKind::kTableRef, "table name '<name>'");
    expect(TokenKind::kLBrace, "'{'");
    std::vector<net::Cidr> entries;
    for (;;) {
      expand_macros_here();
      if (check(TokenKind::kRBrace)) break;
      if (check(TokenKind::kComma)) {  // commas between items are optional
        advance();
        continue;
      }
      if (check(TokenKind::kTableRef)) {
        const Token ref = advance();
        const auto it = ruleset_.tables.find(ref.text);
        if (it == ruleset_.tables.end()) {
          throw ParseError("table <" + ref.text + "> referenced before definition",
                           ref.line);
        }
        entries.insert(entries.end(), it->second.begin(), it->second.end());
        continue;
      }
      const Token item = expect(TokenKind::kWord, "address or '<table>'");
      const auto cidr = net::Cidr::parse(item.text);
      if (!cidr) {
        throw ParseError("invalid address '" + item.text + "' in table <" +
                             name.text + ">",
                         item.line);
      }
      entries.push_back(*cidr);
    }
    expect(TokenKind::kRBrace, "'}'");
    ruleset_.tables[name.text] = std::move(entries);
  }

  void parse_dict() {
    advance();  // 'dict'
    const Token name = expect(TokenKind::kTableRef, "dict name '<name>'");
    expect(TokenKind::kLBrace, "'{'");
    auto& dict = ruleset_.dicts[name.text];
    while (!check(TokenKind::kRBrace)) {
      const Token key = expect(TokenKind::kWord, "dictionary key");
      expect(TokenKind::kColon, "':'");
      std::string value;
      if (check(TokenKind::kString)) {
        value = advance().text;
      } else {
        value = expect(TokenKind::kWord, "dictionary value").text;
      }
      dict[key.text] = std::move(value);
      if (check(TokenKind::kComma)) advance();
    }
    expect(TokenKind::kRBrace, "'}'");
  }

  void parse_macro() {
    const Token name = advance();
    advance();  // '='
    std::string value;
    if (check(TokenKind::kString)) {
      value = advance().text;
    } else if (check(TokenKind::kLBrace)) {
      // Inline list macro: capture the brace list as text.
      advance();
      value = "{";
      while (!check(TokenKind::kRBrace)) {
        if (check(TokenKind::kEnd)) {
          throw ParseError("unterminated '{' in macro definition", name.line);
        }
        value += ' ';
        value += advance().text;
      }
      advance();
      value += " }";
    } else {
      value = expect(TokenKind::kWord, "macro value").text;
    }
    ruleset_.macros[name.text] = std::move(value);
  }

  // ---- rules ----

  Rule parse_rule() {
    Rule rule;
    rule.line = peek().line;
    rule.source_label = std::string(source_label_);
    const Token action = advance();
    rule.action = action.is_word("pass") ? RuleAction::kPass : RuleAction::kBlock;
    // `log` and `quick` modifiers, in either order (PF accepts both).
    for (;;) {
      if (match_word("quick")) {
        rule.quick = true;
      } else if (match_word("log")) {
        rule.log = true;
      } else {
        break;
      }
    }

    // Clauses appear in any interleaving; the paper's own listings put
    // `with` predicates between `from` and `to` (Figures 5 and 8).
    for (;;) {
      expand_macros_here();
      if (match_word("all")) {
        rule.from = Endpoint{};  // any
        rule.to = Endpoint{};
      } else if (match_word("from")) {
        rule.from = parse_endpoint();
      } else if (match_word("to")) {
        rule.to = parse_endpoint();
      } else if (peek().is_word("proto")) {
        advance();
        const Token proto = expect(TokenKind::kWord, "protocol name");
        if (util::iequals(proto.text, "tcp")) {
          rule.proto = net::IpProto::kTcp;
        } else if (util::iequals(proto.text, "udp")) {
          rule.proto = net::IpProto::kUdp;
        } else if (util::iequals(proto.text, "icmp")) {
          rule.proto = net::IpProto::kIcmp;
        } else {
          throw ParseError("unknown protocol '" + proto.text + "'", proto.line);
        }
      } else if (match_word("with")) {
        rule.withs.push_back(parse_func_call());
      } else if (peek().is_word("keep")) {
        advance();
        if (!match_word("state")) {
          throw ParseError("expected 'state' after 'keep'", peek().line);
        }
        rule.keep_state = true;
      } else {
        break;
      }
    }
    return rule;
  }

  Endpoint parse_endpoint() {
    Endpoint endpoint;
    bool have_host = false;
    expand_macros_here();
    if (check(TokenKind::kBang)) {
      advance();
      endpoint.negated = true;
      expand_macros_here();
    }
    if (match_word("any")) {
      endpoint.host = AnyHost{};
      have_host = true;
    } else if (check(TokenKind::kTableRef)) {
      endpoint.host = TableHost{advance().text};
      have_host = true;
    } else if (check(TokenKind::kLBrace)) {
      endpoint.host = parse_host_list();
      have_host = true;
    } else if (check(TokenKind::kWord) && !peek().is_word("port")) {
      const Token word = advance();
      const auto cidr = net::Cidr::parse(word.text);
      if (!cidr) {
        throw ParseError("invalid host '" + word.text + "'", word.line);
      }
      endpoint.host = CidrHost{*cidr};
      have_host = true;
    } else if (endpoint.negated) {
      throw ParseError("'!' must be followed by a host", peek().line);
    }
    bool have_port = false;
    if (match_word("port")) {
      endpoint.port = parse_port_spec();
      have_port = true;
    }
    if (!have_host && !have_port) {
      throw ParseError("expected host or 'port' specification", peek().line);
    }
    return endpoint;
  }

  ListHost parse_host_list() {
    advance();  // '{'
    ListHost list;
    for (;;) {
      expand_macros_here();
      if (check(TokenKind::kRBrace)) break;
      if (check(TokenKind::kComma)) {
        advance();
        continue;
      }
      if (check(TokenKind::kTableRef)) {
        list.items.emplace_back(advance().text);
        continue;
      }
      const Token item = expect(TokenKind::kWord, "address or '<table>'");
      const auto cidr = net::Cidr::parse(item.text);
      if (!cidr) {
        throw ParseError("invalid address '" + item.text + "' in host list",
                         item.line);
      }
      list.items.emplace_back(*cidr);
    }
    advance();  // '}'
    return list;
  }

  PortSpec parse_port_spec() {
    expand_macros_here();
    const Token low_token = expect(TokenKind::kWord, "port number or name");
    const std::uint16_t low = resolve_port(low_token);
    PortSpec spec{low, low};
    if (check(TokenKind::kColon)) {
      advance();
      const Token high_token = expect(TokenKind::kWord, "port range end");
      spec.high = resolve_port(high_token);
      if (spec.high < spec.low) {
        throw ParseError("port range end below start", high_token.line);
      }
    }
    return spec;
  }

  std::uint16_t resolve_port(const Token& token) {
    if (const auto number = util::parse_u64(token.text);
        number && *number <= 65535) {
      return static_cast<std::uint16_t>(*number);
    }
    const std::uint16_t port = named_port(token.text);
    if (port == 0) {
      throw ParseError("unknown port '" + token.text + "'", token.line);
    }
    return port;
  }

  FuncCall parse_func_call() {
    FuncCall call;
    const Token name = expect(TokenKind::kWord, "function name");
    call.name = name.text;
    call.line = name.line;
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
      for (;;) {
        call.args.push_back(parse_expr());
        if (check(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
    }
    expect(TokenKind::kRParen, "')'");
    return call;
  }

  Expr parse_expr() {
    expand_macros_here();
    if (check(TokenKind::kDictIndex)) {
      const Token token = advance();
      // @flow has a closed key set (the 5-tuple plus the OpenFlow fields);
      // a typo like @flow[srcport] used to evaluate to Undefined and make
      // the rule silently unmatchable.  @src/@dst/user dicts stay open —
      // their keys come from responses and dict definitions.
      if (token.text == "flow" && !is_flow_key(token.key)) {
        throw ParseError(
            "unknown @flow key '" + token.key +
                "' (valid: src_ip dst_ip proto src_port dst_port in_port "
                "src_mac dst_mac vlan ether_type)",
            token.line);
      }
      return DictIndexExpr{token.text, token.key, token.star};
    }
    if (check(TokenKind::kString)) {
      const std::string value = advance().text;
      // A quoted brace list ("{ http ssh }", Fig 2) is a list literal.
      const auto trimmed = util::trim(value);
      if (trimmed.size() >= 2 && trimmed.front() == '{' && trimmed.back() == '}') {
        ListExpr list;
        for (const auto item :
             util::split_ws(trimmed.substr(1, trimmed.size() - 2))) {
          list.items.emplace_back(item);
        }
        return list;
      }
      return LiteralExpr{value};
    }
    if (check(TokenKind::kLBrace)) {
      advance();
      ListExpr list;
      while (!check(TokenKind::kRBrace)) {
        if (check(TokenKind::kComma)) {
          advance();
          continue;
        }
        expand_macros_here();
        list.items.push_back(expect(TokenKind::kWord, "list item").text);
      }
      advance();
      return list;
    }
    if (check(TokenKind::kWord)) {
      return LiteralExpr{advance().text};
    }
    throw ParseError("expected expression, got " +
                         std::string(to_string(peek().kind)),
                     peek().line);
  }

  Ruleset& ruleset_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string_view source_label_;
};

}  // namespace

Ruleset parse(std::string_view source, std::string_view source_label) {
  Ruleset ruleset;
  Parser parser(ruleset, source, source_label);
  ruleset.rules = parser.run();
  return ruleset;
}

std::vector<Rule> parse_rules_into(Ruleset& ruleset, std::string_view source,
                                   std::string_view source_label) {
  Parser parser(ruleset, source, source_label);
  return parser.run();
}

std::uint16_t named_port(std::string_view name) noexcept {
  for (const auto& entry : kNamedPorts) {
    if (util::iequals(entry.name, name)) return entry.port;
  }
  return 0;
}

std::optional<std::vector<std::string>> Ruleset::named_list(
    const std::string& name) const {
  const auto it = macros.find(name);
  if (it == macros.end()) return std::nullopt;
  const auto trimmed = util::trim(it->second);
  if (trimmed.size() < 2 || trimmed.front() != '{' || trimmed.back() != '}') {
    return std::nullopt;
  }
  std::vector<std::string> items;
  for (const auto item : util::split_ws(trimmed.substr(1, trimmed.size() - 2))) {
    items.emplace_back(item);
  }
  return items;
}

std::string to_string(RuleAction action) {
  return action == RuleAction::kPass ? "pass" : "block";
}

std::string to_string(const Rule& rule) {
  std::string out = to_string(rule.action);
  if (rule.quick) out += " quick";
  out += " (line " + std::to_string(rule.line);
  if (!rule.source_label.empty()) out += " of " + rule.source_label;
  out += ")";
  return out;
}

}  // namespace identxx::pf
