#include "pf/functions.hpp"

#include <deque>
#include <unordered_set>

#include "crypto/schnorr.hpp"
#include "crypto/verifier.hpp"
#include "identxx/daemon_config.hpp"
#include "pf/ast.hpp"
#include "pf/eval.hpp"
#include "pf/parser.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace identxx::pf {

namespace {

/// Compare two values: numerically when both parse as integers,
/// lexicographically when neither does.  Mixed operands — one integer, one
/// not (e.g. "10" vs "9 ") — have no coherent order: a lexicographic
/// fallback would flip gt/lt verdicts depending on digit count, so they
/// yield nullopt and the predicate fails instead.  Also nullopt when
/// either is Undefined.
[[nodiscard]] std::optional<int> compare(const Value& a, const Value& b) {
  const auto sa = value_to_string(a);
  const auto sb = value_to_string(b);
  if (!sa || !sb) return std::nullopt;
  const auto na = util::parse_i64(*sa);
  const auto nb = util::parse_i64(*sb);
  if (na && nb) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  if (na || nb) return std::nullopt;  // mixed types: no verdict
  return sa->compare(*sb);
}

void require_arity(const FuncCall& call, std::size_t arity) {
  if (call.args.size() != arity) {
    throw PolicyError("function '" + call.name + "' expects " +
                      std::to_string(arity) + " arguments, got " +
                      std::to_string(call.args.size()) + " (line " +
                      std::to_string(call.line) + ")");
  }
}

void require_min_arity(const FuncCall& call, std::size_t arity) {
  if (call.args.size() < arity) {
    throw PolicyError("function '" + call.name + "' expects at least " +
                      std::to_string(arity) + " arguments, got " +
                      std::to_string(call.args.size()) + " (line " +
                      std::to_string(call.line) + ")");
  }
}

// ---- the predefined functions (§3.3) ----

bool fn_eq(const EvalContext&, const FuncCall& call,
           const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto c = compare(args[0], args[1]);
  return c.has_value() && *c == 0;
}

bool fn_gt(const EvalContext&, const FuncCall& call,
           const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto c = compare(args[0], args[1]);
  return c.has_value() && *c > 0;
}

bool fn_lt(const EvalContext&, const FuncCall& call,
           const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto c = compare(args[0], args[1]);
  return c.has_value() && *c < 0;
}

bool fn_gte(const EvalContext&, const FuncCall& call,
            const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto c = compare(args[0], args[1]);
  return c.has_value() && *c >= 0;
}

bool fn_lte(const EvalContext&, const FuncCall& call,
            const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto c = compare(args[0], args[1]);
  return c.has_value() && *c <= 0;
}

/// member(value, list): is `value` in the list?  The list argument may be a
/// brace-list literal, a macro-defined named list, or a plain word (treated
/// as a one-element list).
bool fn_member(const EvalContext& ctx, const FuncCall& call,
               const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto needle = value_to_string(args[0]);
  if (!needle) return false;
  std::vector<std::string> list;
  if (const auto* items = std::get_if<std::vector<std::string>>(&args[1])) {
    list = *items;
  } else if (const auto word = value_to_string(args[1])) {
    if (const auto named = ctx.ruleset().named_list(*word)) {
      list = *named;
    } else {
      list = {*word};
    }
  } else {
    return false;
  }
  for (const auto& item : list) {
    if (item == *needle) return true;
  }
  return false;
}

/// includes(haystack, needle): `haystack` is a delimited list value (commas
/// and/or whitespace); true when `needle` appears (Fig 8: os-patch).
bool fn_includes(const EvalContext&, const FuncCall& call,
                 const std::vector<Value>& args) {
  require_arity(call, 2);
  const auto haystack = value_to_string(args[0]);
  const auto needle = value_to_string(args[1]);
  if (!haystack || !needle) return false;
  for (const auto piece : util::split(*haystack, ',')) {
    for (const auto item : util::split_ws(piece)) {
      if (item == *needle) return true;
    }
  }
  return false;
}

/// allowed(rules): evaluate externally supplied PF+=2 rules against the
/// current flow; true when they pass it.  This is the delegation keystone:
/// the rules come out of an ident++ response (untrusted input), so parse
/// failures and excessive recursion make the predicate false rather than
/// failing the admin policy.
bool fn_allowed(const EvalContext& ctx, const FuncCall& call,
                const std::vector<Value>& args) {
  require_arity(call, 1);
  const auto text = value_to_string(args[0]);
  if (!text || text->empty()) return false;
  if (ctx.depth() >= EvalContext::kMaxDelegationDepth) {
    IDXX_LOG(kWarn, "pf") << "allowed(): delegation depth limit reached";
    return false;
  }
  Ruleset scratch;
  // Delegated rules may reference the including policy's tables and macros.
  scratch.tables = ctx.ruleset().tables;
  scratch.dicts = ctx.ruleset().dicts;
  scratch.macros = ctx.ruleset().macros;
  std::vector<Rule> rules;
  try {
    rules = parse_rules_into(scratch, *text, "delegated");
  } catch (const ParseError& e) {
    IDXX_LOG(kWarn, "pf") << "allowed(): unparseable delegated rules: "
                          << e.what();
    return false;
  }
  if (rules.empty()) return false;
  scratch.rules = std::move(rules);
  // Delegated rules evaluate with the same registry, so user-defined
  // functions remain available to them.
  const EvalContext nested(ctx.flow(), scratch, ctx.registry(), ctx.stats(),
                           ctx.depth() + 1);
  try {
    // Unlike the top-level ruleset (which keeps PF's default-pass), a flow
    // is `allowed` only when a delegated rule affirmatively passes it —
    // "tests if flow is allowed by rule specified in argument" (§3.3).
    const Verdict verdict = nested.eval_rules(scratch.rules);
    return verdict.allowed() && verdict.rule != nullptr;
  } catch (const PolicyError& e) {
    IDXX_LOG(kWarn, "pf") << "allowed(): delegated rules failed: " << e.what();
    return false;
  }
}

/// verify(sig, pubkey, data...): Schnorr verification; the message is the
/// data values joined with '\n' (matching proto::signed_message).  Runs
/// through `verifier` when provided, so repeat attestations hit the
/// verification memo and registered keys use their precomputed tables.
bool fn_verify(crypto::SchnorrVerifier* verifier, const FuncCall& call,
               const std::vector<Value>& args) {
  require_min_arity(call, 3);
  const auto sig_hex = value_to_string(args[0]);
  const auto key_hex = value_to_string(args[1]);
  if (!sig_hex || !key_hex) return false;
  const auto sig = crypto::Signature::from_hex(*sig_hex);
  const auto key = crypto::PublicKey::from_hex(*key_hex);
  if (!sig || !key) return false;
  std::vector<std::string> data;
  data.reserve(args.size() - 2);
  for (std::size_t i = 2; i < args.size(); ++i) {
    const auto piece = value_to_string(args[i]);
    if (!piece) return false;
    data.push_back(*piece);
  }
  const std::string message = proto::signed_message(data);
  if (verifier != nullptr) return verifier->verify(*key, message, *sig);
  return crypto::verify(*key, message, *sig);
}

}  // namespace

std::optional<std::string> value_to_string(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* list = std::get_if<std::vector<std::string>>(&v)) {
    return util::join(*list, ",");
  }
  return std::nullopt;
}

std::optional<std::vector<std::string>> value_to_list(const Value& v) {
  if (const auto* list = std::get_if<std::vector<std::string>>(&v)) return *list;
  if (const auto* s = std::get_if<std::string>(&v)) {
    return std::vector<std::string>{*s};
  }
  return std::nullopt;
}

FunctionRegistry FunctionRegistry::with_builtins() {
  // Every builtin's verdict is determined by its argument values alone —
  // except `allowed`, which evaluates delegated rules against the current
  // flow and so must run per flow.  (`member` reads the ruleset's named
  // lists and `verify` the shared verification memo; both are fixed for an
  // engine's lifetime, so the flow-invariant contract holds.)
  FunctionRegistry registry;
  registry.register_function("eq", fn_eq, /*flow_invariant=*/true);
  registry.register_function("gt", fn_gt, /*flow_invariant=*/true);
  registry.register_function("lt", fn_lt, /*flow_invariant=*/true);
  registry.register_function("gte", fn_gte, /*flow_invariant=*/true);
  registry.register_function("lte", fn_lte, /*flow_invariant=*/true);
  registry.register_function("member", fn_member, /*flow_invariant=*/true);
  registry.register_function("includes", fn_includes, /*flow_invariant=*/true);
  registry.register_function("allowed", fn_allowed);
  // The verifier is shared by every copy of this registry (delegated-rule
  // evaluation reuses the registry), so one memo serves the whole engine.
  registry.verifier_ = std::make_shared<crypto::SchnorrVerifier>();
  registry.register_function(
      "verify",
      [verifier = registry.verifier_](const EvalContext&, const FuncCall& call,
                                      const std::vector<Value>& args) {
        return fn_verify(verifier.get(), call, args);
      },
      /*flow_invariant=*/true);
  // Batch warm-up: every reachable verify() call in a decide_many batch is
  // checked in ONE multi-scalar multiplication (DESIGN.md §15).  The
  // verdicts land in the verifier's memo, so the per-flow fn_verify calls
  // above become memo hits.  Purely advisory — malformed arguments are
  // skipped here and fail per flow, exactly as they would serially.
  registry.register_batch_preparer(
      "verify",
      [verifier = registry.verifier_](
          const std::vector<std::vector<Value>>& calls) {
        std::deque<std::string> messages;  // stable storage for the views
        std::vector<crypto::SchnorrVerifier::BatchItem> items;
        std::unordered_set<std::string> seen;
        for (const std::vector<Value>& args : calls) {
          if (args.size() < 3) continue;
          const auto sig_hex = value_to_string(args[0]);
          const auto key_hex = value_to_string(args[1]);
          if (!sig_hex || !key_hex) continue;
          const auto sig = crypto::Signature::from_hex(*sig_hex);
          const auto key = crypto::PublicKey::from_hex(*key_hex);
          if (!sig || !key) continue;
          std::vector<std::string> data;
          data.reserve(args.size() - 2);
          bool ok = true;
          for (std::size_t i = 2; i < args.size(); ++i) {
            const auto piece = value_to_string(args[i]);
            if (!piece) {
              ok = false;
              break;
            }
            data.push_back(*piece);
          }
          if (!ok) continue;
          std::string message = proto::signed_message(data);
          if (!seen.insert(*sig_hex + *key_hex + message).second) continue;
          messages.push_back(std::move(message));
          items.push_back(crypto::SchnorrVerifier::BatchItem{
              *key, messages.back(), *sig});
        }
        // A single fresh attestation gains nothing from aggregation; the
        // per-flow path will verify it (and memo hits cost nothing here).
        if (items.size() < 2) return;
        (void)verifier->verify_batch(items);
      });
  return registry;
}

void FunctionRegistry::register_function(std::string name, PolicyFunction fn,
                                         bool flow_invariant) {
  functions_[std::move(name)] = Entry{std::move(fn), flow_invariant};
}

const PolicyFunction* FunctionRegistry::find(std::string_view name) const {
  const auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second.fn;
}

void FunctionRegistry::register_batch_preparer(std::string name,
                                               BatchPreparer preparer) {
  preparers_[std::move(name)] = std::move(preparer);
}

const BatchPreparer* FunctionRegistry::batch_preparer(
    std::string_view name) const {
  const auto it = preparers_.find(name);
  return it == preparers_.end() ? nullptr : &it->second;
}

bool FunctionRegistry::flow_invariant(std::string_view name) const {
  const auto it = functions_.find(name);
  return it != functions_.end() && it->second.flow_invariant;
}

std::vector<std::string> FunctionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, entry] : functions_) out.push_back(name);
  return out;
}

}  // namespace identxx::pf
