#pragma once

// PF+=2 lexer (§3.3).
//
// The token stream is newline-insensitive: newlines and backslash-escaped
// line continuations are whitespace.  This matters for delegation — signed
// `requirements` values arrive from ident++ responses as one logical line,
// and the parser must accept them exactly as it accepts .control files.
// Comments run from '#' to end of line.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace identxx::pf {

enum class TokenKind {
  kWord,       // pass, block, skype, 192.168.0.1/24, 200, ...
  kString,     // "..." (quotes stripped)
  kTableRef,   // <name>
  kDictIndex,  // @dict[key] or *@dict[key]
  kMacroRef,   // $name
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kColon,      // :
  kEquals,     // =
  kBang,       // !
  kEnd,        // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // word text / string contents / table or macro name
  std::string key;    // for kDictIndex: the [key] part
  bool star = false;  // for kDictIndex: *@dict[key]
  std::size_t line = 0;

  [[nodiscard]] bool is_word(std::string_view w) const noexcept {
    return kind == TokenKind::kWord && text == w;
  }
};

/// Tokenize `input`.  Throws ParseError on malformed tokens (unterminated
/// string, bad dictionary index, stray characters).  The result always ends
/// with a kEnd token.
[[nodiscard]] std::vector<Token> lex(std::string_view input);

[[nodiscard]] std::string_view to_string(TokenKind kind) noexcept;

}  // namespace identxx::pf
