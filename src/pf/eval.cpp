#include "pf/eval.hpp"

#include "util/error.hpp"

namespace identxx::pf {

PolicyEngine::PolicyEngine(Ruleset ruleset)
    : PolicyEngine(std::move(ruleset), FunctionRegistry::with_builtins()) {}

PolicyEngine::PolicyEngine(Ruleset ruleset, FunctionRegistry registry)
    : ruleset_(std::move(ruleset)), registry_(std::move(registry)) {}

Verdict PolicyEngine::evaluate(const FlowContext& ctx) const {
  ++stats_.evaluations;
  const EvalContext eval(ctx, ruleset_, registry_, stats_);
  return eval.eval_rules(ruleset_.rules);
}

Verdict EvalContext::eval_rules(const std::vector<Rule>& rules) const {
  Verdict verdict;  // default: pass, no rule
  for (const Rule& rule : rules) {
    if (depth_ > 0) {
      ++stats_.delegated_rule_evals;
    } else {
      ++stats_.rules_scanned;
    }
    if (!rule_matches(rule)) continue;
    verdict.action = rule.action;
    verdict.keep_state = rule.keep_state;
    verdict.quick = rule.quick;
    verdict.log = rule.log;
    verdict.rule = &rule;
    if (rule.quick) break;  // quick forces this rule's execution (§3.3)
  }
  return verdict;
}

bool EvalContext::rule_matches(const Rule& rule) const {
  if (rule.proto && *rule.proto != flow_ctx_.flow.proto) return false;
  if (!endpoint_matches(rule.from, flow_ctx_.flow.src_ip,
                        flow_ctx_.flow.src_port)) {
    return false;
  }
  if (!endpoint_matches(rule.to, flow_ctx_.flow.dst_ip,
                        flow_ctx_.flow.dst_port)) {
    return false;
  }
  for (const FuncCall& call : rule.withs) {
    const PolicyFunction* fn = registry_.find(call.name);
    if (fn == nullptr) {
      throw PolicyError("unknown policy function '" + call.name + "' (line " +
                        std::to_string(call.line) + ")");
    }
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const Expr& expr : call.args) {
      args.push_back(eval_expr(expr));
    }
    ++stats_.functions_called;
    if (!(*fn)(*this, call, args)) return false;
  }
  return true;
}

bool EvalContext::endpoint_matches(const Endpoint& endpoint,
                                   net::Ipv4Address addr,
                                   std::uint16_t port) const {
  bool host_ok = host_matches(endpoint.host, addr);
  if (endpoint.negated) host_ok = !host_ok;
  if (!host_ok) return false;
  if (endpoint.port && !endpoint.port->contains(port)) return false;
  return true;
}

bool EvalContext::host_matches(const HostSpec& host,
                               net::Ipv4Address addr) const {
  struct Visitor {
    const EvalContext& ctx;
    net::Ipv4Address addr;

    bool operator()(const AnyHost&) const { return true; }
    bool operator()(const TableHost& h) const {
      const auto it = ctx.ruleset_.tables.find(h.table);
      if (it == ctx.ruleset_.tables.end()) {
        throw PolicyError("unknown table <" + h.table + ">");
      }
      for (const net::Cidr& cidr : it->second) {
        if (cidr.contains(addr)) return true;
      }
      return false;
    }
    bool operator()(const CidrHost& h) const { return h.cidr.contains(addr); }
    bool operator()(const ListHost& h) const {
      for (const auto& item : h.items) {
        if (const auto* cidr = std::get_if<net::Cidr>(&item)) {
          if (cidr->contains(addr)) return true;
        } else {
          const auto& table = std::get<std::string>(item);
          if ((*this)(TableHost{table})) return true;
        }
      }
      return false;
    }
  };
  return std::visit(Visitor{*this, addr}, host);
}

Value EvalContext::eval_expr(const Expr& expr) const {
  struct Visitor {
    const EvalContext& ctx;

    Value operator()(const DictIndexExpr& e) const { return ctx.lookup_dict(e); }
    Value operator()(const LiteralExpr& e) const { return e.value; }
    Value operator()(const ListExpr& e) const { return e.items; }
  };
  return std::visit(Visitor{*this}, expr);
}

Value EvalContext::lookup_dict(const DictIndexExpr& index) const {
  // Reserved dictionaries: @src / @dst from the ident++ responses.
  if (index.dict == "src" || index.dict == "dst") {
    const proto::ResponseDict& dict =
        index.dict == "src" ? flow_ctx_.src : flow_ctx_.dst;
    if (index.star) {
      // *@src[key]: concatenation across all sections (§3.3).
      const std::string joined = dict.concatenated(index.key);
      if (joined.empty() && !dict.contains(index.key)) return Undefined{};
      return joined;
    }
    const auto value = dict.latest(index.key);
    if (!value) return Undefined{};
    return std::string(*value);
  }
  // @flow extension: network-level facts about the flow itself.
  if (index.dict == "flow") {
    const net::FiveTuple& flow = flow_ctx_.flow;
    if (index.key == "src_ip") return flow.src_ip.to_string();
    if (index.key == "dst_ip") return flow.dst_ip.to_string();
    if (index.key == "proto") return net::to_string(flow.proto);
    if (index.key == "src_port") return std::to_string(flow.src_port);
    if (index.key == "dst_port") return std::to_string(flow.dst_port);
    if (flow_ctx_.openflow) {
      const net::TenTuple& of = *flow_ctx_.openflow;
      if (index.key == "in_port") return std::to_string(of.in_port);
      if (index.key == "src_mac") return of.src_mac.to_string();
      if (index.key == "dst_mac") return of.dst_mac.to_string();
      if (index.key == "vlan") return std::to_string(of.vlan_id);
      if (index.key == "ether_type") return std::to_string(of.ether_type);
    }
    return Undefined{};
  }
  // User-defined dictionaries (dict <pubkeys> { ... }, Fig 5/7).
  const auto dict_it = ruleset_.dicts.find(index.dict);
  if (dict_it == ruleset_.dicts.end()) {
    throw PolicyError("unknown dictionary '@" + index.dict + "'");
  }
  const auto value_it = dict_it->second.find(index.key);
  if (value_it == dict_it->second.end()) return Undefined{};
  return value_it->second;
}

}  // namespace identxx::pf
