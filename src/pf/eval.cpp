#include "pf/eval.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace identxx::pf {

PolicyEngine::PolicyEngine(Ruleset ruleset)
    : PolicyEngine(std::move(ruleset), FunctionRegistry::with_builtins()) {}

PolicyEngine::PolicyEngine(Ruleset ruleset, FunctionRegistry registry)
    : ruleset_(std::move(ruleset)), registry_(std::move(registry)) {
  compile();
}

Verdict PolicyEngine::evaluate(const FlowContext& ctx) const {
  ++stats_.evaluations;
  const EvalContext eval(ctx, ruleset_, registry_, stats_);
  return eval.eval_rules(ruleset_.rules);
}

// --------------------------------------------------------- batch compilation
//
// The batch entry point (DESIGN.md §11) shares two kinds of work across a
// decide_many batch while staying observably identical to serial
// evaluation:
//
//   * Static prefilters.  Each rule's proto / host / port constraints are
//     compiled once into flat CIDR lists (tables resolved up front), and
//     each *distinct* 5-tuple in the batch probes them once to produce its
//     candidate-rule list.  Rules a flow can never match are skipped
//     without being visited; rules that cannot be compiled (a table the
//     ruleset does not define) stay "dynamic" and run through the
//     interpreted matcher so PolicyError surfaces exactly where serial
//     evaluation would throw it.
//
//   * Hoisted `with` predicates.  Calls to flow-invariant functions (every
//     builtin except `allowed`) are memoized per (call site, resolved
//     argument values): the first flow to reach the call runs it, later
//     flows with equal arguments — e.g. a batch sharing one attestation —
//     reuse the verdict.  Memoization is lazy, so a call serial evaluation
//     would never reach (earlier predicate failed, quick short-circuit) is
//     never run here either.

namespace {

/// Collision-proof memo key: call-site id plus length-prefixed argument
/// renderings (argument strings are untrusted response bytes, so plain
/// joining would be forgeable).
[[nodiscard]] std::string memo_key(std::uint32_t site,
                                   const std::vector<Value>& args) {
  std::string key = std::to_string(site);
  for (const Value& value : args) {
    key += '\x1f';
    if (std::holds_alternative<Undefined>(value)) {
      key += 'u';
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      key += 's';
      key += std::to_string(s->size());
      key += ':';
      key += *s;
    } else {
      const auto& list = std::get<std::vector<std::string>>(value);
      key += 'l';
      for (const std::string& item : list) {
        key += std::to_string(item.size());
        key += ':';
        key += item;
      }
    }
  }
  return key;
}

/// Expression whose value cannot depend on the flow under evaluation:
/// literals, list literals, and user-defined dictionary lookups (@src,
/// @dst and @flow are per-flow).
[[nodiscard]] bool expr_flow_independent(const Expr& expr) {
  if (const auto* index = std::get_if<DictIndexExpr>(&expr)) {
    return index->dict != "src" && index->dict != "dst" &&
           index->dict != "flow";
  }
  return true;  // LiteralExpr / ListExpr
}

}  // namespace

void PolicyEngine::compile() {
  const auto compile_endpoint = [this](const Endpoint& endpoint) {
    CompiledEndpoint out;
    out.negated = endpoint.negated;
    if (endpoint.port) {
      out.has_port = true;
      out.port_lo = endpoint.port->low;
      out.port_hi = endpoint.port->high;
    }
    // Resolve the host spec to a flat CIDR list.  Any reference to a table
    // the ruleset does not define makes the endpoint dynamic: serial
    // evaluation throws PolicyError when (and only when) a flow's scan
    // visits that spec, and only the interpreted path reproduces that.
    const auto add_table = [&](const std::string& name) {
      const auto it = ruleset_.tables.find(name);
      if (it == ruleset_.tables.end()) {
        out.dynamic = true;
        return;
      }
      out.cidrs.insert(out.cidrs.end(), it->second.begin(), it->second.end());
    };
    struct Visitor {
      CompiledEndpoint& out;
      const decltype(add_table)& table;
      void operator()(const AnyHost&) const { out.any = true; }
      void operator()(const CidrHost& h) const {
        out.any = false;
        out.cidrs.push_back(h.cidr);
      }
      void operator()(const TableHost& h) const {
        out.any = false;
        table(h.table);
      }
      void operator()(const ListHost& h) const {
        out.any = false;
        for (const auto& item : h.items) {
          if (const auto* cidr = std::get_if<net::Cidr>(&item)) {
            out.cidrs.push_back(*cidr);
          } else {
            table(std::get<std::string>(item));
          }
        }
      }
    };
    std::visit(Visitor{out, add_table}, endpoint.host);
    return out;
  };

  compiled_.reserve(ruleset_.rules.size());
  for (const Rule& rule : ruleset_.rules) {
    CompiledRule compiled;
    compiled.rule = &rule;
    compiled.proto = rule.proto;
    compiled.from = compile_endpoint(rule.from);
    compiled.to = compile_endpoint(rule.to);
    compiled.withs.reserve(rule.withs.size());
    for (const FuncCall& call : rule.withs) {
      CompiledCall cc;
      cc.call = &call;
      // May be null: serial evaluation only reports an unknown function
      // when a flow actually reaches the call, so the batch path defers
      // the error to the same point.
      cc.fn = registry_.find(call.name);
      cc.preparer = registry_.batch_preparer(call.name);
      if (cc.preparer != nullptr) has_preparers_ = true;
      cc.site = call_sites_++;
      cc.hoistable = registry_.flow_invariant(call.name);
      cc.static_args = true;
      for (const Expr& expr : call.args) {
        if (!expr_flow_independent(expr)) {
          cc.static_args = false;
          break;
        }
      }
      compiled.withs.push_back(std::move(cc));
    }
    compiled_.push_back(std::move(compiled));
  }
}

bool PolicyEngine::static_endpoint_matches(const CompiledEndpoint& endpoint,
                                           net::Ipv4Address addr,
                                           std::uint16_t port) noexcept {
  bool host_ok = endpoint.any;
  if (!host_ok) {
    for (const net::Cidr& cidr : endpoint.cidrs) {
      if (cidr.contains(addr)) {
        host_ok = true;
        break;
      }
    }
  }
  if (endpoint.negated) host_ok = !host_ok;
  if (!host_ok) return false;
  if (endpoint.has_port && (port < endpoint.port_lo || port > endpoint.port_hi)) {
    return false;
  }
  return true;
}

std::vector<std::uint32_t> PolicyEngine::static_candidates(
    const net::FiveTuple& flow) const {
  std::vector<std::uint32_t> out;
  out.reserve(compiled_.size());
  for (std::uint32_t i = 0; i < compiled_.size(); ++i) {
    const CompiledRule& rule = compiled_[i];
    // Serial order is proto, from, to; a static mismatch at any point
    // before the first dynamic spec proves serial evaluation returns
    // false there without visiting the (possibly throwing) remainder.
    if (rule.proto && *rule.proto != flow.proto) continue;
    if (!rule.from.dynamic) {
      if (!static_endpoint_matches(rule.from, flow.src_ip, flow.src_port)) {
        continue;
      }
      if (!rule.to.dynamic &&
          !static_endpoint_matches(rule.to, flow.dst_ip, flow.dst_port)) {
        continue;
      }
    }
    out.push_back(i);
  }
  return out;
}

std::vector<Verdict> PolicyEngine::evaluate_batch(
    std::span<const FlowContext> batch) const {
  ++stats_.batches;
  // Per-batch state: the flow-key index (distinct 5-tuples probe the
  // prefilters once), the hoisted-call memo, and per-site caches of
  // flow-independent argument vectors.
  std::unordered_map<net::FiveTuple, std::uint32_t> slots;
  std::vector<std::vector<std::uint32_t>> candidate_sets;
  std::unordered_map<std::string, bool> memo;
  std::vector<std::optional<std::vector<Value>>> args_cache(call_sites_);

  // Batch-preparer pre-pass (DESIGN.md §15): before any flow is evaluated,
  // resolve the arguments of every candidate call to a function with a
  // registered preparer and hand them over in one shot (the `verify`
  // builtin batch-verifies all attestations with one multi-scalar
  // multiplication, seeding its memo).  Purely a warm-up: argument
  // resolution failures are skipped (the per-flow pass reaches the same
  // PolicyError on its own, or never reaches the call), preparer failures
  // are swallowed, and no eval-level counter moves — the stats invariants
  // against serial evaluation are untouched.
  if (has_preparers_) {
    std::map<std::string_view, std::vector<std::vector<Value>>> gathered;
    for (const FlowContext& ctx : batch) {
      const auto [slot, inserted] = slots.try_emplace(
          ctx.flow, static_cast<std::uint32_t>(candidate_sets.size()));
      if (inserted) candidate_sets.push_back(static_candidates(ctx.flow));
      const EvalContext eval(ctx, ruleset_, registry_, stats_);
      for (const std::uint32_t index : candidate_sets[slot->second]) {
        for (const CompiledCall& cc : compiled_[index].withs) {
          if (cc.preparer == nullptr) continue;
          try {
            std::vector<Value> resolved;
            resolved.reserve(cc.call->args.size());
            for (const Expr& expr : cc.call->args) {
              resolved.push_back(eval.eval_expr(expr));
            }
            gathered[cc.call->name].push_back(std::move(resolved));
          } catch (const PolicyError&) {
            // The call's arguments don't resolve for this flow; serial
            // evaluation throws if and when it actually reaches the call.
          }
        }
      }
    }
    for (const auto& [name, calls] : gathered) {
      try {
        (*registry_.batch_preparer(name))(calls);
      } catch (...) {
        // Advisory only: a failing preparer must not fail the batch.
      }
    }
  }

  const std::size_t rule_count = ruleset_.rules.size();
  std::vector<Verdict> out;
  out.reserve(batch.size());
  for (const FlowContext& ctx : batch) {
    ++stats_.evaluations;
    ++stats_.batch_flows;
    const auto [slot, inserted] = slots.try_emplace(
        ctx.flow, static_cast<std::uint32_t>(candidate_sets.size()));
    if (inserted) candidate_sets.push_back(static_candidates(ctx.flow));
    const std::vector<std::uint32_t>& candidates = candidate_sets[slot->second];

    const EvalContext eval(ctx, ruleset_, registry_, stats_);
    Verdict verdict;
    std::size_t visited = 0;
    std::size_t serial_visited = rule_count;  // quick break overwrites
    for (const std::uint32_t index : candidates) {
      ++visited;
      ++stats_.rules_scanned;
      const CompiledRule& rule = compiled_[index];

      // Dynamic endpoints re-run the interpreted matcher in serial order
      // (from, then to) so unknown-table PolicyErrors surface identically.
      if (rule.from.dynamic &&
          !eval.endpoint_matches(rule.rule->from, ctx.flow.src_ip,
                                 ctx.flow.src_port)) {
        continue;
      }
      if (rule.to.dynamic &&
          !eval.endpoint_matches(rule.rule->to, ctx.flow.dst_ip,
                                 ctx.flow.dst_port)) {
        continue;
      }
      if (rule.from.dynamic && !rule.to.dynamic &&
          !static_endpoint_matches(rule.to, ctx.flow.dst_ip,
                                   ctx.flow.dst_port)) {
        continue;
      }

      bool matched = true;
      std::vector<Value> scratch;
      for (const CompiledCall& cc : rule.withs) {
        if (cc.fn == nullptr) {
          throw PolicyError("unknown policy function '" + cc.call->name +
                            "' (line " + std::to_string(cc.call->line) + ")");
        }
        const std::vector<Value>* args;
        if (cc.static_args) {
          std::optional<std::vector<Value>>& cached = args_cache[cc.site];
          if (!cached) {
            std::vector<Value> resolved;
            resolved.reserve(cc.call->args.size());
            for (const Expr& expr : cc.call->args) {
              resolved.push_back(eval.eval_expr(expr));
            }
            cached = std::move(resolved);
          }
          args = &*cached;
        } else {
          scratch.clear();
          scratch.reserve(cc.call->args.size());
          for (const Expr& expr : cc.call->args) {
            scratch.push_back(eval.eval_expr(expr));
          }
          args = &scratch;
        }
        bool result;
        if (cc.hoistable) {
          std::string key = memo_key(cc.site, *args);
          if (const auto hit = memo.find(key); hit != memo.end()) {
            ++stats_.hoist_memo_hits;
            result = hit->second;
          } else {
            ++stats_.functions_called;
            result = (*cc.fn)(eval, *cc.call, *args);
            memo.emplace(std::move(key), result);
          }
        } else {
          ++stats_.functions_called;
          result = (*cc.fn)(eval, *cc.call, *args);
        }
        if (!result) {
          matched = false;
          break;
        }
      }
      if (!matched) continue;

      verdict.action = rule.rule->action;
      verdict.keep_state = rule.rule->keep_state;
      verdict.quick = rule.rule->quick;
      verdict.log = rule.rule->log;
      verdict.rule = rule.rule;
      if (rule.rule->quick) {
        serial_visited = index + 1;
        break;
      }
    }
    stats_.prefilter_skips += serial_visited - visited;
    out.push_back(verdict);
  }
  return out;
}

Verdict EvalContext::eval_rules(const std::vector<Rule>& rules) const {
  Verdict verdict;  // default: pass, no rule
  for (const Rule& rule : rules) {
    if (depth_ > 0) {
      ++stats_.delegated_rule_evals;
    } else {
      ++stats_.rules_scanned;
    }
    if (!rule_matches(rule)) continue;
    verdict.action = rule.action;
    verdict.keep_state = rule.keep_state;
    verdict.quick = rule.quick;
    verdict.log = rule.log;
    verdict.rule = &rule;
    if (rule.quick) break;  // quick forces this rule's execution (§3.3)
  }
  return verdict;
}

bool EvalContext::rule_matches(const Rule& rule) const {
  if (rule.proto && *rule.proto != flow_ctx_.flow.proto) return false;
  if (!endpoint_matches(rule.from, flow_ctx_.flow.src_ip,
                        flow_ctx_.flow.src_port)) {
    return false;
  }
  if (!endpoint_matches(rule.to, flow_ctx_.flow.dst_ip,
                        flow_ctx_.flow.dst_port)) {
    return false;
  }
  for (const FuncCall& call : rule.withs) {
    const PolicyFunction* fn = registry_.find(call.name);
    if (fn == nullptr) {
      throw PolicyError("unknown policy function '" + call.name + "' (line " +
                        std::to_string(call.line) + ")");
    }
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const Expr& expr : call.args) {
      args.push_back(eval_expr(expr));
    }
    ++stats_.functions_called;
    if (!(*fn)(*this, call, args)) return false;
  }
  return true;
}

bool EvalContext::endpoint_matches(const Endpoint& endpoint,
                                   net::Ipv4Address addr,
                                   std::uint16_t port) const {
  bool host_ok = host_matches(endpoint.host, addr);
  if (endpoint.negated) host_ok = !host_ok;
  if (!host_ok) return false;
  if (endpoint.port && !endpoint.port->contains(port)) return false;
  return true;
}

bool EvalContext::host_matches(const HostSpec& host,
                               net::Ipv4Address addr) const {
  struct Visitor {
    const EvalContext& ctx;
    net::Ipv4Address addr;

    bool operator()(const AnyHost&) const { return true; }
    bool operator()(const TableHost& h) const {
      const auto it = ctx.ruleset_.tables.find(h.table);
      if (it == ctx.ruleset_.tables.end()) {
        throw PolicyError("unknown table <" + h.table + ">");
      }
      for (const net::Cidr& cidr : it->second) {
        if (cidr.contains(addr)) return true;
      }
      return false;
    }
    bool operator()(const CidrHost& h) const { return h.cidr.contains(addr); }
    bool operator()(const ListHost& h) const {
      for (const auto& item : h.items) {
        if (const auto* cidr = std::get_if<net::Cidr>(&item)) {
          if (cidr->contains(addr)) return true;
        } else {
          const auto& table = std::get<std::string>(item);
          if ((*this)(TableHost{table})) return true;
        }
      }
      return false;
    }
  };
  return std::visit(Visitor{*this, addr}, host);
}

Value EvalContext::eval_expr(const Expr& expr) const {
  struct Visitor {
    const EvalContext& ctx;

    Value operator()(const DictIndexExpr& e) const { return ctx.lookup_dict(e); }
    Value operator()(const LiteralExpr& e) const { return e.value; }
    Value operator()(const ListExpr& e) const { return e.items; }
  };
  return std::visit(Visitor{*this}, expr);
}

Value EvalContext::lookup_dict(const DictIndexExpr& index) const {
  // Reserved dictionaries: @src / @dst from the ident++ responses.
  if (index.dict == "src" || index.dict == "dst") {
    const proto::ResponseDict& dict =
        index.dict == "src" ? flow_ctx_.src : flow_ctx_.dst;
    if (index.star) {
      // *@src[key]: concatenation across all sections (§3.3).
      const std::string joined = dict.concatenated(index.key);
      if (joined.empty() && !dict.contains(index.key)) return Undefined{};
      return joined;
    }
    const auto value = dict.latest(index.key);
    if (!value) return Undefined{};
    return std::string(*value);
  }
  // @flow extension: network-level facts about the flow itself.
  if (index.dict == "flow") {
    const net::FiveTuple& flow = flow_ctx_.flow;
    if (index.key == "src_ip") return flow.src_ip.to_string();
    if (index.key == "dst_ip") return flow.dst_ip.to_string();
    if (index.key == "proto") return net::to_string(flow.proto);
    if (index.key == "src_port") return std::to_string(flow.src_port);
    if (index.key == "dst_port") return std::to_string(flow.dst_port);
    if (flow_ctx_.openflow) {
      const net::TenTuple& of = *flow_ctx_.openflow;
      if (index.key == "in_port") return std::to_string(of.in_port);
      if (index.key == "src_mac") return of.src_mac.to_string();
      if (index.key == "dst_mac") return of.dst_mac.to_string();
      if (index.key == "vlan") return std::to_string(of.vlan_id);
      if (index.key == "ether_type") return std::to_string(of.ether_type);
    }
    return Undefined{};
  }
  // User-defined dictionaries (dict <pubkeys> { ... }, Fig 5/7).
  const auto dict_it = ruleset_.dicts.find(index.dict);
  if (dict_it == ruleset_.dicts.end()) {
    throw PolicyError("unknown dictionary '@" + index.dict + "'");
  }
  const auto value_it = dict_it->second.find(index.key);
  if (value_it == dict_it->second.end()) return Undefined{};
  return value_it->second;
}

bool is_flow_key(std::string_view key) noexcept {
  // Must stay in sync with lookup_dict's @flow branch above: the first
  // five are always available, the rest are OpenFlow-only (Undefined when
  // the context carries no TenTuple).
  return key == "src_ip" || key == "dst_ip" || key == "proto" ||
         key == "src_port" || key == "dst_port" || key == "in_port" ||
         key == "src_mac" || key == "dst_mac" || key == "vlan" ||
         key == "ether_type";
}

}  // namespace identxx::pf
