#pragma once

// Deterministic pseudo-random generator (SplitMix64) used by the traffic
// generators, property tests and crypto nonce derivation in tests.
//
// Determinism is a core requirement: the simulator must replay identically
// for a given seed so that experiments are reproducible.

#include <cstdint>

namespace identxx::util {

/// SplitMix64: tiny, fast, full-period 2^64 generator.  Not for production
/// key material; the crypto module derives nonces from message hashes
/// (deterministic signing) instead.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound).  `bound` must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift rejection-free mapping; slight bias is acceptable for
    // workload generation.
    __extension__ typedef unsigned __int128 u128_t;
    const auto hi = static_cast<u128_t>(next()) * bound;
    return static_cast<std::uint64_t>(hi >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace identxx::util
