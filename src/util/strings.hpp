#pragma once

// Small string toolkit shared by the parsers (PF+=2, ident++ wire format,
// daemon configuration).  All functions are pure and allocation-conscious:
// views in, owned strings out only where the caller needs ownership.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace identxx::util {

/// Remove leading and trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Remove leading whitespace only.
[[nodiscard]] std::string_view trim_left(std::string_view s) noexcept;

/// Remove trailing whitespace only.
[[nodiscard]] std::string_view trim_right(std::string_view s) noexcept;

/// Split `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Split `s` on runs of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Split into at most two parts at the first occurrence of `sep`.
/// Returns {s, nullopt} when `sep` is absent.
[[nodiscard]] std::pair<std::string_view, std::optional<std::string_view>>
split_once(std::string_view s, char sep) noexcept;

/// Split `s` into lines.  Accepts "\n" and "\r\n" terminators; the final
/// line need not be terminated.
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view s);

/// Join `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string_view>& parts,
                               std::string_view sep);

/// ASCII-only case conversion.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Parse an unsigned decimal integer; rejects empty input, signs, overflow
/// and trailing garbage.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// Parse a signed decimal integer.
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s) noexcept;

/// True when every character satisfies isdigit.
[[nodiscard]] bool all_digits(std::string_view s) noexcept;

/// Replace every occurrence of `from` in `s` with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

}  // namespace identxx::util
