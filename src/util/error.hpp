#pragma once

// Error hierarchy for the identxx libraries.
//
// Following the C++ Core Guidelines (E.2, E.14) we use exceptions for error
// reporting and define purpose-specific types so callers can discriminate
// parse errors from protocol errors from policy errors.

#include <stdexcept>
#include <string>

namespace identxx {

/// Root of all errors thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual input: config files, policy files, wire messages.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line = 0)
      : Error(line == 0 ? what : what + " (line " + std::to_string(line) + ")"),
        line_(line) {}

  /// 1-based line number of the offending input, 0 if unknown.
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Violation of a protocol contract (ident++ wire format, OpenFlow channel).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Errors raised while evaluating PF+=2 policy (bad function arity, unknown
/// dictionary, recursive `allowed` beyond depth limit, ...).
class PolicyError : public Error {
 public:
  using Error::Error;
};

/// Cryptographic failures that are not mere verification mismatches
/// (malformed keys, out-of-range scalars).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// Simulator misuse (unknown node ids, negative delays, ...).
class SimError : public Error {
 public:
  using Error::Error;
};

}  // namespace identxx
