#include "util/logging.hpp"

#include <iostream>

namespace identxx::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  const std::scoped_lock lock(mutex_);
  std::cerr << '[' << to_string(level) << "] " << component << ": " << msg
            << '\n';
  ++lines_;
}

}  // namespace identxx::util
