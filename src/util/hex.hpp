#pragma once

// Hex encoding/decoding used by the crypto module for key and signature
// serialization in configuration files.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace identxx::util {

/// Lowercase hex encoding of `bytes`.
[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Decode hex (either case).  Returns nullopt on odd length or non-hex
/// characters.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> hex_decode(
    std::string_view hex);

}  // namespace identxx::util
