#include "util/hex.hpp"

namespace identxx::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

[[nodiscard]] int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace identxx::util
