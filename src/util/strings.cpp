#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

namespace identxx::util {

namespace {

[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

}  // namespace

std::string_view trim(std::string_view s) noexcept {
  return trim_right(trim_left(s));
}

std::string_view trim_left(std::string_view s) noexcept {
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

std::string_view trim_right(std::string_view s) noexcept {
  std::size_t n = s.size();
  while (n > 0 && is_space(s[n - 1])) --n;
  return s.substr(0, n);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::pair<std::string_view, std::optional<std::string_view>> split_once(
    std::string_view s, char sep) noexcept {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {s, std::nullopt};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      std::size_t end = i;
      if (end > start && s[end - 1] == '\r') --end;
      out.push_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) {
    std::string_view last = s.substr(start);
    if (!last.empty() && last.back() == '\r') last.remove_suffix(1);
    out.push_back(last);
  }
  return out;
}

namespace {

template <typename Part>
std::string join_impl(const std::vector<Part>& parts, std::string_view sep) {
  std::string out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}

}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s.front() == '-' || s.front() == '+') {
    negative = s.front() == '-';
    s.remove_prefix(1);
  }
  const auto magnitude = parse_u64(s);
  if (!magnitude) return std::nullopt;
  if (negative) {
    // |INT64_MIN| == 2^63.
    if (*magnitude > static_cast<std::uint64_t>(
                         std::numeric_limits<std::int64_t>::max()) +
                         1) {
      return std::nullopt;
    }
    return static_cast<std::int64_t>(0) - static_cast<std::int64_t>(*magnitude - 1) - 1;
  }
  if (*magnitude >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(*magnitude);
}

bool all_digits(std::string_view s) noexcept {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

}  // namespace identxx::util
