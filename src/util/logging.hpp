#pragma once

// Minimal leveled logger.  The simulator and controller use it for event
// tracing; tests silence it by default.  Thread-safe for concurrent writers.

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace identxx::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Global logger configuration.  Default level is kWarn so tests stay quiet.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_ && level_ != LogLevel::kOff;
  }

  /// Write one formatted line: "[LEVEL] component: message".
  void write(LogLevel level, std::string_view component, std::string_view msg);

  /// Number of lines emitted since construction (observable in tests).
  [[nodiscard]] std::uint64_t lines_written() const noexcept { return lines_; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
  std::uint64_t lines_ = 0;
};

/// Stream-style helper: LOG_AT(kInfo, "controller") << "flow allowed";
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().write(level_, component_, stream_.str());
    }
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace identxx::util

#define IDXX_LOG(level, component) \
  ::identxx::util::LogLine(::identxx::util::LogLevel::level, component)
