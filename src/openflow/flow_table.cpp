#include "openflow/flow_table.hpp"

#include <algorithm>

namespace identxx::openflow {

std::string to_string(const Action& action) {
  struct Visitor {
    std::string operator()(const OutputAction& a) const {
      std::string out = "output(";
      for (std::size_t i = 0; i < a.ports.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(a.ports[i]);
      }
      return out + ")";
    }
    std::string operator()(const FloodAction&) const { return "flood"; }
    std::string operator()(const DropAction&) const { return "drop"; }
    std::string operator()(const ToControllerAction&) const {
      return "to-controller";
    }
  };
  return std::visit(Visitor{}, action);
}

net::TenTuple FlowTable::key_of(const FlowMatch& m) noexcept {
  net::TenTuple t;
  t.in_port = m.in_port;
  t.src_mac = m.src_mac;
  t.dst_mac = m.dst_mac;
  t.ether_type = m.ether_type;
  t.vlan_id = m.vlan_id;
  t.src_ip = m.src_ip;
  t.dst_ip = m.dst_ip;
  t.proto = m.proto;
  t.src_port = m.src_port;
  t.dst_port = m.dst_port;
  return t;
}

bool FlowTable::expired(const FlowEntry& e, sim::SimTime now) const noexcept {
  if (e.hard_timeout > 0 && now >= e.created_at + e.hard_timeout) return true;
  if (e.idle_timeout > 0 && now >= e.last_used_at + e.idle_timeout) return true;
  return false;
}

void FlowTable::notify_removal(const FlowEntry& entry, RemovalReason reason) {
  ++stats_.removals;
  if (removal_listener_) removal_listener_(entry, reason);
}

void FlowTable::evict_lru() {
  // Find the least-recently-used entry across both stores.
  auto lru_exact = exact_.end();
  for (auto it = exact_.begin(); it != exact_.end(); ++it) {
    if (lru_exact == exact_.end() ||
        it->second.last_used_at < lru_exact->second.last_used_at) {
      lru_exact = it;
    }
  }
  auto lru_wild = wild_.end();
  for (auto it = wild_.begin(); it != wild_.end(); ++it) {
    if (lru_wild == wild_.end() || it->last_used_at < lru_wild->last_used_at) {
      lru_wild = it;
    }
  }
  const bool pick_exact =
      lru_exact != exact_.end() &&
      (lru_wild == wild_.end() ||
       lru_exact->second.last_used_at <= lru_wild->last_used_at);
  if (pick_exact) {
    const FlowEntry victim = lru_exact->second;
    exact_.erase(lru_exact);
    notify_removal(victim, RemovalReason::kEvicted);
  } else if (lru_wild != wild_.end()) {
    const FlowEntry victim = *lru_wild;
    wild_.erase(lru_wild);
    notify_removal(victim, RemovalReason::kEvicted);
  }
}

void FlowTable::insert(FlowEntry entry, sim::SimTime now) {
  entry.created_at = now;
  entry.last_used_at = now;
  ++stats_.inserts;
  if (entry.match.is_exact()) {
    const auto key = key_of(entry.match);
    const auto it = exact_.find(key);
    if (it != exact_.end()) {
      it->second = entry;  // overwrite, not a new entry
      return;
    }
    if (size() >= capacity_) evict_lru();
    exact_.emplace(key, std::move(entry));
    return;
  }
  // Overwrite an existing wildcard entry with identical match + priority.
  for (auto& existing : wild_) {
    if (existing.match == entry.match && existing.priority == entry.priority) {
      existing = entry;
      return;
    }
  }
  if (size() >= capacity_) evict_lru();
  // Keep sorted by priority descending; stable w.r.t. insertion order.
  const auto pos = std::upper_bound(
      wild_.begin(), wild_.end(), entry,
      [](const FlowEntry& a, const FlowEntry& b) {
        return a.priority > b.priority;
      });
  wild_.insert(pos, std::move(entry));
}

const FlowEntry* FlowTable::lookup(const net::TenTuple& tuple, sim::SimTime now,
                                   std::size_t packet_bytes) {
  ++stats_.lookups;
  // Exact path first (it can only be outranked by a wildcard entry with
  // strictly higher priority — OpenFlow 1.0 gives exact entries top
  // priority, which we mirror by checking them first).
  const auto it = exact_.find(tuple);
  if (it != exact_.end()) {
    if (expired(it->second, now)) {
      const FlowEntry victim = it->second;
      exact_.erase(it);
      notify_removal(victim,
                     victim.hard_timeout > 0 &&
                             now >= victim.created_at + victim.hard_timeout
                         ? RemovalReason::kHardTimeout
                         : RemovalReason::kIdleTimeout);
    } else {
      FlowEntry& entry = it->second;
      entry.last_used_at = now;
      ++entry.packet_count;
      entry.byte_count += packet_bytes;
      ++stats_.hits;
      return &entry;
    }
  }
  for (auto wit = wild_.begin(); wit != wild_.end();) {
    if (expired(*wit, now)) {
      const FlowEntry victim = *wit;
      wit = wild_.erase(wit);
      notify_removal(victim,
                     victim.hard_timeout > 0 &&
                             now >= victim.created_at + victim.hard_timeout
                         ? RemovalReason::kHardTimeout
                         : RemovalReason::kIdleTimeout);
      continue;
    }
    if (wit->match.matches(tuple)) {
      wit->last_used_at = now;
      ++wit->packet_count;
      wit->byte_count += packet_bytes;
      ++stats_.hits;
      return &*wit;
    }
    ++wit;
  }
  ++stats_.misses;
  return nullptr;
}

std::size_t FlowTable::remove_if(
    const std::function<bool(const FlowEntry&)>& pred) {
  std::size_t removed = 0;
  for (auto it = exact_.begin(); it != exact_.end();) {
    if (pred(it->second)) {
      const FlowEntry victim = it->second;
      it = exact_.erase(it);
      notify_removal(victim, RemovalReason::kDeleted);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = wild_.begin(); it != wild_.end();) {
    if (pred(*it)) {
      const FlowEntry victim = *it;
      it = wild_.erase(it);
      notify_removal(victim, RemovalReason::kDeleted);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t FlowTable::expire(sim::SimTime now) {
  std::size_t removed = 0;
  for (auto it = exact_.begin(); it != exact_.end();) {
    if (expired(it->second, now)) {
      const FlowEntry victim = it->second;
      it = exact_.erase(it);
      notify_removal(victim,
                     victim.hard_timeout > 0 &&
                             now >= victim.created_at + victim.hard_timeout
                         ? RemovalReason::kHardTimeout
                         : RemovalReason::kIdleTimeout);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = wild_.begin(); it != wild_.end();) {
    if (expired(*it, now)) {
      const FlowEntry victim = *it;
      it = wild_.erase(it);
      notify_removal(victim,
                     victim.hard_timeout > 0 &&
                             now >= victim.created_at + victim.hard_timeout
                         ? RemovalReason::kHardTimeout
                         : RemovalReason::kIdleTimeout);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void FlowTable::clear() {
  for (const auto& [key, entry] : exact_) {
    notify_removal(entry, RemovalReason::kDeleted);
  }
  for (const auto& entry : wild_) {
    notify_removal(entry, RemovalReason::kDeleted);
  }
  exact_.clear();
  wild_.clear();
}

std::vector<FlowEntry> FlowTable::entries() const {
  std::vector<FlowEntry> out;
  out.reserve(size());
  for (const auto& [key, entry] : exact_) out.push_back(entry);
  for (const auto& entry : wild_) out.push_back(entry);
  return out;
}

}  // namespace identxx::openflow
