#include "openflow/flow_table.hpp"

#include <algorithm>

namespace identxx::openflow {

namespace {

/// Effective prefix length for shape identity: irrelevant (0) when the
/// field is fully wildcarded, clamped to [0,32] otherwise.
[[nodiscard]] unsigned norm_prefix(Wildcard set, Wildcard bit,
                                   unsigned prefix) noexcept {
  if (has_wildcard(set, bit)) return 0;
  return prefix > 32 ? 32 : prefix;
}

/// Effective port mask for shape identity: irrelevant (full) when the
/// field is fully wildcarded.
[[nodiscard]] std::uint16_t norm_port_mask(Wildcard set, Wildcard bit,
                                           std::uint16_t mask) noexcept {
  return has_wildcard(set, bit) ? 0xffff : mask;
}

/// OpenFlow overwrite semantics: replacing an entry with an equivalent
/// match at the same priority keeps its counters and creation time.
void overwrite(FlowEntry& slot, FlowEntry fresh) noexcept {
  fresh.packet_count = slot.packet_count;
  fresh.byte_count = slot.byte_count;
  fresh.created_at = slot.created_at;
  slot = std::move(fresh);
}

}  // namespace

std::string to_string(const Action& action) {
  struct Visitor {
    std::string operator()(const OutputAction& a) const {
      std::string out = "output(";
      for (std::size_t i = 0; i < a.ports.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(a.ports[i]);
      }
      return out + ")";
    }
    std::string operator()(const FloodAction&) const { return "flood"; }
    std::string operator()(const DropAction&) const { return "drop"; }
    std::string operator()(const ToControllerAction&) const {
      return "to-controller";
    }
  };
  return std::visit(Visitor{}, action);
}

bool FlowTable::shape_fits(const Shape& shape, const FlowMatch& match) noexcept {
  return shape.wildcards == match.wildcards &&
         shape.src_prefix ==
             norm_prefix(match.wildcards, Wildcard::kSrcIp, match.src_ip_prefix) &&
         shape.dst_prefix ==
             norm_prefix(match.wildcards, Wildcard::kDstIp, match.dst_ip_prefix) &&
         shape.src_port_mask == norm_port_mask(match.wildcards,
                                               Wildcard::kSrcPort,
                                               match.src_port_mask) &&
         shape.dst_port_mask == norm_port_mask(match.wildcards,
                                               Wildcard::kDstPort,
                                               match.dst_port_mask);
}

bool FlowTable::expired(const FlowEntry& e, sim::SimTime now) const noexcept {
  if (e.hard_timeout > 0 && now >= e.created_at + e.hard_timeout) return true;
  if (e.idle_timeout > 0 && now >= e.last_used_at + e.idle_timeout) return true;
  return false;
}

RemovalReason FlowTable::expiry_reason(const FlowEntry& e,
                                       sim::SimTime now) const noexcept {
  return e.hard_timeout > 0 && now >= e.created_at + e.hard_timeout
             ? RemovalReason::kHardTimeout
             : RemovalReason::kIdleTimeout;
}

void FlowTable::cookie_added(std::uint64_t cookie) noexcept {
  if (cookie != 0) ++cookie_counts_[cookie];
}

void FlowTable::cookie_removed(std::uint64_t cookie) noexcept {
  if (cookie == 0) return;
  const auto it = cookie_counts_.find(cookie);
  if (it == cookie_counts_.end()) return;
  if (--it->second == 0) cookie_counts_.erase(it);
}

void FlowTable::notify_removal(const FlowEntry& entry, RemovalReason reason) {
  ++stats_.removals;
  if (removal_listener_) removal_listener_(entry, reason);
}

void FlowTable::erase_stored(Iter it, RemovalReason reason) {
  const FlowEntry entry = std::move(*it);
  cookie_removed(entry.cookie);
  if (entry.match.is_exact()) {
    exact_.erase(entry.match.key());
  } else if (const auto bit = wild_.find(entry.priority); bit != wild_.end()) {
    Bucket& bucket = bit->second;
    for (std::size_t i = 0; i < bucket.shapes.size(); ++i) {
      if (!shape_fits(bucket.shapes[i], entry.match)) continue;
      bucket.shapes[i].by_key.erase(entry.match.key());
      if (bucket.shapes[i].by_key.empty()) {
        bucket.shapes.erase(bucket.shapes.begin() +
                            static_cast<std::ptrdiff_t>(i));
      }
      break;
    }
    if (bucket.shapes.empty()) wild_.erase(bit);
  }
  order_.erase(it);
  notify_removal(entry, reason);
}

void FlowTable::evict_lru() {
  if (order_.empty()) return;
  erase_stored(std::prev(order_.end()), RemovalReason::kEvicted);
}

const FlowEntry* FlowTable::touch(Iter it, sim::SimTime now,
                                  std::size_t packet_bytes) {
  it->last_used_at = now;
  ++it->packet_count;
  it->byte_count += packet_bytes;
  order_.splice(order_.begin(), order_, it);
  ++stats_.hits;
  return &*it;
}

void FlowTable::insert(FlowEntry entry, sim::SimTime now) {
  entry.created_at = now;
  entry.last_used_at = now;
  ++stats_.inserts;
  const net::TenTuple key = entry.match.key();

  if (entry.match.is_exact()) {
    if (const auto it = exact_.find(key); it != exact_.end()) {
      // An expired-but-unswept entry is replaced, not refreshed: its
      // counters belong to a rule that already ended.
      if (expired(*it->second, now)) {
        erase_stored(it->second, expiry_reason(*it->second, now));
      } else {
        if (it->second->cookie != entry.cookie) {
          // A cookie-changing overwrite deletes the old rule as far as
          // its owner can tell — notify, or the controller's cookie map
          // never learns the old cookie left this table.
          cookie_removed(it->second->cookie);
          cookie_added(entry.cookie);
          notify_removal(*it->second, RemovalReason::kDeleted);
        }
        overwrite(*it->second, std::move(entry));
        order_.splice(order_.begin(), order_, it->second);  // refresh recency
        return;
      }
    }
    if (size() >= capacity_) evict_lru();
    cookie_added(entry.cookie);
    order_.push_front(std::move(entry));
    exact_.emplace(key, order_.begin());
    return;
  }

  // Overwrite an existing wildcard entry covering the same packets at the
  // same priority.
  if (const auto bit = wild_.find(entry.priority); bit != wild_.end()) {
    for (Shape& shape : bit->second.shapes) {
      if (!shape_fits(shape, entry.match)) continue;
      if (const auto it = shape.by_key.find(key); it != shape.by_key.end()) {
        if (expired(*it->second, now)) {
          erase_stored(it->second, expiry_reason(*it->second, now));
          break;  // insert fresh below
        }
        if (it->second->cookie != entry.cookie) {
          cookie_removed(it->second->cookie);
          cookie_added(entry.cookie);
          notify_removal(*it->second, RemovalReason::kDeleted);
        }
        overwrite(*it->second, std::move(entry));
        order_.splice(order_.begin(), order_, it->second);
        return;
      }
      break;  // at most one shape fits
    }
  }

  if (size() >= capacity_) evict_lru();  // may prune shapes/buckets
  cookie_added(entry.cookie);
  order_.push_front(std::move(entry));
  const FlowMatch& match = order_.front().match;
  Bucket& bucket = wild_[order_.front().priority];
  Shape* shape = nullptr;
  for (Shape& candidate : bucket.shapes) {
    if (shape_fits(candidate, match)) {
      shape = &candidate;
      break;
    }
  }
  if (shape == nullptr) {
    bucket.shapes.push_back(Shape{
        match.wildcards,
        norm_prefix(match.wildcards, Wildcard::kSrcIp, match.src_ip_prefix),
        norm_prefix(match.wildcards, Wildcard::kDstIp, match.dst_ip_prefix),
        norm_port_mask(match.wildcards, Wildcard::kSrcPort, match.src_port_mask),
        norm_port_mask(match.wildcards, Wildcard::kDstPort, match.dst_port_mask),
        {}});
    shape = &bucket.shapes.back();
  }
  shape->by_key.emplace(key, order_.begin());
}

const FlowEntry* FlowTable::lookup(const net::TenTuple& tuple, sim::SimTime now,
                                   std::size_t packet_bytes) {
  ++stats_.lookups;

  // Exact candidate first; it wins unless a wildcard entry of *strictly*
  // higher priority also matches.  (The seed returned the exact hit
  // unconditionally, shadowing high-priority wildcard drop/quarantine
  // rules — the wildcard-shadowing regression in tests/openflow_test.cpp.)
  Iter exact_hit = order_.end();
  if (const auto it = exact_.find(tuple); it != exact_.end()) {
    if (expired(*it->second, now)) {
      erase_stored(it->second, expiry_reason(*it->second, now));
    } else {
      exact_hit = it->second;
    }
  }
  const bool have_exact = exact_hit != order_.end();

  auto bit = wild_.begin();
  while (bit != wild_.end()) {
    const std::uint16_t bucket_priority = bit->first;
    if (have_exact && bucket_priority <= exact_hit->priority) break;
    Bucket& bucket = bit->second;
    Iter matched = order_.end();
    Iter dead[2];
    std::size_t dead_count = 0;
    std::vector<Iter> dead_overflow;
    for (Shape& shape : bucket.shapes) {
      const auto kit = shape.by_key.find(
          project_tuple(tuple, shape.wildcards, shape.src_prefix,
                        shape.dst_prefix, shape.src_port_mask,
                        shape.dst_port_mask));
      if (kit == shape.by_key.end()) continue;
      if (expired(*kit->second, now)) {
        if (dead_count < 2) {
          dead[dead_count++] = kit->second;
        } else {
          dead_overflow.push_back(kit->second);
        }
        continue;
      }
      matched = kit->second;
      break;
    }
    // Remove expired entries only after the shape scan: erase_stored may
    // prune shapes (and this bucket, and even rebalance wild_), which
    // would invalidate the references the scan holds.
    for (std::size_t i = 0; i < dead_count; ++i) {
      erase_stored(dead[i], expiry_reason(*dead[i], now));
    }
    for (const Iter it : dead_overflow) {
      erase_stored(it, expiry_reason(*it, now));
    }
    if (matched != order_.end()) return touch(matched, now, packet_bytes);
    // Re-seek: the bucket (or others) may have been erased above.
    bit = wild_.upper_bound(bucket_priority);
  }

  if (have_exact) return touch(exact_hit, now, packet_bytes);
  ++stats_.misses;
  return nullptr;
}

const FlowEntry* FlowTable::find(const FlowMatch& match, std::uint16_t priority,
                                 sim::SimTime now) const {
  const net::TenTuple key = match.key();
  const FlowEntry* entry = nullptr;
  if (match.is_exact()) {
    if (const auto it = exact_.find(key);
        it != exact_.end() && it->second->priority == priority) {
      entry = &*it->second;
    }
  } else if (const auto bit = wild_.find(priority); bit != wild_.end()) {
    for (const Shape& shape : bit->second.shapes) {
      if (!shape_fits(shape, match)) continue;
      if (const auto kit = shape.by_key.find(key); kit != shape.by_key.end()) {
        entry = &*kit->second;
      }
      break;
    }
  }
  // An expired-but-unswept entry is dead state, not a live rule.
  return entry != nullptr && !expired(*entry, now) ? entry : nullptr;
}

std::size_t FlowTable::remove_if(
    const std::function<bool(const FlowEntry&)>& pred) {
  std::size_t removed = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    const auto next = std::next(it);
    if (pred(*it)) {
      erase_stored(it, RemovalReason::kDeleted);
      ++removed;
    }
    it = next;
  }
  return removed;
}

std::size_t FlowTable::expire(sim::SimTime now) {
  std::size_t removed = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    const auto next = std::next(it);
    if (expired(*it, now)) {
      erase_stored(it, expiry_reason(*it, now));
      ++removed;
    }
    it = next;
  }
  return removed;
}

void FlowTable::clear() {
  for (const FlowEntry& entry : order_) {
    notify_removal(entry, RemovalReason::kDeleted);
  }
  order_.clear();
  exact_.clear();
  wild_.clear();
  cookie_counts_.clear();
}

std::vector<FlowEntry> FlowTable::entries() const {
  return {order_.begin(), order_.end()};
}

}  // namespace identxx::openflow
