#pragma once

// Flow-table actions (§3.1): drop, forward on specific port(s), flood, or
// punt to the controller.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace identxx::openflow {

/// Forward out of one or more specific ports.
struct OutputAction {
  std::vector<std::uint16_t> ports;
  [[nodiscard]] bool operator==(const OutputAction&) const noexcept = default;
};

/// Forward out of every port except the ingress port.
struct FloodAction {
  [[nodiscard]] bool operator==(const FloodAction&) const noexcept = default;
};

/// Discard the packet.
struct DropAction {
  [[nodiscard]] bool operator==(const DropAction&) const noexcept = default;
};

/// Encapsulate and send to the OpenFlow controller (table-miss behaviour,
/// or an explicit punt rule).
struct ToControllerAction {
  [[nodiscard]] bool operator==(const ToControllerAction&) const noexcept = default;
};

using Action =
    std::variant<OutputAction, FloodAction, DropAction, ToControllerAction>;

[[nodiscard]] std::string to_string(const Action& action);

}  // namespace identxx::openflow
