#pragma once

// OpenFlow 1.0 wire format (the protocol of [12], which the paper's
// controller speaks to its switches).
//
// The simulator's control channel passes structured messages for speed,
// but a controller that claims OpenFlow compatibility must produce and
// consume the real encoding.  This module implements the OpenFlow 1.0
// messages the ident++ controller uses — PACKET_IN, PACKET_OUT, FLOW_MOD,
// FLOW_REMOVED — with exact struct layouts (big-endian, ofp_match of 40
// bytes, ofp_action_output, standard wildcard bit encoding including the
// 6-bit CIDR fields for nw_src/nw_dst).
//
// `WireCodec` adapts between these buffers and the in-memory types
// (openflow::PacketIn, FlowEntry, ...); tests drive a switch-controller
// exchange through the byte encoding to prove fidelity.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "openflow/flow_table.hpp"
#include "openflow/switch.hpp"

namespace identxx::openflow::wire {

constexpr std::uint8_t kVersion = 0x01;

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kFeaturesRequest = 5,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
};

/// ofp_header: version(1) type(1) length(2) xid(4).
struct Header {
  std::uint8_t version = kVersion;
  MsgType type = MsgType::kHello;
  std::uint16_t length = 8;
  std::uint32_t xid = 0;
};

// OpenFlow 1.0 wildcard bits (ofp_flow_wildcards).
constexpr std::uint32_t kWildcardInPort = 1u << 0;
constexpr std::uint32_t kWildcardDlVlan = 1u << 1;
constexpr std::uint32_t kWildcardDlSrc = 1u << 2;
constexpr std::uint32_t kWildcardDlDst = 1u << 3;
constexpr std::uint32_t kWildcardDlType = 1u << 4;
constexpr std::uint32_t kWildcardNwProto = 1u << 5;
constexpr std::uint32_t kWildcardTpSrc = 1u << 6;
constexpr std::uint32_t kWildcardTpDst = 1u << 7;
constexpr std::uint32_t kWildcardNwSrcShift = 8;   // 6 bits: /32-n
constexpr std::uint32_t kWildcardNwDstShift = 14;  // 6 bits
constexpr std::uint32_t kWildcardDlVlanPcp = 1u << 20;
constexpr std::uint32_t kWildcardNwTos = 1u << 21;

// Special port numbers (ofp_port).
constexpr std::uint16_t kPortFlood = 0xfffb;
constexpr std::uint16_t kPortController = 0xfffd;
constexpr std::uint16_t kPortNone = 0xffff;

/// Flow-mod commands (subset).
enum class FlowModCommand : std::uint16_t { kAdd = 0, kDelete = 3 };

/// Reasons (ofp_packet_in_reason / ofp_flow_removed_reason).
enum class PacketInReason : std::uint8_t { kNoMatch = 0, kAction = 1 };
enum class FlowRemovedReason : std::uint8_t {
  kIdleTimeout = 0,
  kHardTimeout = 1,
  kDelete = 2,
};

// ---- encoders ----

/// PACKET_IN carrying the full frame (buffer_id = -1, reason NO_MATCH).
[[nodiscard]] std::vector<std::uint8_t> encode_packet_in(
    const PacketIn& msg, std::uint32_t xid);

/// FLOW_MOD ADD for `entry` (timeouts rounded up to whole seconds as the
/// wire field is uint16 seconds).
[[nodiscard]] std::vector<std::uint8_t> encode_flow_mod(
    const FlowEntry& entry, std::uint32_t xid,
    FlowModCommand command = FlowModCommand::kAdd);

/// PACKET_OUT applying `action` to the inlined frame.
[[nodiscard]] std::vector<std::uint8_t> encode_packet_out(
    const net::Packet& packet, const Action& action, std::uint16_t in_port,
    std::uint32_t xid);

/// FLOW_REMOVED for an expired/evicted entry.
[[nodiscard]] std::vector<std::uint8_t> encode_flow_removed(
    const FlowEntry& entry, FlowRemovedReason reason, std::uint32_t xid,
    sim::SimTime now);

// ---- decoders (nullopt on malformed/truncated/foreign input) ----

[[nodiscard]] std::optional<Header> peek_header(
    std::span<const std::uint8_t> bytes);

struct DecodedPacketIn {
  std::uint32_t xid = 0;
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  net::Packet packet;
};
[[nodiscard]] std::optional<DecodedPacketIn> decode_packet_in(
    std::span<const std::uint8_t> bytes);

struct DecodedFlowMod {
  std::uint32_t xid = 0;
  FlowModCommand command = FlowModCommand::kAdd;
  FlowEntry entry;  ///< timeouts in SimTime (converted back from seconds)
};
[[nodiscard]] std::optional<DecodedFlowMod> decode_flow_mod(
    std::span<const std::uint8_t> bytes);

struct DecodedPacketOut {
  std::uint32_t xid = 0;
  std::uint16_t in_port = 0;
  Action action = DropAction{};  ///< empty action list decodes as drop
  net::Packet packet;
};
[[nodiscard]] std::optional<DecodedPacketOut> decode_packet_out(
    std::span<const std::uint8_t> bytes);

struct DecodedFlowRemoved {
  std::uint32_t xid = 0;
  FlowRemovedReason reason = FlowRemovedReason::kIdleTimeout;
  FlowMatch match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};
[[nodiscard]] std::optional<DecodedFlowRemoved> decode_flow_removed(
    std::span<const std::uint8_t> bytes);

/// Can OpenFlow 1.0 express this match exactly?  ofp_match carries no
/// transport-port masks, so the aggregated port-block entries
/// (DESIGN.md §8.5) are not representable.  encode_match narrows a
/// partially-masked port to the block's base value — sound (packets the
/// narrowed entry no longer matches miss the table and punt to the
/// controller for a fresh per-flow decision) but it forfeits the
/// aggregation, so a bridge to a real OpenFlow 1.0 switch should check
/// this predicate and install per-flow entries instead.
[[nodiscard]] bool of10_representable(const FlowMatch& match) noexcept;

/// Match <-> 40-byte ofp_match conversion (exposed for tests).
void encode_match(const FlowMatch& match, std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<FlowMatch> decode_match(
    std::span<const std::uint8_t> bytes);

}  // namespace identxx::openflow::wire
