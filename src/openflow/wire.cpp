#include "openflow/wire.hpp"

#include <cstring>

namespace identxx::openflow::wire {

namespace {

constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kMatchSize = 40;
constexpr std::uint32_t kNoBuffer = 0xffffffff;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_mac(std::vector<std::uint8_t>& out, net::MacAddress mac) {
  for (int shift = 40; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(mac.value() >> shift));
  }
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] net::MacAddress get_mac(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 6; ++i) v = (v << 8) | p[i];
  return net::MacAddress(v);
}

void put_header(std::vector<std::uint8_t>& out, MsgType type,
                std::uint32_t xid) {
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // length patched at the end
  put_u32(out, xid);
}

void patch_length(std::vector<std::uint8_t>& out) {
  const auto length = static_cast<std::uint16_t>(out.size());
  out[2] = static_cast<std::uint8_t>(length >> 8);
  out[3] = static_cast<std::uint8_t>(length);
}

/// ofp timeouts are uint16 seconds; round SimTime (ns) up so that a
/// nonzero timeout never silently becomes "no timeout".
[[nodiscard]] std::uint16_t to_of_seconds(sim::SimTime t) {
  if (t <= 0) return 0;
  const sim::SimTime seconds = (t + sim::kSecond - 1) / sim::kSecond;
  return seconds > 0xffff ? 0xffff
                          : static_cast<std::uint16_t>(seconds);
}

/// Encode an Action as a (possibly empty) OpenFlow action list.
void put_actions(std::vector<std::uint8_t>& out, const Action& action) {
  const auto put_output = [&out](std::uint16_t port) {
    put_u16(out, 0);      // OFPAT_OUTPUT
    put_u16(out, 8);      // length
    put_u16(out, port);
    put_u16(out, 0xffff); // max_len (send whole packet)
  };
  if (const auto* output = std::get_if<OutputAction>(&action)) {
    for (const auto port : output->ports) put_output(port);
  } else if (std::holds_alternative<FloodAction>(action)) {
    put_output(kPortFlood);
  } else if (std::holds_alternative<ToControllerAction>(action)) {
    put_output(kPortController);
  }
  // DropAction: empty action list, by OpenFlow convention.
}

[[nodiscard]] std::optional<Action> parse_actions(
    std::span<const std::uint8_t> bytes) {
  OutputAction output;
  std::size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    const std::uint16_t type = get_u16(bytes.data() + pos);
    const std::uint16_t len = get_u16(bytes.data() + pos + 2);
    if (len < 8 || pos + len > bytes.size()) return std::nullopt;
    if (type != 0) return std::nullopt;  // only OFPAT_OUTPUT supported
    const std::uint16_t port = get_u16(bytes.data() + pos + 4);
    if (port == kPortFlood) return FloodAction{};
    if (port == kPortController) return ToControllerAction{};
    output.ports.push_back(port);
    pos += len;
  }
  if (pos != bytes.size()) return std::nullopt;
  if (output.ports.empty()) return DropAction{};
  return output;
}

}  // namespace

bool of10_representable(const FlowMatch& match) noexcept {
  const bool src_masked =
      !has_wildcard(match.wildcards, Wildcard::kSrcPort) &&
      match.src_port_mask != 0xffff;
  const bool dst_masked =
      !has_wildcard(match.wildcards, Wildcard::kDstPort) &&
      match.dst_port_mask != 0xffff;
  return !src_masked && !dst_masked;
}

void encode_match(const FlowMatch& match, std::vector<std::uint8_t>& out) {
  std::uint32_t wildcards = 0;
  if (has_wildcard(match.wildcards, Wildcard::kInPort)) wildcards |= kWildcardInPort;
  if (has_wildcard(match.wildcards, Wildcard::kVlanId)) wildcards |= kWildcardDlVlan;
  if (has_wildcard(match.wildcards, Wildcard::kSrcMac)) wildcards |= kWildcardDlSrc;
  if (has_wildcard(match.wildcards, Wildcard::kDstMac)) wildcards |= kWildcardDlDst;
  if (has_wildcard(match.wildcards, Wildcard::kEtherType)) wildcards |= kWildcardDlType;
  if (has_wildcard(match.wildcards, Wildcard::kProto)) wildcards |= kWildcardNwProto;
  if (has_wildcard(match.wildcards, Wildcard::kSrcPort)) wildcards |= kWildcardTpSrc;
  if (has_wildcard(match.wildcards, Wildcard::kDstPort)) wildcards |= kWildcardTpDst;
  // 6-bit CIDR encodings: value = 32 - prefix (0 = exact, >=32 = ignore).
  const std::uint32_t src_bits =
      has_wildcard(match.wildcards, Wildcard::kSrcIp)
          ? 32
          : 32 - std::min(32u, match.src_ip_prefix);
  const std::uint32_t dst_bits =
      has_wildcard(match.wildcards, Wildcard::kDstIp)
          ? 32
          : 32 - std::min(32u, match.dst_ip_prefix);
  wildcards |= src_bits << kWildcardNwSrcShift;
  wildcards |= dst_bits << kWildcardNwDstShift;
  wildcards |= kWildcardDlVlanPcp | kWildcardNwTos;  // fields we do not model

  put_u32(out, wildcards);
  put_u16(out, match.in_port);
  put_mac(out, match.src_mac);
  put_mac(out, match.dst_mac);
  put_u16(out, match.vlan_id);
  put_u8(out, 0);  // dl_vlan_pcp
  put_u8(out, 0);  // pad
  put_u16(out, match.ether_type);
  put_u8(out, 0);  // nw_tos
  put_u8(out, static_cast<std::uint8_t>(match.proto));
  put_u16(out, 0);  // pad
  put_u32(out, match.src_ip.value());
  put_u32(out, match.dst_ip.value());
  // ofp_match has no port masks; emit each masked block's base value
  // (the narrowing documented at of10_representable).
  put_u16(out, match.src_port & match.src_port_mask);
  put_u16(out, match.dst_port & match.dst_port_mask);
}

std::optional<FlowMatch> decode_match(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMatchSize) return std::nullopt;
  const std::uint8_t* p = bytes.data();
  const std::uint32_t wildcards = get_u32(p);

  FlowMatch match;
  Wildcard w = Wildcard::kNone;
  if (wildcards & kWildcardInPort) w = w | Wildcard::kInPort;
  if (wildcards & kWildcardDlVlan) w = w | Wildcard::kVlanId;
  if (wildcards & kWildcardDlSrc) w = w | Wildcard::kSrcMac;
  if (wildcards & kWildcardDlDst) w = w | Wildcard::kDstMac;
  if (wildcards & kWildcardDlType) w = w | Wildcard::kEtherType;
  if (wildcards & kWildcardNwProto) w = w | Wildcard::kProto;
  if (wildcards & kWildcardTpSrc) w = w | Wildcard::kSrcPort;
  if (wildcards & kWildcardTpDst) w = w | Wildcard::kDstPort;
  const std::uint32_t src_bits = (wildcards >> kWildcardNwSrcShift) & 0x3f;
  const std::uint32_t dst_bits = (wildcards >> kWildcardNwDstShift) & 0x3f;
  if (src_bits >= 32) {
    w = w | Wildcard::kSrcIp;
    match.src_ip_prefix = 0;
  } else {
    match.src_ip_prefix = 32 - src_bits;
  }
  if (dst_bits >= 32) {
    w = w | Wildcard::kDstIp;
    match.dst_ip_prefix = 0;
  } else {
    match.dst_ip_prefix = 32 - dst_bits;
  }
  match.wildcards = w;
  match.in_port = get_u16(p + 4);
  match.src_mac = get_mac(p + 6);
  match.dst_mac = get_mac(p + 12);
  match.vlan_id = get_u16(p + 18);
  match.ether_type = get_u16(p + 22);
  match.proto = static_cast<net::IpProto>(p[25]);
  match.src_ip = net::Ipv4Address(get_u32(p + 28));
  match.dst_ip = net::Ipv4Address(get_u32(p + 32));
  match.src_port = get_u16(p + 36);
  match.dst_port = get_u16(p + 38);
  return match;
}

std::vector<std::uint8_t> encode_packet_in(const PacketIn& msg,
                                           std::uint32_t xid) {
  std::vector<std::uint8_t> out;
  put_header(out, MsgType::kPacketIn, xid);
  const std::vector<std::uint8_t> frame = msg.packet.to_bytes();
  put_u32(out, kNoBuffer);
  put_u16(out, static_cast<std::uint16_t>(frame.size()));
  put_u16(out, msg.in_port);
  put_u8(out, static_cast<std::uint8_t>(PacketInReason::kNoMatch));
  put_u8(out, 0);  // pad
  out.insert(out.end(), frame.begin(), frame.end());
  patch_length(out);
  return out;
}

std::optional<DecodedPacketIn> decode_packet_in(
    std::span<const std::uint8_t> bytes) {
  const auto header = peek_header(bytes);
  if (!header || header->type != MsgType::kPacketIn) return std::nullopt;
  if (bytes.size() < kHeaderSize + 10) return std::nullopt;
  DecodedPacketIn out;
  out.xid = header->xid;
  const std::uint8_t* p = bytes.data() + kHeaderSize;
  out.in_port = get_u16(p + 6);
  out.reason = static_cast<PacketInReason>(p[8]);
  const auto packet =
      net::Packet::from_bytes(bytes.subspan(kHeaderSize + 10));
  if (!packet) return std::nullopt;
  out.packet = *packet;
  return out;
}

std::vector<std::uint8_t> encode_flow_mod(const FlowEntry& entry,
                                          std::uint32_t xid,
                                          FlowModCommand command) {
  std::vector<std::uint8_t> out;
  put_header(out, MsgType::kFlowMod, xid);
  encode_match(entry.match, out);
  put_u64(out, entry.cookie);
  put_u16(out, static_cast<std::uint16_t>(command));
  put_u16(out, to_of_seconds(entry.idle_timeout));
  put_u16(out, to_of_seconds(entry.hard_timeout));
  put_u16(out, entry.priority);
  put_u32(out, kNoBuffer);
  put_u16(out, kPortNone);  // out_port (delete filter)
  put_u16(out, 1);          // flags: OFPFF_SEND_FLOW_REM
  put_actions(out, entry.action);
  patch_length(out);
  return out;
}

std::optional<DecodedFlowMod> decode_flow_mod(
    std::span<const std::uint8_t> bytes) {
  const auto header = peek_header(bytes);
  if (!header || header->type != MsgType::kFlowMod) return std::nullopt;
  constexpr std::size_t kFixed = kHeaderSize + kMatchSize + 8 + 2 + 2 + 2 + 2 + 4 + 2 + 2;
  if (bytes.size() < kFixed) return std::nullopt;
  DecodedFlowMod out;
  out.xid = header->xid;
  const auto match = decode_match(bytes.subspan(kHeaderSize));
  if (!match) return std::nullopt;
  out.entry.match = *match;
  const std::uint8_t* p = bytes.data() + kHeaderSize + kMatchSize;
  out.entry.cookie = get_u64(p);
  out.command = static_cast<FlowModCommand>(get_u16(p + 8));
  out.entry.idle_timeout =
      static_cast<sim::SimTime>(get_u16(p + 10)) * sim::kSecond;
  out.entry.hard_timeout =
      static_cast<sim::SimTime>(get_u16(p + 12)) * sim::kSecond;
  out.entry.priority = get_u16(p + 14);
  const auto action = parse_actions(bytes.subspan(kFixed));
  if (!action) return std::nullopt;
  out.entry.action = *action;
  return out;
}

std::vector<std::uint8_t> encode_packet_out(const net::Packet& packet,
                                            const Action& action,
                                            std::uint16_t in_port,
                                            std::uint32_t xid) {
  std::vector<std::uint8_t> out;
  put_header(out, MsgType::kPacketOut, xid);
  put_u32(out, kNoBuffer);
  put_u16(out, in_port);
  std::vector<std::uint8_t> actions;
  put_actions(actions, action);
  put_u16(out, static_cast<std::uint16_t>(actions.size()));
  out.insert(out.end(), actions.begin(), actions.end());
  const std::vector<std::uint8_t> frame = packet.to_bytes();
  out.insert(out.end(), frame.begin(), frame.end());
  patch_length(out);
  return out;
}

std::optional<DecodedPacketOut> decode_packet_out(
    std::span<const std::uint8_t> bytes) {
  const auto header = peek_header(bytes);
  if (!header || header->type != MsgType::kPacketOut) return std::nullopt;
  if (bytes.size() < kHeaderSize + 8) return std::nullopt;
  DecodedPacketOut out;
  out.xid = header->xid;
  const std::uint8_t* p = bytes.data() + kHeaderSize;
  out.in_port = get_u16(p + 4);
  const std::uint16_t actions_len = get_u16(p + 6);
  if (bytes.size() < kHeaderSize + 8 + actions_len) return std::nullopt;
  const auto action =
      parse_actions(bytes.subspan(kHeaderSize + 8, actions_len));
  if (!action) return std::nullopt;
  out.action = *action;
  const auto packet =
      net::Packet::from_bytes(bytes.subspan(kHeaderSize + 8 + actions_len));
  if (!packet) return std::nullopt;
  out.packet = *packet;
  return out;
}

std::vector<std::uint8_t> encode_flow_removed(const FlowEntry& entry,
                                              FlowRemovedReason reason,
                                              std::uint32_t xid,
                                              sim::SimTime now) {
  std::vector<std::uint8_t> out;
  put_header(out, MsgType::kFlowRemoved, xid);
  encode_match(entry.match, out);
  put_u64(out, entry.cookie);
  put_u16(out, entry.priority);
  put_u8(out, static_cast<std::uint8_t>(reason));
  put_u8(out, 0);  // pad
  const sim::SimTime lifetime = now > entry.created_at ? now - entry.created_at : 0;
  put_u32(out, static_cast<std::uint32_t>(lifetime / sim::kSecond));
  put_u32(out, static_cast<std::uint32_t>(lifetime % sim::kSecond));
  put_u16(out, to_of_seconds(entry.idle_timeout));
  put_u16(out, 0);  // pad
  put_u64(out, entry.packet_count);
  put_u64(out, entry.byte_count);
  patch_length(out);
  return out;
}

std::optional<DecodedFlowRemoved> decode_flow_removed(
    std::span<const std::uint8_t> bytes) {
  const auto header = peek_header(bytes);
  if (!header || header->type != MsgType::kFlowRemoved) return std::nullopt;
  constexpr std::size_t kSize =
      kHeaderSize + kMatchSize + 8 + 2 + 1 + 1 + 4 + 4 + 2 + 2 + 8 + 8;
  if (bytes.size() < kSize) return std::nullopt;
  DecodedFlowRemoved out;
  out.xid = header->xid;
  const auto match = decode_match(bytes.subspan(kHeaderSize));
  if (!match) return std::nullopt;
  out.match = *match;
  const std::uint8_t* p = bytes.data() + kHeaderSize + kMatchSize;
  out.cookie = get_u64(p);
  out.priority = get_u16(p + 8);
  out.reason = static_cast<FlowRemovedReason>(p[10]);
  out.packet_count = get_u64(p + 24);
  out.byte_count = get_u64(p + 32);
  return out;
}

std::optional<Header> peek_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  Header header;
  header.version = bytes[0];
  if (header.version != kVersion) return std::nullopt;
  header.type = static_cast<MsgType>(bytes[1]);
  header.length = get_u16(bytes.data() + 2);
  if (header.length < kHeaderSize || header.length > bytes.size()) {
    return std::nullopt;
  }
  header.xid = get_u32(bytes.data() + 4);
  return header;
}

}  // namespace identxx::openflow::wire
