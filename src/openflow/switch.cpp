#include "openflow/switch.hpp"

#include <algorithm>

#include "sim/schedule.hpp"
#include "util/logging.hpp"

namespace identxx::openflow {

namespace {

/// Schedule-exploration footprint (DESIGN.md §13): state of one switch.
void note_switch_access(sim::NodeId switch_id, bool write) noexcept {
  sim::note_access({sim::LaneAccess::Kind::kSwitch, switch_id, write});
}

}  // namespace

Switch::Switch(std::string name, std::size_t table_capacity)
    : name_(std::move(name)), table_(table_capacity) {
  table_.set_removal_listener(
      [this](const FlowEntry& entry, RemovalReason reason) {
        if (controller_ == nullptr || simulator() == nullptr) return;
        // Notify asynchronously over the (possibly faulted) control channel.
        FlowRemovedMsg msg{id(), entry, reason};
        deliver_control([this, msg]() { controller_->on_flow_removed(msg); });
      });
}

void Switch::set_controller(ControlPlane* controller,
                            sim::SimTime control_latency) {
  controller_ = controller;
  control_latency_ = control_latency;
}

void Switch::register_port(sim::PortId port) {
  if (std::find(ports_.begin(), ports_.end(), port) == ports_.end()) {
    ports_.push_back(port);
    std::sort(ports_.begin(), ports_.end());
  }
}

void Switch::install_flow(FlowEntry entry) {
  note_switch_access(id(), /*write=*/true);
  table_.insert(std::move(entry), simulator() ? simulator()->now() : 0);
}

std::size_t Switch::remove_flows_by_cookie(std::uint64_t cookie) {
  note_switch_access(id(), /*write=*/true);
  return table_.remove_if(
      [cookie](const FlowEntry& e) { return e.cookie == cookie; });
}

void Switch::packet_out(const net::Packet& packet, const Action& action,
                        sim::PortId in_port) {
  note_switch_access(id(), /*write=*/true);
  apply_action(action, packet, in_port);
}

void Switch::on_packet(const net::Packet& packet, sim::PortId in_port) {
  note_switch_access(id(), /*write=*/true);
  ++stats_.packets_received;
  if (compromised_) {
    // §5.2: a compromised switch passes all traffic without regulation.
    apply_action(FloodAction{}, packet, in_port);
    return;
  }
  const net::TenTuple tuple = packet.ten_tuple(in_port);
  const std::size_t wire_bytes = packet.payload.size() +
                                 net::EthernetHeader::kSize +
                                 net::Ipv4Header::kSize;
  const FlowEntry* entry =
      table_.lookup(tuple, simulator()->now(), wire_bytes);
  if (entry != nullptr) {
    apply_action(entry->action, packet, in_port);
    return;
  }
  // Table miss (Figure 1 step 2).
  switch (miss_behaviour_) {
    case MissBehaviour::kToController:
      punt_to_controller(packet, in_port);
      break;
    case MissBehaviour::kDrop:
      ++stats_.packets_dropped;
      break;
  }
}

void Switch::apply_action(const Action& action, const net::Packet& packet,
                          sim::PortId in_port) {
  struct Visitor {
    Switch& self;
    const net::Packet& packet;
    sim::PortId in_port;

    void operator()(const OutputAction& a) {
      for (const auto port : a.ports) {
        ++self.stats_.packets_forwarded;
        self.transmit(port, packet);
      }
    }
    void operator()(const FloodAction&) {
      ++self.stats_.packets_flooded;
      for (const auto port : self.ports_) {
        if (port == in_port) continue;
        self.transmit(port, packet);
      }
    }
    void operator()(const DropAction&) { ++self.stats_.packets_dropped; }
    void operator()(const ToControllerAction&) {
      self.punt_to_controller(packet, in_port);
    }
  };
  std::visit(Visitor{*this, packet, in_port}, action);
}

void Switch::transmit(sim::PortId port, const net::Packet& packet) {
  if (queue_depth_ == 0) {
    simulator()->send(id(), port, packet);
    return;
  }
  const sim::LinkEnd* link = simulator()->link_at(id(), port);
  if (link == nullptr || link->bandwidth_bps == 0) {
    // Unwired (send() counts the drop) or serialization-free: no queue.
    simulator()->send(id(), port, packet);
    return;
  }
  PortQueue& q = queues_[port];
  const sim::SimTime now = simulator()->now();
  if (q.next_free <= now) {
    // Wire idle: start immediately, never occupies a queue slot.
    q.next_free = now + sim::serialization_delay(packet, link->bandwidth_bps);
    simulator()->send(id(), port, packet);
    return;
  }
  if (q.stats.occupancy >= queue_depth_) {
    ++q.stats.tail_drops;
    ++stats_.queue_tail_drops;
    return;
  }
  // A slot is held from now until the packet's serialization starts; the
  // deferred send() then pays serialization + latency itself, so delivery
  // lands at start + serialization + latency with no double counting.
  const sim::SimTime start = q.next_free;
  q.next_free = start + sim::serialization_delay(packet, link->bandwidth_bps);
  ++q.stats.occupancy;
  ++q.stats.enqueued;
  q.stats.peak_occupancy = std::max(q.stats.peak_occupancy, q.stats.occupancy);
  simulator()->schedule_at(start, [this, port, packet]() {
    --queues_[port].stats.occupancy;
    simulator()->send(id(), port, packet);
  });
}

const PortQueueStats* Switch::port_queue(sim::PortId port) const {
  const auto it = queues_.find(port);
  return it == queues_.end() ? nullptr : &it->second.stats;
}

void Switch::punt_to_controller(const net::Packet& packet, sim::PortId in_port) {
  if (controller_ == nullptr) {
    ++stats_.packets_dropped;
    IDXX_LOG(kDebug, "switch") << name_ << ": miss with no controller, drop";
    return;
  }
  ++stats_.packets_to_controller;
  PacketIn msg{id(), packet, in_port};
  deliver_control([this, msg]() { controller_->on_packet_in(msg); });
}

void Switch::deliver_control(std::function<void()> deliver) {
  sim::SimTime latency = control_latency_;
  if (fault_.has_value()) {
    // Both Bernoullis are always drawn so the stream position depends only
    // on the message count, keeping faulted runs shard/worker invariant.
    const sim::FaultChannel::Draw draw = fault_->draw();
    if (draw.dropped) {
      ++fault_->stats().dropped;
      return;
    }
    if (draw.delay > 0) {
      latency += draw.delay;
      ++fault_->stats().delayed;
    }
    if (draw.duplicated) {
      ++fault_->stats().duplicated;
      simulator()->schedule_after(latency, deliver);
    }
  }
  simulator()->schedule_after(latency, std::move(deliver));
}

}  // namespace identxx::openflow
