#pragma once

// OpenFlow switch datapath (§3.1): match packets against the flow table,
// apply the cached action, and punt table misses to the controller over an
// out-of-band control channel with configurable RPC latency.

#include <cstdint>
#include <string>
#include <vector>

#include "openflow/flow_table.hpp"
#include "sim/simulator.hpp"

namespace identxx::openflow {

class Switch;

/// Packet-in message: a table miss (or explicit punt) encapsulated and sent
/// to the controller, as in Figure 1 step 2.
struct PacketIn {
  sim::NodeId switch_id = sim::kInvalidNode;
  net::Packet packet;
  sim::PortId in_port = 0;
};

/// Flow-removed notification (idle/hard timeout or eviction).
struct FlowRemovedMsg {
  sim::NodeId switch_id = sim::kInvalidNode;
  FlowEntry entry;
  RemovalReason reason = RemovalReason::kDeleted;
};

/// The controller side of the OpenFlow control channel.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  virtual void on_packet_in(const PacketIn& msg) = 0;
  virtual void on_flow_removed(const FlowRemovedMsg& msg) { (void)msg; }
};

struct SwitchStats {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t packets_flooded = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_to_controller = 0;
};

/// What to do with a packet that misses the flow table.
enum class MissBehaviour { kToController, kDrop };

class Switch : public sim::Node {
 public:
  explicit Switch(std::string name, std::size_t table_capacity = 65536);

  // -- control plane wiring ------------------------------------------------

  /// Attach the controller; `control_latency` models the switch-controller
  /// RTT/2 (each direction of the control channel pays it once).
  void set_controller(ControlPlane* controller,
                      sim::SimTime control_latency = 100 * sim::kMicrosecond);

  void set_miss_behaviour(MissBehaviour behaviour) noexcept {
    miss_behaviour_ = behaviour;
  }

  /// Declare that `port` exists (wired in the topology).  Needed for flood.
  void register_port(sim::PortId port);

  // -- OpenFlow messages from the controller -------------------------------

  /// Install a flow entry (FlowMod ADD).  Called on the controller's
  /// schedule; takes effect immediately.
  void install_flow(FlowEntry entry);

  /// Remove entries by cookie (FlowMod DELETE).
  std::size_t remove_flows_by_cookie(std::uint64_t cookie);

  /// Packet-out: emit `packet` using `action` as if it matched.
  void packet_out(const net::Packet& packet, const Action& action,
                  sim::PortId in_port);

  // -- datapath -------------------------------------------------------------

  void on_packet(const net::Packet& packet, sim::PortId in_port) override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Compromise hook for the §5 security experiments: a compromised switch
  /// forwards everything (flood) and never consults its table.
  void set_compromised(bool compromised) noexcept { compromised_ = compromised; }
  [[nodiscard]] bool compromised() const noexcept { return compromised_; }

  [[nodiscard]] FlowTable& table() noexcept { return table_; }
  [[nodiscard]] const FlowTable& table() const noexcept { return table_; }
  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<sim::PortId>& ports() const noexcept {
    return ports_;
  }

 private:
  void apply_action(const Action& action, const net::Packet& packet,
                    sim::PortId in_port);
  void punt_to_controller(const net::Packet& packet, sim::PortId in_port);

  std::string name_;
  FlowTable table_;
  std::vector<sim::PortId> ports_;
  ControlPlane* controller_ = nullptr;
  sim::SimTime control_latency_ = 100 * sim::kMicrosecond;
  MissBehaviour miss_behaviour_ = MissBehaviour::kToController;
  bool compromised_ = false;
  SwitchStats stats_;
};

}  // namespace identxx::openflow
