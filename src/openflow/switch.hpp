#pragma once

// OpenFlow switch datapath (§3.1): match packets against the flow table,
// apply the cached action, and punt table misses to the controller over an
// out-of-band control channel with configurable RPC latency.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "openflow/flow_table.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace identxx::openflow {

class Switch;

/// Packet-in message: a table miss (or explicit punt) encapsulated and sent
/// to the controller, as in Figure 1 step 2.
struct PacketIn {
  sim::NodeId switch_id = sim::kInvalidNode;
  net::Packet packet;
  sim::PortId in_port = 0;
};

/// Flow-removed notification (idle/hard timeout or eviction).
struct FlowRemovedMsg {
  sim::NodeId switch_id = sim::kInvalidNode;
  FlowEntry entry;
  RemovalReason reason = RemovalReason::kDeleted;
};

/// The controller side of the OpenFlow control channel.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  virtual void on_packet_in(const PacketIn& msg) = 0;
  virtual void on_flow_removed(const FlowRemovedMsg& msg) { (void)msg; }
};

struct SwitchStats {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_forwarded = 0;  ///< output actions applied (pre-queue)
  std::uint64_t packets_flooded = 0;
  std::uint64_t packets_dropped = 0;  ///< policy drops (DropAction, miss-drop)
  std::uint64_t packets_to_controller = 0;
  std::uint64_t queue_tail_drops = 0;  ///< bounded output queue overflows
};

/// Occupancy accounting for one bounded output port queue (DESIGN.md §12).
/// A packet occupies a slot from enqueue until its serialization starts;
/// the packet currently on the wire is not counted.
struct PortQueueStats {
  std::uint32_t occupancy = 0;  ///< packets waiting right now
  std::uint32_t peak_occupancy = 0;
  std::uint64_t enqueued = 0;   ///< packets that waited at least one slot
  std::uint64_t tail_drops = 0;
};

/// What to do with a packet that misses the flow table.
enum class MissBehaviour { kToController, kDrop };

class Switch : public sim::Node {
 public:
  explicit Switch(std::string name, std::size_t table_capacity = 65536);

  // -- control plane wiring ------------------------------------------------

  /// Attach the controller; `control_latency` models the switch-controller
  /// RTT/2 (each direction of the control channel pays it once).
  void set_controller(ControlPlane* controller,
                      sim::SimTime control_latency = 100 * sim::kMicrosecond);

  void set_miss_behaviour(MissBehaviour behaviour) noexcept {
    miss_behaviour_ = behaviour;
  }

  /// Inject seeded faults on this switch's switch→controller channel
  /// (DESIGN.md §14): packet-in punts and flow-removed notifications may be
  /// dropped, duplicated, or delayed on top of `control_latency`.
  void set_control_fault(const sim::ChannelFaultSpec& spec,
                         std::uint64_t stream_seed) {
    fault_.emplace(spec, stream_seed);
  }
  /// Fault counters for this channel (zeros when no fault was configured).
  [[nodiscard]] sim::ChannelFaultStats control_fault_stats() const noexcept {
    return fault_ ? fault_->stats() : sim::ChannelFaultStats{};
  }

  /// Declare that `port` exists (wired in the topology).  Needed for flood.
  void register_port(sim::PortId port);

  // -- OpenFlow messages from the controller -------------------------------

  /// Install a flow entry (FlowMod ADD).  Called on the controller's
  /// schedule; takes effect immediately.
  void install_flow(FlowEntry entry);

  /// Remove entries by cookie (FlowMod DELETE).
  std::size_t remove_flows_by_cookie(std::uint64_t cookie);

  /// Packet-out: emit `packet` using `action` as if it matched.
  void packet_out(const net::Packet& packet, const Action& action,
                  sim::PortId in_port);

  // -- datapath -------------------------------------------------------------

  void on_packet(const net::Packet& packet, sim::PortId in_port) override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// Compromise hook for the §5 security experiments: a compromised switch
  /// forwards everything (flood) and never consults its table.
  void set_compromised(bool compromised) noexcept { compromised_ = compromised; }
  [[nodiscard]] bool compromised() const noexcept { return compromised_; }

  // -- bounded output queues (DESIGN.md §12) --------------------------------

  /// Bound every output port's queue to `packets` waiting packets; a
  /// packet arriving at a busy port with a full queue is tail-dropped.
  /// 0 (the default) disables the queue model entirely: transmission is
  /// immediate and unbounded, the historical idealized behaviour.
  void set_queue_depth(std::uint32_t packets) noexcept {
    queue_depth_ = packets;
  }
  [[nodiscard]] std::uint32_t queue_depth() const noexcept {
    return queue_depth_;
  }
  /// Per-port queue counters; nullptr when the port never queued.
  [[nodiscard]] const PortQueueStats* port_queue(sim::PortId port) const;

  [[nodiscard]] FlowTable& table() noexcept { return table_; }
  [[nodiscard]] const FlowTable& table() const noexcept { return table_; }
  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<sim::PortId>& ports() const noexcept {
    return ports_;
  }

 private:
  /// One output port's transmission state.  All mutation happens on the
  /// simulator's global lane (packet events are never sharded), so the
  /// bounded-queue model is deterministic at any worker count for free.
  struct PortQueue {
    sim::SimTime next_free = 0;  ///< when the wire finishes its last packet
    PortQueueStats stats;
  };

  void apply_action(const Action& action, const net::Packet& packet,
                    sim::PortId in_port);
  /// Egress path for every forwarded/flooded packet: immediate send when
  /// the queue model is off, otherwise FIFO tail-drop through the port's
  /// bounded output queue.
  void transmit(sim::PortId port, const net::Packet& packet);
  void punt_to_controller(const net::Packet& packet, sim::PortId in_port);
  /// Common switch→controller delivery path: applies the configured channel
  /// fault (if any) on top of `control_latency_` and schedules `deliver`
  /// zero, one, or two times accordingly.
  void deliver_control(std::function<void()> deliver);

  std::string name_;
  FlowTable table_;
  std::vector<sim::PortId> ports_;
  ControlPlane* controller_ = nullptr;
  sim::SimTime control_latency_ = 100 * sim::kMicrosecond;
  MissBehaviour miss_behaviour_ = MissBehaviour::kToController;
  bool compromised_ = false;
  std::uint32_t queue_depth_ = 0;
  std::unordered_map<sim::PortId, PortQueue> queues_;
  std::optional<sim::FaultChannel> fault_;
  SwitchStats stats_;
};

}  // namespace identxx::openflow
