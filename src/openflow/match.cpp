#include "openflow/match.hpp"

namespace identxx::openflow {

namespace {

[[nodiscard]] bool prefix_matches(net::Ipv4Address value, net::Ipv4Address base,
                                  unsigned prefix) noexcept {
  if (prefix == 0) return true;
  if (prefix > 32) prefix = 32;
  const std::uint32_t mask = ~std::uint32_t{0} << (32 - prefix);
  return (value.value() & mask) == (base.value() & mask);
}

[[nodiscard]] net::Ipv4Address masked(net::Ipv4Address addr,
                                      unsigned prefix) noexcept {
  if (prefix == 0) return net::Ipv4Address{};
  if (prefix > 32) prefix = 32;
  return net::Ipv4Address{addr.value() & (~std::uint32_t{0} << (32 - prefix))};
}

}  // namespace

net::TenTuple project_tuple(const net::TenTuple& t, Wildcard wildcards,
                            unsigned src_prefix, unsigned dst_prefix,
                            std::uint16_t src_port_mask,
                            std::uint16_t dst_port_mask) noexcept {
  net::TenTuple out;  // wildcarded fields keep the default value
  if (!has_wildcard(wildcards, Wildcard::kInPort)) out.in_port = t.in_port;
  if (!has_wildcard(wildcards, Wildcard::kSrcMac)) out.src_mac = t.src_mac;
  if (!has_wildcard(wildcards, Wildcard::kDstMac)) out.dst_mac = t.dst_mac;
  if (!has_wildcard(wildcards, Wildcard::kEtherType)) {
    out.ether_type = t.ether_type;
  }
  if (!has_wildcard(wildcards, Wildcard::kVlanId)) out.vlan_id = t.vlan_id;
  if (!has_wildcard(wildcards, Wildcard::kSrcIp)) {
    out.src_ip = masked(t.src_ip, src_prefix);
  }
  if (!has_wildcard(wildcards, Wildcard::kDstIp)) {
    out.dst_ip = masked(t.dst_ip, dst_prefix);
  }
  if (!has_wildcard(wildcards, Wildcard::kProto)) out.proto = t.proto;
  if (!has_wildcard(wildcards, Wildcard::kSrcPort)) {
    out.src_port = t.src_port & src_port_mask;
  }
  if (!has_wildcard(wildcards, Wildcard::kDstPort)) {
    out.dst_port = t.dst_port & dst_port_mask;
  }
  return out;
}

net::TenTuple FlowMatch::project(const net::TenTuple& tuple) const noexcept {
  return project_tuple(tuple, wildcards, src_ip_prefix, dst_ip_prefix,
                       src_port_mask, dst_port_mask);
}

net::TenTuple FlowMatch::key() const noexcept {
  net::TenTuple t;
  t.in_port = in_port;
  t.src_mac = src_mac;
  t.dst_mac = dst_mac;
  t.ether_type = ether_type;
  t.vlan_id = vlan_id;
  t.src_ip = src_ip;
  t.dst_ip = dst_ip;
  t.proto = proto;
  t.src_port = src_port;
  t.dst_port = dst_port;
  return project(t);
}

FlowMatch FlowMatch::exact(const net::TenTuple& tuple) noexcept {
  FlowMatch m;
  m.wildcards = Wildcard::kNone;
  m.in_port = tuple.in_port;
  m.src_mac = tuple.src_mac;
  m.dst_mac = tuple.dst_mac;
  m.ether_type = tuple.ether_type;
  m.vlan_id = tuple.vlan_id;
  m.src_ip = tuple.src_ip;
  m.dst_ip = tuple.dst_ip;
  m.src_ip_prefix = 32;
  m.dst_ip_prefix = 32;
  m.proto = tuple.proto;
  m.src_port = tuple.src_port;
  m.dst_port = tuple.dst_port;
  return m;
}

bool FlowMatch::matches(const net::TenTuple& t) const noexcept {
  if (!has_wildcard(wildcards, Wildcard::kInPort) && in_port != t.in_port)
    return false;
  if (!has_wildcard(wildcards, Wildcard::kSrcMac) && src_mac != t.src_mac)
    return false;
  if (!has_wildcard(wildcards, Wildcard::kDstMac) && dst_mac != t.dst_mac)
    return false;
  if (!has_wildcard(wildcards, Wildcard::kEtherType) &&
      ether_type != t.ether_type)
    return false;
  if (!has_wildcard(wildcards, Wildcard::kVlanId) && vlan_id != t.vlan_id)
    return false;
  if (!has_wildcard(wildcards, Wildcard::kSrcIp) &&
      !prefix_matches(t.src_ip, src_ip, src_ip_prefix))
    return false;
  if (!has_wildcard(wildcards, Wildcard::kDstIp) &&
      !prefix_matches(t.dst_ip, dst_ip, dst_ip_prefix))
    return false;
  if (!has_wildcard(wildcards, Wildcard::kProto) && proto != t.proto)
    return false;
  if (!has_wildcard(wildcards, Wildcard::kSrcPort) &&
      (src_port & src_port_mask) != (t.src_port & src_port_mask))
    return false;
  if (!has_wildcard(wildcards, Wildcard::kDstPort) &&
      (dst_port & dst_port_mask) != (t.dst_port & dst_port_mask))
    return false;
  return true;
}

bool FlowMatch::is_exact() const noexcept {
  return wildcards == Wildcard::kNone && src_ip_prefix == 32 &&
         dst_ip_prefix == 32 && src_port_mask == 0xffff &&
         dst_port_mask == 0xffff;
}

std::string FlowMatch::to_string() const {
  if (wildcards == Wildcard::kAll) return "match-any";
  std::string out = "match{";
  const auto field = [&](Wildcard w, const std::string& text) {
    if (!has_wildcard(wildcards, w)) {
      if (out.size() > 6) out += ' ';
      out += text;
    }
  };
  field(Wildcard::kInPort, "in_port=" + std::to_string(in_port));
  field(Wildcard::kSrcMac, "src_mac=" + src_mac.to_string());
  field(Wildcard::kDstMac, "dst_mac=" + dst_mac.to_string());
  field(Wildcard::kEtherType, "eth=" + std::to_string(ether_type));
  field(Wildcard::kVlanId, "vlan=" + std::to_string(vlan_id));
  field(Wildcard::kSrcIp,
        "src=" + src_ip.to_string() + "/" + std::to_string(src_ip_prefix));
  field(Wildcard::kDstIp,
        "dst=" + dst_ip.to_string() + "/" + std::to_string(dst_ip_prefix));
  field(Wildcard::kProto, "proto=" + net::to_string(proto));
  const auto port_text = [](std::uint16_t port, std::uint16_t mask) {
    std::string text = std::to_string(port & mask);
    if (mask != 0xffff) {
      text += '&';
      text += std::to_string(mask);
    }
    return text;
  };
  field(Wildcard::kSrcPort, "sport=" + port_text(src_port, src_port_mask));
  field(Wildcard::kDstPort, "dport=" + port_text(dst_port, dst_port_mask));
  out += '}';
  return out;
}

}  // namespace identxx::openflow
