#pragma once

// Network topology: owns the simulator, tracks which nodes are switches,
// where hosts attach, and computes forwarding paths (BFS over the switch
// fabric) so the controller can install entries along the whole path
// preemptively (Figure 1 step 4).
//
// Multipath (DESIGN.md §12): with set_multipath(k, seed), each (src,dst)
// pair memoizes a *set* of up to k equal-cost shortest paths instead of a
// single hop list, and path_for_flow() picks one deterministically by
// hashing the flow 5-tuple with the seed — ECMP without per-flow state.
// k == 1 reproduces the historical single-BFS-path behaviour exactly.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "openflow/switch.hpp"
#include "sim/simulator.hpp"

namespace identxx::openflow {

/// One forwarding step: the packet enters `switch_id` on `in_port` and
/// leaves on `out_port`.
struct Hop {
  sim::NodeId switch_id = sim::kInvalidNode;
  sim::PortId out_port = 0;
  sim::PortId in_port = 0;
  [[nodiscard]] bool operator==(const Hop&) const noexcept = default;
};

/// The equal-cost shortest paths between one (src,dst) pair, in a
/// deterministic enumeration order (adjacency insertion order).  Empty
/// means unreachable; a reachable pair always has paths[0] available as
/// the single-path answer.
struct PathSet {
  std::vector<std::vector<Hop>> paths;
  [[nodiscard]] bool empty() const noexcept { return paths.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return paths.size(); }
};

/// Accounting for the (src,dst)-keyed memo in front of the BFS in
/// Topology::path — admissions hammer the same attachment pairs, so the
/// controller should not recompute the fabric walk per flow.  One cache
/// entry now holds the whole equal-cost path set; hits/misses/invalidations
/// count per path-set lookup.  ecmp_selections[i] counts how many
/// path_for_flow() queries selected path index i (main-thread queries
/// only, like the other counters).
struct PathCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< BFS runs stored into the cache
  std::uint64_t invalidations = 0;  ///< cache flushes (topology changed)
  std::vector<std::uint64_t> ecmp_selections;
};

class Topology {
 public:
  Topology();
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const noexcept { return sim_; }

  /// Add a switch; returns its node id.
  sim::NodeId add_switch(std::unique_ptr<Switch> sw);

  /// Add a non-switch node (host).  Returns its node id.
  sim::NodeId add_host(std::unique_ptr<sim::Node> host);

  /// Wire two nodes with auto-allocated ports; returns {port_a, port_b}.
  /// `bandwidth_bps` feeds the link's serialization-delay model (0
  /// disables it; see sim::LinkEnd).
  std::pair<sim::PortId, sim::PortId> link(
      sim::NodeId a, sim::NodeId b,
      sim::SimTime latency = 10 * sim::kMicrosecond,
      std::uint64_t bandwidth_bps = sim::kDefaultBandwidthBps);

  [[nodiscard]] bool is_switch(sim::NodeId id) const noexcept {
    return switches_.contains(id);
  }

  /// The Switch object for a switch node id; throws SimError otherwise.
  [[nodiscard]] Switch& switch_at(sim::NodeId id);

  /// All switch node ids, in creation order.
  [[nodiscard]] const std::vector<sim::NodeId>& switch_ids() const noexcept {
    return switch_order_;
  }

  /// Where a host is attached: (switch id, switch port), if wired to one.
  [[nodiscard]] std::optional<Hop> attachment(sim::NodeId host) const;

  // -- paths ---------------------------------------------------------------

  /// Enable k-shortest/ECMP path sets: up to `k_paths` equal-cost shortest
  /// paths are enumerated per (src,dst) pair and path_for_flow() selects
  /// among them by seeded flow hash.  k_paths == 1 (the default) keeps the
  /// historical single-BFS-path behaviour bit-for-bit.  Flushes the path
  /// caches; call while the simulation is quiescent.
  void set_multipath(std::uint32_t k_paths, std::uint64_t seed = 0);
  [[nodiscard]] std::uint32_t k_paths() const noexcept { return k_paths_; }

  /// Hop list forwarding a packet from `src_host` to `dst_host`: one entry
  /// per switch, ending with the hop whose out_port faces `dst_host`.
  /// nullopt when no path exists.  Under multipath this is the path set's
  /// first path — the stable choice for flow-agnostic traffic (control
  /// messages, diagnostics).  Results are memoized per (src,dst) pair;
  /// `link()` (the only topology mutation) flushes the memo.
  ///
  /// The memo is per-worker: the simulation main thread uses the shared
  /// cache below (and the stats), while simulator worker threads (parallel
  /// shard lanes) each keep a private thread-local cache keyed by this
  /// topology's id and invalidated by the same epoch bump — no locks on
  /// any path query.
  [[nodiscard]] std::optional<std::vector<Hop>> path(sim::NodeId src_host,
                                                     sim::NodeId dst_host) const;

  /// The full equal-cost path set for (src,dst); empty set when
  /// unreachable.  Memoized like path().
  [[nodiscard]] PathSet path_set(sim::NodeId src_host,
                                 sim::NodeId dst_host) const;

  /// Deterministic seeded ECMP: the path `flow` takes from `src_host` to
  /// `dst_host`, selected from the equal-cost set by hashing the 5-tuple
  /// with the multipath seed.  The same flow always selects the same path
  /// (until the topology changes); with k_paths == 1 this is exactly
  /// path().  nullopt when unreachable.
  [[nodiscard]] std::optional<std::vector<Hop>> path_for_flow(
      sim::NodeId src_host, sim::NodeId dst_host,
      const net::FiveTuple& flow) const;

  /// Neighbours of a node: (local port, peer id) pairs.
  [[nodiscard]] const std::vector<std::pair<sim::PortId, sim::NodeId>>&
  neighbours(sim::NodeId id) const;

  // -- path cache -----------------------------------------------------------

  [[nodiscard]] const PathCacheStats& path_cache_stats() const noexcept {
    return path_cache_stats_;
  }
  [[nodiscard]] std::size_t path_cache_size() const noexcept {
    return path_cache_.size();
  }
  /// Ablation / benchmarking knob: disabling drops the cache and makes
  /// every path() call run the BFS.
  void set_path_cache_enabled(bool enabled) noexcept;

 private:
  [[nodiscard]] std::optional<std::vector<Hop>> compute_path(
      sim::NodeId src_host, sim::NodeId dst_host) const;
  [[nodiscard]] PathSet compute_path_set(sim::NodeId src_host,
                                         sim::NodeId dst_host) const;
  /// The memoized set for (src,dst), routed through the shared cache on
  /// the main thread or the calling worker's private cache otherwise.
  [[nodiscard]] const PathSet& cached_path_set(sim::NodeId src_host,
                                               sim::NodeId dst_host) const;
  [[nodiscard]] const PathSet& path_set_via_worker_cache(
      std::uint64_t key, sim::NodeId src_host, sim::NodeId dst_host) const;
  /// ECMP selection index for `flow` within a set of `set_size` paths.
  [[nodiscard]] std::size_t select_path_index(const net::FiveTuple& flow,
                                              std::size_t set_size) const;
  /// First port on `from` wired to `to`; kInvalidNode-safe helper for the
  /// equal-cost DAG walk.
  [[nodiscard]] sim::PortId port_toward(sim::NodeId from, sim::NodeId to) const;
  void invalidate_paths() noexcept;

  /// Process-unique instance id + invalidation epoch for the per-worker
  /// thread-local caches.  Only mutated while the simulation is quiescent
  /// (topology wiring happens before/between runs), so workers never
  /// observe a concurrent write.
  const std::uint64_t topology_id_;
  std::uint64_t path_epoch_ = 0;

  sim::Simulator sim_;
  std::unordered_map<sim::NodeId, Switch*> switches_;
  std::vector<sim::NodeId> switch_order_;
  std::unordered_map<sim::NodeId, std::vector<std::pair<sim::PortId, sim::NodeId>>>
      adjacency_;
  std::unordered_map<sim::NodeId, sim::PortId> next_port_;

  std::uint32_t k_paths_ = 1;
  std::uint64_t ecmp_seed_ = 0;

  // Memoized path-set results keyed by (src << 32) | dst.  Mutable: the
  // cache is an implementation detail of the logically-const query.
  mutable std::unordered_map<std::uint64_t, PathSet> path_cache_;
  mutable PathCacheStats path_cache_stats_;
  // Uncached fallback slot so cached_path_set can hand out a reference
  // when the cache is disabled.
  mutable PathSet scratch_set_;
  bool path_cache_enabled_ = true;
};

}  // namespace identxx::openflow
