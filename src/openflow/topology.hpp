#pragma once

// Network topology: owns the simulator, tracks which nodes are switches,
// where hosts attach, and computes forwarding paths (BFS over the switch
// fabric) so the controller can install entries along the whole path
// preemptively (Figure 1 step 4).

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "openflow/switch.hpp"
#include "sim/simulator.hpp"

namespace identxx::openflow {

/// One forwarding step: the packet enters `switch_id` on `in_port` and
/// leaves on `out_port`.
struct Hop {
  sim::NodeId switch_id = sim::kInvalidNode;
  sim::PortId out_port = 0;
  sim::PortId in_port = 0;
  [[nodiscard]] bool operator==(const Hop&) const noexcept = default;
};

/// Accounting for the (src,dst)-keyed memo in front of the BFS in
/// Topology::path — admissions hammer the same attachment pairs, so the
/// controller should not recompute the fabric walk per flow.
struct PathCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< BFS runs stored into the cache
  std::uint64_t invalidations = 0;  ///< cache flushes (topology changed)
};

class Topology {
 public:
  Topology();
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const noexcept { return sim_; }

  /// Add a switch; returns its node id.
  sim::NodeId add_switch(std::unique_ptr<Switch> sw);

  /// Add a non-switch node (host).  Returns its node id.
  sim::NodeId add_host(std::unique_ptr<sim::Node> host);

  /// Wire two nodes with auto-allocated ports; returns {port_a, port_b}.
  std::pair<sim::PortId, sim::PortId> link(
      sim::NodeId a, sim::NodeId b,
      sim::SimTime latency = 10 * sim::kMicrosecond);

  [[nodiscard]] bool is_switch(sim::NodeId id) const noexcept {
    return switches_.contains(id);
  }

  /// The Switch object for a switch node id; throws SimError otherwise.
  [[nodiscard]] Switch& switch_at(sim::NodeId id);

  /// All switch node ids, in creation order.
  [[nodiscard]] const std::vector<sim::NodeId>& switch_ids() const noexcept {
    return switch_order_;
  }

  /// Where a host is attached: (switch id, switch port), if wired to one.
  [[nodiscard]] std::optional<Hop> attachment(sim::NodeId host) const;

  /// Hop list forwarding a packet from `src_host` to `dst_host`: one entry
  /// per switch, ending with the hop whose out_port faces `dst_host`.
  /// nullopt when no path exists.  Results are memoized per (src,dst)
  /// pair; `link()` (the only topology mutation) flushes the memo.
  ///
  /// The memo is per-worker: the simulation main thread uses the shared
  /// cache below (and the stats), while simulator worker threads (parallel
  /// shard lanes) each keep a private thread-local cache keyed by this
  /// topology's id and invalidated by the same epoch bump — no locks on
  /// any path query.
  [[nodiscard]] std::optional<std::vector<Hop>> path(sim::NodeId src_host,
                                                     sim::NodeId dst_host) const;

  /// Neighbours of a node: (local port, peer id) pairs.
  [[nodiscard]] const std::vector<std::pair<sim::PortId, sim::NodeId>>&
  neighbours(sim::NodeId id) const;

  // -- path cache -----------------------------------------------------------

  [[nodiscard]] const PathCacheStats& path_cache_stats() const noexcept {
    return path_cache_stats_;
  }
  [[nodiscard]] std::size_t path_cache_size() const noexcept {
    return path_cache_.size();
  }
  /// Ablation / benchmarking knob: disabling drops the cache and makes
  /// every path() call run the BFS.
  void set_path_cache_enabled(bool enabled) noexcept;

 private:
  [[nodiscard]] std::optional<std::vector<Hop>> compute_path(
      sim::NodeId src_host, sim::NodeId dst_host) const;
  [[nodiscard]] std::optional<std::vector<Hop>> path_via_worker_cache(
      std::uint64_t key, sim::NodeId src_host, sim::NodeId dst_host) const;
  void invalidate_paths() noexcept;

  /// Process-unique instance id + invalidation epoch for the per-worker
  /// thread-local caches.  Only mutated while the simulation is quiescent
  /// (topology wiring happens before/between runs), so workers never
  /// observe a concurrent write.
  const std::uint64_t topology_id_;
  std::uint64_t path_epoch_ = 0;

  sim::Simulator sim_;
  std::unordered_map<sim::NodeId, Switch*> switches_;
  std::vector<sim::NodeId> switch_order_;
  std::unordered_map<sim::NodeId, std::vector<std::pair<sim::PortId, sim::NodeId>>>
      adjacency_;
  std::unordered_map<sim::NodeId, sim::PortId> next_port_;

  // Memoized path() results keyed by (src << 32) | dst.  Mutable: the
  // cache is an implementation detail of the logically-const query.
  mutable std::unordered_map<std::uint64_t, std::optional<std::vector<Hop>>>
      path_cache_;
  mutable PathCacheStats path_cache_stats_;
  bool path_cache_enabled_ = true;
};

}  // namespace identxx::openflow
