#include "openflow/topology.hpp"

#include <algorithm>
#include <atomic>
#include <deque>

#include "sim/schedule.hpp"
#include "sim/worker_pool.hpp"
#include "util/rng.hpp"

namespace identxx::openflow {

namespace {

std::atomic<std::uint64_t> g_next_topology_id{1};

/// One worker thread's private path memo for one topology instance.
/// Keyed by the topology's process-unique id (never a raw pointer — ids
/// are not reused); stale topologies' entries die with the worker thread,
/// whose pool is owned by the topology's simulator.
struct WorkerPathCache {
  std::uint64_t epoch = 0;
  std::unordered_map<std::uint64_t, PathSet> paths;
};
thread_local std::unordered_map<std::uint64_t, WorkerPathCache> t_worker_paths;

}  // namespace

Topology::Topology()
    : topology_id_(g_next_topology_id.fetch_add(1, std::memory_order_relaxed)) {}

sim::NodeId Topology::add_switch(std::unique_ptr<Switch> sw) {
  Switch* raw = sw.get();
  const sim::NodeId id = sim_.add_node(std::move(sw));
  switches_[id] = raw;
  switch_order_.push_back(id);
  next_port_[id] = 1;
  return id;
}

sim::NodeId Topology::add_host(std::unique_ptr<sim::Node> host) {
  const sim::NodeId id = sim_.add_node(std::move(host));
  next_port_[id] = 1;
  return id;
}

std::pair<sim::PortId, sim::PortId> Topology::link(sim::NodeId a, sim::NodeId b,
                                                   sim::SimTime latency,
                                                   std::uint64_t bandwidth_bps) {
  invalidate_paths();  // adjacency changes below
  const sim::PortId port_a = next_port_.at(a)++;
  const sim::PortId port_b = next_port_.at(b)++;
  sim_.connect(a, port_a, b, port_b, latency, bandwidth_bps);
  adjacency_[a].emplace_back(port_a, b);
  adjacency_[b].emplace_back(port_b, a);
  if (const auto it = switches_.find(a); it != switches_.end()) {
    it->second->register_port(port_a);
  }
  if (const auto it = switches_.find(b); it != switches_.end()) {
    it->second->register_port(port_b);
  }
  return {port_a, port_b};
}

Switch& Topology::switch_at(sim::NodeId id) {
  const auto it = switches_.find(id);
  if (it == switches_.end()) throw SimError("switch_at: not a switch");
  return *it->second;
}

std::optional<Hop> Topology::attachment(sim::NodeId host) const {
  const auto it = adjacency_.find(host);
  if (it == adjacency_.end()) return std::nullopt;
  for (const auto& [port, peer] : it->second) {
    if (is_switch(peer)) {
      // Find the peer's port facing us.
      for (const auto& [peer_port, peer_peer] : adjacency_.at(peer)) {
        if (peer_peer == host) return Hop{peer, peer_port};
      }
    }
  }
  return std::nullopt;
}

void Topology::set_multipath(std::uint32_t k_paths, std::uint64_t seed) {
  k_paths_ = k_paths == 0 ? 1 : k_paths;
  ecmp_seed_ = seed;
  invalidate_paths();
}

void Topology::invalidate_paths() noexcept {
  sim::note_access(
      {sim::LaneAccess::Kind::kPathEpoch, topology_id_, /*write=*/true});
  ++path_epoch_;  // per-worker caches check the epoch on their next query
  if (path_cache_.empty()) return;
  path_cache_.clear();
  ++path_cache_stats_.invalidations;
}

void Topology::set_path_cache_enabled(bool enabled) noexcept {
  path_cache_enabled_ = enabled;
  if (!enabled) path_cache_.clear();
}

const PathSet& Topology::cached_path_set(sim::NodeId src_host,
                                         sim::NodeId dst_host) const {
  sim::note_access(
      {sim::LaneAccess::Kind::kPathEpoch, topology_id_, /*write=*/false});
  if (!path_cache_enabled_) {
    scratch_set_ = compute_path_set(src_host, dst_host);
    return scratch_set_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src_host) << 32) | dst_host;
  if (sim::WorkerPool::current_worker_slot() != 0) {
    // Simulator worker thread (parallel shard lane): private cache, no
    // locks and no contention on the shared memo or its stats.
    return path_set_via_worker_cache(key, src_host, dst_host);
  }
  if (const auto it = path_cache_.find(key); it != path_cache_.end()) {
    ++path_cache_stats_.hits;
    return it->second;
  }
  ++path_cache_stats_.misses;
  return path_cache_.emplace(key, compute_path_set(src_host, dst_host))
      .first->second;
}

const PathSet& Topology::path_set_via_worker_cache(
    std::uint64_t key, sim::NodeId src_host, sim::NodeId dst_host) const {
  WorkerPathCache& cache = t_worker_paths[topology_id_];
  if (cache.epoch != path_epoch_) {
    cache.paths.clear();
    cache.epoch = path_epoch_;
  }
  if (const auto it = cache.paths.find(key); it != cache.paths.end()) {
    return it->second;
  }
  return cache.paths.emplace(key, compute_path_set(src_host, dst_host))
      .first->second;
}

std::optional<std::vector<Hop>> Topology::path(sim::NodeId src_host,
                                               sim::NodeId dst_host) const {
  const PathSet& set = cached_path_set(src_host, dst_host);
  if (set.empty()) return std::nullopt;
  return set.paths.front();
}

PathSet Topology::path_set(sim::NodeId src_host, sim::NodeId dst_host) const {
  return cached_path_set(src_host, dst_host);
}

std::size_t Topology::select_path_index(const net::FiveTuple& flow,
                                        std::size_t set_size) const {
  if (set_size <= 1) return 0;
  // Fold the 5-tuple into the seed through two SplitMix64 rounds; every
  // field participates so reversed/sibling flows hash independently.
  util::SplitMix64 mix(ecmp_seed_ ^
                       ((static_cast<std::uint64_t>(flow.src_ip.value()) << 32) |
                        flow.dst_ip.value()));
  const std::uint64_t salt =
      mix.next() ^ ((static_cast<std::uint64_t>(flow.src_port) << 32) |
                    (static_cast<std::uint64_t>(flow.dst_port) << 8) |
                    static_cast<std::uint64_t>(flow.proto));
  return static_cast<std::size_t>(
      util::SplitMix64(salt).next_below(set_size));
}

std::optional<std::vector<Hop>> Topology::path_for_flow(
    sim::NodeId src_host, sim::NodeId dst_host,
    const net::FiveTuple& flow) const {
  const PathSet& set = cached_path_set(src_host, dst_host);
  if (set.empty()) return std::nullopt;
  const std::size_t index = select_path_index(flow, set.size());
  if (sim::WorkerPool::current_worker_slot() == 0) {
    auto& histogram = path_cache_stats_.ecmp_selections;
    if (histogram.size() <= index) histogram.resize(index + 1, 0);
    ++histogram[index];
  }
  return set.paths[index];
}

PathSet Topology::compute_path_set(sim::NodeId src_host,
                                   sim::NodeId dst_host) const {
  PathSet set;
  if (k_paths_ <= 1) {
    // Single-path mode: delegate to the historical BFS so hop lists (and
    // therefore installed entries, event timings, everything downstream)
    // are bit-identical to the pre-multipath implementation.
    if (auto single = compute_path(src_host, dst_host)) {
      set.paths.push_back(std::move(*single));
    }
    return set;
  }
  if (src_host == dst_host) {
    set.paths.emplace_back();
    return set;
  }
  // Pass 1: BFS distances over the forwarding graph.  Hosts other than
  // the source are reachable but do not forward — same rule as
  // compute_path.
  std::unordered_map<sim::NodeId, std::uint32_t> dist;
  std::deque<sim::NodeId> frontier{src_host};
  dist[src_host] = 0;
  while (!frontier.empty()) {
    const sim::NodeId current = frontier.front();
    frontier.pop_front();
    if (current != src_host && !is_switch(current)) continue;
    const auto it = adjacency_.find(current);
    if (it == adjacency_.end()) continue;
    for (const auto& [port, peer] : it->second) {
      if (dist.contains(peer)) continue;
      dist[peer] = dist[current] + 1;
      frontier.push_back(peer);
    }
  }
  const auto dst_it = dist.find(dst_host);
  if (dst_it == dist.end()) return set;
  // Pass 2: enumerate up to k_paths_ shortest paths by DFS over the
  // equal-cost DAG (edges u->v with dist[v] == dist[u]+1), expanding
  // neighbours in adjacency insertion order — a deterministic function of
  // link() call order, identical on every worker and every run.
  std::vector<sim::NodeId> node_path{src_host};
  const auto emit = [&]() {
    std::vector<Hop> hops;
    for (std::size_t i = 1; i + 1 < node_path.size(); ++i) {
      const sim::NodeId sw = node_path[i];
      if (!is_switch(sw)) continue;
      Hop hop{sw, port_toward(sw, node_path[i + 1]),
              port_toward(sw, node_path[i - 1])};
      hops.push_back(hop);
    }
    set.paths.push_back(std::move(hops));
  };
  const std::function<void(sim::NodeId)> dfs = [&](sim::NodeId current) {
    if (set.paths.size() >= k_paths_) return;
    if (current == dst_host) {
      emit();
      return;
    }
    if (current != src_host && !is_switch(current)) return;
    const auto it = adjacency_.find(current);
    if (it == adjacency_.end()) return;
    for (const auto& [port, peer] : it->second) {
      const auto d = dist.find(peer);
      if (d == dist.end() || d->second != dist.at(current) + 1) continue;
      node_path.push_back(peer);
      dfs(peer);
      node_path.pop_back();
      if (set.paths.size() >= k_paths_) return;
    }
  };
  dfs(src_host);
  return set;
}

sim::PortId Topology::port_toward(sim::NodeId from, sim::NodeId to) const {
  const auto it = adjacency_.find(from);
  if (it == adjacency_.end()) return 0;
  for (const auto& [port, peer] : it->second) {
    if (peer == to) return port;
  }
  return 0;
}

std::optional<std::vector<Hop>> Topology::compute_path(
    sim::NodeId src_host, sim::NodeId dst_host) const {
  if (src_host == dst_host) return std::vector<Hop>{};
  // BFS from src_host; only switches forward traffic.
  std::unordered_map<sim::NodeId, std::pair<sim::NodeId, sim::PortId>> parent;
  std::deque<sim::NodeId> frontier{src_host};
  parent[src_host] = {sim::kInvalidNode, 0};
  bool found = false;
  while (!frontier.empty() && !found) {
    const sim::NodeId current = frontier.front();
    frontier.pop_front();
    // Hosts other than the source do not forward.
    if (current != src_host && !is_switch(current)) continue;
    const auto it = adjacency_.find(current);
    if (it == adjacency_.end()) continue;
    for (const auto& [port, peer] : it->second) {
      if (parent.contains(peer)) continue;
      parent[peer] = {current, port};
      if (peer == dst_host) {
        found = true;
        break;
      }
      frontier.push_back(peer);
    }
  }
  if (!found) return std::nullopt;
  // Walk back from dst_host, collecting (switch, in_port, out_port) hops.
  std::vector<Hop> hops;
  sim::NodeId walk = dst_host;
  while (true) {
    const auto [prev, port] = parent.at(walk);
    if (prev == sim::kInvalidNode) break;
    if (is_switch(prev)) {
      Hop hop{prev, port, 0};
      // The ingress port on `prev` faces its own parent (if any).
      const auto [grandparent, gp_port] = parent.at(prev);
      if (grandparent != sim::kInvalidNode) {
        for (const auto& [local_port, peer] : adjacency_.at(prev)) {
          if (peer == grandparent) {
            hop.in_port = local_port;
            break;
          }
        }
      }
      hops.push_back(hop);
    }
    walk = prev;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

const std::vector<std::pair<sim::PortId, sim::NodeId>>& Topology::neighbours(
    sim::NodeId id) const {
  static const std::vector<std::pair<sim::PortId, sim::NodeId>> kEmpty;
  const auto it = adjacency_.find(id);
  return it == adjacency_.end() ? kEmpty : it->second;
}

}  // namespace identxx::openflow
