#include "openflow/topology.hpp"

#include <atomic>
#include <deque>

#include "sim/worker_pool.hpp"

namespace identxx::openflow {

namespace {

std::atomic<std::uint64_t> g_next_topology_id{1};

/// One worker thread's private path memo for one topology instance.
/// Keyed by the topology's process-unique id (never a raw pointer — ids
/// are not reused); stale topologies' entries die with the worker thread,
/// whose pool is owned by the topology's simulator.
struct WorkerPathCache {
  std::uint64_t epoch = 0;
  std::unordered_map<std::uint64_t, std::optional<std::vector<Hop>>> paths;
};
thread_local std::unordered_map<std::uint64_t, WorkerPathCache> t_worker_paths;

}  // namespace

Topology::Topology()
    : topology_id_(g_next_topology_id.fetch_add(1, std::memory_order_relaxed)) {}

sim::NodeId Topology::add_switch(std::unique_ptr<Switch> sw) {
  Switch* raw = sw.get();
  const sim::NodeId id = sim_.add_node(std::move(sw));
  switches_[id] = raw;
  switch_order_.push_back(id);
  next_port_[id] = 1;
  return id;
}

sim::NodeId Topology::add_host(std::unique_ptr<sim::Node> host) {
  const sim::NodeId id = sim_.add_node(std::move(host));
  next_port_[id] = 1;
  return id;
}

std::pair<sim::PortId, sim::PortId> Topology::link(sim::NodeId a, sim::NodeId b,
                                                   sim::SimTime latency) {
  invalidate_paths();  // adjacency changes below
  const sim::PortId port_a = next_port_.at(a)++;
  const sim::PortId port_b = next_port_.at(b)++;
  sim_.connect(a, port_a, b, port_b, latency);
  adjacency_[a].emplace_back(port_a, b);
  adjacency_[b].emplace_back(port_b, a);
  if (const auto it = switches_.find(a); it != switches_.end()) {
    it->second->register_port(port_a);
  }
  if (const auto it = switches_.find(b); it != switches_.end()) {
    it->second->register_port(port_b);
  }
  return {port_a, port_b};
}

Switch& Topology::switch_at(sim::NodeId id) {
  const auto it = switches_.find(id);
  if (it == switches_.end()) throw SimError("switch_at: not a switch");
  return *it->second;
}

std::optional<Hop> Topology::attachment(sim::NodeId host) const {
  const auto it = adjacency_.find(host);
  if (it == adjacency_.end()) return std::nullopt;
  for (const auto& [port, peer] : it->second) {
    if (is_switch(peer)) {
      // Find the peer's port facing us.
      for (const auto& [peer_port, peer_peer] : adjacency_.at(peer)) {
        if (peer_peer == host) return Hop{peer, peer_port};
      }
    }
  }
  return std::nullopt;
}

void Topology::invalidate_paths() noexcept {
  ++path_epoch_;  // per-worker caches check the epoch on their next query
  if (path_cache_.empty()) return;
  path_cache_.clear();
  ++path_cache_stats_.invalidations;
}

void Topology::set_path_cache_enabled(bool enabled) noexcept {
  path_cache_enabled_ = enabled;
  if (!enabled) path_cache_.clear();
}

std::optional<std::vector<Hop>> Topology::path(sim::NodeId src_host,
                                               sim::NodeId dst_host) const {
  if (!path_cache_enabled_) return compute_path(src_host, dst_host);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src_host) << 32) | dst_host;
  if (sim::WorkerPool::current_worker_slot() != 0) {
    // Simulator worker thread (parallel shard lane): private cache, no
    // locks and no contention on the shared memo or its stats.
    return path_via_worker_cache(key, src_host, dst_host);
  }
  if (const auto it = path_cache_.find(key); it != path_cache_.end()) {
    ++path_cache_stats_.hits;
    return it->second;
  }
  auto result = compute_path(src_host, dst_host);
  ++path_cache_stats_.misses;
  path_cache_.emplace(key, result);
  return result;
}

std::optional<std::vector<Hop>> Topology::path_via_worker_cache(
    std::uint64_t key, sim::NodeId src_host, sim::NodeId dst_host) const {
  WorkerPathCache& cache = t_worker_paths[topology_id_];
  if (cache.epoch != path_epoch_) {
    cache.paths.clear();
    cache.epoch = path_epoch_;
  }
  if (const auto it = cache.paths.find(key); it != cache.paths.end()) {
    return it->second;
  }
  auto result = compute_path(src_host, dst_host);
  cache.paths.emplace(key, result);
  return result;
}

std::optional<std::vector<Hop>> Topology::compute_path(
    sim::NodeId src_host, sim::NodeId dst_host) const {
  if (src_host == dst_host) return std::vector<Hop>{};
  // BFS from src_host; only switches forward traffic.
  std::unordered_map<sim::NodeId, std::pair<sim::NodeId, sim::PortId>> parent;
  std::deque<sim::NodeId> frontier{src_host};
  parent[src_host] = {sim::kInvalidNode, 0};
  bool found = false;
  while (!frontier.empty() && !found) {
    const sim::NodeId current = frontier.front();
    frontier.pop_front();
    // Hosts other than the source do not forward.
    if (current != src_host && !is_switch(current)) continue;
    const auto it = adjacency_.find(current);
    if (it == adjacency_.end()) continue;
    for (const auto& [port, peer] : it->second) {
      if (parent.contains(peer)) continue;
      parent[peer] = {current, port};
      if (peer == dst_host) {
        found = true;
        break;
      }
      frontier.push_back(peer);
    }
  }
  if (!found) return std::nullopt;
  // Walk back from dst_host, collecting (switch, in_port, out_port) hops.
  std::vector<Hop> hops;
  sim::NodeId walk = dst_host;
  while (true) {
    const auto [prev, port] = parent.at(walk);
    if (prev == sim::kInvalidNode) break;
    if (is_switch(prev)) {
      Hop hop{prev, port, 0};
      // The ingress port on `prev` faces its own parent (if any).
      const auto [grandparent, gp_port] = parent.at(prev);
      if (grandparent != sim::kInvalidNode) {
        for (const auto& [local_port, peer] : adjacency_.at(prev)) {
          if (peer == grandparent) {
            hop.in_port = local_port;
            break;
          }
        }
      }
      hops.push_back(hop);
    }
    walk = prev;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

const std::vector<std::pair<sim::PortId, sim::NodeId>>& Topology::neighbours(
    sim::NodeId id) const {
  static const std::vector<std::pair<sim::PortId, sim::NodeId>> kEmpty;
  const auto it = adjacency_.find(id);
  return it == adjacency_.end() ? kEmpty : it->second;
}

}  // namespace identxx::openflow
