#pragma once

// OpenFlow-style flow matching (OpenFlow 1.0 10-tuple with per-field
// wildcards, as described in §3.1 of the paper).

#include <cstdint>
#include <string>

#include "net/flow.hpp"

namespace identxx::openflow {

/// Bitmask of wildcarded fields.
enum class Wildcard : std::uint16_t {
  kNone = 0,
  kInPort = 1 << 0,
  kSrcMac = 1 << 1,
  kDstMac = 1 << 2,
  kEtherType = 1 << 3,
  kVlanId = 1 << 4,
  kSrcIp = 1 << 5,   // fully wildcarded; prefix masks via src_ip_prefix
  kDstIp = 1 << 6,
  kProto = 1 << 7,
  kSrcPort = 1 << 8,
  kDstPort = 1 << 9,
  kAll = (1 << 10) - 1,
};

[[nodiscard]] constexpr Wildcard operator|(Wildcard a, Wildcard b) noexcept {
  return static_cast<Wildcard>(static_cast<std::uint16_t>(a) |
                               static_cast<std::uint16_t>(b));
}

[[nodiscard]] constexpr Wildcard operator&(Wildcard a, Wildcard b) noexcept {
  return static_cast<Wildcard>(static_cast<std::uint16_t>(a) &
                               static_cast<std::uint16_t>(b));
}

/// Remove `flags` from `set` (e.g. "wildcard everything except proto and
/// destination port").
[[nodiscard]] constexpr Wildcard without(Wildcard set, Wildcard flags) noexcept {
  return static_cast<Wildcard>(static_cast<std::uint16_t>(set) &
                               static_cast<std::uint16_t>(Wildcard::kAll) &
                               ~static_cast<std::uint16_t>(flags));
}

[[nodiscard]] constexpr bool has_wildcard(Wildcard set, Wildcard flag) noexcept {
  return (static_cast<std::uint16_t>(set) & static_cast<std::uint16_t>(flag)) != 0;
}

/// A match over the 10-tuple.  Fields under a wildcard bit are ignored.
/// IP fields additionally support CIDR prefixes (prefix length 32 = exact,
/// 0 = same as wildcarded), and port fields support bitmasks (0xffff =
/// exact, 0 = same as wildcarded) — an aligned power-of-two port block
/// such as 8080/0xfff0 is one masked entry, which is how the aggregated
/// rule cache caches contiguous port *ranges* (DESIGN.md §8.2).
struct FlowMatch {
  Wildcard wildcards = Wildcard::kAll;
  std::uint16_t in_port = 0;
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  std::uint16_t ether_type = 0x0800;
  std::uint16_t vlan_id = 0;
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  unsigned src_ip_prefix = 32;
  unsigned dst_ip_prefix = 32;
  net::IpProto proto = net::IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t src_port_mask = 0xffff;
  std::uint16_t dst_port_mask = 0xffff;

  [[nodiscard]] bool operator==(const FlowMatch&) const noexcept = default;

  /// Exact match on every 10-tuple field (the shape the ident++ controller
  /// installs after a decision, §3.1).
  [[nodiscard]] static FlowMatch exact(const net::TenTuple& tuple) noexcept;

  /// Match everything.
  [[nodiscard]] static FlowMatch any() noexcept { return FlowMatch{}; }

  /// Does `tuple` fall under this match?
  [[nodiscard]] bool matches(const net::TenTuple& tuple) const noexcept;

  /// True when no field is wildcarded, prefixes are /32 and port masks are
  /// full — such entries are eligible for the exact-match fast path in
  /// FlowTable.
  [[nodiscard]] bool is_exact() const noexcept;

  /// Project `tuple` onto this match's constrained fields: wildcarded
  /// fields take their default value and IPs are masked to the prefix.
  /// Two tuples project equally iff the match cannot tell them apart,
  /// so `matches(t)` ⇔ `project(t) == key()` — this is what lets the
  /// FlowTable index wildcard entries of one shape in a hash map.
  [[nodiscard]] net::TenTuple project(const net::TenTuple& tuple) const noexcept;

  /// This match's own bucket key: its concrete field values projected
  /// through its own shape.
  [[nodiscard]] net::TenTuple key() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Projection under an explicit shape (wildcard mask + prefix lengths +
/// port masks) — FlowMatch::project with the shape taken from elsewhere.
[[nodiscard]] net::TenTuple project_tuple(const net::TenTuple& tuple,
                                          Wildcard wildcards,
                                          unsigned src_prefix,
                                          unsigned dst_prefix,
                                          std::uint16_t src_port_mask = 0xffff,
                                          std::uint16_t dst_port_mask = 0xffff) noexcept;

}  // namespace identxx::openflow
