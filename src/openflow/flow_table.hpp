#pragma once

// The switch flow table (§3.1): maps 10-tuple matches to actions, with
// priorities, idle/hard timeouts and per-entry statistics.  This is the
// "rule cache" the paper refers to in §2 — the controller installs an
// entry to cache its allow/drop decision so later packets of the flow
// never reach the controller.
//
// Lookup strategy (DESIGN.md §8): entries whose match is fully exact go
// into a hash map keyed by the 10-tuple (O(1) hit path — the dominant
// case under ident++, which installs exact entries).  Wildcard entries
// live in per-priority buckets, each bucket partitioned into tuple-space
// "shapes" (one per distinct wildcard mask + prefix lengths); within a
// shape a lookup is a single hash probe on the tuple projected onto the
// shape's constrained fields.  Aggregated tables therefore cost
// O(buckets × shapes-per-bucket), not O(entries).
//
// Priority semantics: an exact hit wins over wildcard entries of equal or
// lower priority, but a wildcard entry of *strictly higher* priority that
// matches the packet beats it (OpenFlow tie-break: exact before wildcard
// at the same priority).  The seed's fast path returned the exact hit
// unconditionally, which silently shadowed high-priority wildcard
// quarantine/drop rules.
//
// Recency: every use splices the entry to the front of an intrusive LRU
// list, so capacity eviction is O(1) — pop the back.

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "sim/simulator.hpp"

namespace identxx::openflow {

struct FlowEntry {
  FlowMatch match;
  std::uint16_t priority = 0;
  Action action = DropAction{};
  /// 0 disables the respective timeout.
  sim::SimTime idle_timeout = 0;
  sim::SimTime hard_timeout = 0;

  // Statistics.
  sim::SimTime created_at = 0;
  sim::SimTime last_used_at = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint64_t cookie = 0;  ///< controller-chosen opaque id
};

enum class RemovalReason { kIdleTimeout, kHardTimeout, kEvicted, kDeleted };

struct TableStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t removals = 0;
  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class FlowTable {
 public:
  /// `capacity` caps the number of entries (hardware TCAM analogue);
  /// inserts beyond it evict the least-recently-used entry.  Clamped to
  /// ≥ 1 — a zero capacity would let inserts grow the table unbounded
  /// (eviction of an empty table is a no-op).
  explicit FlowTable(std::size_t capacity = 65536)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  using RemovalListener =
      std::function<void(const FlowEntry&, RemovalReason)>;

  /// Called for every entry that leaves the table.
  void set_removal_listener(RemovalListener listener) {
    removal_listener_ = std::move(listener);
  }

  /// Insert or overwrite.  An entry whose match covers the same packets
  /// at the same priority overwrites the old one, *preserving* its
  /// packet/byte counters and creation time (OpenFlow overwrite
  /// semantics — controllers refresh rules and read the counters for
  /// accounting).
  void insert(FlowEntry entry, sim::SimTime now);

  /// Highest-priority matching entry, updating stats; nullptr on miss.
  /// Expired entries encountered along the way are removed first.
  [[nodiscard]] const FlowEntry* lookup(const net::TenTuple& tuple,
                                        sim::SimTime now,
                                        std::size_t packet_bytes);

  /// Structural lookup: the live (non-expired as of `now`) entry with
  /// exactly this match (same covered packets) and priority, if any.
  /// Does not update stats or recency.
  [[nodiscard]] const FlowEntry* find(const FlowMatch& match,
                                      std::uint16_t priority,
                                      sim::SimTime now) const;

  /// Remove entries matching predicate; returns count.
  std::size_t remove_if(const std::function<bool(const FlowEntry&)>& pred);

  /// Remove every expired entry as of `now`; returns count.
  std::size_t expire(sim::SimTime now);

  /// Remove all entries.
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const TableStats& stats() const noexcept { return stats_; }

  /// Any live-or-unswept entry carrying `cookie`?  O(1) via a refcounted
  /// cookie index — controllers use it to retire per-cookie bookkeeping
  /// the moment a cookie's last entry leaves the table.
  [[nodiscard]] bool has_cookie(std::uint64_t cookie) const noexcept {
    return cookie_counts_.contains(cookie);
  }

  /// Snapshot of all entries (for tests and debugging), most recently
  /// used first.
  [[nodiscard]] std::vector<FlowEntry> entries() const;

 private:
  using Order = std::list<FlowEntry>;
  using Iter = Order::iterator;

  /// One tuple-space shape within a priority bucket: the entries sharing
  /// a wildcard mask, prefix lengths and port masks, indexed by projected
  /// key so a lookup is one hash probe instead of a scan.
  struct Shape {
    Wildcard wildcards = Wildcard::kAll;
    unsigned src_prefix = 0;  ///< 0 when kSrcIp is wildcarded
    unsigned dst_prefix = 0;
    std::uint16_t src_port_mask = 0xffff;  ///< 0xffff when wildcarded
    std::uint16_t dst_port_mask = 0xffff;
    std::unordered_map<net::TenTuple, Iter> by_key;
  };

  /// All wildcard entries of one priority, shapes in creation order.
  struct Bucket {
    std::vector<Shape> shapes;
  };

  [[nodiscard]] static bool shape_fits(const Shape& shape,
                                       const FlowMatch& match) noexcept;
  [[nodiscard]] bool expired(const FlowEntry& entry, sim::SimTime now) const noexcept;
  [[nodiscard]] RemovalReason expiry_reason(const FlowEntry& entry,
                                            sim::SimTime now) const noexcept;
  void notify_removal(const FlowEntry& entry, RemovalReason reason);
  /// Unlink `it` from its index (exact map or bucket/shape) and the LRU
  /// list, then notify.  Empty shapes and buckets are pruned.
  void erase_stored(Iter it, RemovalReason reason);
  void evict_lru();
  const FlowEntry* touch(Iter it, sim::SimTime now, std::size_t packet_bytes);

  void cookie_added(std::uint64_t cookie) noexcept;
  void cookie_removed(std::uint64_t cookie) noexcept;

  std::size_t capacity_;
  Order order_;  ///< front = most recently used; back = eviction victim
  std::unordered_map<net::TenTuple, Iter> exact_;
  /// Wildcard buckets, highest priority first.
  std::map<std::uint16_t, Bucket, std::greater<std::uint16_t>> wild_;
  /// Live entries per nonzero cookie (an entry may sit on several
  /// switches, but within one table a cookie can also cover several
  /// aggregate entries).
  std::unordered_map<std::uint64_t, std::size_t> cookie_counts_;
  TableStats stats_;
  RemovalListener removal_listener_;
};

}  // namespace identxx::openflow
